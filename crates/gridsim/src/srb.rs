//! In-memory Storage Resource Broker (SRB) simulation.
//!
//! §3.2 wraps "a small subset of SRB's functionality": `ls`, `cat`, `get`,
//! `put`, and the batched `xml_call`. This module is the broker itself —
//! hierarchical *collections* holding byte objects, per-user permissions
//! (the real SRB calls were "GSI authenticated"), and per-collection
//! quotas so that the paper's canonical implementation error ("the file
//! didn't get transferred because the disk was full") is reachable.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use std::fmt;

/// SRB operation failures, mapped by the data-management service onto the
/// portal's common error codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SrbError {
    /// No such collection or object.
    NotFound(String),
    /// The principal lacks access to the collection.
    PermissionDenied(String),
    /// Writing would exceed the collection quota.
    DiskFull { path: String, quota: usize },
    /// Object exists where a collection is needed, or vice versa.
    Invalid(String),
}

impl fmt::Display for SrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrbError::NotFound(p) => write!(f, "not found: {p}"),
            SrbError::PermissionDenied(p) => write!(f, "permission denied: {p}"),
            SrbError::DiskFull { path, quota } => {
                write!(f, "disk full: {path} (quota {quota} bytes)")
            }
            SrbError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for SrbError {}

type SrbResult<T> = std::result::Result<T, SrbError>;

/// A directory listing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name.
    pub name: String,
    /// True for sub-collections.
    pub is_collection: bool,
    /// Object size in bytes (0 for collections).
    pub size: usize,
}

#[derive(Debug, Default)]
struct Collection {
    children: BTreeMap<String, Node>,
}

#[derive(Debug)]
enum Node {
    Collection(Collection),
    Object(Vec<u8>),
}

struct SrbState {
    root: Collection,
    /// Principals allowed per top-level collection; empty = world-readable.
    acls: BTreeMap<String, Vec<String>>,
    /// Byte quota per top-level collection.
    quotas: BTreeMap<String, usize>,
}

/// The broker.
pub struct Srb {
    state: RwLock<SrbState>,
}

/// Parse a logical SRB path. Paths are absolute with non-empty segments;
/// a missing leading slash, a doubled slash, or a trailing slash is
/// malformed and faults rather than being silently collapsed —
/// `//home-alice` must not resolve as if it were `/home-alice` (or, worse,
/// skip the top-level segment the ACL and quota lookups key on).
fn split(path: &str) -> SrbResult<Vec<&str>> {
    let rest = path
        .strip_prefix('/')
        .ok_or_else(|| SrbError::Invalid(format!("path {path:?} is not absolute")))?;
    if rest.is_empty() {
        return Err(SrbError::Invalid("empty path".into()));
    }
    let segs: Vec<&str> = rest.split('/').collect();
    if segs.iter().any(|s| s.is_empty()) {
        return Err(SrbError::Invalid(format!(
            "path {path:?} has an empty segment"
        )));
    }
    Ok(segs)
}

impl Default for Srb {
    fn default() -> Self {
        Srb::new()
    }
}

impl Srb {
    /// An empty broker.
    pub fn new() -> Srb {
        Srb {
            state: RwLock::new(SrbState {
                root: Collection::default(),
                acls: BTreeMap::new(),
                quotas: BTreeMap::new(),
            }),
        }
    }

    /// A broker populated like the GCE testbed: one home collection per
    /// user with a 1 MiB quota, plus a world-readable `/public`.
    pub fn testbed(users: &[&str]) -> Srb {
        let srb = Srb::new();
        for user in users {
            let home = format!("/home-{user}");
            srb.mkdir(&home).unwrap();
            srb.set_acl(&home, vec![(*user).to_owned()]);
            srb.set_quota(&home, 1 << 20);
        }
        srb.mkdir("/public").unwrap();
        srb.put(
            "anonymous",
            "/public/README",
            b"GCE testbed public collection\n",
        )
        .unwrap();
        srb
    }

    /// Restrict a top-level collection to `principals`.
    pub fn set_acl(&self, top: &str, principals: Vec<String>) {
        let top = top.trim_matches('/').to_owned();
        self.state.write().acls.insert(top, principals);
    }

    /// Set a byte quota on a top-level collection.
    pub fn set_quota(&self, top: &str, bytes: usize) {
        let top = top.trim_matches('/').to_owned();
        self.state.write().quotas.insert(top, bytes);
    }

    fn check_access(state: &SrbState, principal: &str, segs: &[&str]) -> SrbResult<()> {
        // `split` guarantees a non-empty, non-blank top segment; an empty
        // slice here is a caller bug, not a world-readable root.
        let top = segs
            .first()
            .copied()
            .ok_or_else(|| SrbError::Invalid("empty path".into()))?;
        if let Some(allowed) = state.acls.get(top) {
            if !allowed.iter().any(|p| p == principal) {
                return Err(SrbError::PermissionDenied(format!("/{top}")));
            }
        }
        Ok(())
    }

    fn collection_size(col: &Collection) -> usize {
        col.children
            .values()
            .map(|n| match n {
                Node::Object(bytes) => bytes.len(),
                Node::Collection(c) => Self::collection_size(c),
            })
            .sum()
    }

    fn descend<'c>(root: &'c Collection, segs: &[&str]) -> SrbResult<&'c Collection> {
        let mut cur = root;
        for seg in segs {
            match cur.children.get(*seg) {
                Some(Node::Collection(c)) => cur = c,
                Some(Node::Object(_)) => {
                    return Err(SrbError::Invalid(format!("{seg:?} is an object")))
                }
                None => return Err(SrbError::NotFound(format!("collection {seg:?}"))),
            }
        }
        Ok(cur)
    }

    fn descend_mut<'c>(root: &'c mut Collection, segs: &[&str]) -> SrbResult<&'c mut Collection> {
        let mut cur = root;
        for seg in segs {
            match cur.children.get_mut(*seg) {
                Some(Node::Collection(c)) => cur = c,
                Some(Node::Object(_)) => {
                    return Err(SrbError::Invalid(format!("{seg:?} is an object")))
                }
                None => return Err(SrbError::NotFound(format!("collection {seg:?}"))),
            }
        }
        Ok(cur)
    }

    /// Create a collection (and intermediates).
    pub fn mkdir(&self, path: &str) -> SrbResult<()> {
        let segs = split(path)?;
        let mut state = self.state.write();
        let mut cur = &mut state.root;
        for seg in segs {
            let entry = cur
                .children
                .entry(seg.to_owned())
                .or_insert_with(|| Node::Collection(Collection::default()));
            match entry {
                Node::Collection(c) => cur = c,
                Node::Object(_) => return Err(SrbError::Invalid(format!("{seg:?} is an object"))),
            }
        }
        Ok(())
    }

    /// List a collection.
    pub fn ls(&self, principal: &str, path: &str) -> SrbResult<Vec<DirEntry>> {
        let segs = split(path)?;
        let state = self.state.read();
        Self::check_access(&state, principal, &segs)?;
        let col = Self::descend(&state.root, &segs)?;
        Ok(col
            .children
            .iter()
            .map(|(name, node)| match node {
                Node::Collection(_) => DirEntry {
                    name: name.clone(),
                    is_collection: true,
                    size: 0,
                },
                Node::Object(bytes) => DirEntry {
                    name: name.clone(),
                    is_collection: false,
                    size: bytes.len(),
                },
            })
            .collect())
    }

    /// Read an object's bytes.
    pub fn get(&self, principal: &str, path: &str) -> SrbResult<Vec<u8>> {
        let segs = split(path)?;
        let state = self.state.read();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = segs.split_last().expect("split checked non-empty");
        let col = Self::descend(&state.root, dirs)?;
        match col.children.get(*name) {
            Some(Node::Object(bytes)) => Ok(bytes.clone()),
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => Err(SrbError::NotFound(path.to_owned())),
        }
    }

    /// Read an object as UTF-8 text (the `cat` call).
    pub fn cat(&self, principal: &str, path: &str) -> SrbResult<String> {
        let bytes = self.get(principal, path)?;
        String::from_utf8(bytes).map_err(|_| SrbError::Invalid("object is not UTF-8".into()))
    }

    /// Write (create or replace) an object. Enforces the top-level quota.
    pub fn put(&self, principal: &str, path: &str, data: &[u8]) -> SrbResult<()> {
        let segs = split(path)?;
        let mut state = self.state.write();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = segs.split_last().expect("split checked non-empty");
        // Quota check against the top-level collection. `split` guarantees
        // the segment exists; never fall back to the root's quota entry.
        let top = segs
            .first()
            .copied()
            .ok_or_else(|| SrbError::Invalid("empty path".into()))?;
        if let Some(&quota) = state.quotas.get(top) {
            let existing = match Self::descend(&state.root, dirs)
                .ok()
                .and_then(|c| c.children.get(*name))
            {
                Some(Node::Object(bytes)) => bytes.len(),
                _ => 0,
            };
            let top_col = Self::descend(&state.root, &segs[..1])?;
            let used = Self::collection_size(top_col);
            if used - existing + data.len() > quota {
                return Err(SrbError::DiskFull {
                    path: format!("/{top}"),
                    quota,
                });
            }
        }
        let col = Self::descend_mut(&mut state.root, dirs)?;
        match col.children.get_mut(*name) {
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            Some(Node::Object(bytes)) => {
                *bytes = data.to_vec();
                Ok(())
            }
            None => {
                col.children
                    .insert((*name).to_owned(), Node::Object(data.to_vec()));
                Ok(())
            }
        }
    }

    /// Delete an object.
    pub fn rm(&self, principal: &str, path: &str) -> SrbResult<()> {
        let segs = split(path)?;
        let mut state = self.state.write();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = segs.split_last().expect("split checked non-empty");
        let col = Self::descend_mut(&mut state.root, dirs)?;
        match col.children.get(*name) {
            Some(Node::Object(_)) => {
                col.children.remove(*name);
                Ok(())
            }
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => Err(SrbError::NotFound(path.to_owned())),
        }
    }

    /// Size of an object, without transferring it.
    pub fn stat(&self, principal: &str, path: &str) -> SrbResult<usize> {
        self.get(principal, path).map(|b| b.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_cat_round_trip() {
        let srb = Srb::new();
        srb.mkdir("/data").unwrap();
        srb.put("u", "/data/hello.txt", b"hello srb").unwrap();
        assert_eq!(srb.get("u", "/data/hello.txt").unwrap(), b"hello srb");
        assert_eq!(srb.cat("u", "/data/hello.txt").unwrap(), "hello srb");
        assert_eq!(srb.stat("u", "/data/hello.txt").unwrap(), 9);
    }

    #[test]
    fn ls_lists_objects_and_collections() {
        let srb = Srb::new();
        srb.mkdir("/data/sub").unwrap();
        srb.put("u", "/data/a.txt", b"aaa").unwrap();
        let entries = srb.ls("u", "/data").unwrap();
        assert_eq!(entries.len(), 2);
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.txt", "sub"]);
        assert!(!entries[0].is_collection);
        assert_eq!(entries[0].size, 3);
        assert!(entries[1].is_collection);
    }

    #[test]
    fn missing_paths_error() {
        let srb = Srb::new();
        assert!(matches!(srb.ls("u", "/ghost"), Err(SrbError::NotFound(_))));
        assert!(matches!(
            srb.get("u", "/ghost/x"),
            Err(SrbError::NotFound(_))
        ));
        assert!(matches!(
            srb.rm("u", "/ghost/x"),
            Err(SrbError::NotFound(_))
        ));
    }

    #[test]
    fn acl_enforced() {
        let srb = Srb::testbed(&["alice"]);
        assert!(srb.ls("alice", "/home-alice").is_ok());
        assert!(matches!(
            srb.ls("mallory", "/home-alice"),
            Err(SrbError::PermissionDenied(_))
        ));
        // Public collection readable by anyone.
        assert!(srb.cat("mallory", "/public/README").is_ok());
    }

    #[test]
    fn quota_produces_disk_full() {
        let srb = Srb::new();
        srb.mkdir("/small").unwrap();
        srb.set_quota("/small", 10);
        srb.put("u", "/small/a", b"12345").unwrap();
        let err = srb.put("u", "/small/b", b"123456").unwrap_err();
        assert!(matches!(err, SrbError::DiskFull { .. }));
        // Replacing an object reuses its budget.
        srb.put("u", "/small/a", b"1234567890").unwrap();
    }

    #[test]
    fn replace_and_remove() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/f", b"one").unwrap();
        srb.put("u", "/d/f", b"two").unwrap();
        assert_eq!(srb.cat("u", "/d/f").unwrap(), "two");
        srb.rm("u", "/d/f").unwrap();
        assert!(srb.get("u", "/d/f").is_err());
    }

    #[test]
    fn object_collection_confusion_rejected() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/f", b"x").unwrap();
        assert!(matches!(srb.mkdir("/d/f"), Err(SrbError::Invalid(_))));
        assert!(matches!(srb.get("u", "/d"), Err(SrbError::Invalid(_))));
        assert!(matches!(
            srb.put("u", "/d", b"y"),
            Err(SrbError::Invalid(_))
        ));
    }

    #[test]
    fn non_utf8_cat_rejected_but_get_works() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/bin", &[0xFF, 0xFE]).unwrap();
        assert!(srb.cat("u", "/d/bin").is_err());
        assert_eq!(srb.get("u", "/d/bin").unwrap(), vec![0xFF, 0xFE]);
    }

    #[test]
    fn malformed_paths_fault_instead_of_resolving_as_root() {
        // Regression (flushed out by the e12 chaos soak's path fuzzing):
        // `segs.first().copied().unwrap_or("")` silently treated these as
        // the root collection, so `//home-alice` bypassed the ACL keyed on
        // "home-alice". Each malformed shape must fault.
        let srb = Srb::testbed(&["alice"]);
        for bad in [
            "",
            "/",
            "//",
            "home-alice",         // not absolute
            "//home-alice",       // doubled leading slash
            "/home-alice//notes", // empty middle segment
            "/home-alice/",       // trailing slash
        ] {
            assert!(
                matches!(srb.ls("mallory", bad), Err(SrbError::Invalid(_))),
                "ls({bad:?}) must be Invalid"
            );
            assert!(
                matches!(srb.get("mallory", bad), Err(SrbError::Invalid(_))),
                "get({bad:?}) must be Invalid"
            );
            assert!(
                matches!(srb.put("mallory", bad, b"x"), Err(SrbError::Invalid(_))),
                "put({bad:?}) must be Invalid"
            );
            assert!(
                matches!(srb.mkdir(bad), Err(SrbError::Invalid(_))),
                "mkdir({bad:?}) must be Invalid"
            );
        }
        // The well-formed path still works for its owner and still denies
        // everyone else.
        assert!(srb.ls("alice", "/home-alice").is_ok());
        assert!(matches!(
            srb.ls("mallory", "/home-alice"),
            Err(SrbError::PermissionDenied(_))
        ));
    }

    #[test]
    fn deep_collections() {
        let srb = Srb::new();
        srb.mkdir("/a/b/c").unwrap();
        srb.put("u", "/a/b/c/deep.txt", b"d").unwrap();
        assert_eq!(srb.cat("u", "/a/b/c/deep.txt").unwrap(), "d");
    }
}
