//! In-memory Storage Resource Broker (SRB) simulation.
//!
//! §3.2 wraps "a small subset of SRB's functionality": `ls`, `cat`, `get`,
//! `put`, and the batched `xml_call`. This module is the broker itself —
//! hierarchical *collections* holding byte objects, per-user permissions
//! (the real SRB calls were "GSI authenticated"), and per-collection
//! quotas so that the paper's canonical implementation error ("the file
//! didn't get transferred because the disk was full") is reachable.
//!
//! # Lock striping
//!
//! The namespace is split across N stripes keyed by the FNV-1a hash of the
//! *top-level* collection name, so every path-addressed operation takes
//! only the owning stripe's lock and operations on unrelated collections
//! never contend. ACL and quota entries are keyed on the top-level
//! collection, so they live on the same stripe as the tree they govern —
//! one lock still covers the whole check-then-mutate sequence.
//!
//! Cross-stripe `rename`/`cp` take both stripe locks in **ascending stripe
//! index** order (the canonical global order). Since every multi-stripe
//! acquisition in the process uses the same order, the acquired-before
//! graph the parking_lot shim maintains in debug builds stays acyclic.
//!
//! Each stripe also carries a *device channel*: an optional simulated
//! storage service time (one op at a time per stripe, like a disk with one
//! head). It is zero — a no-op — unless a bench opts in via
//! [`Srb::set_service_time_us`]; the e16 shard bench uses it to measure
//! how lock/stripe granularity bounds the concurrency of disk-like
//! service times independently of host core count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Mutex, RwLock, RwLockWriteGuard};

use std::fmt;

/// Default stripe count for [`Srb::new`] / [`Srb::testbed`].
pub const DEFAULT_STRIPES: usize = 8;

/// SRB operation failures, mapped by the data-management service onto the
/// portal's common error codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SrbError {
    /// No such collection or object.
    NotFound(String),
    /// The principal lacks access to the collection.
    PermissionDenied(String),
    /// Writing would exceed the collection quota.
    DiskFull { path: String, quota: usize },
    /// Object exists where a collection is needed, or vice versa.
    Invalid(String),
}

impl fmt::Display for SrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrbError::NotFound(p) => write!(f, "not found: {p}"),
            SrbError::PermissionDenied(p) => write!(f, "permission denied: {p}"),
            SrbError::DiskFull { path, quota } => {
                write!(f, "disk full: {path} (quota {quota} bytes)")
            }
            SrbError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for SrbError {}

type SrbResult<T> = std::result::Result<T, SrbError>;

/// A directory listing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name.
    pub name: String,
    /// True for sub-collections.
    pub is_collection: bool,
    /// Object size in bytes (0 for collections).
    pub size: usize,
}

#[derive(Debug, Default)]
struct Collection {
    children: BTreeMap<String, Node>,
}

#[derive(Debug)]
enum Node {
    Collection(Collection),
    Object(Vec<u8>),
}

struct SrbState {
    root: Collection,
    /// Principals allowed per top-level collection; empty = world-readable.
    acls: BTreeMap<String, Vec<String>>,
    /// Byte quota per top-level collection.
    quotas: BTreeMap<String, usize>,
}

impl SrbState {
    fn empty() -> SrbState {
        SrbState {
            root: Collection::default(),
            acls: BTreeMap::new(),
            quotas: BTreeMap::new(),
        }
    }
}

/// One namespace stripe: the state it owns, its op counter, and its
/// simulated storage device channel.
struct Stripe {
    state: RwLock<SrbState>,
    /// Operations routed to this stripe (balance diagnostics).
    ops: AtomicU64,
    /// Serializes the simulated per-stripe storage service time.
    device: Mutex<()>,
}

/// The broker.
pub struct Srb {
    stripes: Box<[Stripe]>,
    /// Simulated per-op storage service time, in microseconds; zero (the
    /// default) disables the device model entirely.
    service_time_us: AtomicU64,
}

/// FNV-1a over the top-level collection name — the stripe routing hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parse a logical SRB path. Paths are absolute with non-empty segments;
/// a missing leading slash, a doubled slash, or a trailing slash is
/// malformed and faults rather than being silently collapsed —
/// `//home-alice` must not resolve as if it were `/home-alice` (or, worse,
/// skip the top-level segment the ACL and quota lookups key on).
fn split(path: &str) -> SrbResult<Vec<&str>> {
    let rest = path
        .strip_prefix('/')
        .ok_or_else(|| SrbError::Invalid(format!("path {path:?} is not absolute")))?;
    if rest.is_empty() {
        return Err(SrbError::Invalid("empty path".into()));
    }
    let segs: Vec<&str> = rest.split('/').collect();
    if segs.iter().any(|s| s.is_empty()) {
        return Err(SrbError::Invalid(format!(
            "path {path:?} has an empty segment"
        )));
    }
    Ok(segs)
}

impl Default for Srb {
    fn default() -> Self {
        Srb::new()
    }
}

impl Srb {
    /// An empty broker with [`DEFAULT_STRIPES`] stripes.
    pub fn new() -> Srb {
        Srb::with_stripes(DEFAULT_STRIPES)
    }

    /// An empty broker whose namespace is split across `stripes` locks
    /// (clamped to at least one).
    pub fn with_stripes(stripes: usize) -> Srb {
        let n = stripes.max(1);
        let stripes: Vec<Stripe> = (0..n)
            .map(|i| Stripe {
                state: RwLock::new_named(SrbState::empty(), &format!("srb-stripe-{i}")),
                ops: AtomicU64::new(0),
                device: Mutex::new_named((), &format!("srb-device-{i}")),
            })
            .collect();
        Srb {
            stripes: stripes.into_boxed_slice(),
            service_time_us: AtomicU64::new(0),
        }
    }

    /// A broker populated like the GCE testbed: one home collection per
    /// user with a 1 MiB quota, plus a world-readable `/public`.
    pub fn testbed(users: &[&str]) -> Srb {
        let srb = Srb::new();
        for user in users {
            let home = format!("/home-{user}");
            srb.mkdir(&home).unwrap();
            srb.set_acl(&home, vec![(*user).to_owned()]);
            srb.set_quota(&home, 1 << 20);
        }
        srb.mkdir("/public").unwrap();
        srb.put(
            "anonymous",
            "/public/README",
            b"GCE testbed public collection\n",
        )
        .unwrap();
        srb
    }

    /// Number of namespace stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Operations routed to each stripe so far (balance diagnostics for
    /// the shard bench).
    pub fn stripe_op_counts(&self) -> Vec<u64> {
        self.stripes
            .iter()
            .map(|s| s.ops.load(Ordering::Relaxed))
            .collect()
    }

    /// Enable the per-stripe simulated storage device: every operation
    /// holds its stripe's device channel for `us` microseconds before
    /// touching state, so a stripe serves one op per service time like a
    /// single-head disk. Zero disables the model (the default; no
    /// deployment sets it — only benches opt in).
    pub fn set_service_time_us(&self, us: u64) {
        self.service_time_us.store(us, Ordering::Relaxed);
    }

    /// Stripe index owning top-level collection `top`.
    fn stripe_idx(&self, top: &str) -> usize {
        (fnv1a(top.as_bytes()) % self.stripes.len() as u64) as usize
    }

    fn stripe_for(&self, segs: &[&str]) -> usize {
        segs.first().map(|top| self.stripe_idx(top)).unwrap_or(0)
    }

    /// Count an op against stripe `idx` and, when the device model is on,
    /// occupy the stripe's device channel for one service time. The
    /// channel mutex is released before any state lock is taken, so the
    /// simulated I/O never extends state critical sections.
    fn touch(&self, idx: usize) {
        self.stripes[idx].ops.fetch_add(1, Ordering::Relaxed);
        let us = self.service_time_us.load(Ordering::Relaxed);
        if us > 0 {
            let _channel = self.stripes[idx].device.lock();
            // portalint: allow(reactor-blocking) — simulated storage service time; zero (never reached) in every server deployment, enabled only by the e16 shard bench
            std::thread::sleep(Duration::from_micros(us));
        }
    }

    /// Write-lock stripes `i` and `j` (`i != j`) in ascending index order —
    /// the canonical global order every multi-stripe operation uses — and
    /// return the guards as `(stripe i, stripe j)`.
    fn write_pair(
        &self,
        i: usize,
        j: usize,
    ) -> (
        RwLockWriteGuard<'_, SrbState>,
        RwLockWriteGuard<'_, SrbState>,
    ) {
        debug_assert_ne!(i, j);
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let g_lo = self.stripes[lo].state.write();
        let g_hi = self.stripes[hi].state.write();
        if i < j {
            (g_lo, g_hi)
        } else {
            (g_hi, g_lo)
        }
    }

    /// Restrict a top-level collection to `principals`.
    pub fn set_acl(&self, top: &str, principals: Vec<String>) {
        let top = top.trim_matches('/').to_owned();
        let idx = self.stripe_idx(&top);
        self.stripes[idx].state.write().acls.insert(top, principals);
    }

    /// Set a byte quota on a top-level collection.
    pub fn set_quota(&self, top: &str, bytes: usize) {
        let top = top.trim_matches('/').to_owned();
        let idx = self.stripe_idx(&top);
        self.stripes[idx].state.write().quotas.insert(top, bytes);
    }

    fn check_access(state: &SrbState, principal: &str, segs: &[&str]) -> SrbResult<()> {
        // `split` guarantees a non-empty, non-blank top segment; an empty
        // slice here is a caller bug, not a world-readable root.
        let top = segs
            .first()
            .copied()
            .ok_or_else(|| SrbError::Invalid("empty path".into()))?;
        if let Some(allowed) = state.acls.get(top) {
            if !allowed.iter().any(|p| p == principal) {
                return Err(SrbError::PermissionDenied(format!("/{top}")));
            }
        }
        Ok(())
    }

    fn collection_size(col: &Collection) -> usize {
        col.children
            .values()
            .map(|n| match n {
                Node::Object(bytes) => bytes.len(),
                Node::Collection(c) => Self::collection_size(c),
            })
            .sum()
    }

    fn descend<'c>(root: &'c Collection, segs: &[&str]) -> SrbResult<&'c Collection> {
        let mut cur = root;
        for seg in segs {
            match cur.children.get(*seg) {
                Some(Node::Collection(c)) => cur = c,
                Some(Node::Object(_)) => {
                    return Err(SrbError::Invalid(format!("{seg:?} is an object")))
                }
                None => return Err(SrbError::NotFound(format!("collection {seg:?}"))),
            }
        }
        Ok(cur)
    }

    fn descend_mut<'c>(root: &'c mut Collection, segs: &[&str]) -> SrbResult<&'c mut Collection> {
        let mut cur = root;
        for seg in segs {
            match cur.children.get_mut(*seg) {
                Some(Node::Collection(c)) => cur = c,
                Some(Node::Object(_)) => {
                    return Err(SrbError::Invalid(format!("{seg:?} is an object")))
                }
                None => return Err(SrbError::NotFound(format!("collection {seg:?}"))),
            }
        }
        Ok(cur)
    }

    /// Create a collection (and intermediates).
    pub fn mkdir(&self, path: &str) -> SrbResult<()> {
        let segs = split(path)?;
        let idx = self.stripe_for(&segs);
        self.touch(idx);
        let mut state = self.stripes[idx].state.write();
        let mut cur = &mut state.root;
        for seg in segs {
            let entry = cur
                .children
                .entry(seg.to_owned())
                .or_insert_with(|| Node::Collection(Collection::default()));
            match entry {
                Node::Collection(c) => cur = c,
                Node::Object(_) => return Err(SrbError::Invalid(format!("{seg:?} is an object"))),
            }
        }
        Ok(())
    }

    /// List the root: every top-level collection across all stripes, in
    /// name order. Paths below the root go through [`Srb::ls`]; the root
    /// itself has no single owning stripe, so this merges them. Names
    /// only — per-collection ACLs still guard everything beneath.
    pub fn ls_root(&self) -> Vec<DirEntry> {
        let mut entries: Vec<DirEntry> = Vec::new();
        for stripe in self.stripes.iter() {
            let state = stripe.state.read();
            entries.extend(state.root.children.iter().map(|(name, node)| match node {
                Node::Collection(_) => DirEntry {
                    name: name.clone(),
                    is_collection: true,
                    size: 0,
                },
                Node::Object(bytes) => DirEntry {
                    name: name.clone(),
                    is_collection: false,
                    size: bytes.len(),
                },
            }));
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// List a collection.
    pub fn ls(&self, principal: &str, path: &str) -> SrbResult<Vec<DirEntry>> {
        let segs = split(path)?;
        let idx = self.stripe_for(&segs);
        self.touch(idx);
        let state = self.stripes[idx].state.read();
        Self::check_access(&state, principal, &segs)?;
        let col = Self::descend(&state.root, &segs)?;
        Ok(col
            .children
            .iter()
            .map(|(name, node)| match node {
                Node::Collection(_) => DirEntry {
                    name: name.clone(),
                    is_collection: true,
                    size: 0,
                },
                Node::Object(bytes) => DirEntry {
                    name: name.clone(),
                    is_collection: false,
                    size: bytes.len(),
                },
            })
            .collect())
    }

    /// Read an object's bytes.
    pub fn get(&self, principal: &str, path: &str) -> SrbResult<Vec<u8>> {
        let segs = split(path)?;
        let idx = self.stripe_for(&segs);
        self.touch(idx);
        let state = self.stripes[idx].state.read();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = segs.split_last().expect("split checked non-empty");
        let col = Self::descend(&state.root, dirs)?;
        match col.children.get(*name) {
            Some(Node::Object(bytes)) => Ok(bytes.clone()),
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => Err(SrbError::NotFound(path.to_owned())),
        }
    }

    /// Read an object as UTF-8 text (the `cat` call).
    pub fn cat(&self, principal: &str, path: &str) -> SrbResult<String> {
        let bytes = self.get(principal, path)?;
        String::from_utf8(bytes).map_err(|_| SrbError::Invalid("object is not UTF-8".into()))
    }

    /// Write (create or replace) an object. Enforces the top-level quota.
    pub fn put(&self, principal: &str, path: &str, data: &[u8]) -> SrbResult<()> {
        let segs = split(path)?;
        let idx = self.stripe_for(&segs);
        self.touch(idx);
        let mut state = self.stripes[idx].state.write();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = segs.split_last().expect("split checked non-empty");
        // Quota check against the top-level collection. `split` guarantees
        // the segment exists; never fall back to the root's quota entry.
        let top = segs
            .first()
            .copied()
            .ok_or_else(|| SrbError::Invalid("empty path".into()))?;
        if let Some(&quota) = state.quotas.get(top) {
            let existing = match Self::descend(&state.root, dirs)
                .ok()
                .and_then(|c| c.children.get(*name))
            {
                Some(Node::Object(bytes)) => bytes.len(),
                _ => 0,
            };
            let top_col = Self::descend(&state.root, &segs[..1])?;
            let used = Self::collection_size(top_col);
            if used - existing + data.len() > quota {
                return Err(SrbError::DiskFull {
                    path: format!("/{top}"),
                    quota,
                });
            }
        }
        let col = Self::descend_mut(&mut state.root, dirs)?;
        match col.children.get_mut(*name) {
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            Some(Node::Object(bytes)) => {
                *bytes = data.to_vec();
                Ok(())
            }
            None => {
                col.children
                    .insert((*name).to_owned(), Node::Object(data.to_vec()));
                Ok(())
            }
        }
    }

    /// Delete an object.
    pub fn rm(&self, principal: &str, path: &str) -> SrbResult<()> {
        let segs = split(path)?;
        let idx = self.stripe_for(&segs);
        self.touch(idx);
        let mut state = self.stripes[idx].state.write();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = segs.split_last().expect("split checked non-empty");
        let col = Self::descend_mut(&mut state.root, dirs)?;
        match col.children.get(*name) {
            Some(Node::Object(_)) => {
                col.children.remove(*name);
                Ok(())
            }
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => Err(SrbError::NotFound(path.to_owned())),
        }
    }

    /// Size of an object, without transferring (or cloning) it.
    pub fn stat(&self, principal: &str, path: &str) -> SrbResult<usize> {
        let segs = split(path)?;
        let idx = self.stripe_for(&segs);
        self.touch(idx);
        let state = self.stripes[idx].state.read();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = Self::leaf(&segs)?;
        let col = Self::descend(&state.root, dirs)?;
        match col.children.get(name) {
            Some(Node::Object(bytes)) => Ok(bytes.len()),
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => Err(SrbError::NotFound(path.to_owned())),
        }
    }

    /// Split validated segments into `(leaf name, parent dirs)`.
    fn leaf<'s>(segs: &'s [&'s str]) -> SrbResult<(&'s str, &'s [&'s str])> {
        match segs.split_last() {
            Some((name, dirs)) => Ok((name, dirs)),
            None => Err(SrbError::Invalid("empty path".into())),
        }
    }

    /// Read up to `len` bytes of an object starting at byte `off`, without
    /// cloning the rest of it — the ranged read under the chunked transfer
    /// path (E13). `off == size` is a clean EOF (empty result); `off >
    /// size` faults, flagging a client offset bug rather than hiding it.
    pub fn read_at(
        &self,
        principal: &str,
        path: &str,
        off: usize,
        len: usize,
    ) -> SrbResult<Vec<u8>> {
        let segs = split(path)?;
        let idx = self.stripe_for(&segs);
        self.touch(idx);
        let state = self.stripes[idx].state.read();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = Self::leaf(&segs)?;
        let col = Self::descend(&state.root, dirs)?;
        match col.children.get(name) {
            Some(Node::Object(bytes)) => {
                if off > bytes.len() {
                    return Err(SrbError::Invalid(format!(
                        "read_at offset {off} past end of {path:?} ({} bytes)",
                        bytes.len()
                    )));
                }
                let end = off.saturating_add(len).min(bytes.len());
                Ok(bytes.get(off..end).unwrap_or_default().to_vec())
            }
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => Err(SrbError::NotFound(path.to_owned())),
        }
    }

    /// Append `data` to an object whose current size must equal
    /// `expected_off` (creating it when `expected_off == 0` and it does
    /// not exist). Returns the new size. The expected-offset check is the
    /// server-side seam the chunked `put` protocol validates against: a
    /// duplicate or out-of-order chunk shows up as a mismatch here instead
    /// of silently corrupting the object. Enforces the top-level quota
    /// against only the appended bytes.
    pub fn append_at(
        &self,
        principal: &str,
        path: &str,
        expected_off: usize,
        data: &[u8],
    ) -> SrbResult<usize> {
        let segs = split(path)?;
        let idx = self.stripe_for(&segs);
        self.touch(idx);
        let mut state = self.stripes[idx].state.write();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = Self::leaf(&segs)?;
        let top = segs
            .first()
            .copied()
            .ok_or_else(|| SrbError::Invalid("empty path".into()))?;
        let current = match Self::descend(&state.root, dirs)
            .ok()
            .and_then(|c| c.children.get(name))
        {
            Some(Node::Object(bytes)) => Some(bytes.len()),
            Some(Node::Collection(_)) => {
                return Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => None,
        };
        match current {
            Some(size) if size != expected_off => {
                return Err(SrbError::Invalid(format!(
                    "append_at expected offset {expected_off} but {path:?} has {size} bytes"
                )))
            }
            None if expected_off != 0 => return Err(SrbError::NotFound(path.to_owned())),
            _ => {}
        }
        if let Some(&quota) = state.quotas.get(top) {
            let top_col = Self::descend(&state.root, &segs[..1])?;
            let used = Self::collection_size(top_col);
            if used + data.len() > quota {
                return Err(SrbError::DiskFull {
                    path: format!("/{top}"),
                    quota,
                });
            }
        }
        let col = Self::descend_mut(&mut state.root, dirs)?;
        match col.children.get_mut(name) {
            Some(Node::Object(bytes)) => {
                bytes.extend_from_slice(data);
                Ok(bytes.len())
            }
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => {
                col.children
                    .insert(name.to_owned(), Node::Object(data.to_vec()));
                Ok(data.len())
            }
        }
    }

    /// Source-side validation for a move/copy: the principal may access
    /// the tree and the source is an existing object. Returns its size.
    fn peek_object_size(
        state: &SrbState,
        principal: &str,
        segs: &[&str],
        path: &str,
    ) -> SrbResult<usize> {
        Self::check_access(state, principal, segs)?;
        let (name, dirs) = Self::leaf(segs)?;
        let col = Self::descend(&state.root, dirs)?;
        match col.children.get(name) {
            Some(Node::Object(bytes)) => Ok(bytes.len()),
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => Err(SrbError::NotFound(path.to_owned())),
        }
    }

    /// Destination-side validation for a move/copy: access, an existing
    /// parent collection, the target not being a collection, and — when
    /// the destination top-level collection carries a quota — room for
    /// `incoming` bytes net of the object being replaced. Returns nothing;
    /// a failure here leaves both trees untouched.
    fn check_dest(
        state: &SrbState,
        principal: &str,
        segs: &[&str],
        incoming: usize,
    ) -> SrbResult<()> {
        Self::check_access(state, principal, segs)?;
        let (name, dirs) = Self::leaf(segs)?;
        let dest = Self::descend(&state.root, dirs)?;
        let existing = match dest.children.get(name) {
            Some(Node::Collection(_)) => {
                return Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            Some(Node::Object(bytes)) => bytes.len(),
            None => 0,
        };
        let top = segs
            .first()
            .copied()
            .ok_or_else(|| SrbError::Invalid("empty path".into()))?;
        if let Some(&quota) = state.quotas.get(top) {
            let top_col = Self::descend(&state.root, &segs[..1])?;
            let used = Self::collection_size(top_col);
            if used - existing + incoming > quota {
                return Err(SrbError::DiskFull {
                    path: format!("/{top}"),
                    quota,
                });
            }
        }
        Ok(())
    }

    /// Detach a validated source object, returning its bytes.
    fn remove_object(state: &mut SrbState, segs: &[&str], path: &str) -> SrbResult<Vec<u8>> {
        let (name, dirs) = Self::leaf(segs)?;
        let col = Self::descend_mut(&mut state.root, dirs)?;
        match col.children.remove(name) {
            Some(Node::Object(bytes)) => Ok(bytes),
            Some(other) => {
                // Validated as an object earlier under the same lock; put
                // whatever it was back rather than dropping it.
                col.children.insert(name.to_owned(), other);
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => Err(SrbError::NotFound(path.to_owned())),
        }
    }

    /// Attach `bytes` at a validated destination (replacing any object).
    fn insert_object(state: &mut SrbState, segs: &[&str], bytes: Vec<u8>) -> SrbResult<()> {
        let (name, dirs) = Self::leaf(segs)?;
        let col = Self::descend_mut(&mut state.root, dirs)?;
        col.children.insert(name.to_owned(), Node::Object(bytes));
        Ok(())
    }

    /// Atomically move an object from `from` to `to` (replacing any
    /// existing object at `to`) — the commit step of the chunked `put`:
    /// the destination either keeps its old content or gains the complete
    /// staged content, never a torn mixture.
    ///
    /// Moves may now cross top-level collections (and therefore stripes):
    /// the caller must be allowed on both trees, the destination quota is
    /// enforced on the incoming bytes when the tops differ, and when the
    /// two tops live on different stripes both stripe locks are taken in
    /// the canonical ascending-index order so every interleaving with
    /// other multi-stripe operations is deadlock-free.
    pub fn rename(&self, principal: &str, from: &str, to: &str) -> SrbResult<()> {
        let from_segs = split(from)?;
        let to_segs = split(to)?;
        let cross_top = from_segs.first() != to_segs.first();
        let si = self.stripe_for(&from_segs);
        let di = self.stripe_for(&to_segs);
        self.touch(si);
        if di != si {
            self.touch(di);
        }
        if si == di {
            let mut state = self.stripes[si].state.write();
            let size = Self::peek_object_size(&state, principal, &from_segs, from)?;
            // Within one top-level collection a move cannot change usage,
            // so the quota stays out of the common staging-promotion path.
            Self::check_dest(
                &state,
                principal,
                &to_segs,
                if cross_top { size } else { 0 },
            )?;
            let bytes = Self::remove_object(&mut state, &from_segs, from)?;
            Self::insert_object(&mut state, &to_segs, bytes)
        } else {
            let (mut src, mut dst) = self.write_pair(si, di);
            let size = Self::peek_object_size(&src, principal, &from_segs, from)?;
            Self::check_dest(&dst, principal, &to_segs, size)?;
            let bytes = Self::remove_object(&mut src, &from_segs, from)?;
            Self::insert_object(&mut dst, &to_segs, bytes)
        }
    }

    /// Copy an object from `from` to `to` (replacing any existing object
    /// at `to`), leaving the source in place. The destination quota is
    /// always charged for the incoming bytes; cross-stripe copies take
    /// both stripe locks in the canonical ascending-index order, so the
    /// destination gains either nothing or the complete source content.
    pub fn cp(&self, principal: &str, from: &str, to: &str) -> SrbResult<()> {
        let from_segs = split(from)?;
        let to_segs = split(to)?;
        if from_segs == to_segs {
            // A self-copy is a no-op once validated.
            let idx = self.stripe_for(&from_segs);
            self.touch(idx);
            let state = self.stripes[idx].state.read();
            Self::peek_object_size(&state, principal, &from_segs, from)?;
            return Ok(());
        }
        let si = self.stripe_for(&from_segs);
        let di = self.stripe_for(&to_segs);
        self.touch(si);
        if di != si {
            self.touch(di);
        }
        if si == di {
            let mut state = self.stripes[si].state.write();
            let size = Self::peek_object_size(&state, principal, &from_segs, from)?;
            Self::check_dest(&state, principal, &to_segs, size)?;
            let bytes = {
                let (name, dirs) = Self::leaf(&from_segs)?;
                match Self::descend(&state.root, dirs)?.children.get(name) {
                    Some(Node::Object(bytes)) => bytes.clone(),
                    _ => return Err(SrbError::NotFound(from.to_owned())),
                }
            };
            Self::insert_object(&mut state, &to_segs, bytes)
        } else {
            let (src, mut dst) = self.write_pair(si, di);
            let size = Self::peek_object_size(&src, principal, &from_segs, from)?;
            Self::check_dest(&dst, principal, &to_segs, size)?;
            let bytes = {
                let (name, dirs) = Self::leaf(&from_segs)?;
                match Self::descend(&src.root, dirs)?.children.get(name) {
                    Some(Node::Object(bytes)) => bytes.clone(),
                    _ => return Err(SrbError::NotFound(from.to_owned())),
                }
            };
            Self::insert_object(&mut dst, &to_segs, bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_cat_round_trip() {
        let srb = Srb::new();
        srb.mkdir("/data").unwrap();
        srb.put("u", "/data/hello.txt", b"hello srb").unwrap();
        assert_eq!(srb.get("u", "/data/hello.txt").unwrap(), b"hello srb");
        assert_eq!(srb.cat("u", "/data/hello.txt").unwrap(), "hello srb");
        assert_eq!(srb.stat("u", "/data/hello.txt").unwrap(), 9);
    }

    #[test]
    fn ls_lists_objects_and_collections() {
        let srb = Srb::new();
        srb.mkdir("/data/sub").unwrap();
        srb.put("u", "/data/a.txt", b"aaa").unwrap();
        let entries = srb.ls("u", "/data").unwrap();
        assert_eq!(entries.len(), 2);
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.txt", "sub"]);
        assert!(!entries[0].is_collection);
        assert_eq!(entries[0].size, 3);
        assert!(entries[1].is_collection);
    }

    #[test]
    fn missing_paths_error() {
        let srb = Srb::new();
        assert!(matches!(srb.ls("u", "/ghost"), Err(SrbError::NotFound(_))));
        assert!(matches!(
            srb.get("u", "/ghost/x"),
            Err(SrbError::NotFound(_))
        ));
        assert!(matches!(
            srb.rm("u", "/ghost/x"),
            Err(SrbError::NotFound(_))
        ));
    }

    #[test]
    fn acl_enforced() {
        let srb = Srb::testbed(&["alice"]);
        assert!(srb.ls("alice", "/home-alice").is_ok());
        assert!(matches!(
            srb.ls("mallory", "/home-alice"),
            Err(SrbError::PermissionDenied(_))
        ));
        // Public collection readable by anyone.
        assert!(srb.cat("mallory", "/public/README").is_ok());
    }

    #[test]
    fn quota_produces_disk_full() {
        let srb = Srb::new();
        srb.mkdir("/small").unwrap();
        srb.set_quota("/small", 10);
        srb.put("u", "/small/a", b"12345").unwrap();
        let err = srb.put("u", "/small/b", b"123456").unwrap_err();
        assert!(matches!(err, SrbError::DiskFull { .. }));
        // Replacing an object reuses its budget.
        srb.put("u", "/small/a", b"1234567890").unwrap();
    }

    #[test]
    fn replace_and_remove() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/f", b"one").unwrap();
        srb.put("u", "/d/f", b"two").unwrap();
        assert_eq!(srb.cat("u", "/d/f").unwrap(), "two");
        srb.rm("u", "/d/f").unwrap();
        assert!(srb.get("u", "/d/f").is_err());
    }

    #[test]
    fn object_collection_confusion_rejected() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/f", b"x").unwrap();
        assert!(matches!(srb.mkdir("/d/f"), Err(SrbError::Invalid(_))));
        assert!(matches!(srb.get("u", "/d"), Err(SrbError::Invalid(_))));
        assert!(matches!(
            srb.put("u", "/d", b"y"),
            Err(SrbError::Invalid(_))
        ));
    }

    #[test]
    fn non_utf8_cat_rejected_but_get_works() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/bin", &[0xFF, 0xFE]).unwrap();
        assert!(srb.cat("u", "/d/bin").is_err());
        assert_eq!(srb.get("u", "/d/bin").unwrap(), vec![0xFF, 0xFE]);
    }

    #[test]
    fn malformed_paths_fault_instead_of_resolving_as_root() {
        // Regression (flushed out by the e12 chaos soak's path fuzzing):
        // `segs.first().copied().unwrap_or("")` silently treated these as
        // the root collection, so `//home-alice` bypassed the ACL keyed on
        // "home-alice". Each malformed shape must fault.
        let srb = Srb::testbed(&["alice"]);
        for bad in [
            "",
            "/",
            "//",
            "home-alice",         // not absolute
            "//home-alice",       // doubled leading slash
            "/home-alice//notes", // empty middle segment
            "/home-alice/",       // trailing slash
        ] {
            assert!(
                matches!(srb.ls("mallory", bad), Err(SrbError::Invalid(_))),
                "ls({bad:?}) must be Invalid"
            );
            assert!(
                matches!(srb.get("mallory", bad), Err(SrbError::Invalid(_))),
                "get({bad:?}) must be Invalid"
            );
            assert!(
                matches!(srb.put("mallory", bad, b"x"), Err(SrbError::Invalid(_))),
                "put({bad:?}) must be Invalid"
            );
            assert!(
                matches!(srb.mkdir(bad), Err(SrbError::Invalid(_))),
                "mkdir({bad:?}) must be Invalid"
            );
        }
        // The well-formed path still works for its owner and still denies
        // everyone else.
        assert!(srb.ls("alice", "/home-alice").is_ok());
        assert!(matches!(
            srb.ls("mallory", "/home-alice"),
            Err(SrbError::PermissionDenied(_))
        ));
    }

    #[test]
    fn deep_collections() {
        let srb = Srb::new();
        srb.mkdir("/a/b/c").unwrap();
        srb.put("u", "/a/b/c/deep.txt", b"d").unwrap();
        assert_eq!(srb.cat("u", "/a/b/c/deep.txt").unwrap(), "d");
    }

    #[test]
    fn read_at_ranges_and_eof_boundaries() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/f", b"0123456789").unwrap();
        assert_eq!(srb.read_at("u", "/d/f", 0, 4).unwrap(), b"0123");
        assert_eq!(srb.read_at("u", "/d/f", 4, 4).unwrap(), b"4567");
        // A read that overruns the end is clipped, not faulted.
        assert_eq!(srb.read_at("u", "/d/f", 8, 4).unwrap(), b"89");
        // A read starting exactly at EOF is a clean empty result (the
        // chunked get protocol's end-of-stream probe lands here).
        assert_eq!(srb.read_at("u", "/d/f", 10, 4).unwrap(), b"");
        // Past EOF is a client offset bug and must fault.
        assert!(matches!(
            srb.read_at("u", "/d/f", 11, 4),
            Err(SrbError::Invalid(_))
        ));
        // Zero-length reads inside the object are fine too.
        assert_eq!(srb.read_at("u", "/d/f", 5, 0).unwrap(), b"");
    }

    #[test]
    fn read_at_zero_length_object() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/empty", b"").unwrap();
        assert_eq!(srb.read_at("u", "/d/empty", 0, 4).unwrap(), b"");
        assert!(srb.read_at("u", "/d/empty", 1, 4).is_err());
        assert_eq!(srb.stat("u", "/d/empty").unwrap(), 0);
    }

    #[test]
    fn append_at_builds_object_incrementally() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        assert_eq!(srb.append_at("u", "/d/f", 0, b"abc").unwrap(), 3);
        assert_eq!(srb.append_at("u", "/d/f", 3, b"def").unwrap(), 6);
        assert_eq!(srb.get("u", "/d/f").unwrap(), b"abcdef");
        // A duplicate (retried) chunk shows up as an offset mismatch.
        assert!(matches!(
            srb.append_at("u", "/d/f", 3, b"def"),
            Err(SrbError::Invalid(_))
        ));
        // A skipped-ahead chunk likewise.
        assert!(matches!(
            srb.append_at("u", "/d/f", 9, b"x"),
            Err(SrbError::Invalid(_))
        ));
        // Appending at a nonzero offset to a missing object is NotFound,
        // distinguishing "lost handle" from "wrong offset".
        assert!(matches!(
            srb.append_at("u", "/d/ghost", 3, b"x"),
            Err(SrbError::NotFound(_))
        ));
    }

    #[test]
    fn append_at_creates_zero_length_object() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        // A zero-length put streams zero chunks; the create-at-offset-0
        // call with no data must still materialize the (empty) object.
        assert_eq!(srb.append_at("u", "/d/empty", 0, b"").unwrap(), 0);
        assert_eq!(srb.get("u", "/d/empty").unwrap(), b"");
    }

    #[test]
    fn append_at_enforces_quota_and_acl() {
        let srb = Srb::new();
        srb.mkdir("/small").unwrap();
        srb.set_quota("/small", 10);
        assert_eq!(srb.append_at("u", "/small/f", 0, b"12345678").unwrap(), 8);
        assert!(matches!(
            srb.append_at("u", "/small/f", 8, b"90123"),
            Err(SrbError::DiskFull { .. })
        ));
        // The failed append left the object untouched.
        assert_eq!(srb.stat("u", "/small/f").unwrap(), 8);

        let acl = Srb::testbed(&["alice"]);
        assert!(matches!(
            acl.append_at("mallory", "/home-alice/f", 0, b"x"),
            Err(SrbError::PermissionDenied(_))
        ));
    }

    #[test]
    fn rename_promotes_staging_atomically() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/final", b"old").unwrap();
        srb.put("u", "/d/.part-1", b"new content").unwrap();
        srb.rename("u", "/d/.part-1", "/d/final").unwrap();
        assert_eq!(srb.get("u", "/d/final").unwrap(), b"new content");
        assert!(matches!(
            srb.get("u", "/d/.part-1"),
            Err(SrbError::NotFound(_))
        ));
        // Renaming a missing source faults and touches nothing.
        assert!(matches!(
            srb.rename("u", "/d/ghost", "/d/final"),
            Err(SrbError::NotFound(_))
        ));
        assert_eq!(srb.get("u", "/d/final").unwrap(), b"new content");
    }

    #[test]
    fn rename_moves_across_top_level_collections() {
        // Cross-top moves are now first-class (the shard router's same-
        // backend fast path): ACLs are checked on both trees and the
        // destination quota is charged for the incoming bytes.
        let srb = Srb::new();
        srb.mkdir("/a").unwrap();
        srb.mkdir("/b").unwrap();
        srb.put("u", "/a/f", b"payload").unwrap();
        srb.rename("u", "/a/f", "/b/f").unwrap();
        assert!(matches!(srb.get("u", "/a/f"), Err(SrbError::NotFound(_))));
        assert_eq!(srb.get("u", "/b/f").unwrap(), b"payload");
        // Renaming onto a collection is rejected with both ends intact.
        srb.mkdir("/b/sub").unwrap();
        assert!(matches!(
            srb.rename("u", "/b/f", "/b/sub"),
            Err(SrbError::Invalid(_))
        ));
        assert_eq!(srb.get("u", "/b/f").unwrap(), b"payload");
    }

    #[test]
    fn cross_top_rename_enforces_destination_acl_and_quota() {
        let srb = Srb::testbed(&["alice", "bob"]);
        srb.put("alice", "/home-alice/f", b"secret").unwrap();
        // bob cannot pull alice's object, and alice cannot push into bob's
        // home: both sides of the move are access-checked.
        assert!(matches!(
            srb.rename("bob", "/home-alice/f", "/home-bob/f"),
            Err(SrbError::PermissionDenied(_))
        ));
        assert!(matches!(
            srb.rename("alice", "/home-alice/f", "/home-bob/f"),
            Err(SrbError::PermissionDenied(_))
        ));
        assert_eq!(srb.get("alice", "/home-alice/f").unwrap(), b"secret");

        // The destination quota is charged for the moved bytes, and a
        // failed move leaves the source in place.
        srb.mkdir("/tiny").unwrap();
        srb.set_quota("/tiny", 3);
        assert!(matches!(
            srb.rename("alice", "/home-alice/f", "/tiny/f"),
            Err(SrbError::DiskFull { .. })
        ));
        assert_eq!(srb.get("alice", "/home-alice/f").unwrap(), b"secret");
        // Within quota it goes through, and the source side is freed.
        srb.set_quota("/tiny", 64);
        srb.rename("alice", "/home-alice/f", "/tiny/f").unwrap();
        assert_eq!(srb.get("alice", "/tiny/f").unwrap(), b"secret");
        assert!(srb.get("alice", "/home-alice/f").is_err());
    }

    #[test]
    fn cp_copies_within_and_across_tops() {
        let srb = Srb::new();
        srb.mkdir("/a").unwrap();
        srb.mkdir("/b").unwrap();
        srb.put("u", "/a/f", b"dup me").unwrap();
        // Same-top copy.
        srb.cp("u", "/a/f", "/a/g").unwrap();
        assert_eq!(srb.get("u", "/a/g").unwrap(), b"dup me");
        // Cross-top copy leaves the source intact.
        srb.cp("u", "/a/f", "/b/f").unwrap();
        assert_eq!(srb.get("u", "/a/f").unwrap(), b"dup me");
        assert_eq!(srb.get("u", "/b/f").unwrap(), b"dup me");
        // Self-copy is a validated no-op.
        srb.cp("u", "/a/f", "/a/f").unwrap();
        assert_eq!(srb.get("u", "/a/f").unwrap(), b"dup me");
        // The destination quota counts the copy even within one top.
        srb.set_quota("/b", 8);
        assert!(matches!(
            srb.cp("u", "/a/f", "/b/g"),
            Err(SrbError::DiskFull { .. })
        ));
        assert!(srb.get("u", "/b/g").is_err());
    }

    #[test]
    fn behavior_is_invariant_across_stripe_counts() {
        for stripes in [1, 2, 8, 17] {
            let srb = Srb::with_stripes(stripes);
            assert_eq!(srb.stripe_count(), stripes);
            for top in ["a", "b", "c", "d", "e"] {
                srb.mkdir(&format!("/{top}/sub")).unwrap();
                srb.put("u", &format!("/{top}/f"), top.as_bytes()).unwrap();
            }
            for top in ["a", "b", "c", "d", "e"] {
                assert_eq!(srb.get("u", &format!("/{top}/f")).unwrap(), top.as_bytes());
                assert_eq!(srb.ls("u", &format!("/{top}")).unwrap().len(), 2);
            }
            srb.rename("u", "/a/f", "/e/moved").unwrap();
            assert_eq!(srb.get("u", "/e/moved").unwrap(), b"a");
            assert!(srb.get("u", "/a/f").is_err());
            // Every op landed on some stripe.
            let total: u64 = srb.stripe_op_counts().iter().sum();
            assert!(total > 0, "{stripes} stripes counted no ops");
        }
    }

    #[test]
    fn stripes_spread_distinct_top_collections() {
        let srb = Srb::with_stripes(8);
        for i in 0..64 {
            srb.mkdir(&format!("/col-{i:02}")).unwrap();
        }
        let counts = srb.stripe_op_counts();
        let used = counts.iter().filter(|&&c| c > 0).count();
        assert!(
            used >= 4,
            "64 distinct tops should land on several of 8 stripes: {counts:?}"
        );
    }

    /// The satellite-3 lock-ordering proof. Two threads move objects
    /// between the same pair of stripes in *opposite* semantic directions
    /// at once. Under naive source-then-destination acquisition the two
    /// threads would take the stripe locks in reverse orders — in debug
    /// builds the parking_lot shim's cycle detector panics deterministically
    /// on the first such inversion (and without it the pair can deadlock).
    /// Canonical ascending-index ordering makes both directions take the
    /// same lock order, so the test must complete with no panic.
    #[test]
    fn opposite_direction_cross_stripe_renames_are_deadlock_free() {
        let srb = Arc::new(Srb::with_stripes(8));
        // Find two top-level collections on distinct stripes.
        let tops: Vec<String> = (0..32).map(|i| format!("t{i}")).collect();
        let a = tops[0].clone();
        let b = tops
            .iter()
            .find(|t| srb.stripe_idx(t) != srb.stripe_idx(&a))
            .expect("32 names cover more than one of 8 stripes")
            .clone();
        srb.mkdir(&format!("/{a}")).unwrap();
        srb.mkdir(&format!("/{b}")).unwrap();
        srb.put("u", &format!("/{a}/x"), b"x").unwrap();
        srb.put("u", &format!("/{b}/y"), b"y").unwrap();

        let barrier = Arc::new(std::sync::Barrier::new(2));
        let mut handles = Vec::new();
        for (from_top, to_top, name) in [(a.clone(), b.clone(), "x"), (b.clone(), a.clone(), "y")] {
            let srb = Arc::clone(&srb);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for round in 0..50 {
                    let (src, dst) = if round % 2 == 0 {
                        (&from_top, &to_top)
                    } else {
                        (&to_top, &from_top)
                    };
                    srb.rename("u", &format!("/{src}/{name}"), &format!("/{dst}/{name}"))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().expect("no deadlock and no lock-order panic");
        }
        // Both objects ended up back where they started (50 moves each).
        assert_eq!(srb.get("u", &format!("/{a}/x")).unwrap(), b"x");
        assert_eq!(srb.get("u", &format!("/{b}/y")).unwrap(), b"y");
    }

    #[test]
    fn service_time_serializes_per_stripe_device() {
        // With the device model on, one stripe serves one op per service
        // time; distinct stripes serve concurrently. This is the seam the
        // e16 scaling arm measures — here we only pin that it is off by
        // default and togglable.
        let srb = Srb::with_stripes(2);
        srb.mkdir("/a").unwrap();
        srb.set_service_time_us(100);
        let t0 = std::time::Instant::now();
        srb.put("u", "/a/f", b"x").unwrap();
        assert!(
            t0.elapsed() >= Duration::from_micros(100),
            "device service time applies"
        );
        srb.set_service_time_us(0);
        let t1 = std::time::Instant::now();
        for _ in 0..50 {
            srb.get("u", "/a/f").unwrap();
        }
        assert!(
            t1.elapsed() < Duration::from_millis(500),
            "zero service time means no sleeping"
        );
    }
}
