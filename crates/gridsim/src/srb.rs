//! In-memory Storage Resource Broker (SRB) simulation.
//!
//! §3.2 wraps "a small subset of SRB's functionality": `ls`, `cat`, `get`,
//! `put`, and the batched `xml_call`. This module is the broker itself —
//! hierarchical *collections* holding byte objects, per-user permissions
//! (the real SRB calls were "GSI authenticated"), and per-collection
//! quotas so that the paper's canonical implementation error ("the file
//! didn't get transferred because the disk was full") is reachable.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use std::fmt;

/// SRB operation failures, mapped by the data-management service onto the
/// portal's common error codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SrbError {
    /// No such collection or object.
    NotFound(String),
    /// The principal lacks access to the collection.
    PermissionDenied(String),
    /// Writing would exceed the collection quota.
    DiskFull { path: String, quota: usize },
    /// Object exists where a collection is needed, or vice versa.
    Invalid(String),
}

impl fmt::Display for SrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrbError::NotFound(p) => write!(f, "not found: {p}"),
            SrbError::PermissionDenied(p) => write!(f, "permission denied: {p}"),
            SrbError::DiskFull { path, quota } => {
                write!(f, "disk full: {path} (quota {quota} bytes)")
            }
            SrbError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for SrbError {}

type SrbResult<T> = std::result::Result<T, SrbError>;

/// A directory listing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name.
    pub name: String,
    /// True for sub-collections.
    pub is_collection: bool,
    /// Object size in bytes (0 for collections).
    pub size: usize,
}

#[derive(Debug, Default)]
struct Collection {
    children: BTreeMap<String, Node>,
}

#[derive(Debug)]
enum Node {
    Collection(Collection),
    Object(Vec<u8>),
}

struct SrbState {
    root: Collection,
    /// Principals allowed per top-level collection; empty = world-readable.
    acls: BTreeMap<String, Vec<String>>,
    /// Byte quota per top-level collection.
    quotas: BTreeMap<String, usize>,
}

/// The broker.
pub struct Srb {
    state: RwLock<SrbState>,
}

/// Parse a logical SRB path. Paths are absolute with non-empty segments;
/// a missing leading slash, a doubled slash, or a trailing slash is
/// malformed and faults rather than being silently collapsed —
/// `//home-alice` must not resolve as if it were `/home-alice` (or, worse,
/// skip the top-level segment the ACL and quota lookups key on).
fn split(path: &str) -> SrbResult<Vec<&str>> {
    let rest = path
        .strip_prefix('/')
        .ok_or_else(|| SrbError::Invalid(format!("path {path:?} is not absolute")))?;
    if rest.is_empty() {
        return Err(SrbError::Invalid("empty path".into()));
    }
    let segs: Vec<&str> = rest.split('/').collect();
    if segs.iter().any(|s| s.is_empty()) {
        return Err(SrbError::Invalid(format!(
            "path {path:?} has an empty segment"
        )));
    }
    Ok(segs)
}

impl Default for Srb {
    fn default() -> Self {
        Srb::new()
    }
}

impl Srb {
    /// An empty broker.
    pub fn new() -> Srb {
        Srb {
            state: RwLock::new(SrbState {
                root: Collection::default(),
                acls: BTreeMap::new(),
                quotas: BTreeMap::new(),
            }),
        }
    }

    /// A broker populated like the GCE testbed: one home collection per
    /// user with a 1 MiB quota, plus a world-readable `/public`.
    pub fn testbed(users: &[&str]) -> Srb {
        let srb = Srb::new();
        for user in users {
            let home = format!("/home-{user}");
            srb.mkdir(&home).unwrap();
            srb.set_acl(&home, vec![(*user).to_owned()]);
            srb.set_quota(&home, 1 << 20);
        }
        srb.mkdir("/public").unwrap();
        srb.put(
            "anonymous",
            "/public/README",
            b"GCE testbed public collection\n",
        )
        .unwrap();
        srb
    }

    /// Restrict a top-level collection to `principals`.
    pub fn set_acl(&self, top: &str, principals: Vec<String>) {
        let top = top.trim_matches('/').to_owned();
        self.state.write().acls.insert(top, principals);
    }

    /// Set a byte quota on a top-level collection.
    pub fn set_quota(&self, top: &str, bytes: usize) {
        let top = top.trim_matches('/').to_owned();
        self.state.write().quotas.insert(top, bytes);
    }

    fn check_access(state: &SrbState, principal: &str, segs: &[&str]) -> SrbResult<()> {
        // `split` guarantees a non-empty, non-blank top segment; an empty
        // slice here is a caller bug, not a world-readable root.
        let top = segs
            .first()
            .copied()
            .ok_or_else(|| SrbError::Invalid("empty path".into()))?;
        if let Some(allowed) = state.acls.get(top) {
            if !allowed.iter().any(|p| p == principal) {
                return Err(SrbError::PermissionDenied(format!("/{top}")));
            }
        }
        Ok(())
    }

    fn collection_size(col: &Collection) -> usize {
        col.children
            .values()
            .map(|n| match n {
                Node::Object(bytes) => bytes.len(),
                Node::Collection(c) => Self::collection_size(c),
            })
            .sum()
    }

    fn descend<'c>(root: &'c Collection, segs: &[&str]) -> SrbResult<&'c Collection> {
        let mut cur = root;
        for seg in segs {
            match cur.children.get(*seg) {
                Some(Node::Collection(c)) => cur = c,
                Some(Node::Object(_)) => {
                    return Err(SrbError::Invalid(format!("{seg:?} is an object")))
                }
                None => return Err(SrbError::NotFound(format!("collection {seg:?}"))),
            }
        }
        Ok(cur)
    }

    fn descend_mut<'c>(root: &'c mut Collection, segs: &[&str]) -> SrbResult<&'c mut Collection> {
        let mut cur = root;
        for seg in segs {
            match cur.children.get_mut(*seg) {
                Some(Node::Collection(c)) => cur = c,
                Some(Node::Object(_)) => {
                    return Err(SrbError::Invalid(format!("{seg:?} is an object")))
                }
                None => return Err(SrbError::NotFound(format!("collection {seg:?}"))),
            }
        }
        Ok(cur)
    }

    /// Create a collection (and intermediates).
    pub fn mkdir(&self, path: &str) -> SrbResult<()> {
        let segs = split(path)?;
        let mut state = self.state.write();
        let mut cur = &mut state.root;
        for seg in segs {
            let entry = cur
                .children
                .entry(seg.to_owned())
                .or_insert_with(|| Node::Collection(Collection::default()));
            match entry {
                Node::Collection(c) => cur = c,
                Node::Object(_) => return Err(SrbError::Invalid(format!("{seg:?} is an object"))),
            }
        }
        Ok(())
    }

    /// List a collection.
    pub fn ls(&self, principal: &str, path: &str) -> SrbResult<Vec<DirEntry>> {
        let segs = split(path)?;
        let state = self.state.read();
        Self::check_access(&state, principal, &segs)?;
        let col = Self::descend(&state.root, &segs)?;
        Ok(col
            .children
            .iter()
            .map(|(name, node)| match node {
                Node::Collection(_) => DirEntry {
                    name: name.clone(),
                    is_collection: true,
                    size: 0,
                },
                Node::Object(bytes) => DirEntry {
                    name: name.clone(),
                    is_collection: false,
                    size: bytes.len(),
                },
            })
            .collect())
    }

    /// Read an object's bytes.
    pub fn get(&self, principal: &str, path: &str) -> SrbResult<Vec<u8>> {
        let segs = split(path)?;
        let state = self.state.read();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = segs.split_last().expect("split checked non-empty");
        let col = Self::descend(&state.root, dirs)?;
        match col.children.get(*name) {
            Some(Node::Object(bytes)) => Ok(bytes.clone()),
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => Err(SrbError::NotFound(path.to_owned())),
        }
    }

    /// Read an object as UTF-8 text (the `cat` call).
    pub fn cat(&self, principal: &str, path: &str) -> SrbResult<String> {
        let bytes = self.get(principal, path)?;
        String::from_utf8(bytes).map_err(|_| SrbError::Invalid("object is not UTF-8".into()))
    }

    /// Write (create or replace) an object. Enforces the top-level quota.
    pub fn put(&self, principal: &str, path: &str, data: &[u8]) -> SrbResult<()> {
        let segs = split(path)?;
        let mut state = self.state.write();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = segs.split_last().expect("split checked non-empty");
        // Quota check against the top-level collection. `split` guarantees
        // the segment exists; never fall back to the root's quota entry.
        let top = segs
            .first()
            .copied()
            .ok_or_else(|| SrbError::Invalid("empty path".into()))?;
        if let Some(&quota) = state.quotas.get(top) {
            let existing = match Self::descend(&state.root, dirs)
                .ok()
                .and_then(|c| c.children.get(*name))
            {
                Some(Node::Object(bytes)) => bytes.len(),
                _ => 0,
            };
            let top_col = Self::descend(&state.root, &segs[..1])?;
            let used = Self::collection_size(top_col);
            if used - existing + data.len() > quota {
                return Err(SrbError::DiskFull {
                    path: format!("/{top}"),
                    quota,
                });
            }
        }
        let col = Self::descend_mut(&mut state.root, dirs)?;
        match col.children.get_mut(*name) {
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            Some(Node::Object(bytes)) => {
                *bytes = data.to_vec();
                Ok(())
            }
            None => {
                col.children
                    .insert((*name).to_owned(), Node::Object(data.to_vec()));
                Ok(())
            }
        }
    }

    /// Delete an object.
    pub fn rm(&self, principal: &str, path: &str) -> SrbResult<()> {
        let segs = split(path)?;
        let mut state = self.state.write();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = segs.split_last().expect("split checked non-empty");
        let col = Self::descend_mut(&mut state.root, dirs)?;
        match col.children.get(*name) {
            Some(Node::Object(_)) => {
                col.children.remove(*name);
                Ok(())
            }
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => Err(SrbError::NotFound(path.to_owned())),
        }
    }

    /// Size of an object, without transferring (or cloning) it.
    pub fn stat(&self, principal: &str, path: &str) -> SrbResult<usize> {
        let segs = split(path)?;
        let state = self.state.read();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = Self::leaf(&segs)?;
        let col = Self::descend(&state.root, dirs)?;
        match col.children.get(name) {
            Some(Node::Object(bytes)) => Ok(bytes.len()),
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => Err(SrbError::NotFound(path.to_owned())),
        }
    }

    /// Split validated segments into `(leaf name, parent dirs)`.
    fn leaf<'s>(segs: &'s [&'s str]) -> SrbResult<(&'s str, &'s [&'s str])> {
        match segs.split_last() {
            Some((name, dirs)) => Ok((name, dirs)),
            None => Err(SrbError::Invalid("empty path".into())),
        }
    }

    /// Read up to `len` bytes of an object starting at byte `off`, without
    /// cloning the rest of it — the ranged read under the chunked transfer
    /// path (E13). `off == size` is a clean EOF (empty result); `off >
    /// size` faults, flagging a client offset bug rather than hiding it.
    pub fn read_at(
        &self,
        principal: &str,
        path: &str,
        off: usize,
        len: usize,
    ) -> SrbResult<Vec<u8>> {
        let segs = split(path)?;
        let state = self.state.read();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = Self::leaf(&segs)?;
        let col = Self::descend(&state.root, dirs)?;
        match col.children.get(name) {
            Some(Node::Object(bytes)) => {
                if off > bytes.len() {
                    return Err(SrbError::Invalid(format!(
                        "read_at offset {off} past end of {path:?} ({} bytes)",
                        bytes.len()
                    )));
                }
                let end = off.saturating_add(len).min(bytes.len());
                Ok(bytes.get(off..end).unwrap_or_default().to_vec())
            }
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => Err(SrbError::NotFound(path.to_owned())),
        }
    }

    /// Append `data` to an object whose current size must equal
    /// `expected_off` (creating it when `expected_off == 0` and it does
    /// not exist). Returns the new size. The expected-offset check is the
    /// server-side seam the chunked `put` protocol validates against: a
    /// duplicate or out-of-order chunk shows up as a mismatch here instead
    /// of silently corrupting the object. Enforces the top-level quota
    /// against only the appended bytes.
    pub fn append_at(
        &self,
        principal: &str,
        path: &str,
        expected_off: usize,
        data: &[u8],
    ) -> SrbResult<usize> {
        let segs = split(path)?;
        let mut state = self.state.write();
        Self::check_access(&state, principal, &segs)?;
        let (name, dirs) = Self::leaf(&segs)?;
        let top = segs
            .first()
            .copied()
            .ok_or_else(|| SrbError::Invalid("empty path".into()))?;
        let current = match Self::descend(&state.root, dirs)
            .ok()
            .and_then(|c| c.children.get(name))
        {
            Some(Node::Object(bytes)) => Some(bytes.len()),
            Some(Node::Collection(_)) => {
                return Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => None,
        };
        match current {
            Some(size) if size != expected_off => {
                return Err(SrbError::Invalid(format!(
                    "append_at expected offset {expected_off} but {path:?} has {size} bytes"
                )))
            }
            None if expected_off != 0 => return Err(SrbError::NotFound(path.to_owned())),
            _ => {}
        }
        if let Some(&quota) = state.quotas.get(top) {
            let top_col = Self::descend(&state.root, &segs[..1])?;
            let used = Self::collection_size(top_col);
            if used + data.len() > quota {
                return Err(SrbError::DiskFull {
                    path: format!("/{top}"),
                    quota,
                });
            }
        }
        let col = Self::descend_mut(&mut state.root, dirs)?;
        match col.children.get_mut(name) {
            Some(Node::Object(bytes)) => {
                bytes.extend_from_slice(data);
                Ok(bytes.len())
            }
            Some(Node::Collection(_)) => {
                Err(SrbError::Invalid(format!("{name:?} is a collection")))
            }
            None => {
                col.children
                    .insert(name.to_owned(), Node::Object(data.to_vec()));
                Ok(data.len())
            }
        }
    }

    /// Atomically move an object from `from` to `to` (replacing any
    /// existing object at `to`) under one write lock — the commit step of
    /// the chunked `put`: the destination either keeps its old content or
    /// gains the complete staged content, never a torn mixture. Both paths
    /// must share their top-level collection so ACL and quota keys are
    /// unaffected by the move.
    pub fn rename(&self, principal: &str, from: &str, to: &str) -> SrbResult<()> {
        let from_segs = split(from)?;
        let to_segs = split(to)?;
        if from_segs.first() != to_segs.first() {
            return Err(SrbError::Invalid(format!(
                "rename must stay within one top-level collection ({from:?} -> {to:?})"
            )));
        }
        let mut state = self.state.write();
        Self::check_access(&state, principal, &from_segs)?;
        let (from_name, from_dirs) = Self::leaf(&from_segs)?;
        let (to_name, to_dirs) = Self::leaf(&to_segs)?;
        // Validate the destination parent and type before detaching the
        // source, so a failed rename leaves everything in place.
        {
            let dest = Self::descend(&state.root, to_dirs)?;
            if matches!(dest.children.get(to_name), Some(Node::Collection(_))) {
                return Err(SrbError::Invalid(format!("{to_name:?} is a collection")));
            }
        }
        let src_col = Self::descend_mut(&mut state.root, from_dirs)?;
        let bytes = match src_col.children.get(from_name) {
            Some(Node::Object(_)) => match src_col.children.remove(from_name) {
                Some(Node::Object(bytes)) => bytes,
                _ => return Err(SrbError::NotFound(from.to_owned())),
            },
            Some(Node::Collection(_)) => {
                return Err(SrbError::Invalid(format!("{from_name:?} is a collection")))
            }
            None => return Err(SrbError::NotFound(from.to_owned())),
        };
        // Validated above; still propagated rather than unwrapped.
        let dest_col = Self::descend_mut(&mut state.root, to_dirs)?;
        dest_col
            .children
            .insert(to_name.to_owned(), Node::Object(bytes));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_cat_round_trip() {
        let srb = Srb::new();
        srb.mkdir("/data").unwrap();
        srb.put("u", "/data/hello.txt", b"hello srb").unwrap();
        assert_eq!(srb.get("u", "/data/hello.txt").unwrap(), b"hello srb");
        assert_eq!(srb.cat("u", "/data/hello.txt").unwrap(), "hello srb");
        assert_eq!(srb.stat("u", "/data/hello.txt").unwrap(), 9);
    }

    #[test]
    fn ls_lists_objects_and_collections() {
        let srb = Srb::new();
        srb.mkdir("/data/sub").unwrap();
        srb.put("u", "/data/a.txt", b"aaa").unwrap();
        let entries = srb.ls("u", "/data").unwrap();
        assert_eq!(entries.len(), 2);
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.txt", "sub"]);
        assert!(!entries[0].is_collection);
        assert_eq!(entries[0].size, 3);
        assert!(entries[1].is_collection);
    }

    #[test]
    fn missing_paths_error() {
        let srb = Srb::new();
        assert!(matches!(srb.ls("u", "/ghost"), Err(SrbError::NotFound(_))));
        assert!(matches!(
            srb.get("u", "/ghost/x"),
            Err(SrbError::NotFound(_))
        ));
        assert!(matches!(
            srb.rm("u", "/ghost/x"),
            Err(SrbError::NotFound(_))
        ));
    }

    #[test]
    fn acl_enforced() {
        let srb = Srb::testbed(&["alice"]);
        assert!(srb.ls("alice", "/home-alice").is_ok());
        assert!(matches!(
            srb.ls("mallory", "/home-alice"),
            Err(SrbError::PermissionDenied(_))
        ));
        // Public collection readable by anyone.
        assert!(srb.cat("mallory", "/public/README").is_ok());
    }

    #[test]
    fn quota_produces_disk_full() {
        let srb = Srb::new();
        srb.mkdir("/small").unwrap();
        srb.set_quota("/small", 10);
        srb.put("u", "/small/a", b"12345").unwrap();
        let err = srb.put("u", "/small/b", b"123456").unwrap_err();
        assert!(matches!(err, SrbError::DiskFull { .. }));
        // Replacing an object reuses its budget.
        srb.put("u", "/small/a", b"1234567890").unwrap();
    }

    #[test]
    fn replace_and_remove() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/f", b"one").unwrap();
        srb.put("u", "/d/f", b"two").unwrap();
        assert_eq!(srb.cat("u", "/d/f").unwrap(), "two");
        srb.rm("u", "/d/f").unwrap();
        assert!(srb.get("u", "/d/f").is_err());
    }

    #[test]
    fn object_collection_confusion_rejected() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/f", b"x").unwrap();
        assert!(matches!(srb.mkdir("/d/f"), Err(SrbError::Invalid(_))));
        assert!(matches!(srb.get("u", "/d"), Err(SrbError::Invalid(_))));
        assert!(matches!(
            srb.put("u", "/d", b"y"),
            Err(SrbError::Invalid(_))
        ));
    }

    #[test]
    fn non_utf8_cat_rejected_but_get_works() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/bin", &[0xFF, 0xFE]).unwrap();
        assert!(srb.cat("u", "/d/bin").is_err());
        assert_eq!(srb.get("u", "/d/bin").unwrap(), vec![0xFF, 0xFE]);
    }

    #[test]
    fn malformed_paths_fault_instead_of_resolving_as_root() {
        // Regression (flushed out by the e12 chaos soak's path fuzzing):
        // `segs.first().copied().unwrap_or("")` silently treated these as
        // the root collection, so `//home-alice` bypassed the ACL keyed on
        // "home-alice". Each malformed shape must fault.
        let srb = Srb::testbed(&["alice"]);
        for bad in [
            "",
            "/",
            "//",
            "home-alice",         // not absolute
            "//home-alice",       // doubled leading slash
            "/home-alice//notes", // empty middle segment
            "/home-alice/",       // trailing slash
        ] {
            assert!(
                matches!(srb.ls("mallory", bad), Err(SrbError::Invalid(_))),
                "ls({bad:?}) must be Invalid"
            );
            assert!(
                matches!(srb.get("mallory", bad), Err(SrbError::Invalid(_))),
                "get({bad:?}) must be Invalid"
            );
            assert!(
                matches!(srb.put("mallory", bad, b"x"), Err(SrbError::Invalid(_))),
                "put({bad:?}) must be Invalid"
            );
            assert!(
                matches!(srb.mkdir(bad), Err(SrbError::Invalid(_))),
                "mkdir({bad:?}) must be Invalid"
            );
        }
        // The well-formed path still works for its owner and still denies
        // everyone else.
        assert!(srb.ls("alice", "/home-alice").is_ok());
        assert!(matches!(
            srb.ls("mallory", "/home-alice"),
            Err(SrbError::PermissionDenied(_))
        ));
    }

    #[test]
    fn deep_collections() {
        let srb = Srb::new();
        srb.mkdir("/a/b/c").unwrap();
        srb.put("u", "/a/b/c/deep.txt", b"d").unwrap();
        assert_eq!(srb.cat("u", "/a/b/c/deep.txt").unwrap(), "d");
    }

    #[test]
    fn read_at_ranges_and_eof_boundaries() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/f", b"0123456789").unwrap();
        assert_eq!(srb.read_at("u", "/d/f", 0, 4).unwrap(), b"0123");
        assert_eq!(srb.read_at("u", "/d/f", 4, 4).unwrap(), b"4567");
        // A read that overruns the end is clipped, not faulted.
        assert_eq!(srb.read_at("u", "/d/f", 8, 4).unwrap(), b"89");
        // A read starting exactly at EOF is a clean empty result (the
        // chunked get protocol's end-of-stream probe lands here).
        assert_eq!(srb.read_at("u", "/d/f", 10, 4).unwrap(), b"");
        // Past EOF is a client offset bug and must fault.
        assert!(matches!(
            srb.read_at("u", "/d/f", 11, 4),
            Err(SrbError::Invalid(_))
        ));
        // Zero-length reads inside the object are fine too.
        assert_eq!(srb.read_at("u", "/d/f", 5, 0).unwrap(), b"");
    }

    #[test]
    fn read_at_zero_length_object() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/empty", b"").unwrap();
        assert_eq!(srb.read_at("u", "/d/empty", 0, 4).unwrap(), b"");
        assert!(srb.read_at("u", "/d/empty", 1, 4).is_err());
        assert_eq!(srb.stat("u", "/d/empty").unwrap(), 0);
    }

    #[test]
    fn append_at_builds_object_incrementally() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        assert_eq!(srb.append_at("u", "/d/f", 0, b"abc").unwrap(), 3);
        assert_eq!(srb.append_at("u", "/d/f", 3, b"def").unwrap(), 6);
        assert_eq!(srb.get("u", "/d/f").unwrap(), b"abcdef");
        // A duplicate (retried) chunk shows up as an offset mismatch.
        assert!(matches!(
            srb.append_at("u", "/d/f", 3, b"def"),
            Err(SrbError::Invalid(_))
        ));
        // A skipped-ahead chunk likewise.
        assert!(matches!(
            srb.append_at("u", "/d/f", 9, b"x"),
            Err(SrbError::Invalid(_))
        ));
        // Appending at a nonzero offset to a missing object is NotFound,
        // distinguishing "lost handle" from "wrong offset".
        assert!(matches!(
            srb.append_at("u", "/d/ghost", 3, b"x"),
            Err(SrbError::NotFound(_))
        ));
    }

    #[test]
    fn append_at_creates_zero_length_object() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        // A zero-length put streams zero chunks; the create-at-offset-0
        // call with no data must still materialize the (empty) object.
        assert_eq!(srb.append_at("u", "/d/empty", 0, b"").unwrap(), 0);
        assert_eq!(srb.get("u", "/d/empty").unwrap(), b"");
    }

    #[test]
    fn append_at_enforces_quota_and_acl() {
        let srb = Srb::new();
        srb.mkdir("/small").unwrap();
        srb.set_quota("/small", 10);
        assert_eq!(srb.append_at("u", "/small/f", 0, b"12345678").unwrap(), 8);
        assert!(matches!(
            srb.append_at("u", "/small/f", 8, b"90123"),
            Err(SrbError::DiskFull { .. })
        ));
        // The failed append left the object untouched.
        assert_eq!(srb.stat("u", "/small/f").unwrap(), 8);

        let acl = Srb::testbed(&["alice"]);
        assert!(matches!(
            acl.append_at("mallory", "/home-alice/f", 0, b"x"),
            Err(SrbError::PermissionDenied(_))
        ));
    }

    #[test]
    fn rename_promotes_staging_atomically() {
        let srb = Srb::new();
        srb.mkdir("/d").unwrap();
        srb.put("u", "/d/final", b"old").unwrap();
        srb.put("u", "/d/.part-1", b"new content").unwrap();
        srb.rename("u", "/d/.part-1", "/d/final").unwrap();
        assert_eq!(srb.get("u", "/d/final").unwrap(), b"new content");
        assert!(matches!(
            srb.get("u", "/d/.part-1"),
            Err(SrbError::NotFound(_))
        ));
        // Renaming a missing source faults and touches nothing.
        assert!(matches!(
            srb.rename("u", "/d/ghost", "/d/final"),
            Err(SrbError::NotFound(_))
        ));
        assert_eq!(srb.get("u", "/d/final").unwrap(), b"new content");
    }

    #[test]
    fn rename_stays_within_top_level_collection() {
        let srb = Srb::new();
        srb.mkdir("/a").unwrap();
        srb.mkdir("/b").unwrap();
        srb.put("u", "/a/f", b"x").unwrap();
        // Crossing top-level collections would change the ACL/quota keys
        // mid-flight; the transfer protocol never needs it.
        assert!(matches!(
            srb.rename("u", "/a/f", "/b/f"),
            Err(SrbError::Invalid(_))
        ));
        assert_eq!(srb.get("u", "/a/f").unwrap(), b"x");
        // Renaming onto a collection is rejected with both ends intact.
        srb.mkdir("/a/sub").unwrap();
        assert!(matches!(
            srb.rename("u", "/a/f", "/a/sub"),
            Err(SrbError::Invalid(_))
        ));
        assert_eq!(srb.get("u", "/a/f").unwrap(), b"x");
    }
}
