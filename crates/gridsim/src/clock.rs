//! Shared virtual clock.
//!
//! Everything time-dependent in the simulation (job runtimes, queue waits,
//! credential expiry) reads one [`SimClock`]. Time only moves when a test,
//! example, or benchmark calls [`SimClock::advance`], which makes every
//! lifecycle scenario reproducible — there is no wall-clock dependence
//! anywhere in the grid substrate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Milliseconds since simulation start.
pub type SimTime = u64;

/// A monotonically advancing virtual clock, shareable across threads.
#[derive(Debug, Default)]
pub struct SimClock {
    now_ms: AtomicU64,
}

impl SimClock {
    /// A clock at t=0.
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock::default())
    }

    /// Current virtual time in milliseconds.
    pub fn now(&self) -> SimTime {
        self.now_ms.load(Ordering::Acquire)
    }

    /// Advance by `ms` milliseconds; returns the new time.
    pub fn advance(&self, ms: u64) -> SimTime {
        self.now_ms.fetch_add(ms, Ordering::AcqRel) + ms
    }

    /// Advance by whole seconds.
    pub fn advance_secs(&self, secs: u64) -> SimTime {
        self.advance(secs * 1000)
    }

    /// Render the current time as an ISO-8601-ish timestamp anchored at
    /// the paper's publication week (2002-11-16, SC'02 in Baltimore) —
    /// used by services that report `xsd:dateTime` values.
    pub fn timestamp(&self) -> String {
        let total_secs = self.now() / 1000;
        let (days, rem) = (total_secs / 86_400, total_secs % 86_400);
        let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
        // Keep the rendering simple: day offsets within November 2002.
        let day = 16 + days.min(13);
        format!("2002-11-{day:02}T{h:02}:{m:02}:{s:02}Z")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(250), 250);
        assert_eq!(c.advance_secs(2), 2250);
        assert_eq!(c.now(), 2250);
    }

    #[test]
    fn timestamp_format() {
        let c = SimClock::new();
        assert_eq!(c.timestamp(), "2002-11-16T00:00:00Z");
        c.advance_secs(3 * 3600 + 61);
        assert_eq!(c.timestamp(), "2002-11-16T03:01:01Z");
        c.advance_secs(86_400);
        assert!(c.timestamp().starts_with("2002-11-17T"));
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                });
            }
        });
        assert_eq!(c.now(), 4000);
    }
}
