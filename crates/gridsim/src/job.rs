//! Job records and lifecycle.
//!
//! §5.1 of the paper enumerates application lifecycle phases and notes the
//! "running" state "may be subdivided into queued, running, sleeping,
//! terminating, and so on" — [`JobState`] is that refinement for the batch
//! layer. The Application Web Services layer maps these onto its own
//! coarser abstract/prepared/running/archived states.

use crate::clock::SimTime;
use crate::sched::JobRequirements;

/// Opaque job identifier, unique per [`crate::Grid`].
pub type JobId = u64;

/// Batch-level job states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for CPUs.
    Queued,
    /// Executing on the host.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with a nonzero exit code.
    Failed,
    /// Removed before completion.
    Cancelled,
}

impl JobState {
    /// Has the job reached a terminal state?
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Wire rendering used by the job-submission service.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "QUEUED",
            JobState::Running => "RUNNING",
            JobState::Done => "DONE",
            JobState::Failed => "FAILED",
            JobState::Cancelled => "CANCELLED",
        }
    }
}

/// One submitted job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Grid-wide id.
    pub id: JobId,
    /// Owner principal (from the submitting credential).
    pub owner: String,
    /// Host the job was submitted to.
    pub host: String,
    /// Scheduler that accepted it.
    pub scheduler: String,
    /// Parsed requirements (name, queue, cpus, walltime, command).
    pub requirements: JobRequirements,
    /// Current state.
    pub state: JobState,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Start time, once running.
    pub started_at: Option<SimTime>,
    /// Completion time, once terminal.
    pub ended_at: Option<SimTime>,
    /// Captured stdout (available once terminal).
    pub stdout: String,
    /// Exit code (available once terminal).
    pub exit_code: Option<i32>,
}

impl Job {
    /// Queue wait so far (or total, once started).
    pub fn queue_wait_ms(&self, now: SimTime) -> u64 {
        self.started_at
            .unwrap_or(now)
            .saturating_sub(self.submitted_at)
    }

    /// Simulated execution duration derived deterministically from the
    /// command: `sleep N` runs N seconds; everything else runs one second
    /// per 16 bytes of command text (min 1s). Deterministic runtimes keep
    /// the experiments reproducible.
    pub fn planned_runtime_ms(&self) -> u64 {
        let cmd = self.requirements.command.trim();
        if let Some(rest) = cmd.strip_prefix("sleep ") {
            if let Ok(secs) = rest.trim().parse::<u64>() {
                return secs * 1000;
            }
        }
        let units = (cmd.len() as u64 / 16).max(1);
        units * 1000
    }

    /// Simulated exit code: commands containing `fail` or equal to
    /// `/bin/false` fail with 1.
    pub fn planned_exit_code(&self) -> i32 {
        let cmd = self.requirements.command.trim();
        if cmd == "/bin/false" || cmd.contains("fail") {
            1
        } else {
            0
        }
    }

    /// Simulated stdout produced at completion.
    pub fn render_stdout(&self) -> String {
        let cmd = self.requirements.command.trim();
        if cmd == "hostname" || cmd == "/bin/hostname" {
            return format!("{}\n", self.host);
        }
        format!(
            "[{}:{}] {} (cpus={}) rc={}\n",
            self.host,
            self.requirements.queue,
            cmd,
            self.requirements.cpus,
            self.planned_exit_code()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::JobRequirements;

    fn job(command: &str) -> Job {
        Job {
            id: 1,
            owner: "alice".into(),
            host: "tg-login.sdsc.edu".into(),
            scheduler: "PBS".into(),
            requirements: JobRequirements {
                name: "t".into(),
                queue: "batch".into(),
                cpus: 4,
                wall_minutes: 10,
                command: command.into(),
            },
            state: JobState::Queued,
            submitted_at: 100,
            started_at: None,
            ended_at: None,
            stdout: String::new(),
            exit_code: None,
        }
    }

    #[test]
    fn sleep_commands_run_that_long() {
        assert_eq!(job("sleep 7").planned_runtime_ms(), 7000);
        assert_eq!(job("sleep 0").planned_runtime_ms(), 0);
    }

    #[test]
    fn other_commands_scale_with_length() {
        assert_eq!(job("date").planned_runtime_ms(), 1000);
        let long = "x".repeat(64);
        assert_eq!(job(&long).planned_runtime_ms(), 4000);
    }

    #[test]
    fn failure_detection() {
        assert_eq!(job("/bin/false").planned_exit_code(), 1);
        assert_eq!(job("run-and-fail.sh").planned_exit_code(), 1);
        assert_eq!(job("date").planned_exit_code(), 0);
    }

    #[test]
    fn hostname_stdout() {
        assert_eq!(job("hostname").render_stdout(), "tg-login.sdsc.edu\n");
    }

    #[test]
    fn terminal_states() {
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
    }

    #[test]
    fn queue_wait() {
        let mut j = job("date");
        assert_eq!(j.queue_wait_ms(600), 500);
        j.started_at = Some(400);
        assert_eq!(j.queue_wait_ms(9999), 300);
    }
}
