//! Credential simulation: Kerberos tickets and GSI proxy certificates.
//!
//! §4 of the paper builds single sign-on on Kerberos ("a keytab file…
//! must be kept secure and usually is readable only by privileged users")
//! with GSI/PKI planned. Real KDC and CA infrastructure is out of scope,
//! so this module simulates the *lifecycle*: a [`CredentialAuthority`]
//! holds principal secrets (the keytab), issues expiring [`Credential`]s,
//! and verifies presented credentials by token lookup and expiry check
//! against the shared [`SimClock`]. Cryptographic strength is irrelevant
//! to the architecture claims (see DESIGN.md §3); what matters — and what
//! the auth experiments exercise — is where verification happens and how
//! many round trips it costs.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use rand::{Rng, SeedableRng};

use crate::clock::{SimClock, SimTime};
use crate::{GridError, Result};

/// Authentication mechanism, per the paper's list (Kerberos now; PKI and
/// Globus GSI as planned additions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Kerberos ticket from the keytab-holding authority.
    Kerberos,
    /// GSI proxy certificate.
    Gsi,
    /// Plain PKI certificate.
    Pki,
}

impl Mechanism {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Kerberos => "kerberos",
            Mechanism::Gsi => "gsi",
            Mechanism::Pki => "pki",
        }
    }

    /// Parse a wire name.
    pub fn from_name(s: &str) -> Option<Mechanism> {
        match s.trim().to_ascii_lowercase().as_str() {
            "kerberos" => Some(Mechanism::Kerberos),
            "gsi" => Some(Mechanism::Gsi),
            "pki" => Some(Mechanism::Pki),
            _ => None,
        }
    }
}

/// An issued credential (ticket / proxy certificate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    /// Principal this credential names.
    pub principal: String,
    /// Issuing mechanism.
    pub mechanism: Mechanism,
    /// Opaque token presented for verification.
    pub token: String,
    /// Expiry in sim time (ms).
    pub expires_at: SimTime,
}

impl Credential {
    /// Is the credential still valid at `now`?
    pub fn is_valid_at(&self, now: SimTime) -> bool {
        now < self.expires_at
    }
}

struct AuthorityState {
    /// The keytab: principal → secret. Never leaves this struct — the
    /// paper's argument for "limiting the use of keytabs to a single, well
    /// secured server".
    keytab: HashMap<String, String>,
    /// Issued, unexpired tokens → credential.
    issued: HashMap<String, Credential>,
    rng: rand::rngs::StdRng,
}

/// The KDC / CA stand-in.
pub struct CredentialAuthority {
    clock: Arc<SimClock>,
    state: RwLock<AuthorityState>,
    /// Default credential lifetime (ms).
    lifetime_ms: u64,
}

impl CredentialAuthority {
    /// An authority over `clock` with 8-hour default ticket lifetime.
    pub fn new(clock: Arc<SimClock>) -> CredentialAuthority {
        CredentialAuthority {
            clock,
            state: RwLock::new(AuthorityState {
                keytab: HashMap::new(),
                issued: HashMap::new(),
                rng: rand::rngs::StdRng::seed_from_u64(0x5C02_2002),
            }),
            lifetime_ms: 8 * 3600 * 1000,
        }
    }

    /// Override the default credential lifetime.
    pub fn set_lifetime_ms(&mut self, ms: u64) {
        self.lifetime_ms = ms;
    }

    /// Register a principal and its secret in the keytab.
    pub fn register_principal(&self, principal: impl Into<String>, secret: impl Into<String>) {
        self.state
            .write()
            .keytab
            .insert(principal.into(), secret.into());
    }

    /// Authenticate with a secret and obtain a credential (the `kinit` /
    /// `grid-proxy-init` step).
    pub fn login(&self, principal: &str, secret: &str, mechanism: Mechanism) -> Result<Credential> {
        let now = self.clock.now();
        let mut state = self.state.write();
        match state.keytab.get(principal) {
            Some(expected) if expected == secret => {}
            Some(_) => {
                return Err(GridError::NotAuthorized(format!(
                    "bad secret for {principal:?}"
                )))
            }
            None => {
                return Err(GridError::NotAuthorized(format!(
                    "unknown principal {principal:?}"
                )))
            }
        }
        let token = format!(
            "{}-{:016x}{:016x}",
            mechanism.name(),
            state.rng.gen::<u64>(),
            state.rng.gen::<u64>()
        );
        let cred = Credential {
            principal: principal.to_owned(),
            mechanism,
            token: token.clone(),
            expires_at: now + self.lifetime_ms,
        };
        state.issued.insert(token, cred.clone());
        Ok(cred)
    }

    /// Verify a presented token; returns the principal on success.
    pub fn verify(&self, token: &str) -> Result<String> {
        let now = self.clock.now();
        let state = self.state.read();
        match state.issued.get(token) {
            Some(cred) if cred.is_valid_at(now) => Ok(cred.principal.clone()),
            Some(_) => Err(GridError::NotAuthorized("credential expired".into())),
            None => Err(GridError::NotAuthorized("unknown credential".into())),
        }
    }

    /// Issue a *delegated* credential from an existing one (GSI proxy
    /// chains; also used by the portal to act on the user's behalf).
    pub fn delegate(&self, token: &str) -> Result<Credential> {
        let principal = self.verify(token)?;
        let now = self.clock.now();
        let mut state = self.state.write();
        let dtoken = format!(
            "proxy-{:016x}{:016x}",
            state.rng.gen::<u64>(),
            state.rng.gen::<u64>()
        );
        // Proxies get half the remaining default lifetime, like real
        // grid-proxy delegation defaults.
        let cred = Credential {
            principal,
            mechanism: Mechanism::Gsi,
            token: dtoken.clone(),
            expires_at: now + self.lifetime_ms / 2,
        };
        state.issued.insert(dtoken, cred.clone());
        Ok(cred)
    }

    /// Revoke a credential immediately.
    pub fn revoke(&self, token: &str) {
        self.state.write().issued.remove(token);
    }

    /// Drop expired credentials; returns how many were purged.
    pub fn purge_expired(&self) -> usize {
        let now = self.clock.now();
        let mut state = self.state.write();
        let before = state.issued.len();
        state.issued.retain(|_, c| c.is_valid_at(now));
        before - state.issued.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn authority() -> (Arc<SimClock>, CredentialAuthority) {
        let clock = SimClock::new();
        let auth = CredentialAuthority::new(Arc::clone(&clock));
        auth.register_principal("alice@GCE.ORG", "s3cret");
        (clock, auth)
    }

    #[test]
    fn login_and_verify() {
        let (_, auth) = authority();
        let cred = auth
            .login("alice@GCE.ORG", "s3cret", Mechanism::Kerberos)
            .unwrap();
        assert_eq!(auth.verify(&cred.token).unwrap(), "alice@GCE.ORG");
        assert!(cred.token.starts_with("kerberos-"));
    }

    #[test]
    fn wrong_secret_or_principal_rejected() {
        let (_, auth) = authority();
        assert!(auth
            .login("alice@GCE.ORG", "wrong", Mechanism::Kerberos)
            .is_err());
        assert!(auth
            .login("bob@GCE.ORG", "s3cret", Mechanism::Kerberos)
            .is_err());
    }

    #[test]
    fn expiry_enforced() {
        let (clock, auth) = authority();
        let cred = auth
            .login("alice@GCE.ORG", "s3cret", Mechanism::Kerberos)
            .unwrap();
        clock.advance(8 * 3600 * 1000 - 1);
        assert!(auth.verify(&cred.token).is_ok());
        clock.advance(2);
        assert!(matches!(
            auth.verify(&cred.token),
            Err(GridError::NotAuthorized(_))
        ));
    }

    #[test]
    fn delegation_produces_shorter_proxy() {
        let (_, auth) = authority();
        let cred = auth
            .login("alice@GCE.ORG", "s3cret", Mechanism::Kerberos)
            .unwrap();
        let proxy = auth.delegate(&cred.token).unwrap();
        assert_eq!(proxy.principal, "alice@GCE.ORG");
        assert_eq!(proxy.mechanism, Mechanism::Gsi);
        assert!(proxy.expires_at < cred.expires_at);
        assert_eq!(auth.verify(&proxy.token).unwrap(), "alice@GCE.ORG");
    }

    #[test]
    fn revoke_invalidates() {
        let (_, auth) = authority();
        let cred = auth
            .login("alice@GCE.ORG", "s3cret", Mechanism::Kerberos)
            .unwrap();
        auth.revoke(&cred.token);
        assert!(auth.verify(&cred.token).is_err());
    }

    #[test]
    fn purge_drops_only_expired() {
        let (clock, auth) = authority();
        let old = auth
            .login("alice@GCE.ORG", "s3cret", Mechanism::Kerberos)
            .unwrap();
        clock.advance(9 * 3600 * 1000);
        let fresh = auth
            .login("alice@GCE.ORG", "s3cret", Mechanism::Pki)
            .unwrap();
        assert_eq!(auth.purge_expired(), 1);
        assert!(auth.verify(&old.token).is_err());
        assert!(auth.verify(&fresh.token).is_ok());
    }

    #[test]
    fn tokens_unique_across_logins() {
        let (_, auth) = authority();
        let a = auth
            .login("alice@GCE.ORG", "s3cret", Mechanism::Kerberos)
            .unwrap();
        let b = auth
            .login("alice@GCE.ORG", "s3cret", Mechanism::Kerberos)
            .unwrap();
        assert_ne!(a.token, b.token);
    }

    #[test]
    fn mechanism_names_round_trip() {
        for m in [Mechanism::Kerberos, Mechanism::Gsi, Mechanism::Pki] {
            assert_eq!(Mechanism::from_name(m.name()), Some(m));
        }
        assert_eq!(Mechanism::from_name("ntlm"), None);
    }
}
