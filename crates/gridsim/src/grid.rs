//! The grid fabric: hosts, schedulers, submission, and time progression.
//!
//! [`Grid`] plays the role Globus GRAM played for the SDSC team and direct
//! queue submittal played for Gateway: the thing a job-submission service
//! ultimately talks to; the portal services above call in from many server
//! worker threads.
//!
//! # Lock striping
//!
//! State is split so the hot paths stop funnelling through one lock: the
//! host/queue topology sits behind its own mutex, job records are striped
//! by `id % N`, and id allocation is a lock-free atomic. `poll` — the
//! portal's highest-rate grid call — touches only its job stripe. The
//! canonical lock order is **hosts before any job stripe**, and no path
//! ever holds two job stripes at once, so the acquired-before graph the
//! parking_lot shim checks in debug builds stays acyclic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::SimClock;
use crate::job::{Job, JobId, JobState};
use crate::queue::{BatchQueue, QueueSpec};
use crate::sched::{parse_script, SchedulerKind};
use crate::{GridError, Result};

/// Static description of a compute host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSpec {
    /// Short name used in portal paths (`tg-login`).
    pub name: String,
    /// Fully qualified DNS name.
    pub dns: String,
    /// Dotted-quad address (descriptor metadata).
    pub ip: String,
    /// Total CPUs shared by all schedulers on the host.
    pub cpus: u32,
    /// Scratch directory applications bind to.
    pub workdir: String,
}

impl HostSpec {
    /// Construct a spec.
    pub fn new(name: impl Into<String>, dns: impl Into<String>, cpus: u32) -> HostSpec {
        let name = name.into();
        HostSpec {
            dns: dns.into(),
            ip: format!("10.0.0.{}", (name.len() as u32 % 250) + 1),
            workdir: format!("/scratch/{name}"),
            name,
            cpus,
        }
    }
}

struct SimHost {
    spec: HostSpec,
    /// Queues per scheduler kind.
    schedulers: HashMap<SchedulerKind, Vec<BatchQueue>>,
}

impl SimHost {
    fn cpus_in_use(&self) -> u32 {
        self.schedulers
            .values()
            .flat_map(|qs| qs.iter())
            .map(BatchQueue::cpus_in_use)
            .sum()
    }
}

/// Job-record stripes: `poll`/`cancel` on distinct jobs contend only when
/// their ids collide modulo this.
const JOB_STRIPES: usize = 8;

/// The simulated grid.
pub struct Grid {
    clock: Arc<SimClock>,
    /// Host/queue topology (and the scheduling state inside each queue).
    hosts: Mutex<HashMap<String, SimHost>>,
    /// Job records, striped by `id % JOB_STRIPES`.
    jobs: Box<[Mutex<HashMap<JobId, Job>>]>,
    /// Lock-free id allocator (ids start at 1).
    next_job: AtomicU64,
}

impl Grid {
    /// An empty grid on a fresh clock.
    pub fn new() -> Arc<Grid> {
        Grid::with_clock(SimClock::new())
    }

    /// An empty grid sharing an existing clock.
    pub fn with_clock(clock: Arc<SimClock>) -> Arc<Grid> {
        let jobs: Vec<Mutex<HashMap<JobId, Job>>> = (0..JOB_STRIPES)
            .map(|i| Mutex::new_named(HashMap::new(), &format!("grid-jobs-{i}")))
            .collect();
        Arc::new(Grid {
            clock,
            hosts: Mutex::new_named(HashMap::new(), "grid-hosts"),
            jobs: jobs.into_boxed_slice(),
            next_job: AtomicU64::new(0),
        })
    }

    /// The stripe holding job `id`.
    fn job_stripe(&self, id: JobId) -> &Mutex<HashMap<JobId, Job>> {
        &self.jobs[(id % JOB_STRIPES as u64) as usize]
    }

    /// The shared clock.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// Add a host with a set of schedulers and their queues.
    pub fn add_host(&self, spec: HostSpec, schedulers: Vec<(SchedulerKind, Vec<QueueSpec>)>) {
        let mut hosts = self.hosts.lock();
        let host = SimHost {
            spec: spec.clone(),
            schedulers: schedulers
                .into_iter()
                .map(|(kind, queues)| (kind, queues.into_iter().map(BatchQueue::new).collect()))
                .collect(),
        };
        hosts.insert(spec.name.clone(), host);
    }

    /// A ready-made testbed matching the paper's two-site deployment:
    /// an SDSC host (PBS + LSF) and an IU host (NQS + GRD), 32 CPUs each.
    pub fn testbed() -> Arc<Grid> {
        let grid = Grid::new();
        grid.add_host(
            HostSpec::new("tg-login", "tg-login.sdsc.edu", 32),
            vec![
                (
                    SchedulerKind::Pbs,
                    vec![
                        QueueSpec::new("batch", 32, 720),
                        QueueSpec::new("debug", 4, 30),
                    ],
                ),
                (SchedulerKind::Lsf, vec![QueueSpec::new("normal", 16, 360)]),
            ],
        );
        grid.add_host(
            HostSpec::new("modi4", "modi4.ucs.indiana.edu", 32),
            vec![
                (SchedulerKind::Nqs, vec![QueueSpec::new("batch", 32, 720)]),
                (
                    SchedulerKind::Grd,
                    vec![
                        QueueSpec::new("normal", 16, 360),
                        QueueSpec::new("long", 32, 2880),
                    ],
                ),
            ],
        );
        grid
    }

    /// Host specs registered.
    pub fn hosts(&self) -> Vec<HostSpec> {
        let state = self.hosts.lock();
        let mut hosts: Vec<HostSpec> = state.values().map(|h| h.spec.clone()).collect();
        hosts.sort_by(|a, b| a.name.cmp(&b.name));
        hosts
    }

    /// Scheduler kinds available on a host.
    pub fn schedulers_on(&self, host: &str) -> Result<Vec<SchedulerKind>> {
        let state = self.hosts.lock();
        let h = state
            .get(host)
            .ok_or_else(|| GridError::NoSuchHost(host.to_owned()))?;
        let mut kinds: Vec<SchedulerKind> = h.schedulers.keys().copied().collect();
        kinds.sort_by_key(|k| k.name());
        Ok(kinds)
    }

    /// Queue specs for one scheduler on one host.
    pub fn queues_on(&self, host: &str, kind: SchedulerKind) -> Result<Vec<QueueSpec>> {
        let state = self.hosts.lock();
        let h = state
            .get(host)
            .ok_or_else(|| GridError::NoSuchHost(host.to_owned()))?;
        let qs = h
            .schedulers
            .get(&kind)
            .ok_or_else(|| GridError::NoSuchScheduler(kind.name().to_owned()))?;
        Ok(qs.iter().map(|q| q.spec.clone()).collect())
    }

    /// Submit a batch script to a scheduler on a host. The script is
    /// parsed and validated in the scheduler's own dialect; admission
    /// limits are checked against the named queue.
    pub fn submit(
        &self,
        owner: &str,
        host: &str,
        kind: SchedulerKind,
        script: &str,
    ) -> Result<JobId> {
        let req =
            parse_script(kind, script).map_err(|e| GridError::ScriptRejected(e.to_string()))?;
        let now = self.clock.now();
        let mut hosts = self.hosts.lock();
        let h = hosts
            .get_mut(host)
            .ok_or_else(|| GridError::NoSuchHost(host.to_owned()))?;
        if req.cpus > h.spec.cpus {
            return Err(GridError::ScriptRejected(format!(
                "host {host} has {} cpus, requested {}",
                h.spec.cpus, req.cpus
            )));
        }
        let queues = h
            .schedulers
            .get_mut(&kind)
            .ok_or_else(|| GridError::NoSuchScheduler(kind.name().to_owned()))?;
        let queue = queues
            .iter_mut()
            .find(|q| q.spec.name == req.queue)
            .ok_or_else(|| GridError::NoSuchQueue(req.queue.clone()))?;
        if let Some(reason) = queue.spec.admission_error(&req) {
            return Err(GridError::ScriptRejected(reason));
        }
        // Validated: allocate the id and enqueue. The record is inserted
        // into its job stripe while the hosts lock is still held (hosts →
        // stripe is the canonical order), so a concurrent `tick` can never
        // see a queued id whose record does not exist yet.
        let id = self.next_job.fetch_add(1, Ordering::Relaxed) + 1;
        queue.enqueue(id, req.cpus);
        let job = Job {
            id,
            owner: owner.to_owned(),
            host: host.to_owned(),
            scheduler: kind.name().to_owned(),
            requirements: req,
            state: JobState::Queued,
            submitted_at: now,
            started_at: None,
            ended_at: None,
            stdout: String::new(),
            exit_code: None,
        };
        self.job_stripe(id).lock().insert(id, job);
        Ok(id)
    }

    /// Current snapshot of a job. Touches only the job's stripe — the
    /// polling hot path never contends with submissions or ticks working
    /// on other jobs.
    pub fn poll(&self, id: JobId) -> Result<Job> {
        self.job_stripe(id)
            .lock()
            .get(&id)
            .cloned()
            .ok_or(GridError::NoSuchJob(id))
    }

    /// Cancel a job if it has not finished. Takes the hosts lock first
    /// (the canonical order) since a queued or running job must also be
    /// removed from its batch queue.
    pub fn cancel(&self, id: JobId) -> Result<()> {
        let now = self.clock.now();
        let mut hosts = self.hosts.lock();
        let mut jobs = self.job_stripe(id).lock();
        let job = jobs.get_mut(&id).ok_or(GridError::NoSuchJob(id))?;
        if job.state.is_terminal() {
            return Ok(());
        }
        job.state = JobState::Cancelled;
        job.ended_at = Some(now);
        let (host, sched) = (job.host.clone(), job.scheduler.clone());
        if let Some(h) = hosts.get_mut(&host) {
            if let Some(kind) = SchedulerKind::from_name(&sched) {
                if let Some(queues) = h.schedulers.get_mut(&kind) {
                    for q in queues {
                        if q.remove(id) {
                            break;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Advance virtual time by `ms` and progress every host: finish
    /// running jobs whose planned runtime has elapsed, then dispatch
    /// pending jobs into freed CPUs. Holds the hosts lock throughout and
    /// takes one job stripe at a time (never two), preserving the
    /// canonical hosts-before-stripe order.
    pub fn tick(&self, ms: u64) {
        let now = self.clock.advance(ms);
        let mut hosts = self.hosts.lock();
        for host in hosts.values_mut() {
            // Phase 1: completions.
            for queues in host.schedulers.values_mut() {
                for queue in queues.iter_mut() {
                    for id in queue.running_jobs() {
                        let mut jobs = self.job_stripe(id).lock();
                        let job = jobs.get_mut(&id).expect("running job exists");
                        let started = job.started_at.expect("running job has start");
                        if now >= started + job.planned_runtime_ms() {
                            queue.finish(id);
                            job.exit_code = Some(job.planned_exit_code());
                            job.stdout = job.render_stdout();
                            job.state = if job.exit_code == Some(0) {
                                JobState::Done
                            } else {
                                JobState::Failed
                            };
                            job.ended_at = Some(started + job.planned_runtime_ms());
                        }
                    }
                }
            }
            // Phase 2: dispatch into remaining capacity, round-robin over
            // schedulers in a stable order.
            let mut free = host.spec.cpus.saturating_sub(host.cpus_in_use());
            let mut kinds: Vec<SchedulerKind> = host.schedulers.keys().copied().collect();
            kinds.sort_by_key(|k| k.name());
            for kind in kinds {
                let queues = host.schedulers.get_mut(&kind).expect("kind listed");
                for queue in queues.iter_mut() {
                    let (started, used) = queue.dispatch(free);
                    free -= used;
                    for id in started {
                        let mut jobs = self.job_stripe(id).lock();
                        let job = jobs.get_mut(&id).expect("dispatched job exists");
                        job.state = JobState::Running;
                        job.started_at = Some(now);
                    }
                }
            }
        }
    }

    /// Tick until `id` reaches a terminal state (or `max_ticks` elapses);
    /// returns the final job snapshot.
    pub fn run_job_to_completion(&self, id: JobId, max_ticks: usize) -> Result<Job> {
        for _ in 0..max_ticks {
            let job = self.poll(id)?;
            if job.state.is_terminal() {
                return Ok(job);
            }
            self.tick(1000);
        }
        self.poll(id)
    }

    /// Total jobs ever submitted (for experiment reporting).
    pub fn job_count(&self) -> usize {
        self.jobs.iter().map(|stripe| stripe.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{render_script, JobRequirements};

    fn script(kind: SchedulerKind, queue: &str, cpus: u32, command: &str) -> String {
        render_script(
            kind,
            &JobRequirements {
                name: "t".into(),
                queue: queue.into(),
                cpus,
                wall_minutes: 10,
                command: command.into(),
            },
        )
    }

    #[test]
    fn submit_run_complete() {
        let grid = Grid::testbed();
        let id = grid
            .submit(
                "alice",
                "tg-login",
                SchedulerKind::Pbs,
                &script(SchedulerKind::Pbs, "batch", 4, "hostname"),
            )
            .unwrap();
        assert_eq!(grid.poll(id).unwrap().state, JobState::Queued);
        grid.tick(0); // dispatch
        assert_eq!(grid.poll(id).unwrap().state, JobState::Running);
        let done = grid.run_job_to_completion(id, 10).unwrap();
        assert_eq!(done.state, JobState::Done);
        assert_eq!(done.stdout, "tg-login\n");
        assert_eq!(done.exit_code, Some(0));
    }

    #[test]
    fn failing_job_reports_failed() {
        let grid = Grid::testbed();
        let id = grid
            .submit(
                "alice",
                "tg-login",
                SchedulerKind::Pbs,
                &script(SchedulerKind::Pbs, "batch", 1, "/bin/false"),
            )
            .unwrap();
        let done = grid.run_job_to_completion(id, 10).unwrap();
        assert_eq!(done.state, JobState::Failed);
        assert_eq!(done.exit_code, Some(1));
    }

    #[test]
    fn bad_script_rejected_at_submit() {
        let grid = Grid::testbed();
        let err = grid
            .submit(
                "a",
                "tg-login",
                SchedulerKind::Pbs,
                "#BSUB -J wrong\ndate\n",
            )
            .unwrap_err();
        assert!(matches!(err, GridError::ScriptRejected(_)));
    }

    #[test]
    fn unknown_host_scheduler_queue() {
        let grid = Grid::testbed();
        let s = script(SchedulerKind::Pbs, "batch", 1, "date");
        assert!(matches!(
            grid.submit("a", "ghost", SchedulerKind::Pbs, &s),
            Err(GridError::NoSuchHost(_))
        ));
        assert!(matches!(
            grid.submit("a", "modi4", SchedulerKind::Pbs, &s),
            Err(GridError::NoSuchScheduler(_))
        ));
        let s = script(SchedulerKind::Pbs, "ghostqueue", 1, "date");
        assert!(matches!(
            grid.submit("a", "tg-login", SchedulerKind::Pbs, &s),
            Err(GridError::NoSuchQueue(_))
        ));
    }

    #[test]
    fn queue_limits_enforced() {
        let grid = Grid::testbed();
        // debug queue admits ≤4 cpus
        let s = script(SchedulerKind::Pbs, "debug", 8, "date");
        assert!(matches!(
            grid.submit("a", "tg-login", SchedulerKind::Pbs, &s),
            Err(GridError::ScriptRejected(_))
        ));
    }

    #[test]
    fn host_capacity_queues_jobs() {
        let grid = Grid::testbed();
        // Two 20-cpu jobs on a 32-cpu host: second must wait.
        let s = script(SchedulerKind::Pbs, "batch", 20, "sleep 5");
        let a = grid
            .submit("u", "tg-login", SchedulerKind::Pbs, &s)
            .unwrap();
        let b = grid
            .submit("u", "tg-login", SchedulerKind::Pbs, &s)
            .unwrap();
        grid.tick(0);
        assert_eq!(grid.poll(a).unwrap().state, JobState::Running);
        assert_eq!(grid.poll(b).unwrap().state, JobState::Queued);
        // After job a finishes (5s), b starts.
        grid.tick(5000);
        assert_eq!(grid.poll(a).unwrap().state, JobState::Done);
        assert_eq!(grid.poll(b).unwrap().state, JobState::Running);
        let done_b = grid.run_job_to_completion(b, 10).unwrap();
        assert!(done_b.queue_wait_ms(0) >= 5000);
    }

    #[test]
    fn cancel_pending_and_running() {
        let grid = Grid::testbed();
        let s = script(SchedulerKind::Grd, "normal", 2, "sleep 100");
        let id = grid.submit("u", "modi4", SchedulerKind::Grd, &s).unwrap();
        grid.tick(0);
        grid.cancel(id).unwrap();
        assert_eq!(grid.poll(id).unwrap().state, JobState::Cancelled);
        // Cancelling again is a no-op.
        grid.cancel(id).unwrap();
        assert!(grid.cancel(9999).is_err());
    }

    #[test]
    fn testbed_topology() {
        let grid = Grid::testbed();
        assert_eq!(grid.hosts().len(), 2);
        assert_eq!(
            grid.schedulers_on("tg-login").unwrap(),
            vec![SchedulerKind::Lsf, SchedulerKind::Pbs]
        );
        let queues = grid.queues_on("modi4", SchedulerKind::Grd).unwrap();
        assert_eq!(queues.len(), 2);
        assert!(grid.queues_on("modi4", SchedulerKind::Pbs).is_err());
    }

    #[test]
    fn all_four_dialects_run_on_testbed() {
        let grid = Grid::testbed();
        let cases = [
            ("tg-login", SchedulerKind::Pbs, "batch"),
            ("tg-login", SchedulerKind::Lsf, "normal"),
            ("modi4", SchedulerKind::Nqs, "batch"),
            ("modi4", SchedulerKind::Grd, "normal"),
        ];
        for (host, kind, queue) in cases {
            let id = grid
                .submit("u", host, kind, &script(kind, queue, 2, "date"))
                .unwrap();
            let done = grid.run_job_to_completion(id, 10).unwrap();
            assert_eq!(done.state, JobState::Done, "{kind} on {host}");
        }
        assert_eq!(grid.job_count(), 4);
    }
}
