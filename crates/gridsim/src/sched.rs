//! The four batch-scheduler dialects of §3.4.
//!
//! The batch-script interoperability exercise hinged on UDDI being unable
//! to distinguish "one script generator service that supports PBS and GRD
//! and another that supports LSF and NQS". Those four systems each speak a
//! different directive syntax; this module implements a parser/validator
//! per dialect, so a generated script is *accepted by the target
//! scheduler* only if it is genuinely well-formed in that dialect —
//! the acceptance criterion for experiment E10.
//!
//! Dialect summaries (directive prefix, then the options we honor):
//!
//! | Scheduler | Prefix  | name | queue | cpus            | walltime        |
//! |-----------|---------|------|-------|-----------------|-----------------|
//! | PBS       | `#PBS`  | `-N` | `-q`  | `-l nodes=N:ppn=P` or `-l ncpus=N` | `-l walltime=HH:MM:SS` |
//! | LSF       | `#BSUB` | `-J` | `-q`  | `-n N`          | `-W HH:MM`      |
//! | NQS       | `#QSUB` | `-r` | `-q`  | `-l mpp_p=N`    | `-lT SECONDS`   |
//! | GRD       | `#$`    | `-N` | `-q`  | `-pe mpi N`     | `-l h_rt=SECONDS` |

use std::fmt;

/// The queuing systems of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Portable Batch System.
    Pbs,
    /// Load Sharing Facility.
    Lsf,
    /// Network Queuing System.
    Nqs,
    /// Global/Sun Resource Director (Codine/GRD lineage).
    Grd,
}

impl SchedulerKind {
    /// All four kinds.
    pub const ALL: [SchedulerKind; 4] = [
        SchedulerKind::Pbs,
        SchedulerKind::Lsf,
        SchedulerKind::Nqs,
        SchedulerKind::Grd,
    ];

    /// Canonical upper-case name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Pbs => "PBS",
            SchedulerKind::Lsf => "LSF",
            SchedulerKind::Nqs => "NQS",
            SchedulerKind::Grd => "GRD",
        }
    }

    /// Parse a (case-insensitive) name.
    pub fn from_name(s: &str) -> Option<SchedulerKind> {
        match s.trim().to_ascii_uppercase().as_str() {
            "PBS" => Some(SchedulerKind::Pbs),
            "LSF" => Some(SchedulerKind::Lsf),
            "NQS" => Some(SchedulerKind::Nqs),
            "GRD" | "CODINE" | "SGE" => Some(SchedulerKind::Grd),
            _ => None,
        }
    }

    /// The directive prefix lines must start with.
    pub fn directive_prefix(self) -> &'static str {
        match self {
            SchedulerKind::Pbs => "#PBS",
            SchedulerKind::Lsf => "#BSUB",
            SchedulerKind::Nqs => "#QSUB",
            SchedulerKind::Grd => "#$",
        }
    }

    /// The submit command users would type (`qsub`, `bsub`, …) — used in
    /// portal help text.
    pub fn submit_command(self) -> &'static str {
        match self {
            SchedulerKind::Pbs => "qsub",
            SchedulerKind::Lsf => "bsub",
            SchedulerKind::Nqs => "qsub",
            SchedulerKind::Grd => "qsub",
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a batch script asks for, in scheduler-neutral terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequirements {
    /// Job name.
    pub name: String,
    /// Target queue.
    pub queue: String,
    /// CPU count.
    pub cpus: u32,
    /// Wall-clock limit in minutes.
    pub wall_minutes: u32,
    /// The command to run (first non-directive line).
    pub command: String,
}

/// A dialect violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DialectError(pub String);

impl fmt::Display for DialectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DialectError {}

type ParseResult<T> = std::result::Result<T, DialectError>;

fn err<T>(msg: impl Into<String>) -> ParseResult<T> {
    Err(DialectError(msg.into()))
}

/// Parse and validate a script in the given dialect. Returns the
/// scheduler-neutral requirements on success.
///
/// Rejections: wrong or foreign directive prefixes, unknown options,
/// missing name/queue/cpus/walltime, no command line, malformed values.
pub fn parse_script(kind: SchedulerKind, script: &str) -> ParseResult<JobRequirements> {
    let prefix = kind.directive_prefix();
    let mut name = None;
    let mut queue = None;
    let mut cpus = None;
    let mut wall = None;
    let mut command = None;

    for (lineno, raw) in script.lines().enumerate() {
        let line = raw.trim_end();
        if lineno == 0 && line.starts_with("#!") {
            continue; // shebang
        }
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(prefix) {
            // Must be followed by whitespace then an option.
            let rest = rest.trim_start();
            if rest.is_empty() {
                return err(format!("line {}: empty directive", lineno + 1));
            }
            parse_directive(
                kind,
                rest,
                lineno + 1,
                &mut name,
                &mut queue,
                &mut cpus,
                &mut wall,
            )?;
            continue;
        }
        if line.starts_with('#') {
            // A comment — but a *foreign* directive is a hard error: it
            // means the generator targeted the wrong scheduler.
            for other in SchedulerKind::ALL {
                if other != kind && line.starts_with(other.directive_prefix()) {
                    // "#$" would match plain comments starting "#$"; only
                    // flag when the foreign prefix is followed by space+dash.
                    let tail = &line[other.directive_prefix().len()..];
                    if tail.trim_start().starts_with('-') {
                        return err(format!(
                            "line {}: {} directive in a {} script",
                            lineno + 1,
                            other.name(),
                            kind.name()
                        ));
                    }
                }
            }
            continue;
        }
        if command.is_none() {
            command = Some(line.trim().to_owned());
        }
    }

    let name = name.ok_or(DialectError("missing job name directive".into()))?;
    let queue = queue.ok_or(DialectError("missing queue directive".into()))?;
    let cpus = cpus.ok_or(DialectError("missing cpu-count directive".into()))?;
    let wall_minutes = wall.ok_or(DialectError("missing walltime directive".into()))?;
    let command = command.ok_or(DialectError("script has no command".into()))?;
    if cpus == 0 {
        return err("cpu count must be positive");
    }
    if wall_minutes == 0 {
        return err("walltime must be positive");
    }
    Ok(JobRequirements {
        name,
        queue,
        cpus,
        wall_minutes,
        command,
    })
}

#[allow(clippy::too_many_arguments)]
fn parse_directive(
    kind: SchedulerKind,
    rest: &str,
    lineno: usize,
    name: &mut Option<String>,
    queue: &mut Option<String>,
    cpus: &mut Option<u32>,
    wall: &mut Option<u32>,
) -> ParseResult<()> {
    let mut tokens = rest.split_whitespace();
    let opt = tokens.next().unwrap_or("");
    let val = || -> ParseResult<String> {
        rest.split_whitespace()
            .nth(1)
            .map(str::to_owned)
            .ok_or(DialectError(format!("line {lineno}: {opt} needs a value")))
    };
    match (kind, opt) {
        (SchedulerKind::Pbs, "-N")
        | (SchedulerKind::Lsf, "-J")
        | (SchedulerKind::Nqs, "-r")
        | (SchedulerKind::Grd, "-N") => *name = Some(val()?),
        (_, "-q") => *queue = Some(val()?),
        (SchedulerKind::Lsf, "-n") => {
            *cpus = Some(parse_u32(&val()?, lineno, "-n")?);
        }
        (SchedulerKind::Lsf, "-W") => {
            let v = val()?;
            let (h, m) = v
                .split_once(':')
                .ok_or(DialectError(format!("line {lineno}: -W expects HH:MM")))?;
            let h: u32 = parse_u32(h, lineno, "-W hours")?;
            let m: u32 = parse_u32(m, lineno, "-W minutes")?;
            *wall = Some(h * 60 + m);
        }
        (SchedulerKind::Pbs, "-l") => {
            let v = val()?;
            parse_pbs_resource(&v, lineno, cpus, wall)?;
        }
        (SchedulerKind::Nqs, "-l") => {
            let v = val()?;
            if let Some(n) = v.strip_prefix("mpp_p=") {
                *cpus = Some(parse_u32(n, lineno, "mpp_p")?);
            } else {
                return err(format!("line {lineno}: unknown NQS resource {v:?}"));
            }
        }
        (SchedulerKind::Nqs, "-lT") => {
            let secs = parse_u32(&val()?, lineno, "-lT")?;
            *wall = Some(secs.div_ceil(60));
        }
        (SchedulerKind::Grd, "-pe") => {
            // -pe <env> <n>
            let env = rest.split_whitespace().nth(1);
            let n = rest.split_whitespace().nth(2);
            match (env, n) {
                (Some(_), Some(n)) => *cpus = Some(parse_u32(n, lineno, "-pe")?),
                _ => return err(format!("line {lineno}: -pe expects <env> <slots>")),
            }
        }
        (SchedulerKind::Grd, "-l") => {
            let v = val()?;
            if let Some(secs) = v.strip_prefix("h_rt=") {
                let secs = parse_u32(secs, lineno, "h_rt")?;
                *wall = Some(secs.div_ceil(60));
            } else {
                return err(format!("line {lineno}: unknown GRD resource {v:?}"));
            }
        }
        _ => {
            return err(format!(
                "line {lineno}: unknown {} option {opt:?}",
                kind.name()
            ))
        }
    }
    Ok(())
}

fn parse_u32(s: &str, lineno: usize, what: &str) -> ParseResult<u32> {
    s.trim()
        .parse::<u32>()
        .map_err(|_| DialectError(format!("line {lineno}: bad number for {what}: {s:?}")))
}

fn parse_pbs_resource(
    v: &str,
    lineno: usize,
    cpus: &mut Option<u32>,
    wall: &mut Option<u32>,
) -> ParseResult<()> {
    if let Some(rest) = v.strip_prefix("nodes=") {
        // nodes=N[:ppn=P]
        let (n, ppn) = match rest.split_once(":ppn=") {
            Some((n, p)) => (parse_u32(n, lineno, "nodes")?, parse_u32(p, lineno, "ppn")?),
            None => (parse_u32(rest, lineno, "nodes")?, 1),
        };
        *cpus = Some(n * ppn);
        Ok(())
    } else if let Some(n) = v.strip_prefix("ncpus=") {
        *cpus = Some(parse_u32(n, lineno, "ncpus")?);
        Ok(())
    } else if let Some(t) = v.strip_prefix("walltime=") {
        let parts: Vec<&str> = t.split(':').collect();
        let [h, m, s] = match parts.as_slice() {
            [h, m, s] => [*h, *m, *s],
            _ => return err(format!("line {lineno}: walltime expects HH:MM:SS")),
        };
        let h = parse_u32(h, lineno, "walltime hours")?;
        let m = parse_u32(m, lineno, "walltime minutes")?;
        let s = parse_u32(s, lineno, "walltime seconds")?;
        *wall = Some(h * 60 + m + s.div_ceil(60));
        Ok(())
    } else {
        err(format!("line {lineno}: unknown PBS resource {v:?}"))
    }
}

/// Render requirements back into a script for the given dialect — the
/// reference generator the script-generation services are tested against.
pub fn render_script(kind: SchedulerKind, req: &JobRequirements) -> String {
    let mut out = String::from("#!/bin/sh\n");
    let p = kind.directive_prefix();
    match kind {
        SchedulerKind::Pbs => {
            out.push_str(&format!("{p} -N {}\n", req.name));
            out.push_str(&format!("{p} -q {}\n", req.queue));
            out.push_str(&format!("{p} -l ncpus={}\n", req.cpus));
            out.push_str(&format!(
                "{p} -l walltime={:02}:{:02}:00\n",
                req.wall_minutes / 60,
                req.wall_minutes % 60
            ));
        }
        SchedulerKind::Lsf => {
            out.push_str(&format!("{p} -J {}\n", req.name));
            out.push_str(&format!("{p} -q {}\n", req.queue));
            out.push_str(&format!("{p} -n {}\n", req.cpus));
            out.push_str(&format!(
                "{p} -W {:02}:{:02}\n",
                req.wall_minutes / 60,
                req.wall_minutes % 60
            ));
        }
        SchedulerKind::Nqs => {
            out.push_str(&format!("{p} -r {}\n", req.name));
            out.push_str(&format!("{p} -q {}\n", req.queue));
            out.push_str(&format!("{p} -l mpp_p={}\n", req.cpus));
            out.push_str(&format!("{p} -lT {}\n", req.wall_minutes * 60));
        }
        SchedulerKind::Grd => {
            out.push_str(&format!("{p} -N {}\n", req.name));
            out.push_str(&format!("{p} -q {}\n", req.queue));
            out.push_str(&format!("{p} -pe mpi {}\n", req.cpus));
            out.push_str(&format!("{p} -l h_rt={}\n", req.wall_minutes * 60));
        }
    }
    out.push_str(&req.command);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> JobRequirements {
        JobRequirements {
            name: "g98run".into(),
            queue: "normal".into(),
            cpus: 8,
            wall_minutes: 90,
            command: "/usr/local/bin/g98 < input.com".into(),
        }
    }

    #[test]
    fn render_parse_round_trip_all_dialects() {
        for kind in SchedulerKind::ALL {
            let script = render_script(kind, &req());
            let parsed = parse_script(kind, &script)
                .unwrap_or_else(|e| panic!("{kind} rejected its own script: {e}\n{script}"));
            assert_eq!(parsed, req(), "{kind}");
        }
    }

    #[test]
    fn cross_dialect_scripts_rejected() {
        for gen in SchedulerKind::ALL {
            for target in SchedulerKind::ALL {
                if gen == target {
                    continue;
                }
                let script = render_script(gen, &req());
                assert!(
                    parse_script(target, &script).is_err(),
                    "{target} accepted a {gen} script"
                );
            }
        }
    }

    #[test]
    fn pbs_nodes_ppn_multiplies() {
        let script = "#!/bin/sh\n#PBS -N j\n#PBS -q q\n#PBS -l nodes=4:ppn=2\n#PBS -l walltime=00:30:00\ndate\n";
        let r = parse_script(SchedulerKind::Pbs, script).unwrap();
        assert_eq!(r.cpus, 8);
        assert_eq!(r.wall_minutes, 30);
    }

    #[test]
    fn pbs_bare_nodes_defaults_ppn_1() {
        let script = "#PBS -N j\n#PBS -q q\n#PBS -l nodes=4\n#PBS -l walltime=01:00:00\ndate\n";
        assert_eq!(parse_script(SchedulerKind::Pbs, script).unwrap().cpus, 4);
    }

    #[test]
    fn lsf_walltime_hhmm() {
        let script = "#BSUB -J j\n#BSUB -q q\n#BSUB -n 2\n#BSUB -W 02:15\ndate\n";
        assert_eq!(
            parse_script(SchedulerKind::Lsf, script)
                .unwrap()
                .wall_minutes,
            135
        );
    }

    #[test]
    fn nqs_seconds_round_up() {
        let script = "#QSUB -r j\n#QSUB -q q\n#QSUB -l mpp_p=1\n#QSUB -lT 90\ndate\n";
        assert_eq!(
            parse_script(SchedulerKind::Nqs, script)
                .unwrap()
                .wall_minutes,
            2
        );
    }

    #[test]
    fn grd_parallel_environment() {
        let script = "#$ -N j\n#$ -q q\n#$ -pe mpi 16\n#$ -l h_rt=3600\ndate\n";
        let r = parse_script(SchedulerKind::Grd, script).unwrap();
        assert_eq!(r.cpus, 16);
        assert_eq!(r.wall_minutes, 60);
    }

    #[test]
    fn missing_fields_rejected() {
        let script = "#PBS -N j\n#PBS -q q\ndate\n";
        let e = parse_script(SchedulerKind::Pbs, script).unwrap_err();
        assert!(e.0.contains("cpu"), "{e}");
    }

    #[test]
    fn missing_command_rejected() {
        let script = "#PBS -N j\n#PBS -q q\n#PBS -l ncpus=1\n#PBS -l walltime=00:10:00\n";
        assert!(parse_script(SchedulerKind::Pbs, script).is_err());
    }

    #[test]
    fn zero_cpus_rejected() {
        let script = "#PBS -N j\n#PBS -q q\n#PBS -l ncpus=0\n#PBS -l walltime=00:10:00\ndate\n";
        assert!(parse_script(SchedulerKind::Pbs, script).is_err());
    }

    #[test]
    fn unknown_option_rejected() {
        let script = "#PBS -Z whatever\n#PBS -N j\ndate\n";
        assert!(parse_script(SchedulerKind::Pbs, script).is_err());
    }

    #[test]
    fn plain_comments_tolerated() {
        let script =
            "#!/bin/sh\n# A plain comment\n#PBS -N j\n#PBS -q q\n#PBS -l ncpus=1\n#PBS -l walltime=00:10:00\n\ndate\n";
        assert!(parse_script(SchedulerKind::Pbs, script).is_ok());
    }

    #[test]
    fn names_parse_back() {
        for kind in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SchedulerKind::from_name("sge"), Some(SchedulerKind::Grd));
        assert_eq!(SchedulerKind::from_name("slurm"), None);
    }
}
