//! The portlet abstraction.

/// Per-render context: who is looking, and the request parameters routed
/// to this portlet by the container.
#[derive(Debug, Clone, Default)]
pub struct PortletContext {
    /// Viewing user.
    pub user: String,
    /// Parameters addressed to this portlet (`target`, form fields, …).
    pub params: Vec<(String, String)>,
    /// URL of the containing portal page, used for URL remapping.
    pub base_url: String,
    /// True when the triggering request was a POST.
    pub is_post: bool,
}

impl PortletContext {
    /// A context for `user` on a portal page at `base_url`.
    pub fn new(user: impl Into<String>, base_url: impl Into<String>) -> PortletContext {
        PortletContext {
            user: user.into(),
            base_url: base_url.into(),
            ..Default::default()
        }
    }

    /// First parameter value by name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parameters excluding the container's routing keys — what gets
    /// forwarded to the remote site on a form post.
    pub fn forwarded_params(&self) -> Vec<(String, String)> {
        self.params
            .iter()
            .filter(|(k, _)| !matches!(k.as_str(), "portlet" | "target" | "user" | "method"))
            .cloned()
            .collect()
    }
}

/// A displayable portal component.
pub trait Portlet: Send + Sync {
    /// Unique portlet instance name (layout key).
    fn name(&self) -> &str;

    /// Title shown in the portlet's table header.
    fn title(&self) -> &str;

    /// Render HTML content for this user/request.
    fn render(&self, ctx: &PortletContext) -> String;
}

/// Local static-content portlet (feature 1's "local web content" case:
/// help text, documentation, announcements).
pub struct HtmlPortlet {
    name: String,
    title: String,
    html: String,
}

impl HtmlPortlet {
    /// Build from static HTML.
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        html: impl Into<String>,
    ) -> HtmlPortlet {
        HtmlPortlet {
            name: name.into(),
            title: title.into(),
            html: html.into(),
        }
    }
}

impl Portlet for HtmlPortlet {
    fn name(&self) -> &str {
        &self.name
    }

    fn title(&self) -> &str {
        &self.title
    }

    fn render(&self, _ctx: &PortletContext) -> String {
        self.html.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn html_portlet_renders_static_content() {
        let p = HtmlPortlet::new("help", "Help", "<p>Welcome to the GCE portal</p>");
        let ctx = PortletContext::new("alice", "/portal");
        assert_eq!(p.render(&ctx), "<p>Welcome to the GCE portal</p>");
        assert_eq!(p.name(), "help");
        assert_eq!(p.title(), "Help");
    }

    #[test]
    fn context_param_lookup() {
        let mut ctx = PortletContext::new("alice", "/portal");
        ctx.params = vec![
            ("portlet".into(), "jobs".into()),
            ("target".into(), "/x".into()),
            ("cpus".into(), "4".into()),
        ];
        assert_eq!(ctx.param("cpus"), Some("4"));
        assert_eq!(ctx.param("missing"), None);
        // Routing keys stripped from forwarded parameters.
        assert_eq!(
            ctx.forwarded_params(),
            vec![("cpus".to_string(), "4".to_string())]
        );
    }
}
