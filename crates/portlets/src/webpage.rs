//! `WebPagePortlet`: proxy a remote page into the portal.
//!
//! "In the case of remote web content, the portlet is a proxy that loads
//! the remote URL's contents and converts it into an in-memory Java
//! object." Here the in-memory copy is a cached string, refreshed on
//! demand; the derived [`crate::WebFormPortlet`] builds on this fetch
//! machinery.

use std::sync::Arc;

use parking_lot::RwLock;
use portalws_wire::{Request, Status, Transport};

use crate::portlet::{Portlet, PortletContext};

/// Remote-content portlet.
pub struct WebPagePortlet {
    name: String,
    title: String,
    /// Default path fetched on the remote server.
    pub(crate) home_path: String,
    pub(crate) transport: Arc<dyn Transport>,
    /// The in-memory copy kept "for reformatting".
    cache: RwLock<Option<String>>,
}

impl WebPagePortlet {
    /// Proxy `home_path` on the remote server reachable via `transport`.
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        home_path: impl Into<String>,
        transport: Arc<dyn Transport>,
    ) -> WebPagePortlet {
        WebPagePortlet {
            name: name.into(),
            title: title.into(),
            home_path: home_path.into(),
            transport,
            cache: RwLock::new(None),
        }
    }

    /// Fetch a path from the remote server, updating the in-memory copy.
    pub fn fetch(&self, path: &str) -> String {
        let outcome = self.transport.round_trip(Request::get(path));
        let content = match outcome {
            Ok(resp) if resp.status == Status::Ok => resp.body_str(),
            Ok(resp) => format!(
                "<em>remote content unavailable: {} {}</em>",
                resp.status.code(),
                resp.status.reason()
            ),
            Err(e) => format!("<em>remote content unavailable: {e}</em>"),
        };
        *self.cache.write() = Some(content.clone());
        content
    }

    /// The last fetched copy, if any.
    pub fn cached(&self) -> Option<String> {
        self.cache.read().clone()
    }
}

impl Portlet for WebPagePortlet {
    fn name(&self) -> &str {
        &self.name
    }

    fn title(&self) -> &str {
        &self.title
    }

    fn render(&self, _ctx: &PortletContext) -> String {
        self.fetch(&self.home_path.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_wire::{Handler, InMemoryTransport, Response};

    fn remote() -> Arc<dyn Transport> {
        let handler: Arc<dyn Handler> = Arc::new(|req: &Request| {
            if req.path_only() == "/status" {
                Response::html("<p>all systems nominal</p>")
            } else {
                Response::error(Status::NotFound, "nope")
            }
        });
        Arc::new(InMemoryTransport::new(handler))
    }

    #[test]
    fn fetches_and_caches_remote_content() {
        let p = WebPagePortlet::new("status", "System Status", "/status", remote());
        assert!(p.cached().is_none());
        let ctx = PortletContext::new("u", "/portal");
        let html = p.render(&ctx);
        assert_eq!(html, "<p>all systems nominal</p>");
        assert_eq!(p.cached().as_deref(), Some("<p>all systems nominal</p>"));
    }

    #[test]
    fn remote_errors_render_inline_notice() {
        let p = WebPagePortlet::new("x", "X", "/ghost", remote());
        let html = p.render(&PortletContext::new("u", "/portal"));
        assert!(html.contains("remote content unavailable"), "{html}");
        assert!(html.contains("404"));
    }

    #[test]
    fn unreachable_server_renders_notice_not_panic() {
        let transport = Arc::new(portalws_wire::HttpTransport::new("127.0.0.1:1"));
        let p = WebPagePortlet::new("x", "X", "/", transport);
        let html = p.render(&PortletContext::new("u", "/portal"));
        assert!(html.contains("remote content unavailable"));
    }
}
