//! Portlet container (§5.4) — the Jetspeed analogue.
//!
//! "Generally, portlet systems possess the following features:
//! 1. Portlet types exist to retrieve both local and remote web content.
//!    Each component web page is contained in a table and the final
//!    composite web page is a collection of nested HTML tables…
//! 2. In the case of remote web content, the portlet is a proxy that
//!    loads the remote URL's contents…
//! 3. Portal administrators decide which content sources to provide. In
//!    Jetspeed, this is done by editing an XML configuration file
//!    (local-portlets.xreg)…
//! 4. Users can customize their portal displays…"
//!
//! Module map:
//!
//! * [`portlet`] — the [`Portlet`] trait, render context, and local
//!   content portlets.
//! * [`webpage`] — `WebPagePortlet`: proxy to a remote page with an
//!   in-memory copy for reformatting.
//! * [`webform`] — the paper's own `WebFormPortlet` extension: posts form
//!   parameters, maintains remote session state, and remaps URLs so
//!   followed links load inside the portlet window.
//! * [`registry`] — the xreg-style configuration registry and per-user
//!   layout customization.
//! * [`page`] — nested-table page aggregation and the portal-page HTTP
//!   handler.

pub mod page;
pub mod portlet;
pub mod registry;
pub mod webform;
pub mod webpage;

pub use page::PortalPage;
pub use portlet::{HtmlPortlet, Portlet, PortletContext};
pub use registry::{Layout, PortletRegistry, PortletSpec};
pub use webform::WebFormPortlet;
pub use webpage::WebPagePortlet;
