//! `WebFormPortlet`: the paper's extension of Jetspeed's WebPagePortlet.
//!
//! "We have written a general purpose portlet that extends Jetspeed's
//! simple WebPagePortlet… We have also implemented some additional
//! features: 1. The portlet can post HTML Form parameters. 2. The portlet
//! maintains session state with remote Tomcat servers. 3. The portlet
//! remaps URLs in the remote page, so that the content of pages loaded
//! from followed links and clicked buttons is loaded inside the portlet
//! window."
//!
//! These three features are what let "the legacy Gateway user interface…
//! several linked web form pages that maintain session state" run inside
//! a container on a separate server — tested end-to-end in the
//! integration suite with the schema wizard as the remote application.

use std::sync::Arc;

use parking_lot::RwLock;
use portalws_wire::http::{encode_form, url_encode};
use portalws_wire::{Request, Status, Transport};

use crate::portlet::{Portlet, PortletContext};
use crate::webpage::WebPagePortlet;

/// Remote-form portlet with session continuity and URL remapping.
pub struct WebFormPortlet {
    inner: WebPagePortlet,
    /// Cookie value captured from the remote server (feature 2).
    session: RwLock<Option<String>>,
}

impl WebFormPortlet {
    /// Proxy `home_path` on the remote server reachable via `transport`.
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        home_path: impl Into<String>,
        transport: Arc<dyn Transport>,
    ) -> WebFormPortlet {
        WebFormPortlet {
            inner: WebPagePortlet::new(name, title, home_path, transport),
            session: RwLock::new(None),
        }
    }

    /// The remote session cookie currently held, if any.
    pub fn session_cookie(&self) -> Option<String> {
        self.session.read().clone()
    }

    /// Perform one exchange with the remote server, maintaining session
    /// state.
    fn exchange(&self, mut req: Request) -> (Status, String) {
        if let Some(cookie) = self.session.read().clone() {
            req = req.with_header("Cookie", cookie);
        }
        match self.inner.transport.round_trip(req) {
            Ok(resp) => {
                if let Some(set) = resp.header("Set-Cookie") {
                    let cookie = set.split(';').next().unwrap_or(set).trim().to_owned();
                    *self.session.write() = Some(cookie);
                }
                (resp.status, resp.body_str())
            }
            Err(e) => (
                Status::InternalError,
                format!("<em>remote content unavailable: {e}</em>"),
            ),
        }
    }
}

impl Portlet for WebFormPortlet {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn title(&self) -> &str {
        self.inner.title()
    }

    fn render(&self, ctx: &PortletContext) -> String {
        // Feature 3 routing: a followed link or submitted form arrives
        // with a `target` parameter naming the remote path.
        let path = ctx
            .param("target")
            .unwrap_or(&self.inner.home_path)
            .to_owned();
        let (_status, body) = if ctx.is_post {
            // Feature 1: post the user's form fields onward.
            let form = encode_form(&ctx.forwarded_params());
            self.exchange(
                Request::post(path, form)
                    .with_header("Content-Type", "application/x-www-form-urlencoded"),
            )
        } else {
            self.exchange(Request::get(path))
        };
        remap_html(&body, &ctx.base_url, self.name())
    }
}

/// Rewrite `href`, `src`, and form `action` URLs in `html` so they route
/// back through the portal page and into this portlet's window.
///
/// Fragment-only links, `javascript:`/`mailto:`/`data:` pseudo-URLs,
/// absolute external URLs, and already-remapped URLs are left alone.
pub fn remap_html(html: &str, base_url: &str, portlet: &str) -> String {
    let sep = if base_url.contains('?') { '&' } else { '?' };
    let mut out = String::with_capacity(html.len() + 128);
    let mut rest = html;
    const ATTRS: [&str; 3] = ["href=\"", "action=\"", "src=\""];
    'outer: while !rest.is_empty() {
        // Find the earliest attribute occurrence.
        let hit = ATTRS
            .iter()
            .filter_map(|a| rest.find(a).map(|i| (i, *a)))
            .min_by_key(|(i, _)| *i);
        let Some((i, attr)) = hit else {
            out.push_str(rest);
            break 'outer;
        };
        let val_start = i + attr.len();
        let Some((head, tail)) = rest.split_at_checked(val_start) else {
            out.push_str(rest);
            break 'outer;
        };
        out.push_str(head);
        rest = tail;
        let Some(end) = rest.find('"') else {
            out.push_str(rest);
            break 'outer;
        };
        let Some((url, tail)) = rest.split_at_checked(end) else {
            out.push_str(rest);
            break 'outer;
        };
        if url.starts_with('#')
            || url.starts_with("javascript:")
            || url.starts_with("mailto:")
            || url.starts_with("data:")
            || url.starts_with("http://")
            || url.starts_with("https://")
            || url.contains("portlet=")
        {
            out.push_str(url);
        } else {
            out.push_str(&format!(
                "{base_url}{sep}portlet={}&target={}",
                url_encode(portlet),
                url_encode(url)
            ));
        }
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use portalws_wire::http::parse_form;
    use portalws_wire::{Handler, InMemoryTransport, Response};
    use std::collections::HashMap;

    /// A remote "legacy Gateway UI": two linked form pages that count
    /// per-session visits.
    struct LegacyUi {
        sessions: Mutex<HashMap<String, u32>>,
        next: Mutex<u32>,
    }

    impl Handler for LegacyUi {
        fn handle(&self, req: &Request) -> Response {
            let cookie = req.header("Cookie").map(str::to_owned);
            let (sid, fresh) = match cookie {
                Some(c) => (c, false),
                None => {
                    let mut next = self.next.lock();
                    *next += 1;
                    (format!("sid={}", next), true)
                }
            };
            let visits = {
                let mut sessions = self.sessions.lock();
                let v = sessions.entry(sid.clone()).or_insert(0);
                *v += 1;
                *v
            };
            let body = match req.path_only() {
                "/page1" => format!(
                    "<p>visit {visits}</p><a href=\"/page2\">next</a>\
                     <form action=\"/submit\" method=\"post\">\
                     <input name=\"jobname\"/></form>"
                ),
                "/page2" => format!("<p>page two, visit {visits}</p><a href=\"#top\">top</a>"),
                "/submit" => {
                    let form = parse_form(&req.body_str());
                    format!(
                        "<p>submitted {} on visit {visits}</p>",
                        form.first().map(|(_, v)| v.as_str()).unwrap_or("?")
                    )
                }
                _ => return Response::error(Status::NotFound, "no such page"),
            };
            let mut resp = Response::html(body);
            if fresh {
                resp = resp.with_header("Set-Cookie", format!("{sid}; Path=/"));
            }
            resp
        }
    }

    fn portlet() -> WebFormPortlet {
        let handler: Arc<dyn Handler> = Arc::new(LegacyUi {
            sessions: Mutex::new(HashMap::new()),
            next: Mutex::new(0),
        });
        WebFormPortlet::new(
            "gateway",
            "Gateway UI",
            "/page1",
            Arc::new(InMemoryTransport::new(handler)),
        )
    }

    fn ctx(params: &[(&str, &str)], is_post: bool) -> PortletContext {
        let mut c = PortletContext::new("alice", "/portal?user=alice");
        c.params = params
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        c.is_post = is_post;
        c
    }

    #[test]
    fn renders_home_page_with_remapped_links() {
        let p = portlet();
        let html = p.render(&ctx(&[], false));
        assert!(html.contains("visit 1"));
        // The /page2 link now routes through the portal into the portlet.
        assert!(
            html.contains("href=\"/portal?user=alice&portlet=gateway&target=%2Fpage2\""),
            "{html}"
        );
        // The form action is remapped too.
        assert!(html.contains("action=\"/portal?user=alice&portlet=gateway&target=%2Fsubmit\""));
    }

    #[test]
    fn session_state_maintained_across_clicks() {
        let p = portlet();
        p.render(&ctx(&[], false)); // visit 1, cookie captured
        assert!(p.session_cookie().is_some());
        let html = p.render(&ctx(&[("target", "/page2")], false));
        // Same remote session: the visit counter advanced instead of
        // restarting.
        assert!(html.contains("visit 2"), "{html}");
    }

    #[test]
    fn separate_portlets_get_separate_sessions() {
        let handler: Arc<dyn Handler> = Arc::new(LegacyUi {
            sessions: Mutex::new(HashMap::new()),
            next: Mutex::new(0),
        });
        let t: Arc<dyn Transport> = Arc::new(InMemoryTransport::new(handler));
        let p1 = WebFormPortlet::new("a", "A", "/page1", Arc::clone(&t));
        let p2 = WebFormPortlet::new("b", "B", "/page1", t);
        p1.render(&ctx(&[], false));
        let html = p2.render(&ctx(&[], false));
        assert!(html.contains("visit 1"), "{html}");
        assert_ne!(p1.session_cookie(), p2.session_cookie());
    }

    #[test]
    fn posts_forward_form_fields() {
        let p = portlet();
        p.render(&ctx(&[], false));
        let html = p.render(&ctx(
            &[
                ("portlet", "gateway"),
                ("target", "/submit"),
                ("jobname", "g98-run-7"),
            ],
            true,
        ));
        assert!(html.contains("submitted g98-run-7"), "{html}");
    }

    #[test]
    fn remap_leaves_fragments_and_external_urls() {
        let html =
            r##"<a href="#sec">x</a><a href="http://www.globus.org/">g</a><img src="/logo.png"/>"##;
        let out = remap_html(html, "/portal", "p");
        assert!(out.contains("href=\"#sec\""));
        assert!(out.contains("href=\"http://www.globus.org/\""));
        assert!(out.contains("src=\"/portal?portlet=p&target=%2Flogo.png\""));
    }

    #[test]
    fn remap_is_idempotent() {
        let html = r#"<a href="/x">x</a>"#;
        let once = remap_html(html, "/portal", "p");
        let twice = remap_html(&once, "/portal", "p");
        assert_eq!(once, twice);
    }

    #[test]
    fn remote_404_shows_notice() {
        let p = portlet();
        let html = p.render(&ctx(&[("target", "/ghost")], false));
        assert!(html.contains("no such page"), "{html}");
    }
}
