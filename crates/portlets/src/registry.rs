//! Portlet registration (the `local-portlets.xreg` analogue) and per-user
//! layout customization.
//!
//! "Portal administrators decide which content sources to provide. In
//! Jetspeed, this is done by editing an XML configuration file
//! (local-portlets.xreg) to extend the appropriate portlet. Users can
//! customize their portal displays by decorating them with only those
//! portlets that interest them."

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use portalws_xml::Element;

use crate::portlet::{HtmlPortlet, Portlet};
use crate::webform::WebFormPortlet;
use crate::webpage::WebPagePortlet;

/// One entry of the xreg configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortletSpec {
    /// Instance name.
    pub name: String,
    /// Portlet type: `HtmlPortlet`, `WebPagePortlet`, or `WebFormPortlet`.
    pub kind: String,
    /// Display title.
    pub title: String,
    /// Remote path (web portlets) or inline HTML (html portlets).
    pub source: String,
}

/// Parse an xreg document:
/// `<portlet-registry><portlet-entry name=… type=… title=…><source>…</source></portlet-entry>…</portlet-registry>`.
pub fn parse_xreg(doc: &Element) -> Result<Vec<PortletSpec>, String> {
    if doc.local_name() != "portlet-registry" {
        return Err(format!(
            "expected portlet-registry, found {:?}",
            doc.local_name()
        ));
    }
    doc.find_all("portlet-entry")
        .map(|e| {
            Ok(PortletSpec {
                name: e
                    .attr("name")
                    .ok_or("portlet-entry missing name")?
                    .to_owned(),
                kind: e
                    .attr("type")
                    .ok_or("portlet-entry missing type")?
                    .to_owned(),
                title: e.attr("title").unwrap_or("Untitled").to_owned(),
                source: e.find_text("source").unwrap_or("").to_owned(),
            })
        })
        .collect()
}

/// Instantiate a spec. Web portlets need a transport to their remote
/// server, supplied by the caller's resolver (spec source → transport).
pub fn instantiate(
    spec: &PortletSpec,
    resolve: &dyn Fn(&str) -> Option<Arc<dyn portalws_wire::Transport>>,
) -> Result<Arc<dyn Portlet>, String> {
    match spec.kind.as_str() {
        "HtmlPortlet" => Ok(Arc::new(HtmlPortlet::new(
            spec.name.clone(),
            spec.title.clone(),
            spec.source.clone(),
        ))),
        "WebPagePortlet" => {
            let t = resolve(&spec.source)
                .ok_or_else(|| format!("no transport for {:?}", spec.source))?;
            Ok(Arc::new(WebPagePortlet::new(
                spec.name.clone(),
                spec.title.clone(),
                spec.source.clone(),
                t,
            )))
        }
        "WebFormPortlet" => {
            let t = resolve(&spec.source)
                .ok_or_else(|| format!("no transport for {:?}", spec.source))?;
            Ok(Arc::new(WebFormPortlet::new(
                spec.name.clone(),
                spec.title.clone(),
                spec.source.clone(),
                t,
            )))
        }
        other => Err(format!("unknown portlet type {other:?}")),
    }
}

/// A user's layout: columns of portlet names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Layout {
    /// Columns, left to right; each holds portlet names top to bottom.
    pub columns: Vec<Vec<String>>,
}

impl Layout {
    /// A layout with `n` empty columns.
    pub fn with_columns(n: usize) -> Layout {
        Layout {
            columns: vec![Vec::new(); n.max(1)],
        }
    }

    /// All portlet names in display order.
    pub fn portlet_names(&self) -> Vec<&str> {
        self.columns
            .iter()
            .flat_map(|c| c.iter().map(String::as_str))
            .collect()
    }
}

/// The container's registry: available portlets plus per-user layouts.
#[derive(Default)]
pub struct PortletRegistry {
    portlets: RwLock<HashMap<String, Arc<dyn Portlet>>>,
    layouts: RwLock<HashMap<String, Layout>>,
}

impl PortletRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a portlet instance.
    pub fn register(&self, portlet: Arc<dyn Portlet>) {
        self.portlets
            .write()
            .insert(portlet.name().to_owned(), portlet);
    }

    /// Look up a portlet.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Portlet>> {
        self.portlets.read().get(name).map(Arc::clone)
    }

    /// Names of all registered portlets, sorted.
    pub fn available(&self) -> Vec<String> {
        let mut names: Vec<String> = self.portlets.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// A user's layout (two empty columns until customized).
    pub fn layout_of(&self, user: &str) -> Layout {
        self.layouts
            .read()
            .get(user)
            .cloned()
            .unwrap_or_else(|| Layout::with_columns(2))
    }

    /// Customize: add a portlet to a user's column (idempotent).
    pub fn add_to_layout(&self, user: &str, portlet: &str, column: usize) -> Result<(), String> {
        if self.get(portlet).is_none() {
            return Err(format!("no such portlet {portlet:?}"));
        }
        let mut layouts = self.layouts.write();
        let layout = layouts
            .entry(user.to_owned())
            .or_insert_with(|| Layout::with_columns(2));
        if layout.portlet_names().contains(&portlet) {
            return Ok(());
        }
        let col = column.min(layout.columns.len().saturating_sub(1));
        layout
            .columns
            .get_mut(col)
            .ok_or_else(|| format!("layout for {user:?} has no columns"))?
            .push(portlet.to_owned());
        Ok(())
    }

    /// Customize: remove a portlet from a user's layout.
    pub fn remove_from_layout(&self, user: &str, portlet: &str) {
        if let Some(layout) = self.layouts.write().get_mut(user) {
            for col in &mut layout.columns {
                col.retain(|p| p != portlet);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portlet::PortletContext;
    use portalws_wire::{Handler, InMemoryTransport, Request, Response};

    fn xreg_doc() -> Element {
        Element::parse(
            r#"<portlet-registry>
                 <portlet-entry name="help" type="HtmlPortlet" title="Help">
                   <source>&lt;p&gt;help text&lt;/p&gt;</source>
                 </portlet-entry>
                 <portlet-entry name="jobs" type="WebFormPortlet" title="Jobs">
                   <source>/apps/jobs</source>
                 </portlet-entry>
               </portlet-registry>"#,
        )
        .unwrap()
    }

    fn resolver() -> impl Fn(&str) -> Option<Arc<dyn portalws_wire::Transport>> {
        |_src: &str| {
            let handler: Arc<dyn Handler> =
                Arc::new(|_req: &Request| Response::html("<p>remote</p>"));
            Some(Arc::new(InMemoryTransport::new(handler)) as Arc<dyn portalws_wire::Transport>)
        }
    }

    #[test]
    fn xreg_parses_entries() {
        let specs = parse_xreg(&xreg_doc()).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].kind, "HtmlPortlet");
        assert_eq!(specs[0].source, "<p>help text</p>");
        assert_eq!(specs[1].source, "/apps/jobs");
    }

    #[test]
    fn xreg_rejects_malformed() {
        let el = Element::parse("<wrong/>").unwrap();
        assert!(parse_xreg(&el).is_err());
        let el = Element::parse("<portlet-registry><portlet-entry type=\"x\"/></portlet-registry>")
            .unwrap();
        assert!(parse_xreg(&el).is_err());
    }

    #[test]
    fn instantiate_all_kinds() {
        let specs = parse_xreg(&xreg_doc()).unwrap();
        let r = resolver();
        for spec in &specs {
            let p = instantiate(spec, &r).unwrap();
            assert_eq!(p.name(), spec.name);
        }
        let bad = PortletSpec {
            name: "x".into(),
            kind: "FlashPortlet".into(),
            title: "X".into(),
            source: "".into(),
        };
        assert!(instantiate(&bad, &r).is_err());
    }

    #[test]
    fn registry_and_layout_customization() {
        let reg = PortletRegistry::new();
        let r = resolver();
        for spec in parse_xreg(&xreg_doc()).unwrap() {
            reg.register(instantiate(&spec, &r).unwrap());
        }
        assert_eq!(reg.available(), vec!["help", "jobs"]);

        reg.add_to_layout("alice", "help", 0).unwrap();
        reg.add_to_layout("alice", "jobs", 1).unwrap();
        // Idempotent add.
        reg.add_to_layout("alice", "help", 1).unwrap();
        let layout = reg.layout_of("alice");
        assert_eq!(layout.columns[0], vec!["help"]);
        assert_eq!(layout.columns[1], vec!["jobs"]);

        // Unknown portlet rejected.
        assert!(reg.add_to_layout("alice", "ghost", 0).is_err());

        reg.remove_from_layout("alice", "help");
        assert_eq!(reg.layout_of("alice").portlet_names(), vec!["jobs"]);

        // Other users are untouched defaults.
        assert!(reg.layout_of("bob").portlet_names().is_empty());
    }

    #[test]
    fn column_index_clamped() {
        let reg = PortletRegistry::new();
        reg.register(Arc::new(crate::HtmlPortlet::new("a", "A", "x")));
        reg.add_to_layout("u", "a", 99).unwrap();
        assert_eq!(reg.layout_of("u").columns[1], vec!["a"]);
    }

    #[test]
    fn registered_portlets_render() {
        let reg = PortletRegistry::new();
        let r = resolver();
        for spec in parse_xreg(&xreg_doc()).unwrap() {
            reg.register(instantiate(&spec, &r).unwrap());
        }
        let ctx = PortletContext::new("alice", "/portal");
        assert_eq!(reg.get("help").unwrap().render(&ctx), "<p>help text</p>");
        assert!(reg.get("jobs").unwrap().render(&ctx).contains("remote"));
    }
}
