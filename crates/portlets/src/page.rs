//! Page aggregation: the composite portal page.
//!
//! "Each component web page is contained in a table and the final
//! composite web page is a collection of nested HTML tables, each
//! containing material loaded from the specified content server."
//!
//! [`PortalPage`] is also a wire [`Handler`]: `GET /portal?user=alice`
//! renders the user's customized layout; requests carrying `portlet=` and
//! `target=` parameters (produced by `WebFormPortlet`'s URL remapping)
//! route the interaction to that portlet while the rest of the page
//! re-renders around it.

use std::sync::Arc;

use portalws_wire::http::parse_form;
use portalws_wire::{Handler, Request, Response, Status};

use crate::portlet::PortletContext;
use crate::registry::PortletRegistry;

/// The portlet an interaction addresses: `(name, params, is_post)`.
pub type ActivePortlet<'a> = (&'a str, &'a [(String, String)], bool);

/// The aggregating portal page.
pub struct PortalPage {
    registry: Arc<PortletRegistry>,
    /// Mount path (`/portal`).
    mount: String,
}

impl PortalPage {
    /// Serve `registry` at `mount`.
    pub fn new(registry: Arc<PortletRegistry>, mount: impl Into<String>) -> PortalPage {
        PortalPage {
            registry,
            mount: mount.into(),
        }
    }

    /// The portlet registry in use.
    pub fn registry(&self) -> &Arc<PortletRegistry> {
        &self.registry
    }

    /// Render the composite page for `user`. `active` optionally names
    /// the portlet the current interaction addresses, with its params.
    pub fn render(&self, user: &str, active: Option<ActivePortlet<'_>>) -> String {
        let layout = self.registry.layout_of(user);
        let base_url = format!("{}?user={user}", self.mount);
        let mut html = format!(
            "<html><head><title>{user}'s portal</title></head><body>\n\
             <h1>Computational portal</h1>\n<table class=\"portal\"><tr>\n"
        );
        for column in &layout.columns {
            html.push_str("<td class=\"column\" valign=\"top\">\n");
            for name in column {
                let Some(portlet) = self.registry.get(name) else {
                    continue;
                };
                let mut ctx = PortletContext::new(user, base_url.clone());
                if let Some((active_name, params, is_post)) = active {
                    if active_name == name.as_str() {
                        ctx.params = params.to_vec();
                        ctx.is_post = is_post;
                    }
                }
                let content = portlet.render(&ctx);
                html.push_str(&format!(
                    "<table class=\"portlet\" border=\"1\"><tr><th>{}</th></tr>\n\
                     <tr><td>\n{content}\n</td></tr></table>\n",
                    portlet.title()
                ));
            }
            html.push_str("</td>\n");
        }
        html.push_str("</tr></table></body></html>\n");
        html
    }
}

impl Handler for PortalPage {
    fn handle(&self, req: &Request) -> Response {
        let mut params = req.query_params();
        let is_post = req.method == "POST";
        if is_post {
            params.extend(parse_form(&req.body_str()));
        }
        let user = params
            .iter()
            .find(|(k, _)| k == "user")
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| "guest".to_owned());
        let active_name = params
            .iter()
            .find(|(k, _)| k == "portlet")
            .map(|(_, v)| v.clone());
        let page = match &active_name {
            Some(name) => {
                if self.registry.get(name).is_none() {
                    return Response::error(Status::NotFound, format!("no portlet {name:?}"));
                }
                self.render(&user, Some((name, &params, is_post)))
            }
            None => self.render(&user, None),
        };
        Response::html(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portlet::HtmlPortlet;
    use crate::webform::WebFormPortlet;
    use portalws_wire::{InMemoryTransport, Transport};

    fn remote_transport() -> Arc<dyn Transport> {
        let handler: Arc<dyn Handler> = Arc::new(|req: &Request| {
            Response::html(format!(
                "<p>remote {}</p><a href=\"/other\">go</a>",
                req.path_only()
            ))
        });
        Arc::new(InMemoryTransport::new(handler))
    }

    fn page() -> PortalPage {
        let reg = Arc::new(PortletRegistry::new());
        reg.register(Arc::new(HtmlPortlet::new("help", "Help", "<p>hi</p>")));
        reg.register(Arc::new(WebFormPortlet::new(
            "gw",
            "Gateway",
            "/home",
            remote_transport(),
        )));
        reg.add_to_layout("alice", "help", 0).unwrap();
        reg.add_to_layout("alice", "gw", 1).unwrap();
        PortalPage::new(reg, "/portal")
    }

    #[test]
    fn composite_page_is_nested_tables() {
        let p = page();
        let html = p.render("alice", None);
        // Outer portal table plus one table per portlet.
        assert_eq!(html.matches("<table class=\"portal\"").count(), 1);
        assert_eq!(html.matches("<table class=\"portlet\"").count(), 2);
        assert!(html.contains("<th>Help</th>"));
        assert!(html.contains("<th>Gateway</th>"));
        assert!(html.contains("<p>hi</p>"));
        assert!(html.contains("remote /home"));
    }

    #[test]
    fn remote_links_remapped_into_portal_urls() {
        let p = page();
        let html = p.render("alice", None);
        assert!(
            html.contains("href=\"/portal?user=alice&portlet=gw&target=%2Fother\""),
            "{html}"
        );
    }

    #[test]
    fn http_get_renders_user_layout() {
        let p = page();
        let resp = p.handle(&Request::get("/portal?user=alice"));
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body_str().contains("alice's portal"));
    }

    #[test]
    fn clicking_a_remapped_link_routes_to_the_portlet() {
        let p = page();
        let resp = p.handle(&Request::get(
            "/portal?user=alice&portlet=gw&target=%2Fother",
        ));
        let html = resp.body_str();
        // The addressed portlet followed the link; the other portlet
        // still renders.
        assert!(html.contains("remote /other"), "{html}");
        assert!(html.contains("<p>hi</p>"));
    }

    #[test]
    fn unknown_portlet_is_404() {
        let p = page();
        let resp = p.handle(&Request::get("/portal?user=alice&portlet=ghost"));
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn users_see_only_their_portlets() {
        let p = page();
        p.registry().add_to_layout("bob", "help", 0).unwrap();
        let html = p.render("bob", None);
        assert!(html.contains("<th>Help</th>"));
        assert!(!html.contains("<th>Gateway</th>"));
    }

    #[test]
    fn post_routes_form_fields_to_portlet() {
        let p = page();
        let resp = p.handle(&Request::post(
            "/portal?user=alice&portlet=gw&target=%2Fsubmit",
            "field=value",
        ));
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body_str().contains("remote /submit"));
    }
}
