//! A Velocity-style template engine.
//!
//! Figure 3 renders forms through Velocity templates; this engine covers
//! the subset those templates need:
//!
//! * `$name`, `${name}`, `$item.field` — variable references;
//! * `#if($cond) … #else … #end` — conditionals (missing variables are
//!   falsy);
//! * `#foreach($item in $list) … #end` — iteration over list values.
//!
//! Values are dynamically typed ([`Value`]); lookups walk a scope chain
//! so `#foreach` variables shadow outer context.

use std::collections::BTreeMap;

use crate::{Result, WizardError};

/// A template value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Text.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// A list (iterated by `#foreach`).
    List(Vec<Value>),
    /// A record (fields accessed as `$var.field`).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Convenience constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Velocity truthiness: false/empty values are falsy.
    fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.is_empty(),
            Value::Map(m) => !m.is_empty(),
        }
    }

    fn render(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::List(l) => l.iter().map(Value::render).collect::<Vec<_>>().join(","),
            Value::Map(_) => "[object]".to_owned(),
        }
    }
}

/// Parsed template node.
#[derive(Debug, Clone, PartialEq)]
enum TNode {
    Text(String),
    Var(Vec<String>),
    If {
        cond: Vec<String>,
        then: Vec<TNode>,
        els: Vec<TNode>,
    },
    Foreach {
        var: String,
        list: Vec<String>,
        body: Vec<TNode>,
    },
}

/// The engine: parse once, render many times.
pub struct TemplateEngine {
    nodes: Vec<TNode>,
}

/// The rendering scope: a chain of maps, innermost last.
type Scope<'v> = Vec<&'v BTreeMap<String, Value>>;

impl TemplateEngine {
    /// Parse a template.
    pub fn parse(src: &str) -> Result<TemplateEngine> {
        let mut pos = 0;
        let nodes = parse_block(src, &mut pos, &["#end", "#else"], false)?;
        if pos < src.len() {
            return Err(WizardError::Template(format!(
                "unexpected directive at byte {pos}"
            )));
        }
        Ok(TemplateEngine { nodes })
    }

    /// Render with a context.
    pub fn render(&self, ctx: &BTreeMap<String, Value>) -> Result<String> {
        let mut out = String::new();
        let scope: Scope = vec![ctx];
        render_nodes(&self.nodes, &scope, &mut out)?;
        Ok(out)
    }

    /// One-shot convenience.
    pub fn render_str(src: &str, ctx: &BTreeMap<String, Value>) -> Result<String> {
        TemplateEngine::parse(src)?.render(ctx)
    }
}

fn lookup<'v>(scope: &Scope<'v>, path: &[String]) -> Option<&'v Value> {
    let mut v: &Value = scope.iter().rev().find_map(|m| m.get(path.first()?))?;
    for seg in &path[1..] {
        match v {
            Value::Map(m) => v = m.get(seg)?,
            _ => return None,
        }
    }
    Some(v)
}

fn render_nodes(nodes: &[TNode], scope: &Scope, out: &mut String) -> Result<()> {
    for node in nodes {
        match node {
            TNode::Text(t) => out.push_str(t),
            TNode::Var(path) => {
                if let Some(v) = lookup(scope, path) {
                    out.push_str(&v.render());
                }
                // Missing variables render as empty, like Velocity's $!.
            }
            TNode::If { cond, then, els } => {
                let t = lookup(scope, cond).map(Value::truthy).unwrap_or(false);
                render_nodes(if t { then } else { els }, scope, out)?;
            }
            TNode::Foreach { var, list, body } => {
                let Some(Value::List(items)) = lookup(scope, list) else {
                    continue; // absent or non-list: render nothing
                };
                for item in items {
                    let mut local = BTreeMap::new();
                    local.insert(var.clone(), item.clone());
                    let mut inner: Scope = scope.clone();
                    inner.push(&local);
                    render_nodes(body, &inner, out)?;
                }
            }
        }
    }
    Ok(())
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parse `$name`, `${name.field}`, `$name.field` starting at the `$`.
fn parse_var(src: &str, pos: &mut usize) -> Result<Vec<String>> {
    if !src[*pos..].starts_with('$') {
        return Err(WizardError::Template(format!(
            "expected a $variable at byte {}",
            *pos
        )));
    }
    *pos += 1;
    let braced = src[*pos..].starts_with('{');
    if braced {
        *pos += 1;
    }
    let rest = &src[*pos..];
    let len = rest
        .chars()
        .take_while(|&c| is_ident(c) || c == '.')
        .map(char::len_utf8)
        .sum::<usize>();
    if len == 0 {
        return Err(WizardError::Template(format!(
            "bad variable reference at byte {}",
            *pos
        )));
    }
    let path: Vec<String> = rest[..len].split('.').map(str::to_owned).collect();
    *pos += len;
    if braced {
        if !src[*pos..].starts_with('}') {
            return Err(WizardError::Template("unclosed ${…}".into()));
        }
        *pos += 1;
    }
    Ok(path)
}

/// Parse until one of `stops` (or EOF if `stops` allowed to be terminal).
fn parse_block(src: &str, pos: &mut usize, stops: &[&str], must_stop: bool) -> Result<Vec<TNode>> {
    let mut nodes = Vec::new();
    let mut text = String::new();
    while *pos < src.len() {
        let rest = &src[*pos..];
        if stops.iter().any(|s| rest.starts_with(s)) {
            if !text.is_empty() {
                nodes.push(TNode::Text(std::mem::take(&mut text)));
            }
            return Ok(nodes);
        }
        if rest.starts_with("#if(") {
            if !text.is_empty() {
                nodes.push(TNode::Text(std::mem::take(&mut text)));
            }
            *pos += 4;
            skip_ws(src, pos);
            let cond = parse_var(src, pos)?;
            skip_ws(src, pos);
            expect(src, pos, ")")?;
            let then = parse_block(src, pos, &["#else", "#end"], true)?;
            let els = if src[*pos..].starts_with("#else") {
                *pos += 5;
                parse_block(src, pos, &["#end"], true)?
            } else {
                Vec::new()
            };
            expect(src, pos, "#end")?;
            nodes.push(TNode::If { cond, then, els });
            continue;
        }
        if rest.starts_with("#foreach(") {
            if !text.is_empty() {
                nodes.push(TNode::Text(std::mem::take(&mut text)));
            }
            *pos += 9;
            skip_ws(src, pos);
            let var = parse_var(src, pos)?;
            if var.len() != 1 {
                return Err(WizardError::Template(
                    "#foreach variable must be simple".into(),
                ));
            }
            skip_ws(src, pos);
            expect(src, pos, "in")?;
            skip_ws(src, pos);
            let list = parse_var(src, pos)?;
            skip_ws(src, pos);
            expect(src, pos, ")")?;
            let body = parse_block(src, pos, &["#end"], true)?;
            expect(src, pos, "#end")?;
            nodes.push(TNode::Foreach {
                var: var.into_iter().next().expect("len checked"),
                list,
                body,
            });
            continue;
        }
        if rest.starts_with('$')
            && rest[1..]
                .chars()
                .next()
                .is_some_and(|c| is_ident(c) || c == '{')
        {
            if !text.is_empty() {
                nodes.push(TNode::Text(std::mem::take(&mut text)));
            }
            nodes.push(TNode::Var(parse_var(src, pos)?));
            continue;
        }
        let c = rest.chars().next().expect("pos < len");
        text.push(c);
        *pos += c.len_utf8();
    }
    if must_stop {
        return Err(WizardError::Template(format!(
            "unterminated block, expected one of {stops:?}"
        )));
    }
    if !text.is_empty() {
        nodes.push(TNode::Text(text));
    }
    Ok(nodes)
}

fn skip_ws(src: &str, pos: &mut usize) {
    while src[*pos..].starts_with(|c: char| c.is_whitespace()) {
        *pos += 1;
    }
}

fn expect(src: &str, pos: &mut usize, token: &str) -> Result<()> {
    if src[*pos..].starts_with(token) {
        *pos += token.len();
        Ok(())
    } else {
        Err(WizardError::Template(format!(
            "expected {token:?} at byte {}",
            *pos
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn plain_text_passthrough() {
        let out = TemplateEngine::render_str("hello <b>world</b>", &ctx(&[])).unwrap();
        assert_eq!(out, "hello <b>world</b>");
    }

    #[test]
    fn variable_substitution() {
        let out = TemplateEngine::render_str(
            "Hello $name, a.k.a. ${name}!",
            &ctx(&[("name", Value::str("alice"))]),
        )
        .unwrap();
        assert_eq!(out, "Hello alice, a.k.a. alice!");
    }

    #[test]
    fn missing_variables_render_empty() {
        let out = TemplateEngine::render_str("[$ghost]", &ctx(&[])).unwrap();
        assert_eq!(out, "[]");
    }

    #[test]
    fn dollar_without_ident_is_literal() {
        let out = TemplateEngine::render_str("cost: $ 5 and $-x", &ctx(&[])).unwrap();
        assert_eq!(out, "cost: $ 5 and $-x");
    }

    #[test]
    fn if_else() {
        let t = "#if($on)yes#else no#end";
        assert_eq!(
            TemplateEngine::render_str(t, &ctx(&[("on", Value::Bool(true))])).unwrap(),
            "yes"
        );
        assert_eq!(
            TemplateEngine::render_str(t, &ctx(&[("on", Value::Bool(false))])).unwrap(),
            " no"
        );
        assert_eq!(TemplateEngine::render_str(t, &ctx(&[])).unwrap(), " no");
    }

    #[test]
    fn truthiness_of_strings_and_lists() {
        let t = "#if($s)S#end#if($l)L#end";
        let out = TemplateEngine::render_str(
            t,
            &ctx(&[
                ("s", Value::str("")),
                ("l", Value::List(vec![Value::str("x")])),
            ]),
        )
        .unwrap();
        assert_eq!(out, "L");
    }

    #[test]
    fn foreach_over_maps() {
        let items = Value::List(vec![
            Value::Map(ctx(&[("name", Value::str("PBS"))])),
            Value::Map(ctx(&[("name", Value::str("LSF"))])),
        ]);
        let out = TemplateEngine::render_str(
            "#foreach($q in $queues)<option>$q.name</option>#end",
            &ctx(&[("queues", items)]),
        )
        .unwrap();
        assert_eq!(out, "<option>PBS</option><option>LSF</option>");
    }

    #[test]
    fn foreach_scoping_shadows_and_restores() {
        let out = TemplateEngine::render_str(
            "$x #foreach($x in $xs)[$x]#end $x",
            &ctx(&[
                ("x", Value::str("outer")),
                ("xs", Value::List(vec![Value::str("a"), Value::str("b")])),
            ]),
        )
        .unwrap();
        assert_eq!(out, "outer [a][b] outer");
    }

    #[test]
    fn nested_directives() {
        let items = Value::List(vec![
            Value::Map(ctx(&[
                ("v", Value::str("one")),
                ("show", Value::Bool(true)),
            ])),
            Value::Map(ctx(&[
                ("v", Value::str("two")),
                ("show", Value::Bool(false)),
            ])),
        ]);
        let out = TemplateEngine::render_str(
            "#foreach($i in $items)#if($i.show)$i.v #end#end",
            &ctx(&[("items", items)]),
        )
        .unwrap();
        assert_eq!(out, "one ");
    }

    #[test]
    fn parse_errors() {
        assert!(TemplateEngine::parse("#if($x) unterminated").is_err());
        assert!(TemplateEngine::parse("#foreach($x in) #end").is_err());
        assert!(TemplateEngine::parse("${unclosed").is_err());
        assert!(TemplateEngine::parse("stray #end").is_err());
    }

    #[test]
    fn dotted_paths() {
        let inner = Value::Map(ctx(&[("b", Value::str("deep"))]));
        let out = TemplateEngine::render_str("$a.b and $a.missing", &ctx(&[("a", inner)])).unwrap();
        assert_eq!(out, "deep and ");
    }
}
