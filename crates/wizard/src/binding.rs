//! Data-binding generation: the Castor source-generator analogue.
//!
//! "SchemaParser also invokes Castor's source generator to create Java
//! classes that are data bindings for the schema. This generates one
//! JavaBean class per schema element. Each element comes with the
//! associated get and set methods needed to modify element values and
//! attributes, add or delete children, etc."
//!
//! Rust has no runtime class loading, so the generated artifacts are
//! *bean classes* ([`BeanClass`]) — runtime descriptions of each schema
//! element — and *beans* ([`Bean`]), dynamically typed records checked
//! against their class on every get/set. Marshal/unmarshal map beans to
//! schema instances and back, and a marshaled bean always validates
//! against the source schema (property-tested in the crate tests).

use std::collections::BTreeMap;
use std::sync::Arc;

use portalws_xml::{Element, Node, Occurs, Schema, SimpleType, TypeDef};

use crate::som::class_name_for;
use crate::{Result, WizardError};

/// One field (child element) of a bean class.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSpec {
    /// Element name of the field.
    pub name: String,
    /// Class of the child beans.
    pub class: String,
    /// Occurrence bounds.
    pub occurs: Occurs,
}

/// A generated class: one per schema element, as in Castor.
#[derive(Debug, Clone, PartialEq)]
pub struct BeanClass {
    /// Class name (type name, or capitalized element name for anonymous
    /// types).
    pub name: String,
    /// The element this class marshals to.
    pub element: String,
    /// Simple content type, if this is a simple-content class.
    pub simple: Option<SimpleType>,
    /// Child fields in sequence order (empty for simple classes).
    pub fields: Vec<FieldSpec>,
    /// Attributes: (name, type, required).
    pub attributes: Vec<(String, SimpleType, bool)>,
}

/// The set of classes generated from one schema.
pub struct BeanRegistry {
    classes: BTreeMap<String, Arc<BeanClass>>,
    root_class: String,
    schema: Schema,
}

impl BeanRegistry {
    /// Generate classes for the global element `root` (recursively).
    pub fn generate(schema: &Schema, root: &str) -> Result<BeanRegistry> {
        let decl = schema
            .global_element(root)
            .ok_or_else(|| WizardError::UnknownElement(root.to_owned()))?;
        let mut classes = BTreeMap::new();
        let root_class = Self::gen_class(schema, decl, &mut classes)?;
        Ok(BeanRegistry {
            classes,
            root_class,
            schema: schema.clone(),
        })
    }

    fn gen_class(
        schema: &Schema,
        decl: &portalws_xml::ElementDecl,
        classes: &mut BTreeMap<String, Arc<BeanClass>>,
    ) -> Result<String> {
        let class_name = class_name_for(decl);
        if classes.contains_key(&class_name) {
            return Ok(class_name);
        }
        let ty = schema
            .resolve(&decl.ty)
            .map_err(|e| WizardError::UnknownElement(e.to_string()))?
            .clone();
        // Insert a placeholder first so recursive schemas terminate.
        classes.insert(
            class_name.clone(),
            Arc::new(BeanClass {
                name: class_name.clone(),
                element: decl.name.clone(),
                simple: None,
                fields: Vec::new(),
                attributes: Vec::new(),
            }),
        );
        let class = match ty {
            TypeDef::Simple(st) => BeanClass {
                name: class_name.clone(),
                element: decl.name.clone(),
                simple: Some(st),
                fields: Vec::new(),
                attributes: Vec::new(),
            },
            TypeDef::Complex(ct) => {
                let mut fields = Vec::with_capacity(ct.sequence.len());
                for child in &ct.sequence {
                    let child_class = Self::gen_class(schema, child, classes)?;
                    fields.push(FieldSpec {
                        name: child.name.clone(),
                        class: child_class,
                        occurs: child.occurs,
                    });
                }
                BeanClass {
                    name: class_name.clone(),
                    element: decl.name.clone(),
                    // Simple-content complex types (text + attributes)
                    // behave like simple classes that also carry attrs.
                    simple: ct.text.clone(),
                    fields,
                    attributes: ct
                        .attributes
                        .iter()
                        .map(|a| (a.name.clone(), a.ty.clone(), a.required))
                        .collect(),
                }
            }
        };
        classes.insert(class_name.clone(), Arc::new(class));
        Ok(class_name)
    }

    /// Number of generated classes — one per schema element, the E3
    /// artifact count.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Look up a class.
    pub fn class(&self, name: &str) -> Option<&Arc<BeanClass>> {
        self.classes.get(name)
    }

    /// The root class name.
    pub fn root_class(&self) -> &str {
        &self.root_class
    }

    /// Instantiate an empty bean of the root class.
    pub fn new_root(&self) -> Result<Bean> {
        self.new_bean(&self.root_class)
    }

    /// Instantiate an empty bean of any class.
    pub fn new_bean(&self, class: &str) -> Result<Bean> {
        self.classes
            .get(class)
            .map(|c| Bean::new(Arc::clone(c)))
            .ok_or_else(|| WizardError::BadBean(format!("no class {class:?}")))
    }

    /// Unmarshal a schema instance into a bean tree ("Old instances can
    /// be read in and unmarshaled to fill out the form elements").
    pub fn unmarshal(&self, el: &Element) -> Result<Bean> {
        self.unmarshal_as(&self.root_class, el)
    }

    fn unmarshal_as(&self, class_name: &str, el: &Element) -> Result<Bean> {
        let class = self
            .classes
            .get(class_name)
            .ok_or_else(|| WizardError::BadBean(format!("no class {class_name:?}")))?;
        let mut bean = Bean::new(Arc::clone(class));
        for (k, v) in el.attrs() {
            if k.starts_with("xmlns") {
                continue;
            }
            bean.set_attr(k, v)?;
        }
        if class.simple.is_some() {
            bean.set_text(el.text().trim())?;
            return Ok(bean);
        }
        for child in el.children() {
            let field = class
                .fields
                .iter()
                .find(|f| f.name == child.local_name())
                .ok_or_else(|| {
                    WizardError::BadBean(format!(
                        "class {class_name} has no field {:?}",
                        child.local_name()
                    ))
                })?
                .clone();
            let child_bean = self.unmarshal_as(&field.class, child)?;
            bean.push_child(&field.name, child_bean)?;
        }
        Ok(bean)
    }

    /// Marshal a bean and validate the result against the source schema.
    pub fn marshal_validated(&self, bean: &Bean) -> Result<Element> {
        let el = bean.marshal();
        self.schema
            .validate(&el)
            .map_err(|e| WizardError::BadForm(e.to_string()))?;
        Ok(el)
    }
}

/// A field's values inside a bean.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FieldValue {
    beans: Vec<Bean>,
}

/// A dynamically typed record instance of a [`BeanClass`].
#[derive(Debug, Clone, PartialEq)]
pub struct Bean {
    class: Arc<BeanClass>,
    text: Option<String>,
    attrs: BTreeMap<String, String>,
    /// field name → children, in field order per class.
    children: BTreeMap<String, FieldValue>,
}

impl Bean {
    /// An empty bean of `class`.
    pub fn new(class: Arc<BeanClass>) -> Bean {
        Bean {
            class,
            text: None,
            attrs: BTreeMap::new(),
            children: BTreeMap::new(),
        }
    }

    /// The bean's class.
    pub fn class(&self) -> &BeanClass {
        &self.class
    }

    fn field_spec(&self, field: &str) -> Result<&FieldSpec> {
        self.class
            .fields
            .iter()
            .find(|f| f.name == field)
            .ok_or_else(|| {
                WizardError::BadBean(format!("class {} has no field {field:?}", self.class.name))
            })
    }

    /// Set simple content (simple-content classes only).
    pub fn set_text(&mut self, text: &str) -> Result<()> {
        let st = self.class.simple.as_ref().ok_or_else(|| {
            WizardError::BadBean(format!("class {} is not simple-content", self.class.name))
        })?;
        if !st.accepts(text) {
            return Err(WizardError::BadBean(format!(
                "value {text:?} invalid for {}",
                st.base.xsd_name()
            )));
        }
        self.text = Some(text.to_owned());
        Ok(())
    }

    /// Simple content, if any.
    pub fn text(&self) -> Option<&str> {
        self.text.as_deref()
    }

    /// Set an attribute (declared attributes only, value type-checked).
    pub fn set_attr(&mut self, name: &str, value: &str) -> Result<()> {
        let (_, ty, _) = self
            .class
            .attributes
            .iter()
            .find(|(n, _, _)| n == name)
            .ok_or_else(|| {
                WizardError::BadBean(format!(
                    "class {} has no attribute {name:?}",
                    self.class.name
                ))
            })?;
        if !ty.accepts(value) {
            return Err(WizardError::BadBean(format!(
                "attribute {name:?} value {value:?} invalid"
            )));
        }
        self.attrs.insert(name.to_owned(), value.to_owned());
        Ok(())
    }

    /// Attribute value.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.get(name).map(String::as_str)
    }

    /// Append a child bean under `field` (cardinality-checked).
    pub fn push_child(&mut self, field: &str, child: Bean) -> Result<()> {
        let spec = self.field_spec(field)?.clone();
        if child.class.name != spec.class {
            return Err(WizardError::BadBean(format!(
                "field {field:?} holds {}, got {}",
                spec.class, child.class.name
            )));
        }
        let slot = self.children.entry(spec.name.clone()).or_default();
        if let Some(max) = spec.occurs.max {
            if slot.beans.len() as u64 >= max as u64 {
                return Err(WizardError::BadBean(format!(
                    "field {field:?} admits at most {max} children"
                )));
            }
        }
        slot.beans.push(child);
        Ok(())
    }

    /// Set the single simple-typed child `field` to `value` (creating or
    /// replacing it) — the workhorse setter for form filling.
    pub fn set(&mut self, field: &str, value: &str, registry: &BeanRegistry) -> Result<()> {
        let spec = self.field_spec(field)?.clone();
        let mut child = registry.new_bean(&spec.class)?;
        child.set_text(value)?;
        let slot = self.children.entry(spec.name).or_default();
        slot.beans.clear();
        slot.beans.push(child);
        Ok(())
    }

    /// Append a simple-typed child value (unbounded fields).
    pub fn add(&mut self, field: &str, value: &str, registry: &BeanRegistry) -> Result<()> {
        let spec = self.field_spec(field)?.clone();
        let mut child = registry.new_bean(&spec.class)?;
        child.set_text(value)?;
        self.push_child(&spec.name, child)
    }

    /// Single simple child value, if present.
    pub fn get(&self, field: &str) -> Option<&str> {
        self.children
            .get(field)
            .and_then(|fv| fv.beans.first())
            .and_then(Bean::text)
    }

    /// All simple child values of a field.
    pub fn get_all(&self, field: &str) -> Vec<&str> {
        self.children
            .get(field)
            .map(|fv| fv.beans.iter().filter_map(Bean::text).collect())
            .unwrap_or_default()
    }

    /// Child beans of a field.
    pub fn children_of(&self, field: &str) -> &[Bean] {
        self.children
            .get(field)
            .map(|fv| fv.beans.as_slice())
            .unwrap_or(&[])
    }

    /// Mutable access to the `idx`-th child of a field.
    pub fn child_mut(&mut self, field: &str, idx: usize) -> Option<&mut Bean> {
        self.children
            .get_mut(field)
            .and_then(|fv| fv.beans.get_mut(idx))
    }

    /// Remove the `idx`-th child of a field.
    pub fn remove_child(&mut self, field: &str, idx: usize) -> Result<()> {
        let fv = self
            .children
            .get_mut(field)
            .filter(|fv| idx < fv.beans.len())
            .ok_or_else(|| WizardError::BadBean(format!("no child {idx} in {field:?}")))?;
        fv.beans.remove(idx);
        Ok(())
    }

    /// Marshal to an element ("The resulting Java object can be marshaled
    /// back to a XML instance of the given schema").
    pub fn marshal(&self) -> Element {
        let mut el = Element::new(self.class.element.clone());
        for (k, v) in &self.attrs {
            el.set_attr(k.clone(), v.clone());
        }
        if let Some(text) = &self.text {
            if !text.is_empty() {
                el.push_node(Node::Text(text.clone()));
            }
        }
        // Emit fields in class declaration order, so the sequence
        // validates.
        for spec in &self.class.fields {
            if let Some(fv) = self.children.get(&spec.name) {
                for child in &fv.beans {
                    el.push_child(child.marshal());
                }
            }
        }
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_xml::{ComplexType, ElementDecl, Primitive, TypeDef};

    fn schema() -> Schema {
        Schema::new("urn:test")
            .with_type(
                "HostType",
                TypeDef::Complex(
                    ComplexType::default()
                        .with(ElementDecl::string("dns"))
                        .with(ElementDecl::int("cpus").occurs(Occurs::OPTIONAL))
                        .with_attr("ip", SimpleType::plain(Primitive::String), false),
                ),
            )
            .with_element(ElementDecl::new(
                "app",
                TypeDef::Complex(
                    ComplexType::default()
                        .with(ElementDecl::string("name"))
                        .with(ElementDecl::enumerated("kind", ["serial", "mpi"]))
                        .with(ElementDecl::string("flag").occurs(Occurs::ANY))
                        .with(ElementDecl::named("host", "HostType").occurs(Occurs::MANY))
                        .with_attr("id", SimpleType::plain(Primitive::Int), true),
                ),
            ))
    }

    fn registry() -> BeanRegistry {
        BeanRegistry::generate(&schema(), "app").unwrap()
    }

    #[test]
    fn one_class_per_element() {
        let r = registry();
        // App, Name, Kind, Flag, HostType, Dns, Cpus.
        assert_eq!(r.class_count(), 7);
        assert_eq!(r.root_class(), "App");
        assert!(r.class("HostType").is_some());
    }

    #[test]
    fn build_marshal_validate() {
        let r = registry();
        let mut app = r.new_root().unwrap();
        app.set_attr("id", "3").unwrap();
        app.set("name", "gaussian", &r).unwrap();
        app.set("kind", "mpi", &r).unwrap();
        app.add("flag", "-fast", &r).unwrap();
        app.add("flag", "-big", &r).unwrap();
        let mut host = r.new_bean("HostType").unwrap();
        host.set("dns", "tg-login.sdsc.edu", &r).unwrap();
        host.set("cpus", "32", &r).unwrap();
        host.set_attr("ip", "10.0.0.1").unwrap();
        app.push_child("host", host).unwrap();
        let el = r.marshal_validated(&app).unwrap();
        assert_eq!(el.find_text("name"), Some("gaussian"));
        assert_eq!(el.find_all("flag").count(), 2);
    }

    #[test]
    fn marshal_orders_fields_like_the_sequence() {
        let r = registry();
        let mut app = r.new_root().unwrap();
        app.set_attr("id", "1").unwrap();
        // Set fields out of order.
        let mut host = r.new_bean("HostType").unwrap();
        host.set("dns", "h", &r).unwrap();
        app.push_child("host", host).unwrap();
        app.set("kind", "serial", &r).unwrap();
        app.set("name", "x", &r).unwrap();
        // Still validates: marshal re-orders by class declaration order.
        r.marshal_validated(&app).unwrap();
    }

    #[test]
    fn unmarshal_round_trip() {
        let r = registry();
        let mut app = r.new_root().unwrap();
        app.set_attr("id", "9").unwrap();
        app.set("name", "code", &r).unwrap();
        app.set("kind", "serial", &r).unwrap();
        let mut host = r.new_bean("HostType").unwrap();
        host.set("dns", "h0", &r).unwrap();
        app.push_child("host", host).unwrap();

        let el = app.marshal();
        let back = r.unmarshal(&el).unwrap();
        assert_eq!(back, app);
        assert_eq!(back.get("name"), Some("code"));
        assert_eq!(back.children_of("host")[0].get("dns"), Some("h0"));
    }

    #[test]
    fn type_checking_on_set() {
        let r = registry();
        let mut app = r.new_root().unwrap();
        assert!(app.set_attr("id", "notanint").is_err());
        assert!(app.set("kind", "gpu", &r).is_err()); // not in enumeration
        let mut host = r.new_bean("HostType").unwrap();
        assert!(host.set("cpus", "many", &r).is_err());
    }

    #[test]
    fn unknown_fields_and_attrs_rejected() {
        let r = registry();
        let mut app = r.new_root().unwrap();
        assert!(app.set("nosuch", "x", &r).is_err());
        assert!(app.set_attr("nosuch", "x").is_err());
        assert!(app.get("nosuch").is_none());
    }

    #[test]
    fn cardinality_enforced_on_push() {
        let r = registry();
        let mut app = r.new_root().unwrap();
        app.set("name", "a", &r).unwrap();
        // name admits one child; a second push must fail.
        let mut extra = r.new_bean("Name").unwrap();
        extra.set_text("b").unwrap();
        assert!(app.push_child("name", extra).is_err());
    }

    #[test]
    fn wrong_class_rejected_on_push() {
        let r = registry();
        let mut app = r.new_root().unwrap();
        let name_bean = r.new_bean("Name").unwrap();
        assert!(app.push_child("host", name_bean).is_err());
    }

    #[test]
    fn missing_required_content_fails_validation() {
        let r = registry();
        let mut app = r.new_root().unwrap();
        app.set_attr("id", "1").unwrap();
        app.set("name", "x", &r).unwrap();
        // kind and host missing.
        assert!(r.marshal_validated(&app).is_err());
    }

    #[test]
    fn remove_child_and_edit() {
        let r = registry();
        let mut app = r.new_root().unwrap();
        app.add("flag", "-a", &r).unwrap();
        app.add("flag", "-b", &r).unwrap();
        app.remove_child("flag", 0).unwrap();
        assert_eq!(app.get_all("flag"), vec!["-b"]);
        assert!(app.remove_child("flag", 5).is_err());
    }

    #[test]
    fn unmarshal_rejects_unknown_children() {
        let r = registry();
        let el = Element::parse(r#"<app id="1"><mystery/></app>"#).unwrap();
        assert!(r.unmarshal(&el).is_err());
    }
}
