//! The deployed wizard web application.
//!
//! Figure 3's SchemaParser "deploys them as a JSP web application, and
//! loads the new web application into the server". The Rust equivalent:
//! [`WizardApp`] is a wire [`Handler`] that serves the generated form on
//! GET and marshals submissions into validated schema instances on POST —
//! mountable on any portal server, and proxied by `WebFormPortlet` in the
//! portlet layer.

use parking_lot::RwLock;
use portalws_wire::http::parse_form;
use portalws_wire::{Handler, Request, Response, Status};
use portalws_xml::{Element, Schema};

use crate::forms::SchemaWizard;

/// A deployed schema-wizard application.
pub struct WizardApp {
    wizard: SchemaWizard,
    mount: String,
    /// Instances created through the app, newest last (the session
    /// archive the portal layer reads back).
    instances: RwLock<Vec<Element>>,
}

impl WizardApp {
    /// Deploy a wizard for `schema` at path prefix `mount`
    /// (e.g. `"/wizard"`).
    pub fn new(schema: Schema, mount: impl Into<String>) -> WizardApp {
        WizardApp {
            wizard: SchemaWizard::new(schema),
            mount: mount.into(),
            instances: RwLock::new(Vec::new()),
        }
    }

    /// The wizard in use.
    pub fn wizard(&self) -> &SchemaWizard {
        &self.wizard
    }

    /// Instances created so far.
    pub fn instances(&self) -> Vec<Element> {
        self.instances.read().clone()
    }

    fn root_of(&self, req: &Request) -> Option<String> {
        let path = req.path_only();
        let rest = path.strip_prefix(self.mount.as_str())?;
        let root = rest.trim_matches('/');
        if root.is_empty() {
            None
        } else {
            Some(root.to_owned())
        }
    }

    fn index_page(&self) -> String {
        let mut body = String::from("<html><body><h1>Schema wizard</h1><ul>");
        for decl in &self.wizard.schema().elements {
            body.push_str(&format!(
                "<li><a href=\"{}/{}\">{}</a></li>",
                self.mount, decl.name, decl.name
            ));
        }
        body.push_str("</ul></body></html>");
        body
    }
}

impl Handler for WizardApp {
    fn handle(&self, req: &Request) -> Response {
        let Some(root) = self.root_of(req) else {
            return Response::html(self.index_page());
        };
        match req.method.as_str() {
            "GET" => {
                let action = format!("{}/{root}", self.mount);
                match self.wizard.generate_page(&root, &action, &[]) {
                    Ok(page) => Response::html(page),
                    Err(e) => Response::error(Status::NotFound, e.to_string()),
                }
            }
            "POST" => {
                let form = parse_form(&req.body_str());
                match self.wizard.instance_from_form(&root, &form) {
                    Ok(instance) => {
                        self.instances.write().push(instance.clone());
                        Response::xml(instance.to_document())
                    }
                    Err(e) => Response::error(Status::BadRequest, e.to_string()),
                }
            }
            _ => Response::error(Status::BadRequest, "GET or POST only"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_wire::http::encode_form;
    use portalws_xml::{ComplexType, ElementDecl, TypeDef};

    fn app() -> WizardApp {
        let schema = Schema::new("urn:t").with_element(ElementDecl::new(
            "experiment",
            TypeDef::Complex(
                ComplexType::default()
                    .with(ElementDecl::string("title"))
                    .with(ElementDecl::enumerated("code", ["g98", "amber"])),
            ),
        ));
        WizardApp::new(schema, "/wizard")
    }

    #[test]
    fn index_lists_roots() {
        let resp = app().handle(&Request::get("/wizard"));
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body_str().contains("/wizard/experiment"));
    }

    #[test]
    fn get_serves_form() {
        let resp = app().handle(&Request::get("/wizard/experiment"));
        assert_eq!(resp.status, Status::Ok);
        let page = resp.body_str();
        assert!(page.contains("name=\"experiment/title\""));
        assert!(page.contains("action=\"/wizard/experiment\""));
    }

    #[test]
    fn unknown_root_404() {
        let resp = app().handle(&Request::get("/wizard/ghost"));
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn post_creates_validated_instance() {
        let a = app();
        let body = encode_form(&[
            ("experiment/title".into(), "run 1".into()),
            ("experiment/code".into(), "g98".into()),
        ]);
        let resp = a.handle(&Request::post("/wizard/experiment", body));
        assert_eq!(resp.status, Status::Ok);
        let doc = Element::parse(&resp.body_str()).unwrap();
        assert_eq!(doc.find_text("title"), Some("run 1"));
        assert_eq!(a.instances().len(), 1);
    }

    #[test]
    fn post_bad_data_is_400() {
        let a = app();
        let body = encode_form(&[("experiment/code".into(), "fortran".into())]);
        let resp = a.handle(&Request::post("/wizard/experiment", body));
        assert_eq!(resp.status, Status::BadRequest);
        assert!(a.instances().is_empty());
    }

    #[test]
    fn full_http_cycle_with_url_encoding() {
        let a = app();
        // Values with spaces and specials survive the form encoding.
        let body = encode_form(&[
            ("experiment/title".into(), "p = q & r < s".into()),
            ("experiment/code".into(), "amber".into()),
        ]);
        let resp = a.handle(&Request::post("/wizard/experiment", body));
        assert_eq!(resp.status, Status::Ok);
        let doc = Element::parse(&resp.body_str()).unwrap();
        assert_eq!(doc.find_text("title"), Some("p = q & r < s"));
    }
}
