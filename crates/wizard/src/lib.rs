//! The schema wizard of §5.3 / Figure 3.
//!
//! "By abstracting the application description into instances of a set of
//! linked schema, we may automate the generation of the user interface: a
//! web client proxy portlet can download the XML description of an
//! application and automatically map the schema elements into visual
//! widgets (HTML Form elements, for example). This approach can be
//! generalized to create a general purpose schema wizard."
//!
//! The Figure 3 pipeline, stage by stage:
//!
//! | Figure 3 stage               | This crate                         |
//! |------------------------------|------------------------------------|
//! | Schema Processor             | `xml::Schema` parsing + [`som`]    |
//! | Castor SOM                   | [`som::Som`] constituent traversal |
//! | Castor source generator → JavaBeans | [`binding`] bean classes    |
//! | Velocity templates           | [`template`] engine                |
//! | JSP and HTML forms           | [`forms`] + [`webapp`]             |
//!
//! The four templated constituent types come straight from the paper:
//! "single simple types, enumerated simple types, unbounded simple types,
//! and complex types."

pub mod binding;
pub mod forms;
pub mod som;
pub mod template;
pub mod webapp;

pub use binding::{Bean, BeanClass, BeanRegistry, FieldValue};
pub use forms::SchemaWizard;
pub use som::{Constituent, ConstituentKind, Som};
pub use template::{TemplateEngine, Value};
pub use webapp::WizardApp;

use std::fmt;

/// Errors raised by the wizard pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WizardError {
    /// The schema lacks the requested element or type.
    UnknownElement(String),
    /// A template failed to render.
    Template(String),
    /// Submitted form data does not produce a valid instance.
    BadForm(String),
    /// Bean misuse (unknown field, wrong cardinality).
    BadBean(String),
}

impl fmt::Display for WizardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WizardError::UnknownElement(e) => write!(f, "unknown schema element {e:?}"),
            WizardError::Template(msg) => write!(f, "template error: {msg}"),
            WizardError::BadForm(msg) => write!(f, "bad form submission: {msg}"),
            WizardError::BadBean(msg) => write!(f, "bean error: {msg}"),
        }
    }
}

impl std::error::Error for WizardError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WizardError>;
