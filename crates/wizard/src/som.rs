//! Schema Object Model: classify schema constituents for templating.
//!
//! "The SOM provides a more convenient API for working with general
//! schema elements than the XML DOM… The SOM is used to transverse the
//! schema to detect if the element corresponds to one of the templated
//! types above."

use portalws_xml::{Occurs, Schema, SimpleType, TypeDef, TypeRef};

use crate::{Result, WizardError};

/// The four templated constituent types of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstituentKind {
    /// A simple-typed element occurring at most once.
    SingleSimple,
    /// A simple-typed element restricted to an enumeration.
    EnumeratedSimple,
    /// A simple-typed element with `maxOccurs > 1`.
    UnboundedSimple,
    /// A complex-typed element (renders as a nested fieldset).
    Complex,
}

/// One schema constituent discovered by traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct Constituent {
    /// Slash path from the root element (`application/basicInformation/name`).
    pub path: String,
    /// Element name.
    pub name: String,
    /// Template classification.
    pub kind: ConstituentKind,
    /// Occurrence bounds.
    pub occurs: Occurs,
    /// Nesting depth from the root (root = 0).
    pub depth: usize,
    /// Documentation, if the schema carries any (used as the form label).
    pub doc: Option<String>,
    /// The simple type: set for the three simple kinds, and for complex
    /// constituents with simple (text) content.
    pub simple: Option<SimpleType>,
    /// Required attributes of a complex constituent (rendered as inputs).
    pub attributes: Vec<(String, SimpleType, bool)>,
}

/// Traversal façade over a schema.
pub struct Som<'s> {
    schema: &'s Schema,
}

impl<'s> Som<'s> {
    /// Wrap a schema.
    pub fn new(schema: &'s Schema) -> Som<'s> {
        Som { schema }
    }

    /// Depth-first constituent list for the global element `root`.
    pub fn walk(&self, root: &str) -> Result<Vec<Constituent>> {
        let decl = self
            .schema
            .global_element(root)
            .ok_or_else(|| WizardError::UnknownElement(root.to_owned()))?;
        let mut out = Vec::new();
        self.visit(decl, root, 0, &mut out)?;
        Ok(out)
    }

    fn visit(
        &self,
        decl: &portalws_xml::ElementDecl,
        path: &str,
        depth: usize,
        out: &mut Vec<Constituent>,
    ) -> Result<()> {
        let ty = self
            .schema
            .resolve(&decl.ty)
            .map_err(|e| WizardError::UnknownElement(e.to_string()))?;
        match ty {
            TypeDef::Simple(st) => {
                let kind = if !st.enumeration.is_empty() {
                    ConstituentKind::EnumeratedSimple
                } else if decl.occurs.is_unbounded() {
                    ConstituentKind::UnboundedSimple
                } else {
                    ConstituentKind::SingleSimple
                };
                out.push(Constituent {
                    path: path.to_owned(),
                    name: decl.name.clone(),
                    kind,
                    occurs: decl.occurs,
                    depth,
                    doc: decl.doc.clone(),
                    simple: Some(st.clone()),
                    attributes: Vec::new(),
                });
            }
            TypeDef::Complex(ct) => {
                out.push(Constituent {
                    path: path.to_owned(),
                    name: decl.name.clone(),
                    kind: ConstituentKind::Complex,
                    occurs: decl.occurs,
                    depth,
                    doc: decl.doc.clone(),
                    // Simple-content complex types expose their text type
                    // so the form can render a value input.
                    simple: ct.text.clone(),
                    attributes: ct
                        .attributes
                        .iter()
                        .map(|a| (a.name.clone(), a.ty.clone(), a.required))
                        .collect(),
                });
                for child in &ct.sequence {
                    let child_path = format!("{path}/{}", child.name);
                    self.visit(child, &child_path, depth + 1, out)?;
                }
            }
        }
        Ok(())
    }

    /// Count constituents by kind — the artifact-count series of
    /// experiment E3.
    pub fn census(&self, root: &str) -> Result<[usize; 4]> {
        let mut counts = [0usize; 4];
        for c in self.walk(root)? {
            let i = match c.kind {
                ConstituentKind::SingleSimple => 0,
                ConstituentKind::EnumeratedSimple => 1,
                ConstituentKind::UnboundedSimple => 2,
                ConstituentKind::Complex => 3,
            };
            counts[i] += 1;
        }
        Ok(counts)
    }
}

/// A named-type reference helper used by binding generation: the
/// type-name a declaration resolves to, for naming generated classes.
pub fn class_name_for(decl: &portalws_xml::ElementDecl) -> String {
    match &decl.ty {
        TypeRef::Named(n) => n.clone(),
        TypeRef::Inline(_) => {
            // Anonymous types get a class named after the element, like
            // Castor's generated classes.
            let mut name = decl.name.clone();
            if let Some(first) = name.get_mut(0..1) {
                first.make_ascii_uppercase();
            }
            name
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_xml::{ComplexType, ElementDecl, Primitive, SimpleType, TypeDef};

    fn schema() -> Schema {
        Schema::new("urn:test").with_element(ElementDecl::new(
            "job",
            TypeDef::Complex(
                ComplexType::default()
                    .with(ElementDecl::string("name").doc("Job name"))
                    .with(ElementDecl::enumerated("scheduler", ["PBS", "LSF"]))
                    .with(ElementDecl::string("arg").occurs(Occurs::ANY))
                    .with(ElementDecl::new(
                        "resources",
                        TypeDef::Complex(
                            ComplexType::default()
                                .with(ElementDecl::int("cpus"))
                                .with_attr("host", SimpleType::plain(Primitive::String), true),
                        ),
                    )),
            ),
        ))
    }

    #[test]
    fn walk_classifies_all_four_kinds() {
        let s = schema();
        let constituents = Som::new(&s).walk("job").unwrap();
        let kinds: Vec<(String, ConstituentKind)> = constituents
            .iter()
            .map(|c| (c.path.clone(), c.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("job".into(), ConstituentKind::Complex),
                ("job/name".into(), ConstituentKind::SingleSimple),
                ("job/scheduler".into(), ConstituentKind::EnumeratedSimple),
                ("job/arg".into(), ConstituentKind::UnboundedSimple),
                ("job/resources".into(), ConstituentKind::Complex),
                ("job/resources/cpus".into(), ConstituentKind::SingleSimple),
            ]
        );
    }

    #[test]
    fn depths_and_docs() {
        let s = schema();
        let cs = Som::new(&s).walk("job").unwrap();
        assert_eq!(cs[0].depth, 0);
        assert_eq!(cs[5].depth, 2);
        assert_eq!(cs[1].doc.as_deref(), Some("Job name"));
    }

    #[test]
    fn complex_constituents_carry_attributes() {
        let s = schema();
        let cs = Som::new(&s).walk("job").unwrap();
        let resources = cs.iter().find(|c| c.name == "resources").unwrap();
        assert_eq!(resources.attributes.len(), 1);
        assert_eq!(resources.attributes[0].0, "host");
        assert!(resources.attributes[0].2);
    }

    #[test]
    fn census_counts() {
        let s = schema();
        assert_eq!(Som::new(&s).census("job").unwrap(), [2, 1, 1, 2]);
    }

    #[test]
    fn unknown_root_errors() {
        let s = schema();
        assert!(matches!(
            Som::new(&s).walk("ghost"),
            Err(WizardError::UnknownElement(_))
        ));
    }

    #[test]
    fn class_names() {
        assert_eq!(class_name_for(&ElementDecl::string("name")), "Name");
        assert_eq!(
            class_name_for(&ElementDecl::named("host", "HostType")),
            "HostType"
        );
    }
}
