//! Automatic HTML-form generation and form-to-instance marshaling.
//!
//! "As types are detected the Velocity engine is started and used to
//! create a JSP page with the appropriate property values obtained from
//! the SOM… Each template generates a JSP nugget that is used to build up
//! the final page… The resulting JSP page has form elements that can be
//! filled out to create an instance of the schema."
//!
//! Field naming: an input is named by its constituent's slash path
//! (`application/basicInformation/name`); attributes append `/@attr`.
//! Unbounded simple constituents repeat the same input name; submission
//! order gives the instance order. Unbounded *complex* constituents are
//! rendered once (their minimum occurrence) — the same simplification the
//! 2002 prototype made for its first forms.

use std::collections::BTreeMap;

use portalws_xml::{Element, ElementDecl, Schema, TypeDef};

use crate::binding::{Bean, BeanRegistry};
use crate::som::{class_name_for, Constituent, ConstituentKind, Som};
use crate::template::{TemplateEngine, Value};
use crate::{Result, WizardError};

/// Velocity template for a single simple-typed field.
const T_SINGLE: &str = "<label>$label</label> <input type=\"text\" name=\"$name\" value=\"$value\"/>#if($doc) <small>$doc</small>#end<br/>\n";

/// Velocity template for an enumerated field.
const T_ENUM: &str = "<label>$label</label> <select name=\"$name\">#foreach($o in $options)<option value=\"$o.value\"#if($o.selected) selected#end>$o.value</option>#end</select><br/>\n";

/// Velocity template for an unbounded simple field (three slots, like the
/// 2002 prototype forms).
const T_UNBOUNDED: &str = "<label>$label (repeatable)</label>#foreach($s in $slots) <input type=\"text\" name=\"$name\" value=\"$s.value\"/>#end<br/>\n";

/// Velocity templates for complex fieldset open/close.
const T_COMPLEX_OPEN: &str = "<fieldset><legend>$label#if($doc) — $doc#end</legend>\n$attributes";
const T_COMPLEX_CLOSE: &str = "</fieldset>\n";

/// Velocity template for one attribute input inside a complex fieldset.
const T_ATTR: &str = "<label>@$label</label> <input type=\"text\" name=\"$name\" value=\"$value\"/>#if($required) <b>*</b>#end<br/>\n";

/// The page shell.
const T_PAGE: &str = "<html><head><title>$title</title></head><body>\n<h1>$title</h1>\n<form method=\"POST\" action=\"$action\">\n$body<input type=\"submit\" value=\"Create instance\"/>\n</form></body></html>\n";

/// The wizard: schema in, forms and instances out.
pub struct SchemaWizard {
    schema: Schema,
}

/// Form data: repeated keys allowed, order significant.
pub type FormData = [(String, String)];

fn form_all<'f>(form: &'f FormData, key: &str) -> Vec<&'f str> {
    form.iter()
        .filter(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .filter(|v| !v.trim().is_empty())
        .collect()
}

fn form_first<'f>(form: &'f FormData, key: &str) -> Option<&'f str> {
    form_all(form, key).into_iter().next()
}

impl SchemaWizard {
    /// Wrap a schema.
    pub fn new(schema: Schema) -> SchemaWizard {
        SchemaWizard { schema }
    }

    /// The wrapped schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Generate the bean classes for `root` (Fig. 3's source-generation
    /// stage, exposed for callers that want the bindings directly).
    pub fn bindings(&self, root: &str) -> Result<BeanRegistry> {
        BeanRegistry::generate(&self.schema, root)
    }

    /// Generate the full HTML form page for global element `root`,
    /// posting to `action`. `prefill` optionally carries an existing
    /// instance's values (edit-old-session flow).
    pub fn generate_page(&self, root: &str, action: &str, prefill: &FormData) -> Result<String> {
        let constituents = Som::new(&self.schema).walk(root)?;
        let mut body = String::new();
        let mut open_depth: Vec<usize> = Vec::new();
        for c in &constituents {
            // Close fieldsets for siblings shallower than this one.
            while let Some(&d) = open_depth.last() {
                if c.depth <= d {
                    body.push_str(T_COMPLEX_CLOSE);
                    open_depth.pop();
                } else {
                    break;
                }
            }
            body.push_str(&render_constituent(c, prefill)?);
            if c.kind == ConstituentKind::Complex {
                open_depth.push(c.depth);
            }
        }
        for _ in open_depth {
            body.push_str(T_COMPLEX_CLOSE);
        }
        let ctx = BTreeMap::from([
            (
                "title".to_owned(),
                Value::str(format!("{root} instance editor")),
            ),
            ("action".to_owned(), Value::str(action)),
            ("body".to_owned(), Value::str(body)),
        ]);
        TemplateEngine::render_str(T_PAGE, &ctx)
    }

    /// Marshal submitted form data into a validated schema instance.
    pub fn instance_from_form(&self, root: &str, form: &FormData) -> Result<Element> {
        let registry = self.bindings(root)?;
        let decl = self
            .schema
            .global_element(root)
            .ok_or_else(|| WizardError::UnknownElement(root.to_owned()))?;
        let beans = self.build_beans(decl, root, form, &registry)?;
        let bean = beans
            .into_iter()
            .next()
            .ok_or_else(|| WizardError::BadForm(format!("no data for {root:?}")))?;
        registry.marshal_validated(&bean)
    }

    fn build_beans(
        &self,
        decl: &ElementDecl,
        path: &str,
        form: &FormData,
        registry: &BeanRegistry,
    ) -> Result<Vec<Bean>> {
        let class = class_name_for(decl);
        let ty = self
            .schema
            .resolve(&decl.ty)
            .map_err(|e| WizardError::UnknownElement(e.to_string()))?;
        match ty {
            TypeDef::Simple(_) => {
                let values = form_all(form, path);
                if values.is_empty() {
                    if decl.occurs.min == 0 {
                        return Ok(Vec::new());
                    }
                    return Err(WizardError::BadForm(format!(
                        "missing required field {path:?}"
                    )));
                }
                let take = decl
                    .occurs
                    .max
                    .map(|m| m as usize)
                    .unwrap_or(usize::MAX)
                    .min(values.len());
                values[..take]
                    .iter()
                    .map(|v| {
                        let mut b = registry.new_bean(&class)?;
                        b.set_text(v.trim())
                            .map_err(|e| WizardError::BadForm(e.to_string()))?;
                        Ok(b)
                    })
                    .collect()
            }
            TypeDef::Complex(ct) => {
                // Skip an optional complex group the form left untouched.
                let touched = form.iter().any(|(k, v)| {
                    !v.trim().is_empty() && (k == path || k.starts_with(&format!("{path}/")))
                });
                if !touched && decl.occurs.min == 0 {
                    return Ok(Vec::new());
                }
                let mut bean = registry.new_bean(&class)?;
                for (aname, _ty, required) in ct
                    .attributes
                    .iter()
                    .map(|a| (a.name.clone(), a.ty.clone(), a.required))
                {
                    let key = format!("{path}/@{aname}");
                    match form_first(form, &key) {
                        Some(v) => bean
                            .set_attr(&aname, v.trim())
                            .map_err(|e| WizardError::BadForm(e.to_string()))?,
                        None if required => {
                            return Err(WizardError::BadForm(format!(
                                "missing required attribute {key:?}"
                            )))
                        }
                        None => {}
                    }
                }
                if ct.text.is_some() {
                    if let Some(v) = form_first(form, path) {
                        bean.set_text(v.trim())
                            .map_err(|e| WizardError::BadForm(e.to_string()))?;
                    }
                }
                for child in &ct.sequence {
                    let child_path = format!("{path}/{}", child.name);
                    for cb in self.build_beans(child, &child_path, form, registry)? {
                        bean.push_child(&child.name, cb)
                            .map_err(|e| WizardError::BadForm(e.to_string()))?;
                    }
                }
                Ok(vec![bean])
            }
        }
    }
}

fn label_of(c: &Constituent) -> String {
    c.name.clone()
}

fn render_constituent(c: &Constituent, prefill: &FormData) -> Result<String> {
    let value = form_first(prefill, &c.path).unwrap_or("").to_owned();
    match c.kind {
        ConstituentKind::SingleSimple => {
            let ctx = BTreeMap::from([
                ("label".to_owned(), Value::str(label_of(c))),
                ("name".to_owned(), Value::str(&c.path)),
                ("value".to_owned(), Value::str(value)),
                (
                    "doc".to_owned(),
                    Value::str(c.doc.clone().unwrap_or_default()),
                ),
            ]);
            TemplateEngine::render_str(T_SINGLE, &ctx)
        }
        ConstituentKind::EnumeratedSimple => {
            let st = c.simple.as_ref().expect("enumerated has simple type");
            let options = Value::List(
                st.enumeration
                    .iter()
                    .map(|o| {
                        Value::Map(BTreeMap::from([
                            ("value".to_owned(), Value::str(o)),
                            ("selected".to_owned(), Value::Bool(*o == value)),
                        ]))
                    })
                    .collect(),
            );
            let ctx = BTreeMap::from([
                ("label".to_owned(), Value::str(label_of(c))),
                ("name".to_owned(), Value::str(&c.path)),
                ("options".to_owned(), options),
            ]);
            TemplateEngine::render_str(T_ENUM, &ctx)
        }
        ConstituentKind::UnboundedSimple => {
            let existing = form_all(prefill, &c.path);
            let slots: Vec<Value> = (0..existing.len().max(3))
                .map(|i| {
                    Value::Map(BTreeMap::from([(
                        "value".to_owned(),
                        Value::str(existing.get(i).copied().unwrap_or("")),
                    )]))
                })
                .collect();
            let ctx = BTreeMap::from([
                ("label".to_owned(), Value::str(label_of(c))),
                ("name".to_owned(), Value::str(&c.path)),
                ("slots".to_owned(), Value::List(slots)),
            ]);
            TemplateEngine::render_str(T_UNBOUNDED, &ctx)
        }
        ConstituentKind::Complex => {
            let mut attrs = String::new();
            // Simple-content complex types get a value input for the text.
            if c.simple.is_some() {
                let ctx = BTreeMap::from([
                    (
                        "label".to_owned(),
                        Value::str(format!("{} value", label_of(c))),
                    ),
                    ("name".to_owned(), Value::str(&c.path)),
                    ("value".to_owned(), Value::str(value.clone())),
                    ("doc".to_owned(), Value::str("")),
                ]);
                attrs.push_str(&TemplateEngine::render_str(T_SINGLE, &ctx)?);
            }
            for (aname, _ty, required) in &c.attributes {
                let key = format!("{}/@{aname}", c.path);
                let ctx = BTreeMap::from([
                    ("label".to_owned(), Value::str(aname)),
                    ("name".to_owned(), Value::str(&key)),
                    (
                        "value".to_owned(),
                        Value::str(form_first(prefill, &key).unwrap_or("")),
                    ),
                    ("required".to_owned(), Value::Bool(*required)),
                ]);
                attrs.push_str(&TemplateEngine::render_str(T_ATTR, &ctx)?);
            }
            let ctx = BTreeMap::from([
                ("label".to_owned(), Value::str(label_of(c))),
                (
                    "doc".to_owned(),
                    Value::str(c.doc.clone().unwrap_or_default()),
                ),
                ("attributes".to_owned(), Value::str(attrs)),
            ]);
            TemplateEngine::render_str(T_COMPLEX_OPEN, &ctx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_xml::{ComplexType, ElementDecl, Occurs, Primitive, SimpleType, TypeDef};

    fn schema() -> Schema {
        Schema::new("urn:test").with_element(ElementDecl::new(
            "job",
            TypeDef::Complex(
                ComplexType::default()
                    .with(ElementDecl::string("name").doc("Job name"))
                    .with(ElementDecl::enumerated("scheduler", ["PBS", "LSF"]))
                    .with(ElementDecl::string("arg").occurs(Occurs::ANY))
                    .with(
                        ElementDecl::new(
                            "resources",
                            TypeDef::Complex(
                                ComplexType::default()
                                    .with(ElementDecl::int("cpus"))
                                    .with_attr("host", SimpleType::plain(Primitive::String), true),
                            ),
                        )
                        .occurs(Occurs::OPTIONAL),
                    ),
            ),
        ))
    }

    fn wizard() -> SchemaWizard {
        SchemaWizard::new(schema())
    }

    fn pairs(data: &[(&str, &str)]) -> Vec<(String, String)> {
        data.iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    #[test]
    fn page_contains_all_widget_kinds() {
        let page = wizard().generate_page("job", "/wizard/job", &[]).unwrap();
        assert!(page.contains("name=\"job/name\""), "{page}");
        assert!(page.contains("<select name=\"job/scheduler\">"));
        assert!(page.contains("<option value=\"PBS\""));
        // Three slots for the unbounded field.
        assert_eq!(page.matches("name=\"job/arg\"").count(), 3);
        assert!(page.contains("<fieldset><legend>resources"));
        assert!(page.contains("name=\"job/resources/@host\""));
        assert!(page.contains("method=\"POST\" action=\"/wizard/job\""));
    }

    #[test]
    fn fieldsets_balance() {
        let page = wizard().generate_page("job", "/x", &[]).unwrap();
        assert_eq!(
            page.matches("<fieldset>").count(),
            page.matches("</fieldset>").count()
        );
    }

    #[test]
    fn docs_appear_as_hints() {
        let page = wizard().generate_page("job", "/x", &[]).unwrap();
        assert!(page.contains("<small>Job name</small>"));
    }

    #[test]
    fn prefill_populates_values_and_selection() {
        let pre = pairs(&[
            ("job/name", "g98"),
            ("job/scheduler", "LSF"),
            ("job/arg", "-a"),
        ]);
        let page = wizard().generate_page("job", "/x", &pre).unwrap();
        assert!(page.contains("value=\"g98\""));
        assert!(page.contains("<option value=\"LSF\" selected>"));
        assert!(page.contains("value=\"-a\""));
    }

    #[test]
    fn form_round_trip_produces_valid_instance() {
        let w = wizard();
        let form = pairs(&[
            ("job/name", "g98run"),
            ("job/scheduler", "PBS"),
            ("job/arg", "-fast"),
            ("job/arg", "-big"),
            ("job/resources/cpus", "8"),
            ("job/resources/@host", "tg-login"),
        ]);
        let inst = w.instance_from_form("job", &form).unwrap();
        assert_eq!(inst.find_text("name"), Some("g98run"));
        assert_eq!(inst.find_all("arg").count(), 2);
        assert_eq!(
            inst.find("resources").and_then(|r| r.attr("host")),
            Some("tg-login")
        );
        // And it validates against the schema (checked inside, but assert
        // again from outside for clarity).
        w.schema().validate(&inst).unwrap();
    }

    #[test]
    fn optional_group_skipped_when_untouched() {
        let w = wizard();
        let form = pairs(&[("job/name", "n"), ("job/scheduler", "PBS")]);
        let inst = w.instance_from_form("job", &form).unwrap();
        assert!(inst.find("resources").is_none());
    }

    #[test]
    fn missing_required_field_rejected() {
        let w = wizard();
        let form = pairs(&[("job/scheduler", "PBS")]);
        let err = w.instance_from_form("job", &form).unwrap_err();
        assert!(err.to_string().contains("job/name"), "{err}");
    }

    #[test]
    fn bad_enum_value_rejected() {
        let w = wizard();
        let form = pairs(&[("job/name", "n"), ("job/scheduler", "SLURM")]);
        assert!(w.instance_from_form("job", &form).is_err());
    }

    #[test]
    fn missing_required_attribute_rejected() {
        let w = wizard();
        let form = pairs(&[
            ("job/name", "n"),
            ("job/scheduler", "PBS"),
            ("job/resources/cpus", "4"),
        ]);
        let err = w.instance_from_form("job", &form).unwrap_err();
        assert!(err.to_string().contains("@host"), "{err}");
    }

    #[test]
    fn empty_values_treated_as_absent() {
        let w = wizard();
        let form = pairs(&[
            ("job/name", "n"),
            ("job/scheduler", "PBS"),
            ("job/arg", ""),
            ("job/arg", "  "),
            ("job/resources/cpus", ""),
        ]);
        let inst = w.instance_from_form("job", &form).unwrap();
        assert_eq!(inst.find_all("arg").count(), 0);
        assert!(inst.find("resources").is_none());
    }

    #[test]
    fn edit_old_instance_round_trip() {
        // Create → render prefilled form → re-submit → identical instance.
        let w = wizard();
        let form = pairs(&[
            ("job/name", "orig"),
            ("job/scheduler", "LSF"),
            ("job/arg", "-x"),
        ]);
        let inst = w.instance_from_form("job", &form).unwrap();
        let page = w.generate_page("job", "/x", &form).unwrap();
        assert!(page.contains("value=\"orig\""));
        let inst2 = w.instance_from_form("job", &form).unwrap();
        assert_eq!(inst, inst2);
    }
}
