//! Property tests over the whole Figure 3 pipeline: for any schema the
//! generator can produce, the generated form's field set is exactly what
//! `instance_from_form` consumes, and the resulting instance always
//! validates.

use portalws_wizard::{BeanRegistry, SchemaWizard, Som, TemplateEngine};
use portalws_xml::{ComplexType, ElementDecl, Occurs, Schema, TypeDef};
use proptest::prelude::*;

/// Random schemas: a root complex type with up to three levels of nested
/// groups and mixed simple leaves.
fn schema_strategy() -> impl Strategy<Value = Schema> {
    // (kind, occurs) per leaf: 0=string,1=int,2=enum; occurs 0=one,1=opt,2=many
    let leaf = (0u8..3, 0u8..3);
    let group = proptest::collection::vec(leaf, 1..5);
    proptest::collection::vec(group, 1..4).prop_map(|groups| {
        let mut root = ComplexType::default();
        for (gi, leaves) in groups.into_iter().enumerate() {
            let mut ct = ComplexType::default();
            for (li, (kind, occ)) in leaves.into_iter().enumerate() {
                let name = format!("f{gi}x{li}");
                let mut decl = match kind {
                    0 => ElementDecl::string(name),
                    1 => ElementDecl::int(name),
                    _ => ElementDecl::enumerated(name, ["alpha", "beta"]),
                };
                decl = decl.occurs(match occ {
                    0 => Occurs::ONE,
                    1 => Occurs::OPTIONAL,
                    _ => Occurs::ANY,
                });
                ct = ct.with(decl);
            }
            root = root.with(ElementDecl::new(format!("group{gi}"), TypeDef::Complex(ct)));
        }
        Schema::new("urn:prop").with_element(ElementDecl::new("root", TypeDef::Complex(root)))
    })
}

/// Fill a form for a schema from its SOM walk, like a user would.
fn fill_form(schema: &Schema) -> Vec<(String, String)> {
    use portalws_wizard::ConstituentKind;
    Som::new(schema)
        .walk("root")
        .unwrap()
        .into_iter()
        .filter_map(|c| match c.kind {
            ConstituentKind::Complex => None,
            ConstituentKind::EnumeratedSimple => Some((c.path, "beta".to_owned())),
            _ => Some((c.path, c.simple.unwrap().sample())),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_forms_round_trip_to_valid_instances(schema in schema_strategy()) {
        let wizard = SchemaWizard::new(schema.clone());
        // The page renders without error and mentions every leaf path.
        let page = wizard.generate_page("root", "/w", &[]).unwrap();
        let form = fill_form(&schema);
        for (path, _) in &form {
            prop_assert!(page.contains(&format!("name=\"{path}\"")), "missing {path}");
        }
        // Submission produces a schema-valid instance.
        let instance = wizard.instance_from_form("root", &form).unwrap();
        schema.validate(&instance).unwrap();

        // And the instance unmarshals into beans that re-marshal validly.
        let registry = BeanRegistry::generate(&schema, "root").unwrap();
        let bean = registry.unmarshal(&instance).unwrap();
        let remarshaled = registry.marshal_validated(&bean).unwrap();
        prop_assert_eq!(remarshaled, instance);
    }

    #[test]
    fn prefilled_forms_echo_their_values(schema in schema_strategy()) {
        let wizard = SchemaWizard::new(schema.clone());
        let form = fill_form(&schema);
        let page = wizard.generate_page("root", "/w", &form).unwrap();
        for (_, value) in form.iter().take(3) {
            prop_assert!(
                page.contains(&format!("value=\"{value}\""))
                    || page.contains(&format!("<option value=\"{value}\" selected>")),
                "value {value} not prefilled"
            );
        }
    }

    #[test]
    fn census_matches_walk(schema in schema_strategy()) {
        let som = Som::new(&schema);
        let walk = som.walk("root").unwrap();
        let census = som.census("root").unwrap();
        prop_assert_eq!(census.iter().sum::<usize>(), walk.len());
    }

    #[test]
    fn template_engine_never_panics(src in "\\PC{0,200}") {
        let _ = TemplateEngine::parse(&src);
    }

    #[test]
    fn one_bean_class_per_schema_element(schema in schema_strategy()) {
        let registry = BeanRegistry::generate(&schema, "root").unwrap();
        // Element count = walk length; class count may be smaller only
        // when named types are shared, which this generator never does —
        // but identical inline leaf types (e.g. two plain strings named
        // alike across groups) share their capitalized class name.
        let walk = Som::new(&schema).walk("root").unwrap();
        prop_assert!(registry.class_count() <= walk.len());
        prop_assert!(registry.class_count() >= 2); // root + at least a leaf
    }
}
