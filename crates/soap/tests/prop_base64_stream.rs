//! Differential property tests for the incremental base64 codec: fed
//! the same bytes in arbitrary slicings — including 1-byte drips — the
//! streaming encoder and decoder must agree exactly with the one-shot
//! functions, and compose into an identity.

use portalws_soap::base64::{self, Base64Decoder, Base64Encoder};
use proptest::prelude::*;

/// Cut points for splitting `len` bytes into arbitrary contiguous
/// pieces: a sorted list of indices in `0..=len`.
fn splits(len: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..=len, 0..8).prop_map(move |mut cuts| {
        cuts.sort_unstable();
        cuts.dedup();
        cuts
    })
}

fn pieces<T: Copy>(data: &[T], cuts: &[usize]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut at = 0;
    for &cut in cuts.iter().chain(std::iter::once(&data.len())) {
        let cut = cut.min(data.len());
        if cut > at {
            out.push(data[at..cut].to_vec());
        }
        at = cut;
    }
    out
}

proptest! {
    /// Encoding in arbitrary slicings matches the one-shot encoder.
    #[test]
    fn incremental_encode_matches_one_shot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in splits(512),
    ) {
        let mut enc = Base64Encoder::new();
        let mut streamed = String::new();
        for piece in pieces(&data, &cuts) {
            enc.update(&piece, &mut streamed);
        }
        enc.finish(&mut streamed);
        prop_assert_eq!(streamed, base64::encode(&data));
    }

    /// One byte at a time is the pathological slicing; it must still
    /// match, and `pending` never reaches a full quantum.
    #[test]
    fn byte_at_a_time_encode_matches(data in proptest::collection::vec(any::<u8>(), 0..96)) {
        let mut enc = Base64Encoder::new();
        let mut streamed = String::new();
        for b in &data {
            enc.update(std::slice::from_ref(b), &mut streamed);
            prop_assert!(enc.pending() < 3);
        }
        enc.finish(&mut streamed);
        prop_assert_eq!(streamed, base64::encode(&data));
    }

    /// Decoding valid base64 in arbitrary slicings matches the one-shot
    /// decoder (which itself inverts encode).
    #[test]
    fn incremental_decode_matches_one_shot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in splits(700),
    ) {
        let text = base64::encode(&data);
        let chars: Vec<char> = text.chars().collect();
        let mut dec = Base64Decoder::new();
        let mut out = Vec::new();
        for piece in pieces(&chars, &cuts) {
            let piece: String = piece.into_iter().collect();
            prop_assert!(dec.update(&piece, &mut out).is_some(), "valid input rejected");
        }
        prop_assert!(dec.finish().is_some(), "valid input rejected at finish");
        prop_assert_eq!(out, data);
    }

    /// Streaming encode piped into streaming decode is the identity,
    /// with independent slicings on each side.
    #[test]
    fn encode_then_decode_is_identity(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        enc_cuts in splits(512),
        dec_cuts in splits(700),
    ) {
        let mut enc = Base64Encoder::new();
        let mut text = String::new();
        for piece in pieces(&data, &enc_cuts) {
            enc.update(&piece, &mut text);
        }
        enc.finish(&mut text);

        let chars: Vec<char> = text.chars().collect();
        let mut dec = Base64Decoder::new();
        let mut back = Vec::new();
        for piece in pieces(&chars, &dec_cuts) {
            let piece: String = piece.into_iter().collect();
            prop_assert!(dec.update(&piece, &mut back).is_some());
        }
        prop_assert!(dec.finish().is_some());
        prop_assert_eq!(back, data);
    }

    /// A non-alphabet byte anywhere in the stream poisons the decode —
    /// both the incremental decoder and the one-shot agree on rejection.
    #[test]
    fn non_alphabet_corruption_is_rejected(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        at in 0usize..4096,
        bad_idx in 0usize..16,
    ) {
        const BAD: [char; 16] = [
            '!', '#', '$', '%', '&', '*', '(', ')', '-', '_', '[', ']', '{', '}', '~', '?',
        ];
        let text = base64::encode(&data);
        let mut chars: Vec<char> = text.chars().collect();
        let at = at % chars.len();
        chars[at] = BAD[bad_idx];
        let corrupted: String = chars.iter().collect();
        prop_assert!(base64::decode(&corrupted).is_none());

        let mut dec = Base64Decoder::new();
        let mut out = Vec::new();
        let rejected =
            dec.update(&corrupted, &mut out).is_none() || dec.finish().is_none();
        prop_assert!(rejected, "incremental decoder accepted a non-alphabet byte");
    }

    /// Whitespace injected between quanta is transparent to the
    /// incremental decoder, exactly as it is to the one-shot.
    #[test]
    fn whitespace_is_transparent(
        data in proptest::collection::vec(any::<u8>(), 0..128),
        every in 1usize..8,
    ) {
        let text = base64::encode(&data);
        let mut spaced = String::new();
        for (i, c) in text.chars().enumerate() {
            if i % every == 0 {
                spaced.push_str(" \n\t");
            }
            spaced.push(c);
        }
        let mut dec = Base64Decoder::new();
        let mut out = Vec::new();
        prop_assert!(dec.update(&spaced, &mut out).is_some());
        prop_assert!(dec.finish().is_some());
        prop_assert_eq!(out, data);
    }
}
