//! Property tests for the SOAP layer: arbitrary values survive the
//! envelope round trip, faults always decode, and base64 is inverse-exact.

use portalws_soap::base64;
use portalws_soap::{Envelope, Fault, PortalErrorKind, SoapValue};
use proptest::prelude::*;

fn scalar_value() -> impl Strategy<Value = SoapValue> {
    prop_oneof![
        // Parser trims leading/trailing whitespace in text values, so
        // generate strings without edge whitespace (the DOM documents
        // this normalization).
        proptest::string::string_regex("([!-~]([ -~]*[!-~])?)?")
            .unwrap()
            .prop_map(SoapValue::String),
        any::<i64>().prop_map(SoapValue::Int),
        any::<bool>().prop_map(SoapValue::Bool),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(SoapValue::Base64),
        // Finite doubles only: NaN breaks equality, infinities the lexical
        // form.
        (-1e10f64..1e10f64).prop_map(SoapValue::Double),
        Just(SoapValue::Null),
    ]
}

fn value_strategy() -> impl Strategy<Value = SoapValue> {
    scalar_value().prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(SoapValue::Array),
            proptest::collection::vec(("[a-zA-Z][a-zA-Z0-9]{0,8}", inner), 1..4).prop_map(
                |fields| {
                    // Struct field names must be unique for round-trip
                    // equality (duplicate names both decode, order-keyed).
                    let mut seen = std::collections::HashSet::new();
                    SoapValue::Struct(
                        fields
                            .into_iter()
                            .filter(|(n, _)| seen.insert(n.clone()))
                            .collect(),
                    )
                }
            ),
        ]
    })
}

/// Doubles compare approximately after a decimal-text round trip.
fn values_equal(a: &SoapValue, b: &SoapValue) -> bool {
    match (a, b) {
        (SoapValue::Double(x), SoapValue::Double(y)) => {
            (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
        }
        (SoapValue::Array(xs), SoapValue::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| values_equal(x, y))
        }
        (SoapValue::Struct(xs), SoapValue::Struct(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|((nx, x), (ny, y))| nx == ny && values_equal(x, y))
        }
        _ => a == b,
    }
}

proptest! {
    #[test]
    fn request_envelope_round_trip(args in proptest::collection::vec(value_strategy(), 0..4)) {
        let env = Envelope::request("Svc", "method", &args);
        let parsed = Envelope::parse(&env.to_xml()).expect("request must reparse");
        prop_assert_eq!(parsed.method(), "method");
        prop_assert_eq!(parsed.service(), Some("Svc"));
        let decoded = parsed.args().expect("args must decode");
        prop_assert_eq!(decoded.len(), args.len());
        for ((_, got), want) in decoded.iter().zip(&args) {
            prop_assert!(values_equal(got, want), "got {:?} want {:?}", got, want);
        }
    }

    #[test]
    fn response_envelope_round_trip(value in value_strategy()) {
        let env = Envelope::response("op", &value);
        let parsed = Envelope::parse(&env.to_xml()).expect("response must reparse");
        let got = parsed.return_value().expect("return must decode");
        prop_assert!(values_equal(&got, &value), "got {:?} want {:?}", got, value);
    }

    #[test]
    fn fault_round_trip(msg in "[ -~]{0,80}", kind_idx in 0usize..10) {
        let kinds = [
            PortalErrorKind::DiskFull,
            PortalErrorKind::FileNotFound,
            PortalErrorKind::PermissionDenied,
            PortalErrorKind::AuthFailed,
            PortalErrorKind::HostUnavailable,
            PortalErrorKind::QueueUnavailable,
            PortalErrorKind::JobRejected,
            PortalErrorKind::NotFound,
            PortalErrorKind::BadArguments,
            PortalErrorKind::Internal,
        ];
        let trimmed = msg.trim().to_owned();
        let fault = Fault::portal(kinds[kind_idx], trimmed.clone());
        let env = Envelope::fault(&fault);
        let parsed = Envelope::parse(&env.to_xml()).expect("fault must reparse");
        prop_assert!(parsed.is_fault());
        let rt = parsed.as_fault().expect("fault body");
        prop_assert_eq!(rt.kind(), Some(kinds[kind_idx]));
        let detail = rt.detail.expect("detail");
        prop_assert_eq!(detail.message.trim(), trimmed.trim());
    }

    #[test]
    fn base64_round_trip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(base64::decode(&base64::encode(&data)).unwrap(), data);
    }

    #[test]
    fn base64_decode_never_panics(s in "\\PC{0,128}") {
        let _ = base64::decode(&s);
    }

    #[test]
    fn envelope_parser_never_panics(s in "\\PC{0,400}") {
        let _ = Envelope::parse(&s);
    }

    #[test]
    fn headers_always_preserved(n in 0usize..4) {
        let mut env = Envelope::request("S", "m", &[]);
        for i in 0..n {
            env = env.with_header(
                portalws_xml::Element::new(format!("H{i}")).with_text(i.to_string()),
            );
        }
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        prop_assert_eq!(parsed.headers.len(), n);
    }
}
