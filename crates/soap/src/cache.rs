//! Client-side versioned read caching with single-flight coalescing.
//!
//! At portal scale most traffic is repeated reads — WSDL fetches,
//! registry/UDDI lookups, descriptor reads — each paying a full wire round
//! trip for a result that rarely changed. [`ReadCache`] removes that tax
//! with two cooperating mechanisms:
//!
//! * **Versioned entries.** Registries expose a monotonic mutation
//!   generation ([`crate::SoapService::generation`]) piggybacked on every
//!   reply header. The cache tracks the latest generation *observed* per
//!   service and lazily drops any entry cached at an older generation, so
//!   once a client has seen generation N it can never serve a read from
//!   N-1 — the staleness contract the e12 chaos soak asserts. Entries
//!   inside their TTL are served directly; past the TTL a versioned entry
//!   is revalidated with a cheap generation probe instead of a body
//!   refetch, and an unversioned entry simply expires.
//!
//! * **Single-flight coalescing.** N concurrent identical lookups issue
//!   exactly one wire call: the first caller becomes the *leader* and
//!   fetches; the rest park (bounded) on the leader's published result.
//!   A woken follower re-checks the fill's generation against the latest
//!   observed one before returning — a mutation reply landing while it
//!   was parked invalidates the fill for followers exactly as it does for
//!   the cached entry. If the leader's call fails, its followers wake,
//!   re-race for leadership, and after a few failed rounds fall back to
//!   direct calls — no thundering herd, and no waiter stuck behind a
//!   dead leader.
//!
//! Failures are never cached: a fault or transport error propagates to
//! exactly the callers that were coalesced onto it, and the next lookup
//! starts fresh. All outcomes are visible in [`WireStats`]
//! (`cache_hits`, `cache_misses`, `cache_invalidations`,
//! `coalesced_calls`).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use portalws_wire::WireStats;

use crate::value::SoapValue;

/// FNV-1a over a byte stream: the args digest for cache keys. Not
/// cryptographic — a collision merely serves one cached read for another,
/// and keys are produced by this client's own serializer.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Sizing and freshness limits for a [`ReadCache`].
#[derive(Debug, Clone, Copy)]
pub struct ReadCacheConfig {
    /// Entries younger than this are served without revalidation; older
    /// versioned entries are revalidated with a generation probe, older
    /// unversioned entries expire.
    pub ttl: Duration,
    /// Entry cap; the oldest entry is evicted to admit a new one.
    pub max_entries: usize,
}

impl Default for ReadCacheConfig {
    fn default() -> ReadCacheConfig {
        ReadCacheConfig {
            ttl: Duration::from_secs(5),
            max_entries: 1024,
        }
    }
}

/// Cache key: `(service, method, args digest)`.
type Key = (String, String, u64);

struct Entry {
    value: SoapValue,
    /// Service generation the value was fetched at; `None` for
    /// unversioned services (plain TTL expiry).
    generation: Option<u64>,
    cached_at: Instant,
}

/// Result of one in-flight leader call, published to its followers: the
/// value plus the generation it was fetched at, so a woken follower can
/// re-check the fill against the latest observed generation.
enum FlightState {
    Pending,
    Done(SoapValue, Option<u64>),
    Failed,
}

/// One in-flight fetch that concurrent identical lookups coalesce onto.
/// Plain `std::sync` primitives: the parking_lot shim's lock-order
/// discipline tracks map locks, while this wait is leaf-level and bounded.
struct Flight {
    state: StdMutex<FlightState>,
    cv: Condvar,
}

/// How long a follower parks on its leader before treating the flight as
/// failed and re-racing for leadership. A bound, not a latency target:
/// every normal wake-up is via notify_all.
const FOLLOW_WAIT: Duration = Duration::from_secs(2);

/// Failed follow rounds before a caller stops coalescing and fetches
/// directly (guards against livelock under a storm of failing leaders).
const MAX_FOLLOW_FAILURES: u32 = 3;

impl Flight {
    fn new() -> Flight {
        Flight {
            state: StdMutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    /// Publish the leader's outcome (`None` = failed) and wake followers.
    fn publish(&self, outcome: Option<(SoapValue, Option<u64>)>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state = match outcome {
            Some((value, generation)) => FlightState::Done(value, generation),
            None => FlightState::Failed,
        };
        self.cv.notify_all();
    }

    /// Bounded follower park. `Some(Some((v, gen)))` = leader succeeded,
    /// `Some(None)` = leader failed, `None` = timed out still pending.
    #[allow(clippy::type_complexity)]
    fn wait_for_outcome(&self, bound: Duration) -> Option<Option<(SoapValue, Option<u64>)>> {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let (state, _timeout) = self
            .cv
            .wait_timeout_while(state, bound, |s| matches!(s, FlightState::Pending))
            .unwrap_or_else(PoisonError::into_inner);
        match &*state {
            FlightState::Pending => None,
            FlightState::Done(value, generation) => Some(Some((value.clone(), *generation))),
            FlightState::Failed => Some(None),
        }
    }
}

/// A versioned read cache with single-flight coalescing (module docs).
/// Shareable across clients; typically one per logical client endpoint so
/// observed generations and entries stay per-service-consistent.
pub struct ReadCache {
    cfg: ReadCacheConfig,
    entries: Mutex<HashMap<Key, Entry>>,
    /// Latest generation observed per service, from reply headers and
    /// probes. Only ever advances.
    latest_gen: Mutex<HashMap<String, u64>>,
    inflight: Mutex<HashMap<Key, Arc<Flight>>>,
    stats: Arc<WireStats>,
}

impl Default for ReadCache {
    fn default() -> Self {
        ReadCache::new(ReadCacheConfig::default())
    }
}

impl ReadCache {
    /// Empty cache with `cfg` limits and fresh counters.
    pub fn new(cfg: ReadCacheConfig) -> ReadCache {
        ReadCache {
            cfg,
            entries: Mutex::new(HashMap::new()),
            latest_gen: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            stats: Arc::new(WireStats::new()),
        }
    }

    /// Limits this cache enforces.
    pub fn config(&self) -> ReadCacheConfig {
        self.cfg
    }

    /// Counters: `cache_hits` / `cache_misses` / `cache_invalidations` /
    /// `coalesced_calls` tell the full story of every lookup.
    pub fn stats(&self) -> &Arc<WireStats> {
        &self.stats
    }

    /// Entries currently cached (tests and reporting).
    pub fn entry_count(&self) -> usize {
        self.entries.lock().len()
    }

    /// Record a generation seen for `service` (reply header or probe).
    /// Generations only advance; a delayed older observation is ignored.
    pub fn observe_generation(&self, service: &str, generation: u64) {
        let mut latest = self.latest_gen.lock();
        match latest.get_mut(service) {
            Some(current) => {
                if *current < generation {
                    *current = generation;
                }
            }
            None => {
                latest.insert(service.to_owned(), generation);
            }
        }
    }

    /// Latest generation observed for `service`, if any.
    pub fn latest_generation(&self, service: &str) -> Option<u64> {
        self.latest_gen.lock().get(service).copied()
    }

    /// The read path: serve a fresh cached value, or coalesce concurrent
    /// identical fetches into one `fetch` call.
    ///
    /// `fetch` performs the wire call and returns the parsed value plus
    /// the generation piggybacked on its reply (if the service is
    /// versioned). `probe`, when given, cheaply returns the service's
    /// current generation and is used to revalidate versioned entries
    /// past their TTL without refetching bodies.
    ///
    /// Errors are not cached: a failed fetch propagates to the leader and
    /// every follower coalesced onto it, and the next caller starts over.
    pub fn get_or_fetch<E>(
        &self,
        service: &str,
        method: &str,
        digest: u64,
        probe: Option<&dyn Fn() -> Option<u64>>,
        fetch: &dyn Fn() -> Result<(SoapValue, Option<u64>), E>,
    ) -> Result<SoapValue, E> {
        let key: Key = (service.to_owned(), method.to_owned(), digest);
        let mut follow_failures = 0u32;
        loop {
            if let Some(value) = self.try_serve(&key, probe) {
                self.stats.record_cache_hit();
                return Ok(value);
            }
            if follow_failures > MAX_FOLLOW_FAILURES {
                // Too many dead leaders: stop coalescing, call directly.
                return self.fetch_and_fill(&key, None, fetch);
            }
            // Join the in-flight fetch for this key, or lead a new one.
            let (flight, leader) = {
                let mut inflight = self.inflight.lock();
                match inflight.get(&key) {
                    Some(flight) => (Arc::clone(flight), false),
                    None => {
                        let flight = Arc::new(Flight::new());
                        inflight.insert(key.clone(), Arc::clone(&flight));
                        (flight, true)
                    }
                }
            };
            if leader {
                return self.fetch_and_fill(&key, Some(&flight), fetch);
            }
            match flight.wait_for_outcome(FOLLOW_WAIT) {
                Some(Some((value, fill_gen))) => {
                    // While this follower was parked, a mutation reply
                    // may have advanced the observed generation past the
                    // leader's fill; serving that value would be a stale
                    // read after an observed bump. Re-check before
                    // returning and re-race on mismatch (the invalidated
                    // entry forces a fresh fetch next round).
                    let stale = fill_gen.is_some_and(|g| {
                        self.latest_generation(&key.0)
                            .is_some_and(|latest| latest > g)
                    });
                    if !stale {
                        self.stats.record_coalesced_call();
                        return Ok(value);
                    }
                    follow_failures += 1;
                }
                // Leader failed or timed out: re-check the cache and
                // re-race for leadership.
                Some(None) | None => follow_failures += 1,
            }
        }
    }

    /// Leader half of a fetch: wire call, cache fill, publish to
    /// followers, retire the flight.
    fn fetch_and_fill<E>(
        &self,
        key: &Key,
        flight: Option<&Arc<Flight>>,
        fetch: &dyn Fn() -> Result<(SoapValue, Option<u64>), E>,
    ) -> Result<SoapValue, E> {
        self.stats.record_cache_miss();
        let result = fetch();
        if flight.is_some() {
            // Callers arriving from here on start a fresh flight; current
            // followers still hold their Arc and see the published state.
            self.inflight.lock().remove(key);
        }
        match result {
            Ok((value, generation)) => {
                if let Some(g) = generation {
                    self.observe_generation(&key.0, g);
                }
                self.insert(key.clone(), value.clone(), generation);
                if let Some(flight) = flight {
                    flight.publish(Some((value.clone(), generation)));
                }
                Ok(value)
            }
            Err(e) => {
                if let Some(flight) = flight {
                    flight.publish(None);
                }
                Err(e)
            }
        }
    }

    /// Serve from the cache if the entry is present and provably fresh:
    /// not invalidated by an observed generation bump, and either inside
    /// its TTL or revalidated by a generation probe.
    fn try_serve(&self, key: &Key, probe: Option<&dyn Fn() -> Option<u64>>) -> Option<SoapValue> {
        let latest = self.latest_gen.lock().get(&key.0).copied();
        {
            let mut entries = self.entries.lock();
            let entry = entries.get(key)?;
            if let (Some(cached_gen), Some(latest)) = (entry.generation, latest) {
                if cached_gen < latest {
                    // A newer generation has been *observed*: this entry
                    // must never be served again.
                    entries.remove(key);
                    self.stats.record_cache_invalidation();
                    return None;
                }
            }
            if entry.cached_at.elapsed() <= self.cfg.ttl {
                return Some(entry.value.clone());
            }
            if entry.generation.is_none() || probe.is_none() {
                // Unversioned (or unprobable) entry past its TTL: expire.
                entries.remove(key);
                return None;
            }
        }
        // Versioned entry past its TTL: revalidate with a cheap generation
        // probe — no cache locks held across the wire call.
        let current = probe?()?;
        self.observe_generation(&key.0, current);
        let mut entries = self.entries.lock();
        let entry = entries.get_mut(key)?;
        if entry.generation == Some(current) {
            // Unchanged: the entry is fresh again for a full TTL.
            entry.cached_at = Instant::now();
            return Some(entry.value.clone());
        }
        entries.remove(key);
        self.stats.record_cache_invalidation();
        None
    }

    fn insert(&self, key: Key, value: SoapValue, generation: Option<u64>) {
        let mut entries = self.entries.lock();
        if entries.len() >= self.cfg.max_entries && !entries.contains_key(&key) {
            // Evict the oldest entry to stay bounded (the cap is portal
            // scale — hundreds — so a scan beats extra bookkeeping).
            let oldest = entries
                .iter()
                .min_by_key(|(_, e)| e.cached_at)
                .map(|(k, _)| k.clone());
            if let Some(oldest) = oldest {
                entries.remove(&oldest);
            }
        }
        entries.insert(
            key,
            Entry {
                value,
                generation,
                cached_at: Instant::now(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cache_with_ttl(ttl: Duration) -> ReadCache {
        ReadCache::new(ReadCacheConfig {
            ttl,
            max_entries: 8,
        })
    }

    /// A fetch closure that counts calls and returns a fixed value at a
    /// fixed generation.
    fn counted_fetch(
        calls: &AtomicU64,
        value: i64,
        generation: Option<u64>,
    ) -> impl Fn() -> Result<(SoapValue, Option<u64>), ()> + '_ {
        move || {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok((SoapValue::Int(value), generation))
        }
    }

    #[test]
    fn second_read_is_a_hit_without_refetch() {
        let cache = cache_with_ttl(Duration::from_secs(60));
        let calls = AtomicU64::new(0);
        let fetch = counted_fetch(&calls, 7, Some(1));
        for _ in 0..5 {
            let v = cache.get_or_fetch("Svc", "read", 42, None, &fetch).unwrap();
            assert_eq!(v, SoapValue::Int(7));
        }
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "one wire call for five reads"
        );
        let snap = cache.stats().snapshot();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_hits, 4);
    }

    #[test]
    fn distinct_args_and_methods_key_separately() {
        let cache = cache_with_ttl(Duration::from_secs(60));
        let calls = AtomicU64::new(0);
        let fetch = counted_fetch(&calls, 1, None);
        cache
            .get_or_fetch::<()>("Svc", "read", 1, None, &fetch)
            .unwrap();
        cache
            .get_or_fetch::<()>("Svc", "read", 2, None, &fetch)
            .unwrap();
        cache
            .get_or_fetch::<()>("Svc", "other", 1, None, &fetch)
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(cache.entry_count(), 3);
    }

    #[test]
    fn observed_generation_bump_invalidates_before_serving() {
        let cache = cache_with_ttl(Duration::from_secs(60));
        let calls = AtomicU64::new(0);
        let fetch = counted_fetch(&calls, 7, Some(1));
        cache.get_or_fetch("Svc", "read", 42, None, &fetch).unwrap();
        // A mutation reply (any reply) carries generation 2.
        cache.observe_generation("Svc", 2);
        // The stale entry is dropped and refetched — never served.
        cache.get_or_fetch("Svc", "read", 42, None, &fetch).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let snap = cache.stats().snapshot();
        assert_eq!(snap.cache_invalidations, 1);
        assert_eq!(snap.cache_hits, 0);
    }

    #[test]
    fn generations_only_advance() {
        let cache = cache_with_ttl(Duration::from_secs(60));
        cache.observe_generation("Svc", 5);
        cache.observe_generation("Svc", 3); // delayed older reply
        assert_eq!(cache.latest_generation("Svc"), Some(5));
        assert_eq!(cache.latest_generation("Other"), None);
    }

    #[test]
    fn unversioned_entry_expires_at_ttl() {
        let cache = cache_with_ttl(Duration::from_millis(30));
        let calls = AtomicU64::new(0);
        let fetch = counted_fetch(&calls, 7, None);
        cache.get_or_fetch("Svc", "read", 1, None, &fetch).unwrap();
        cache.get_or_fetch("Svc", "read", 1, None, &fetch).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "inside TTL: served");
        std::thread::sleep(Duration::from_millis(50));
        cache.get_or_fetch("Svc", "read", 1, None, &fetch).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2, "past TTL: refetched");
    }

    #[test]
    fn versioned_entry_revalidates_with_probe_past_ttl() {
        let cache = cache_with_ttl(Duration::from_millis(20));
        let calls = AtomicU64::new(0);
        let probes = AtomicU64::new(0);
        let fetch = counted_fetch(&calls, 7, Some(3));
        let probe = || {
            probes.fetch_add(1, Ordering::SeqCst);
            Some(3u64) // unchanged generation
        };
        cache
            .get_or_fetch("Svc", "read", 1, Some(&probe), &fetch)
            .unwrap();
        std::thread::sleep(Duration::from_millis(40));
        let v = cache
            .get_or_fetch("Svc", "read", 1, Some(&probe), &fetch)
            .unwrap();
        assert_eq!(v, SoapValue::Int(7));
        assert_eq!(calls.load(Ordering::SeqCst), 1, "no body refetch");
        assert_eq!(probes.load(Ordering::SeqCst), 1, "one cheap probe");
        // The probe refreshed the TTL: an immediate third read needs none.
        cache
            .get_or_fetch("Svc", "read", 1, Some(&probe), &fetch)
            .unwrap();
        assert_eq!(probes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn probe_seeing_new_generation_forces_refetch() {
        let cache = cache_with_ttl(Duration::from_millis(20));
        let calls = AtomicU64::new(0);
        let generation = AtomicU64::new(3);
        let fetch = || {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok::<_, ()>((SoapValue::Int(7), Some(generation.load(Ordering::SeqCst))))
        };
        let probe = || Some(generation.load(Ordering::SeqCst));
        cache
            .get_or_fetch("Svc", "read", 1, Some(&probe), &fetch)
            .unwrap();
        generation.store(4, Ordering::SeqCst); // registry mutated
        std::thread::sleep(Duration::from_millis(40));
        cache
            .get_or_fetch("Svc", "read", 1, Some(&probe), &fetch)
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2, "stale entry refetched");
        assert_eq!(cache.stats().snapshot().cache_invalidations, 1);
    }

    #[test]
    fn failed_probe_never_serves_past_ttl() {
        let cache = cache_with_ttl(Duration::from_millis(20));
        let calls = AtomicU64::new(0);
        let fetch_ok = counted_fetch(&calls, 7, Some(3));
        let probe_dead = || None; // registry unreachable
        cache
            .get_or_fetch("Svc", "read", 1, Some(&probe_dead), &fetch_ok)
            .unwrap();
        std::thread::sleep(Duration::from_millis(40));
        // Probe fails → miss → the fetch error surfaces; the unprovable
        // entry is never served.
        let fetch_err = || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(())
        };
        let res: Result<SoapValue, ()> =
            cache.get_or_fetch("Svc", "read", 1, Some(&probe_dead), &fetch_err);
        assert!(res.is_err());
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = cache_with_ttl(Duration::from_secs(60));
        let calls = AtomicU64::new(0);
        let failing = || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err::<(SoapValue, Option<u64>), &str>("boom")
        };
        assert!(cache
            .get_or_fetch("Svc", "read", 1, None, &failing)
            .is_err());
        assert!(cache
            .get_or_fetch("Svc", "read", 1, None, &failing)
            .is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 2, "each attempt refetches");
        assert_eq!(cache.entry_count(), 0);
    }

    #[test]
    fn entry_cap_evicts_oldest() {
        let cache = ReadCache::new(ReadCacheConfig {
            ttl: Duration::from_secs(60),
            max_entries: 2,
        });
        let calls = AtomicU64::new(0);
        let fetch = counted_fetch(&calls, 1, None);
        cache
            .get_or_fetch::<()>("Svc", "read", 1, None, &fetch)
            .unwrap();
        cache
            .get_or_fetch::<()>("Svc", "read", 2, None, &fetch)
            .unwrap();
        cache
            .get_or_fetch::<()>("Svc", "read", 3, None, &fetch)
            .unwrap();
        assert_eq!(cache.entry_count(), 2, "cap enforced");
        // The newest two remain cached; digest 1 was evicted.
        cache
            .get_or_fetch::<()>("Svc", "read", 3, None, &fetch)
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn follower_revalidates_leader_fill_against_latest_generation() {
        // A mutation reply observed while a follower is parked must not
        // let the follower serve the leader's pre-bump fill: the follower
        // re-checks on wake-up and refetches instead.
        use std::sync::atomic::AtomicBool;

        let cache = Arc::new(cache_with_ttl(Duration::from_secs(60)));
        let calls = Arc::new(AtomicU64::new(0));
        let release = Arc::new(AtomicBool::new(false));
        let generation = Arc::new(AtomicU64::new(1));
        let spawn_reader = |label: i64| {
            let (cache, calls, release, generation) = (
                Arc::clone(&cache),
                Arc::clone(&calls),
                Arc::clone(&release),
                Arc::clone(&generation),
            );
            std::thread::spawn(move || {
                let fetch = || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    // The registry read happens when the call enters the
                    // wire; the reply is then held until released.
                    let g = generation.load(Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Ok::<_, ()>((SoapValue::Int(g as i64 * 100 + label), Some(g)))
                };
                cache.get_or_fetch("Svc", "read", 1, None, &fetch)
            })
        };
        let leader = spawn_reader(1);
        std::thread::sleep(Duration::from_millis(50)); // leader in flight
        let follower = spawn_reader(2);
        std::thread::sleep(Duration::from_millis(50)); // follower parked
        assert_eq!(calls.load(Ordering::SeqCst), 1, "follower coalesced");
        // A mutation reply bumps the observed generation, then the
        // leader's (generation-1) wire call completes.
        cache.observe_generation("Svc", 2);
        generation.store(2, Ordering::SeqCst);
        release.store(true, Ordering::SeqCst);
        // The leader returns its own wire-fresh read (fetched at gen 1).
        assert_eq!(leader.join().unwrap(), Ok(SoapValue::Int(101)));
        // The follower must NOT accept that pre-bump fill: it refetches
        // and comes back with post-bump data.
        assert_eq!(follower.join().unwrap(), Ok(SoapValue::Int(202)));
        assert_eq!(calls.load(Ordering::SeqCst), 2, "follower refetched");
        assert_eq!(cache.stats().snapshot().coalesced_calls, 0);
    }

    #[test]
    fn fnv1a_digest_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b" "));
    }
}
