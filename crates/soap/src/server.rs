//! Server-side SOAP dispatch: the SOAP Service Provider (SSP) of Figure 1.
//!
//! A [`SoapServer`] mounts one or more [`SoapService`]s and implements the
//! wire [`Handler`] trait, so it can be served by `wire::HttpServer` or
//! driven directly through an in-memory transport. Services are addressed
//! by path: `POST /soap/<ServiceName>`.
//!
//! A [`Guard`] hook runs before dispatch; the auth crate installs one that
//! forwards the envelope's SAML assertion to the Authentication Service —
//! the Figure 2 "atomic step" in which the SSP "does not check the
//! signature of the request directly but instead forwards to the
//! Authentication Service".

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use portalws_wire::{
    Handler, Request, Response, Status, DEADLINE_HEADER, RETRY_AFTER_HEADER, RETRY_AFTER_MS_HEADER,
};
use portalws_xml::Element;

use crate::envelope::Envelope;
use crate::fault::Fault;
use crate::value::{SoapType, SoapValue};
use crate::SoapResult;

/// Per-call context handed to service implementations.
#[derive(Debug, Clone)]
pub struct CallContext {
    /// SOAP header entries from the request envelope.
    pub headers: Vec<Element>,
    /// Service name the call was addressed to.
    pub service: String,
    /// Method name invoked.
    pub method: String,
}

impl CallContext {
    /// Find a header entry by local name.
    pub fn header(&self, local_name: &str) -> Option<&Element> {
        self.headers.iter().find(|h| h.local_name() == local_name)
    }
}

/// Description of one method, used for WSDL generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDesc {
    /// Method name.
    pub name: String,
    /// Named, typed parameters in order.
    pub params: Vec<(String, SoapType)>,
    /// Return type.
    pub ret: SoapType,
    /// Documentation string.
    pub doc: String,
}

impl MethodDesc {
    /// Describe a method.
    pub fn new(
        name: impl Into<String>,
        params: Vec<(&str, SoapType)>,
        ret: SoapType,
        doc: impl Into<String>,
    ) -> MethodDesc {
        MethodDesc {
            name: name.into(),
            params: params.into_iter().map(|(n, t)| (n.to_owned(), t)).collect(),
            ret,
            doc: doc.into(),
        }
    }
}

/// Reply header carrying a service's mutation generation (see
/// [`SoapService::generation`]). Clients with a read cache watch this
/// header on every reply and invalidate entries the moment they observe a
/// newer generation.
pub const GENERATION_HEADER: &str = "Generation";

/// A SOAP-exposed service implementation.
pub trait SoapService: Send + Sync {
    /// Service name (used in the endpoint path and the `urn:` namespace).
    fn name(&self) -> &str;

    /// Invoke `method` with decoded arguments.
    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        ctx: &CallContext,
    ) -> SoapResult<SoapValue>;

    /// Method descriptions for interface publication (WSDL generation).
    fn methods(&self) -> Vec<MethodDesc>;

    /// Monotonic mutation generation of the service's backing store, if it
    /// is versioned. When `Some`, the dispatcher piggybacks the value on
    /// every reply as a [`GENERATION_HEADER`] SOAP header, letting clients
    /// revalidate cached reads with a cheap probe instead of refetching
    /// bodies. The default (`None`) means "not versioned": clients fall
    /// back to TTL-bounded caching.
    fn generation(&self) -> Option<u64> {
        None
    }
}

/// Pre-dispatch hook: may reject the call with a fault (used for auth).
pub type Guard = Arc<dyn Fn(&Envelope, &CallContext) -> SoapResult<()> + Send + Sync>;

/// Supplies SOAP header entries attached to every *reply* (mutual
/// authentication: the server proves its identity to the client).
pub type ResponseHeaderSupplier = Arc<dyn Fn() -> Vec<Element> + Send + Sync>;

/// The SOAP Service Provider: routes envelopes to mounted services.
#[derive(Default)]
pub struct SoapServer {
    services: RwLock<HashMap<String, Arc<dyn SoapService>>>,
    guard: RwLock<Option<Guard>>,
    response_headers: RwLock<Option<ResponseHeaderSupplier>>,
}

impl SoapServer {
    /// New empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mount a service (addressable as `/soap/<name>`).
    pub fn mount(&self, service: Arc<dyn SoapService>) {
        self.services
            .write()
            .insert(service.name().to_owned(), service);
    }

    /// Install a pre-dispatch guard (replacing any existing one).
    pub fn set_guard(&self, guard: Guard) {
        *self.guard.write() = Some(guard);
    }

    /// Attach header entries to every reply envelope — the server half of
    /// a mutual-authentication scheme (§4: "mutual authentication schemes
    /// can also be developed").
    pub fn set_response_header_supplier(&self, supplier: ResponseHeaderSupplier) {
        *self.response_headers.write() = Some(supplier);
    }

    /// Names of mounted services.
    pub fn service_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.services.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Look up a mounted service.
    pub fn service(&self, name: &str) -> Option<Arc<dyn SoapService>> {
        self.services.read().get(name).map(Arc::clone)
    }

    fn stamp(&self, mut reply: Envelope) -> Envelope {
        if let Some(supplier) = self.response_headers.read().clone() {
            reply.headers.extend(supplier());
        }
        reply
    }

    /// Dispatch a parsed envelope addressed to `service_name`.
    pub fn dispatch(&self, service_name: &str, envelope: &Envelope) -> Envelope {
        let Some(service) = self.service(service_name) else {
            return self.stamp(Envelope::fault(&Fault::client(format!(
                "no such service {service_name:?}"
            ))));
        };
        let method = envelope.method().to_owned();
        let ctx = CallContext {
            headers: envelope.headers.clone(),
            service: service_name.to_owned(),
            method: method.clone(),
        };
        // Every reply from a resolved service — success, fault, or guard
        // rejection — carries a service generation, so even a failed call
        // lets the client advance its observed generation. The value is
        // captured BEFORE the method runs: stamping may under-claim (a
        // mutation landing mid-call costs at most a spurious client-side
        // invalidation) but must never over-claim — a read that returned
        // pre-mutation data stamped with the post-mutation generation
        // would be cached as current and pinned past the bump it
        // predates. A mutator therefore observes its own bump on its
        // *next* reply, not on the mutation's own acknowledgment.
        let generation = service.generation();
        let finish = |reply: Envelope| {
            let mut reply = self.stamp(reply);
            if let Some(generation) = generation {
                reply
                    .headers
                    .push(Element::new(GENERATION_HEADER).with_text(generation.to_string()));
            }
            reply
        };
        if let Some(guard) = self.guard.read().clone() {
            if let Err(fault) = guard(envelope, &ctx) {
                return finish(Envelope::fault(&fault));
            }
        }
        let args = match envelope.args() {
            Ok(args) => args,
            Err(msg) => {
                return finish(Envelope::fault(&Fault::client(format!(
                    "argument decode failed: {msg}"
                ))))
            }
        };
        finish(match service.invoke(&method, &args, &ctx) {
            Ok(value) => Envelope::response(&method, &value),
            Err(fault) => Envelope::fault(&fault),
        })
    }
}

/// Retry hint stamped on replies carrying a [`PortalErrorKind::Busy`]
/// fault raised *inside* a service (quota exhaustion, capacity limits) —
/// the application-level counterpart of the wire layer's queue-full shed.
const BUSY_RETRY_AFTER_MS: u64 = 50;

impl Handler for SoapServer {
    fn handle(&self, req: &Request) -> Response {
        if req.method != "POST" {
            return Response::error(Status::BadRequest, "SOAP endpoint expects POST");
        }
        // Install the request's remaining deadline budget (the server arm
        // already rewrote the header to what is left) around dispatch, so
        // downstream SoapClient calls made by the handler inherit it.
        let _budget = req
            .header(DEADLINE_HEADER)
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(|ms| crate::deadline::install(std::time::Duration::from_millis(ms)));
        // Path shape: /soap/<ServiceName>[...]
        let service_name = req
            .path_only()
            .trim_start_matches('/')
            .split('/')
            .nth(1)
            .unwrap_or("")
            .to_owned();
        let envelope = match Envelope::parse(&req.body_str()) {
            Ok(env) => env,
            Err(e) => {
                let fault = Fault::client(format!("envelope parse failed: {e}"));
                return xml_response(Status::InternalError, &Envelope::fault(&fault));
            }
        };
        let reply = self.dispatch(&service_name, &envelope);
        let status = if reply.is_fault() {
            // SOAP-over-HTTP convention: faults ride on 500.
            Status::InternalError
        } else {
            Status::Ok
        };
        let mut resp = xml_response(status, &reply);
        // Application-level sheds advise like wire-level ones: a Busy
        // fault carries retry hints so deadline-aware clients back off
        // instead of hammering an at-capacity service.
        if let Some(fault) = reply.as_fault() {
            if fault.kind() == Some(crate::fault::PortalErrorKind::Busy) {
                resp = resp
                    .with_header(
                        RETRY_AFTER_HEADER,
                        BUSY_RETRY_AFTER_MS.div_ceil(1000).max(1).to_string(),
                    )
                    .with_header(RETRY_AFTER_MS_HEADER, BUSY_RETRY_AFTER_MS.to_string());
            }
        }
        resp
    }
}

/// Build the HTTP reply for an envelope, serializing through the worker
/// thread's reusable scratch ([`crate::scratch`]).
fn xml_response(status: Status, reply: &Envelope) -> Response {
    Response {
        status,
        headers: vec![("Content-Type".into(), "text/xml; charset=utf-8".into())],
        body: crate::scratch::envelope_body(reply),
    }
}

/// The canonical endpoint path for a service name.
pub fn endpoint_path(service_name: &str) -> String {
    format!("/soap/{service_name}")
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::fault::PortalErrorKind;

    /// A tiny echo/add service used across the crate's tests.
    pub struct Calculator;

    impl SoapService for Calculator {
        fn name(&self) -> &str {
            "Calc"
        }

        fn invoke(
            &self,
            method: &str,
            args: &[(String, SoapValue)],
            _ctx: &CallContext,
        ) -> SoapResult<SoapValue> {
            match method {
                "add" => {
                    let a = args
                        .first()
                        .and_then(|(_, v)| v.as_i64())
                        .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "a"))?;
                    let b = args
                        .get(1)
                        .and_then(|(_, v)| v.as_i64())
                        .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "b"))?;
                    Ok(SoapValue::Int(a + b))
                }
                "echo" => Ok(args
                    .first()
                    .map(|(_, v)| v.clone())
                    .unwrap_or(SoapValue::Null)),
                other => Err(Fault::client(format!("no method {other:?}"))),
            }
        }

        fn methods(&self) -> Vec<MethodDesc> {
            vec![
                MethodDesc::new(
                    "add",
                    vec![("a", SoapType::Int), ("b", SoapType::Int)],
                    SoapType::Int,
                    "Add two integers",
                ),
                MethodDesc::new(
                    "echo",
                    vec![("value", SoapType::String)],
                    SoapType::String,
                    "Echo the argument",
                ),
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::Calculator;
    use super::*;
    use crate::fault::{FaultCode, PortalErrorKind};

    fn server() -> SoapServer {
        let s = SoapServer::new();
        s.mount(Arc::new(Calculator));
        s
    }

    #[test]
    fn dispatch_success() {
        let env = Envelope::request("Calc", "add", &[SoapValue::Int(2), SoapValue::Int(40)]);
        let reply = server().dispatch("Calc", &env);
        assert_eq!(reply.return_value().unwrap(), SoapValue::Int(42));
    }

    #[test]
    fn dispatch_unknown_service() {
        let env = Envelope::request("Nope", "x", &[]);
        let reply = server().dispatch("Nope", &env);
        assert!(reply.is_fault());
        assert_eq!(reply.as_fault().unwrap().code, FaultCode::Client);
    }

    #[test]
    fn dispatch_bad_args_gives_portal_error() {
        let env = Envelope::request("Calc", "add", &[SoapValue::str("x")]);
        let reply = server().dispatch("Calc", &env);
        assert_eq!(
            reply.as_fault().unwrap().kind(),
            Some(PortalErrorKind::BadArguments)
        );
    }

    #[test]
    fn http_handler_round_trip() {
        let srv = server();
        let env = Envelope::request("Calc", "add", &[SoapValue::Int(1), SoapValue::Int(2)]);
        let req = Request::post(endpoint_path("Calc"), env.to_xml());
        let resp = srv.handle(&req);
        assert_eq!(resp.status, Status::Ok);
        let reply = Envelope::parse(&resp.body_str()).unwrap();
        assert_eq!(reply.return_value().unwrap(), SoapValue::Int(3));
    }

    #[test]
    fn http_fault_is_500() {
        let srv = server();
        let env = Envelope::request("Calc", "nosuch", &[]);
        let resp = srv.handle(&Request::post(endpoint_path("Calc"), env.to_xml()));
        assert_eq!(resp.status, Status::InternalError);
        assert!(Envelope::parse(&resp.body_str()).unwrap().is_fault());
    }

    #[test]
    fn get_rejected() {
        let resp = server().handle(&Request::get("/soap/Calc"));
        assert_eq!(resp.status, Status::BadRequest);
    }

    #[test]
    fn malformed_envelope_is_fault() {
        let resp = server().handle(&Request::post("/soap/Calc", "not xml"));
        assert_eq!(resp.status, Status::InternalError);
        assert!(Envelope::parse(&resp.body_str()).unwrap().is_fault());
    }

    #[test]
    fn guard_can_reject() {
        let srv = server();
        srv.set_guard(Arc::new(|env: &Envelope, _ctx: &CallContext| {
            if env.header("Assertion").is_some() {
                Ok(())
            } else {
                Err(Fault::portal(PortalErrorKind::AuthFailed, "no assertion"))
            }
        }));
        let env = Envelope::request("Calc", "add", &[SoapValue::Int(1), SoapValue::Int(1)]);
        let reply = srv.dispatch("Calc", &env);
        assert_eq!(
            reply.as_fault().unwrap().kind(),
            Some(PortalErrorKind::AuthFailed)
        );

        let ok_env = env.with_header(Element::new("Assertion"));
        let reply = srv.dispatch("Calc", &ok_env);
        assert!(!reply.is_fault());
    }

    #[test]
    fn service_names_listed() {
        assert_eq!(server().service_names(), vec!["Calc".to_string()]);
    }

    /// Calculator wrapped with a fixed generation, for header stamping.
    struct VersionedCalc(u64);

    impl SoapService for VersionedCalc {
        fn name(&self) -> &str {
            "Calc"
        }
        fn invoke(
            &self,
            method: &str,
            args: &[(String, SoapValue)],
            ctx: &CallContext,
        ) -> SoapResult<SoapValue> {
            Calculator.invoke(method, args, ctx)
        }
        fn methods(&self) -> Vec<MethodDesc> {
            Calculator.methods()
        }
        fn generation(&self) -> Option<u64> {
            Some(self.0)
        }
    }

    #[test]
    fn generation_header_stamped_on_success_and_fault() {
        let srv = SoapServer::new();
        srv.mount(Arc::new(VersionedCalc(7)));
        let env = Envelope::request("Calc", "add", &[SoapValue::Int(1), SoapValue::Int(2)]);
        let reply = srv.dispatch("Calc", &env);
        assert_eq!(
            reply.header(GENERATION_HEADER).map(|h| h.text()).as_deref(),
            Some("7")
        );
        // Faults from a resolved service still advance the client's view.
        let reply = srv.dispatch("Calc", &Envelope::request("Calc", "nosuch", &[]));
        assert!(reply.is_fault());
        assert_eq!(
            reply.header(GENERATION_HEADER).map(|h| h.text()).as_deref(),
            Some("7")
        );
    }

    #[test]
    fn unversioned_service_has_no_generation_header() {
        let env = Envelope::request("Calc", "add", &[SoapValue::Int(1), SoapValue::Int(2)]);
        let reply = server().dispatch("Calc", &env);
        assert!(reply.header(GENERATION_HEADER).is_none());
    }

    /// Service that reports the thread-local deadline budget it sees at
    /// invoke time, in whole milliseconds (-1 when none is installed).
    struct BudgetProbe;

    impl SoapService for BudgetProbe {
        fn name(&self) -> &str {
            "Probe"
        }
        fn invoke(
            &self,
            _method: &str,
            _args: &[(String, SoapValue)],
            _ctx: &CallContext,
        ) -> SoapResult<SoapValue> {
            let ms = match crate::deadline::remaining() {
                Some(left) => left.as_millis() as i64,
                None => -1,
            };
            Ok(SoapValue::Int(ms))
        }
        fn methods(&self) -> Vec<MethodDesc> {
            vec![MethodDesc::new(
                "probe",
                vec![],
                SoapType::Int,
                "Report remaining budget in ms",
            )]
        }
    }

    #[test]
    fn deadline_header_installs_budget_around_dispatch() {
        let srv = SoapServer::new();
        srv.mount(Arc::new(BudgetProbe));
        let env = Envelope::request("Probe", "probe", &[]);
        let req = Request::post(endpoint_path("Probe"), env.to_xml())
            .with_header(DEADLINE_HEADER, "2000");
        let resp = srv.handle(&req);
        assert_eq!(resp.status, Status::Ok);
        let reply = Envelope::parse(&resp.body_str()).unwrap();
        let seen = reply.return_value().unwrap().as_i64().unwrap();
        assert!(
            seen > 0 && seen <= 2000,
            "handler saw the installed budget, got {seen} ms"
        );
        // The scope unwinds with the dispatch: no budget leaks to the
        // next request on this thread.
        let bare = srv.handle(&Request::post(endpoint_path("Probe"), env.to_xml()));
        let reply = Envelope::parse(&bare.body_str()).unwrap();
        assert_eq!(reply.return_value().unwrap(), SoapValue::Int(-1));
    }

    /// Service that always reports itself at capacity.
    struct AlwaysBusy;

    impl SoapService for AlwaysBusy {
        fn name(&self) -> &str {
            "Busy"
        }
        fn invoke(
            &self,
            _method: &str,
            _args: &[(String, SoapValue)],
            _ctx: &CallContext,
        ) -> SoapResult<SoapValue> {
            Err(Fault::portal(PortalErrorKind::Busy, "tenant quota spent"))
        }
        fn methods(&self) -> Vec<MethodDesc> {
            vec![MethodDesc::new("go", vec![], SoapType::Int, "Always busy")]
        }
    }

    #[test]
    fn busy_fault_reply_carries_retry_hints() {
        let srv = SoapServer::new();
        srv.mount(Arc::new(AlwaysBusy));
        let env = Envelope::request("Busy", "go", &[]);
        let resp = srv.handle(&Request::post(endpoint_path("Busy"), env.to_xml()));
        assert_eq!(resp.status, Status::InternalError, "faults ride on 500");
        assert_eq!(resp.header(RETRY_AFTER_HEADER), Some("1"));
        assert_eq!(
            resp.header(RETRY_AFTER_MS_HEADER),
            Some(BUSY_RETRY_AFTER_MS.to_string().as_str())
        );
        // Non-Busy faults advise nothing: retrying cannot help them.
        let srv = server();
        let env = Envelope::request("Calc", "nosuch", &[]);
        let resp = srv.handle(&Request::post(endpoint_path("Calc"), env.to_xml()));
        assert!(resp.header(RETRY_AFTER_HEADER).is_none());
        assert!(resp.header(RETRY_AFTER_MS_HEADER).is_none());
    }
}
