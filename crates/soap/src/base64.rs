//! Base64 codec (RFC 4648, standard alphabet, `=` padding).
//!
//! Used for `xsd:base64Binary` SOAP values and for signature bytes in the
//! SAML layer. Implemented in-tree like everything else in the stack; the
//! E5 ablation compares base64-encoded payload transfer against the paper's
//! escaped-string streaming.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// The base64 digit for the 6 bits of `n` starting at `shift`.
fn sextet(n: u32, shift: u32) -> char {
    // portalint: allow(panic) — index is masked to 0..=63 over a 64-byte table
    ALPHABET[(n >> shift) as usize & 63] as char
}

/// Encode bytes to base64 text.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let Some((&b0, rest)) = chunk.split_first() else {
            continue; // chunks(3) never yields an empty slice
        };
        let b1 = rest.first().copied().unwrap_or(0);
        let b2 = rest.get(1).copied().unwrap_or(0);
        let n = (u32::from(b0) << 16) | (u32::from(b1) << 8) | u32::from(b2);
        out.push(sextet(n, 18));
        out.push(sextet(n, 12));
        out.push(if chunk.len() > 1 { sextet(n, 6) } else { '=' });
        out.push(if chunk.len() > 2 { sextet(n, 0) } else { '=' });
    }
    out
}

fn value_of(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some(u32::from(c - b'A')),
        b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decode base64 text (whitespace tolerated) to bytes. Returns `None` on
/// malformed input.
pub fn decode(text: &str) -> Option<Vec<u8>> {
    let compact: Vec<u8> = text.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !compact.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(compact.len() / 4 * 3);
    for chunk in compact.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        let digits = chunk.get(..4 - pad)?;
        if pad > 2 || digits.contains(&b'=') {
            return None;
        }
        let mut n = 0u32;
        for &c in digits {
            n = (n << 6) | value_of(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("").unwrap(), b"");
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode("Zm9").is_none()); // bad length
        assert!(decode("Zm!v").is_none()); // bad char
        assert!(decode("Z===").is_none()); // over-padded
        assert!(decode("Z=m9").is_none()); // interior padding
    }

    #[test]
    fn round_trip_all_bytes() {
        let data: Vec<u8> = (0u8..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
