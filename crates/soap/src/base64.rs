//! Base64 codec (RFC 4648, standard alphabet, `=` padding).
//!
//! Used for `xsd:base64Binary` SOAP values and for signature bytes in the
//! SAML layer. Implemented in-tree like everything else in the stack; the
//! E5 ablation compares base64-encoded payload transfer against the paper's
//! escaped-string streaming.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// The base64 digit for the 6 bits of `n` starting at `shift`.
fn sextet(n: u32, shift: u32) -> char {
    // portalint: allow(panic) — index is masked to 0..=63 over a 64-byte table
    ALPHABET[(n >> shift) as usize & 63] as char
}

/// Encode bytes to base64 text.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let Some((&b0, rest)) = chunk.split_first() else {
            continue; // chunks(3) never yields an empty slice
        };
        let b1 = rest.first().copied().unwrap_or(0);
        let b2 = rest.get(1).copied().unwrap_or(0);
        let n = (u32::from(b0) << 16) | (u32::from(b1) << 8) | u32::from(b2);
        out.push(sextet(n, 18));
        out.push(sextet(n, 12));
        out.push(if chunk.len() > 1 { sextet(n, 6) } else { '=' });
        out.push(if chunk.len() > 2 { sextet(n, 0) } else { '=' });
    }
    out
}

fn value_of(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some(u32::from(c - b'A')),
        b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Incremental base64 encoder: feed input in arbitrary slices (down to
/// one byte) and get exactly the text the one-shot [`encode`] would
/// produce. The only state between calls is a ≤2-byte carry, so the
/// chunked transfer path (E13) encodes a payload of any size with O(chunk)
/// memory: each `update` writes into a caller-owned scratch `String` that
/// is reused across chunks.
#[derive(Debug, Default, Clone)]
pub struct Base64Encoder {
    carry0: u8,
    carry1: u8,
    carry_len: u8,
}

impl Base64Encoder {
    /// A fresh encoder (no pending carry).
    pub fn new() -> Base64Encoder {
        Base64Encoder::default()
    }

    /// Bytes held over from previous `update` calls (0..=2).
    pub fn pending(&self) -> usize {
        usize::from(self.carry_len)
    }

    fn emit_group(out: &mut String, b0: u8, b1: u8, b2: u8) {
        let n = (u32::from(b0) << 16) | (u32::from(b1) << 8) | u32::from(b2);
        out.push(sextet(n, 18));
        out.push(sextet(n, 12));
        out.push(sextet(n, 6));
        out.push(sextet(n, 0));
    }

    /// Encode `data`, appending complete 4-char groups to `out` and
    /// carrying up to 2 trailing bytes for the next call.
    pub fn update(&mut self, data: &[u8], out: &mut String) {
        let mut rest = data;
        // Top the carry up to a full 3-byte group first.
        while self.carry_len > 0 {
            let Some((&b, tail)) = rest.split_first() else {
                return;
            };
            rest = tail;
            if self.carry_len == 1 {
                self.carry1 = b;
                self.carry_len = 2;
            } else {
                Self::emit_group(out, self.carry0, self.carry1, b);
                self.carry_len = 0;
            }
        }
        out.reserve(rest.len().div_ceil(3) * 4);
        let mut groups = rest.chunks_exact(3);
        for g in &mut groups {
            if let [b0, b1, b2] = *g {
                Self::emit_group(out, b0, b1, b2);
            }
        }
        match *groups.remainder() {
            [b0] => {
                self.carry0 = b0;
                self.carry_len = 1;
            }
            [b0, b1] => {
                self.carry0 = b0;
                self.carry1 = b1;
                self.carry_len = 2;
            }
            _ => {}
        }
    }

    /// Flush the final (possibly padded) group. The encoder is reusable
    /// afterwards.
    pub fn finish(&mut self, out: &mut String) {
        match self.carry_len {
            1 => {
                let n = u32::from(self.carry0) << 16;
                out.push(sextet(n, 18));
                out.push(sextet(n, 12));
                out.push('=');
                out.push('=');
            }
            2 => {
                let n = (u32::from(self.carry0) << 16) | (u32::from(self.carry1) << 8);
                out.push(sextet(n, 18));
                out.push(sextet(n, 12));
                out.push(sextet(n, 6));
                out.push('=');
            }
            _ => {}
        }
        self.carry_len = 0;
    }
}

/// Incremental base64 decoder: feed text in arbitrary slices (whitespace
/// tolerated, splits anywhere — including inside a 4-char quad) and get
/// exactly the bytes the one-shot [`decode`] would produce. State between
/// calls is a ≤3-digit quad carry plus a padding flag.
#[derive(Debug, Default, Clone)]
pub struct Base64Decoder {
    /// Accumulated 6-bit values of the current quad.
    quad: [u32; 4],
    quad_len: u8,
    /// Padding characters seen in the current quad (must be trailing).
    pad: u8,
    /// A padded quad was completed: any further non-whitespace is malformed.
    finished: bool,
}

impl Base64Decoder {
    /// A fresh decoder.
    pub fn new() -> Base64Decoder {
        Base64Decoder::default()
    }

    fn flush_quad(&mut self, out: &mut Vec<u8>) -> Option<()> {
        let digits = usize::from(self.quad_len);
        let pad = usize::from(self.pad);
        if digits + pad != 4 || pad > 2 {
            return None;
        }
        let mut n = 0u32;
        for &d in self.quad.get(..digits)? {
            n = (n << 6) | d;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
        self.quad_len = 0;
        if pad > 0 {
            self.finished = true;
        }
        self.pad = 0;
        Some(())
    }

    /// Decode `text`, appending bytes to `out`. Returns `None` (leaving
    /// the decoder poisoned for this stream) on malformed input.
    pub fn update(&mut self, text: &str, out: &mut Vec<u8>) -> Option<()> {
        out.reserve(text.len() / 4 * 3);
        for c in text.bytes() {
            if c.is_ascii_whitespace() {
                continue;
            }
            if self.finished {
                return None; // data after a padded final quad
            }
            if c == b'=' {
                if self.quad_len < 2 {
                    return None; // a quad carries at most 2 pads
                }
                self.pad += 1;
            } else {
                if self.pad > 0 {
                    return None; // digit after padding within a quad
                }
                let d = value_of(c)?;
                if let Some(slot) = self.quad.get_mut(usize::from(self.quad_len)) {
                    *slot = d;
                }
                self.quad_len += 1;
            }
            if usize::from(self.quad_len) + usize::from(self.pad) == 4 {
                self.flush_quad(out)?;
            }
        }
        Some(())
    }

    /// Declare end of input: fails if a quad is left incomplete. The
    /// decoder is reusable afterwards.
    pub fn finish(&mut self) -> Option<()> {
        let clean = self.quad_len == 0 && self.pad == 0;
        *self = Base64Decoder::default();
        clean.then_some(())
    }
}

/// Decode base64 text (whitespace tolerated) to bytes. Returns `None` on
/// malformed input.
pub fn decode(text: &str) -> Option<Vec<u8>> {
    let compact: Vec<u8> = text.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !compact.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(compact.len() / 4 * 3);
    for chunk in compact.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        let digits = chunk.get(..4 - pad)?;
        if pad > 2 || digits.contains(&b'=') {
            return None;
        }
        let mut n = 0u32;
        for &c in digits {
            n = (n << 6) | value_of(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("").unwrap(), b"");
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode("Zm9").is_none()); // bad length
        assert!(decode("Zm!v").is_none()); // bad char
        assert!(decode("Z===").is_none()); // over-padded
        assert!(decode("Z=m9").is_none()); // interior padding
    }

    #[test]
    fn round_trip_all_bytes() {
        let data: Vec<u8> = (0u8..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn incremental_encoder_matches_one_shot_for_every_split() {
        let data: Vec<u8> = (0u8..=200).collect();
        let expect = encode(&data);
        for split in 0..=data.len() {
            let mut enc = Base64Encoder::new();
            let mut out = String::new();
            enc.update(&data[..split], &mut out);
            enc.update(&data[split..], &mut out);
            enc.finish(&mut out);
            assert_eq!(out, expect, "split at {split}");
        }
        // Byte-at-a-time.
        let mut enc = Base64Encoder::new();
        let mut out = String::new();
        for b in &data {
            enc.update(std::slice::from_ref(b), &mut out);
        }
        enc.finish(&mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn incremental_encoder_is_reusable_after_finish() {
        let mut enc = Base64Encoder::new();
        let mut out = String::new();
        enc.update(b"foob", &mut out);
        assert_eq!(enc.pending(), 1);
        enc.finish(&mut out);
        assert_eq!(out, "Zm9vYg==");
        out.clear();
        enc.update(b"foobar", &mut out);
        enc.finish(&mut out);
        assert_eq!(out, "Zm9vYmFy");
    }

    #[test]
    fn incremental_decoder_matches_one_shot_for_every_split() {
        let data: Vec<u8> = (0u8..=200).collect();
        let text = format!("{}\n", encode(&data)); // trailing whitespace tolerated
        for split in 0..=text.len() {
            let mut dec = Base64Decoder::new();
            let mut out = Vec::new();
            dec.update(&text[..split], &mut out).unwrap();
            dec.update(&text[split..], &mut out).unwrap();
            dec.finish().unwrap();
            assert_eq!(out, data, "split at {split}");
        }
    }

    #[test]
    fn incremental_decoder_rejects_malformed() {
        let feed = |parts: &[&str]| -> Option<Vec<u8>> {
            let mut dec = Base64Decoder::new();
            let mut out = Vec::new();
            for p in parts {
                dec.update(p, &mut out)?;
            }
            dec.finish()?;
            Some(out)
        };
        assert!(feed(&["Zm9"]).is_none()); // truncated quad
        assert!(feed(&["Zm", "!v"]).is_none()); // bad char across a split
        assert!(feed(&["Z=", "=="]).is_none()); // over-padded
        assert!(feed(&["Z=", "m9"]).is_none()); // digit after padding
        assert!(feed(&["Zg==", "Zg=="]).is_none()); // data after final quad
        assert_eq!(feed(&["Zg=", "=", " \n"]).unwrap(), b"f"); // ws after end ok
    }

    #[test]
    fn incremental_decoder_empty_input_is_empty() {
        let mut dec = Base64Decoder::new();
        let mut out = Vec::new();
        dec.update("", &mut out).unwrap();
        dec.update(" \n\t", &mut out).unwrap();
        dec.finish().unwrap();
        assert!(out.is_empty());
    }
}
