//! Thread-local end-to-end deadline budget.
//!
//! The wire layer's `X-Deadline-Ms` header carries a duration budget with
//! each request, and both server arms rewrite it to the *remaining*
//! budget before dispatch. This module is the in-process half of that
//! contract: the SOAP dispatcher installs the remaining budget around a
//! handler invocation, and every [`crate::SoapClient`] call made from
//! inside the handler (fan-out to downstream services) inherits it
//! automatically — no plumbing through service signatures.
//!
//! The budget is a plain thread-local because both server arms dispatch
//! handlers synchronously on the serving thread; an installed scope never
//! outlives its dispatch. Nested installs (a service calling back into a
//! local dispatcher) keep the tighter budget.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    /// Expiry instant of the innermost installed budget, if any.
    static EXPIRES_AT: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// RAII scope for an installed budget: restores the previous budget (or
/// none) when dropped, so nested dispatches unwind correctly.
pub struct BudgetScope {
    previous: Option<Instant>,
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        EXPIRES_AT.with(|slot| slot.set(self.previous));
    }
}

/// Install `budget` as the current thread's deadline for the duration of
/// the returned scope. A nested install never *loosens* the budget: the
/// effective expiry is the minimum of the new and any enclosing one.
pub fn install(budget: Duration) -> BudgetScope {
    let expires = Instant::now() + budget;
    EXPIRES_AT.with(|slot| {
        let previous = slot.get();
        let effective = match previous {
            Some(outer) => outer.min(expires),
            None => expires,
        };
        slot.set(Some(effective));
        BudgetScope { previous }
    })
}

/// Remaining budget on this thread: `None` when no budget is installed,
/// `Some(Duration::ZERO)` when one is installed but already spent.
pub fn remaining() -> Option<Duration> {
    EXPIRES_AT.with(|slot| {
        slot.get()
            .map(|expires| expires.saturating_duration_since(Instant::now()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_by_default() {
        assert_eq!(remaining(), None);
    }

    #[test]
    fn scope_installs_and_restores() {
        {
            let _scope = install(Duration::from_secs(10));
            let left = remaining().expect("budget installed");
            assert!(left > Duration::from_secs(9));
        }
        assert_eq!(remaining(), None, "scope drop restores no-budget");
    }

    #[test]
    fn nested_scope_keeps_the_tighter_budget() {
        let _outer = install(Duration::from_millis(50));
        {
            // An inner install with a looser budget must not extend the
            // outer deadline.
            let _inner = install(Duration::from_secs(60));
            assert!(remaining().unwrap() <= Duration::from_millis(50));
        }
        // A tighter inner budget applies, then unwinds to the outer one.
        {
            let _inner = install(Duration::from_millis(1));
            assert!(remaining().unwrap() <= Duration::from_millis(1));
        }
        assert!(remaining().unwrap() <= Duration::from_millis(50));
    }

    #[test]
    fn spent_budget_reads_zero_not_none() {
        let _scope = install(Duration::ZERO);
        assert_eq!(remaining(), Some(Duration::ZERO));
    }
}
