//! SOAP 1.1-style messaging for the portal services.
//!
//! Section 2 of the paper fixes the trio of Web-Service concepts: WSDL for
//! interfaces, SOAP for invocation, UDDI for discovery. This crate is the
//! SOAP leg: envelope framing, RPC-style value encoding, faults, and the
//! client/server machinery that every portal service (job submission, SRB
//! data management, context management, batch script generation,
//! authentication) is built on.
//!
//! Two design points come straight from the paper:
//!
//! * **Header entries carry security assertions.** §4: "SAML assertions are
//!   added to SOAP messages." [`envelope::Envelope`] keeps an ordered list
//!   of header elements that the auth layer reads and writes.
//! * **A common set of implementation error messages.** §3: "the standard
//!   set of portal services that we are building must define and relay a
//!   common set of error messages" distinct from SOAP-level errors.
//!   [`fault::PortalError`] is that set; services return it inside the
//!   `<detail>` of a SOAP fault, and clients recover it losslessly.

pub mod base64;
pub mod cache;
pub mod client;
pub mod deadline;
pub mod envelope;
pub mod fault;
pub(crate) mod scratch;
pub mod server;
pub mod value;

pub use cache::{fnv1a, ReadCache, ReadCacheConfig};
pub use client::{ReplyVerifier, SoapClient, SoapError};
pub use envelope::Envelope;
pub use fault::{Fault, FaultCode, PortalError, PortalErrorKind};
pub use server::{
    CallContext, Guard, MethodDesc, ResponseHeaderSupplier, SoapServer, SoapService,
    GENERATION_HEADER,
};
pub use value::{SoapType, SoapValue};

/// Result type for service method implementations: success value or fault.
pub type SoapResult<T> = std::result::Result<T, Fault>;

/// The SOAP 1.1 envelope namespace.
pub const SOAP_ENV_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";
/// XML Schema instance namespace (for `xsi:type`).
pub const XSI_NS: &str = "http://www.w3.org/2001/XMLSchema-instance";
/// XML Schema datatype namespace (for `xsd:*` type names).
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema";
