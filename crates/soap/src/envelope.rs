//! SOAP envelope construction and parsing.
//!
//! An [`Envelope`] is a list of header entries plus exactly one body entry.
//! RPC requests put a method wrapper element in the body
//! (`<m:METHOD xmlns:m="urn:SERVICE">` with one child per parameter);
//! responses use `<METHODResponse>` with a single `<return>` child; faults
//! use `<SOAP-ENV:Fault>`.

use portalws_xml::{Element, Node, XmlError};

use crate::fault::Fault;
use crate::value::SoapValue;
use crate::{SOAP_ENV_NS, XSD_NS, XSI_NS};

/// A SOAP message: headers plus one body entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Header entries, in order (SAML assertions, session tokens, …).
    pub headers: Vec<Element>,
    /// The single body entry.
    pub body: Element,
}

impl Envelope {
    /// Wrap a body entry with no headers.
    pub fn new(body: Element) -> Envelope {
        Envelope {
            headers: Vec::new(),
            body,
        }
    }

    /// Build an RPC request envelope for `service`/`method` with positional
    /// parameters. Parameter elements are named `arg0`, `arg1`, … unless a
    /// name is supplied via [`Envelope::request_named`].
    pub fn request(service: &str, method: &str, args: &[SoapValue]) -> Envelope {
        let named: Vec<(String, &SoapValue)> = args
            .iter()
            .enumerate()
            .map(|(i, v)| (format!("arg{i}"), v))
            .collect();
        Self::request_named(service, method, named.iter().map(|(n, v)| (n.as_str(), *v)))
    }

    /// Build an RPC request envelope with explicitly named parameters.
    pub fn request_named<'v>(
        service: &str,
        method: &str,
        args: impl IntoIterator<Item = (&'v str, &'v SoapValue)>,
    ) -> Envelope {
        let mut wrapper =
            Element::new(format!("m:{method}")).with_attr("xmlns:m", format!("urn:{service}"));
        for (name, value) in args {
            wrapper.push_child(value.to_element(name));
        }
        Envelope::new(wrapper)
    }

    /// Build an RPC response envelope for `method` returning `value`.
    pub fn response(method: &str, value: &SoapValue) -> Envelope {
        let wrapper =
            Element::new(format!("{method}Response")).with_child(value.to_element("return"));
        Envelope::new(wrapper)
    }

    /// Build a fault envelope.
    pub fn fault(fault: &Fault) -> Envelope {
        Envelope::new(fault.to_element())
    }

    /// Builder: add a header entry.
    pub fn with_header(mut self, header: Element) -> Envelope {
        self.headers.push(header);
        self
    }

    /// Find a header entry by local name.
    pub fn header(&self, local_name: &str) -> Option<&Element> {
        self.headers.iter().find(|h| h.local_name() == local_name)
    }

    /// Is the body a fault?
    pub fn is_fault(&self) -> bool {
        self.body.local_name() == "Fault"
    }

    /// Extract the fault, if the body is one.
    pub fn as_fault(&self) -> Option<Fault> {
        self.is_fault().then(|| Fault::from_element(&self.body))
    }

    /// The method name of an RPC request body (`m:submit` → `submit`).
    pub fn method(&self) -> &str {
        self.body.local_name()
    }

    /// The `urn:` service name from the request wrapper's namespace
    /// declaration, if present.
    pub fn service(&self) -> Option<&str> {
        self.body
            .namespace_decls()
            .into_iter()
            .find_map(|(_, uri)| uri.strip_prefix("urn:"))
    }

    /// Decode the positional/named parameters of an RPC request body.
    pub fn args(&self) -> Result<Vec<(String, SoapValue)>, String> {
        self.body
            .children()
            .map(|c| SoapValue::from_element(c).map(|v| (c.local_name().to_owned(), v)))
            .collect()
    }

    /// Decode the `<return>` value of an RPC response body.
    pub fn return_value(&self) -> Result<SoapValue, String> {
        match self.body.find("return") {
            Some(r) => SoapValue::from_element(r),
            None => Ok(SoapValue::Null),
        }
    }

    /// Serialize the full `<SOAP-ENV:Envelope>` document element.
    ///
    /// Clones the header and body trees into a new element; serialization
    /// paths should prefer [`Envelope::write_xml_into`], which writes the
    /// same bytes without the clone.
    pub fn to_element(&self) -> Element {
        let mut env = Element::new("SOAP-ENV:Envelope")
            .with_attr("xmlns:SOAP-ENV", SOAP_ENV_NS)
            .with_attr("xmlns:xsi", XSI_NS)
            .with_attr("xmlns:xsd", XSD_NS);
        if !self.headers.is_empty() {
            let mut header = Element::new("SOAP-ENV:Header");
            for h in &self.headers {
                header.push_child(h.clone());
            }
            env.push_child(header);
        }
        env.push_child(Element::new("SOAP-ENV:Body").with_child(self.body.clone()));
        env
    }

    /// Serialize into an existing buffer (appends), writing the envelope
    /// wrapper directly around the header/body trees — byte-identical to
    /// `to_element().to_xml()` but with no tree clone and no intermediate
    /// allocation. The SOAP hot path (server replies, client requests)
    /// routes through this with reusable scratch buffers.
    // portalint: hot-path-entry
    pub fn write_xml_into(&self, out: &mut String) {
        out.push_str("<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"");
        out.push_str(SOAP_ENV_NS);
        out.push_str("\" xmlns:xsi=\"");
        out.push_str(XSI_NS);
        out.push_str("\" xmlns:xsd=\"");
        out.push_str(XSD_NS);
        out.push_str("\">");
        if !self.headers.is_empty() {
            out.push_str("<SOAP-ENV:Header>");
            for h in &self.headers {
                h.write_xml_into(out);
            }
            out.push_str("</SOAP-ENV:Header>");
        }
        out.push_str("<SOAP-ENV:Body>");
        self.body.write_xml_into(out);
        out.push_str("</SOAP-ENV:Body></SOAP-ENV:Envelope>");
    }

    /// Serialize to XML text (the HTTP body).
    pub fn to_xml(&self) -> String {
        let mut out = String::with_capacity(192 + self.body.subtree_size() * 24);
        self.write_xml_into(&mut out);
        out
    }

    /// Parse an envelope from XML text.
    pub fn parse(xml: &str) -> Result<Envelope, XmlError> {
        Self::from_root(Element::parse(xml)?)
    }

    /// Parse an envelope from an already-parsed element.
    pub fn from_element(root: &Element) -> Result<Envelope, XmlError> {
        Self::from_root(root.clone())
    }

    /// Build an envelope from the root element by value.
    ///
    /// The hot path: header and body subtrees are moved out of `root`
    /// rather than deep-cloned, so parsing costs exactly one DOM build.
    // portalint: hot-path-entry
    pub fn from_root(mut root: Element) -> Result<Envelope, XmlError> {
        if root.local_name() != "Envelope" {
            // portalint: allow(hot-path-alloc) — parse-error branch; never runs on a well-formed envelope
            return Err(XmlError::Invalid(format!(
                "expected SOAP Envelope, found {:?}",
                root.local_name()
            )));
        }
        let mut headers: Option<Vec<Element>> = None;
        let mut body: Option<Vec<Element>> = None;
        for node in root.take_children() {
            let Node::Element(mut el) = node else {
                continue;
            };
            // First Header / first Body win, matching `Element::find`.
            match el.local_name() {
                "Header" if headers.is_none() => {
                    headers = Some(
                        el.take_children()
                            .into_iter()
                            .filter_map(|n| match n {
                                Node::Element(e) => Some(e),
                                _ => None,
                            })
                            .collect(),
                    );
                }
                "Body" if body.is_none() => {
                    body = Some(
                        el.take_children()
                            .into_iter()
                            .filter_map(|n| match n {
                                Node::Element(e) => Some(e),
                                _ => None,
                            })
                            .collect(),
                    );
                }
                _ => {}
            }
        }
        let body = body
            .ok_or_else(|| XmlError::Invalid("envelope has no Body".into()))?
            .into_iter()
            .next()
            .ok_or_else(|| XmlError::Invalid("envelope Body is empty".into()))?;
        Ok(Envelope {
            headers: headers.unwrap_or_default(),
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::PortalErrorKind;

    #[test]
    fn request_round_trip() {
        let env = Envelope::request(
            "JobSubmission",
            "submit",
            &[SoapValue::str("tg-login"), SoapValue::Int(4)],
        );
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(parsed.method(), "submit");
        assert_eq!(parsed.service(), Some("JobSubmission"));
        let args = parsed.args().unwrap();
        assert_eq!(args[0], ("arg0".into(), SoapValue::str("tg-login")));
        assert_eq!(args[1], ("arg1".into(), SoapValue::Int(4)));
    }

    #[test]
    fn named_request_round_trip() {
        let host = SoapValue::str("h");
        let env = Envelope::request_named("Srb", "ls", [("collection", &host)]);
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(
            parsed.args().unwrap(),
            vec![("collection".into(), SoapValue::str("h"))]
        );
    }

    #[test]
    fn response_round_trip() {
        let env = Envelope::response("submit", &SoapValue::Int(99));
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert!(!parsed.is_fault());
        assert_eq!(parsed.return_value().unwrap(), SoapValue::Int(99));
    }

    #[test]
    fn void_response() {
        let env = Envelope::response("delete", &SoapValue::Null);
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(parsed.return_value().unwrap(), SoapValue::Null);
    }

    #[test]
    fn fault_round_trip() {
        let fault = Fault::portal(PortalErrorKind::FileNotFound, "no such collection");
        let env = Envelope::fault(&fault);
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert!(parsed.is_fault());
        assert_eq!(parsed.as_fault().unwrap(), fault);
    }

    #[test]
    fn headers_carried() {
        let assertion = Element::new("saml:Assertion")
            .with_attr("xmlns:saml", "urn:oasis:saml")
            .with_text_child("subject", "kerberos:alice");
        let env = Envelope::request("Ctx", "get", &[]).with_header(assertion.clone());
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(parsed.headers.len(), 1);
        assert_eq!(parsed.header("Assertion"), Some(&assertion));
    }

    #[test]
    fn write_into_matches_element_serialization() {
        // The direct writer must stay byte-identical to the (cloning)
        // to_element() path, with and without headers.
        let with_headers = Envelope::request("Svc", "m", &[SoapValue::str("a & b")])
            .with_header(Element::new("saml:Assertion").with_text_child("subject", "<alice>"));
        let plain = Envelope::response("m", &SoapValue::Int(7));
        for env in [with_headers, plain] {
            let mut buf = String::new();
            env.write_xml_into(&mut buf);
            assert_eq!(buf, env.to_element().to_xml());
            assert_eq!(env.to_xml(), buf);
        }
    }

    #[test]
    fn non_envelope_rejected() {
        assert!(Envelope::parse("<notsoap/>").is_err());
        assert!(Envelope::parse("<Envelope/>").is_err()); // no Body
    }

    #[test]
    fn empty_body_rejected() {
        let xml = r#"<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"><SOAP-ENV:Body/></SOAP-ENV:Envelope>"#;
        assert!(Envelope::parse(xml).is_err());
    }

    #[test]
    fn xml_payload_through_envelope() {
        // The paper's "accepts an XML definition of a job" call shape.
        let jobs =
            Element::new("jobs").with_child(Element::new("job").with_text_child("command", "date"));
        let env = Envelope::request(
            "JobSubmission",
            "submitXml",
            &[SoapValue::Xml(jobs.clone())],
        );
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        let args = parsed.args().unwrap();
        assert_eq!(args[0].1, SoapValue::Xml(jobs));
    }
}
