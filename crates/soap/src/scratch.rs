//! Thread-local envelope serialization scratch.
//!
//! SOAP dispatch and client round-trips both end with "serialize this
//! envelope into an HTTP body". Serializing through a thread-local scratch
//! `String` means the working buffer reaches its high-water size once per
//! thread and is then reused: on the fixed worker threads of
//! `wire::HttpServer` (and on a client thread issuing many calls) every
//! later envelope serializes with exactly one allocation — the returned
//! exact-size body — instead of an amortized-growth `String` per reply.

use std::cell::RefCell;

use crate::envelope::Envelope;

thread_local! {
    static ENVELOPE_SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Serialize `env` into an owned HTTP body via the thread's scratch buffer.
/// Byte-identical to `env.to_xml().into_bytes()`.
pub(crate) fn envelope_body(env: &Envelope) -> Vec<u8> {
    ENVELOPE_SCRATCH.with(|scratch| {
        let mut buf = scratch.borrow_mut();
        buf.clear();
        env.write_xml_into(&mut buf);
        buf.as_bytes().to_vec()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SoapValue;

    #[test]
    fn scratch_body_matches_to_xml() {
        let envs = [
            Envelope::request("Calc", "add", &[SoapValue::Int(1), SoapValue::Int(2)]),
            Envelope::response("add", &SoapValue::str("a < b & c")),
        ];
        for env in envs {
            // Twice per envelope: the second call runs against a warm
            // (non-empty-capacity) scratch and must produce the same bytes.
            assert_eq!(envelope_body(&env), env.to_xml().into_bytes());
            assert_eq!(envelope_body(&env), env.to_xml().into_bytes());
        }
    }
}
