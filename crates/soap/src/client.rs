//! Client-side proxy to a remote SOAP service.
//!
//! The Figure 1 User Interface server "maintains client proxies to the
//! UDDI and SOAP Service Providers"; [`SoapClient`] is such a proxy. It is
//! transport-agnostic (real HTTP or in-memory) and supports an installable
//! *header supplier* so the auth layer can attach a fresh signed SAML
//! assertion to every outgoing call without the call sites knowing.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use portalws_wire::{
    Request, Transport, WireError, CACHE_FILL_HEADER, DEADLINE_HEADER, IDEMPOTENT_HEADER,
};
use portalws_xml::{Element, XmlError};

use crate::cache::{fnv1a, ReadCache};
use crate::envelope::Envelope;
use crate::fault::Fault;
use crate::server::{endpoint_path, GENERATION_HEADER};
use crate::value::SoapValue;

/// Errors seen by SOAP callers.
#[derive(Debug)]
pub enum SoapError {
    /// The wire transport failed.
    Transport(WireError),
    /// The response was not a parsable envelope.
    Protocol(String),
    /// The response XML failed to parse.
    Xml(XmlError),
    /// The service returned a SOAP fault (possibly with a typed portal
    /// error in its detail).
    Fault(Fault),
}

impl fmt::Display for SoapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoapError::Transport(e) => write!(f, "transport: {e}"),
            SoapError::Protocol(msg) => write!(f, "protocol: {msg}"),
            SoapError::Xml(e) => write!(f, "xml: {e}"),
            SoapError::Fault(fault) => write!(f, "{fault}"),
        }
    }
}

impl std::error::Error for SoapError {}

impl From<WireError> for SoapError {
    fn from(e: WireError) -> Self {
        SoapError::Transport(e)
    }
}

impl From<XmlError> for SoapError {
    fn from(e: XmlError) -> Self {
        SoapError::Xml(e)
    }
}

impl SoapError {
    /// The fault, if this error is one.
    pub fn as_fault(&self) -> Option<&Fault> {
        match self {
            SoapError::Fault(f) => Some(f),
            _ => None,
        }
    }
}

/// Supplies SOAP header entries for every outgoing call (e.g. a signed
/// SAML assertion from the auth layer).
pub type HeaderSupplier = Arc<dyn Fn() -> Vec<Element> + Send + Sync>;

/// Verifies the *reply* envelope before its value is returned (the
/// client half of mutual authentication). Return an error string to
/// reject the reply.
pub type ReplyVerifier = Arc<dyn Fn(&Envelope) -> std::result::Result<(), String> + Send + Sync>;

/// A client proxy bound to one service on one transport.
pub struct SoapClient {
    transport: Arc<dyn Transport>,
    service: String,
    path: String,
    header_supplier: RwLock<Option<HeaderSupplier>>,
    reply_verifier: RwLock<Option<ReplyVerifier>>,
    /// Methods safe to re-send after a transport failure; calls to these
    /// carry the wire layer's idempotency marker so a pooled transport's
    /// [`portalws_wire::RetryPolicy`] may retry them.
    idempotent_methods: RwLock<HashSet<String>>,
    /// Per-call wall-clock budget attached to every request; honored by
    /// deadline-aware transports ([`portalws_wire::PooledTransport`]),
    /// ignored by the 2002-regime ones.
    call_deadline: RwLock<Option<Duration>>,
    /// Versioned read cache with single-flight coalescing; applies only
    /// to methods in `cacheable_methods`.
    read_cache: RwLock<Option<Arc<ReadCache>>>,
    /// Methods whose results may be served from the read cache — pure
    /// reads (WSDL fetches, UDDI find/get, descriptor reads).
    cacheable_methods: RwLock<HashSet<String>>,
}

impl SoapClient {
    /// Bind a proxy for `service` over `transport` at the canonical
    /// `/soap/<service>` path.
    pub fn new(transport: Arc<dyn Transport>, service: impl Into<String>) -> SoapClient {
        let service = service.into();
        let path = endpoint_path(&service);
        SoapClient {
            transport,
            service,
            path,
            header_supplier: RwLock::new(None),
            reply_verifier: RwLock::new(None),
            idempotent_methods: RwLock::new(HashSet::new()),
            call_deadline: RwLock::new(None),
            read_cache: RwLock::new(None),
            cacheable_methods: RwLock::new(HashSet::new()),
        }
    }

    /// Service name this proxy is bound to.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// The transport in use (for stats inspection).
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Install a header supplier applied to every call.
    pub fn set_header_supplier(&self, supplier: HeaderSupplier) {
        *self.header_supplier.write() = Some(supplier);
    }

    /// Install a reply verifier: every reply envelope (including faults)
    /// must pass before its value is surfaced — mutual authentication's
    /// client half.
    pub fn set_reply_verifier(&self, verifier: ReplyVerifier) {
        *self.reply_verifier.write() = Some(verifier);
    }

    /// Declare `methods` safe to re-send after a transport failure
    /// (queries, lookups, status polls — anything without side effects).
    /// Calls to them are marked idempotent on the wire, which is the
    /// precondition for a pooled transport's retry policy to apply.
    pub fn set_idempotent_methods(&self, methods: &[&str]) {
        let mut set = self.idempotent_methods.write();
        set.clear();
        set.extend(methods.iter().map(|m| (*m).to_owned()));
    }

    /// Like [`SoapClient::set_idempotent_methods`] but additive: marks
    /// `methods` without unmarking what is already declared. Layers that
    /// decorate an existing proxy (e.g. the chunked transfer client) use
    /// this so they never clobber the owner's declarations.
    pub fn add_idempotent_methods(&self, methods: &[&str]) {
        let mut set = self.idempotent_methods.write();
        set.extend(methods.iter().map(|m| (*m).to_owned()));
    }

    /// Attach a wall-clock `budget` to every subsequent call. The budget
    /// rides the request as a header; deadline-aware transports enforce
    /// it across dial, exchange, and retries.
    pub fn set_call_deadline(&self, budget: Duration) {
        *self.call_deadline.write() = Some(budget);
    }

    /// Install a read cache and declare which `methods` are cacheable.
    /// Only pure reads belong here (WSDL fetches, UDDI find/get,
    /// descriptor reads); everything else keeps going straight to the
    /// wire. The cache may be shared across clients, but entries are
    /// keyed per service so sharing never mixes results.
    pub fn enable_read_cache(&self, cache: Arc<ReadCache>, methods: &[&str]) {
        *self.read_cache.write() = Some(cache);
        let mut set = self.cacheable_methods.write();
        set.clear();
        set.extend(methods.iter().map(|m| (*m).to_owned()));
    }

    /// The read cache, if one is installed (stats inspection).
    pub fn read_cache(&self) -> Option<Arc<ReadCache>> {
        self.read_cache.read().clone()
    }

    /// Invoke `method` with positional arguments.
    pub fn call(&self, method: &str, args: &[SoapValue]) -> Result<SoapValue, SoapError> {
        self.call_envelope(Envelope::request(&self.service, method, args))
    }

    /// Invoke `method` with named arguments.
    pub fn call_named(
        &self,
        method: &str,
        args: &[(&str, SoapValue)],
    ) -> Result<SoapValue, SoapError> {
        let env = Envelope::request_named(&self.service, method, args.iter().map(|(n, v)| (*n, v)));
        self.call_envelope(env)
    }

    /// Invoke with a fully built envelope (headers may already be set; the
    /// supplier's headers are appended).
    ///
    /// If a read cache is installed and the method is declared cacheable,
    /// the call is served through it: the cache key digests the request
    /// *body* only (supplier headers such as per-call assertions must not
    /// fragment keys), concurrent identical calls coalesce onto one wire
    /// call, and stale-past-TTL versioned entries revalidate with a
    /// `generation` probe instead of a body refetch.
    pub fn call_envelope(&self, mut envelope: Envelope) -> Result<SoapValue, SoapError> {
        if let Some(supplier) = self.header_supplier.read().clone() {
            envelope.headers.extend(supplier());
        }
        let cacheable = self.cacheable_methods.read().contains(envelope.method());
        let cache = if cacheable {
            self.read_cache.read().clone()
        } else {
            None
        };
        match cache {
            Some(cache) => {
                let digest = fnv1a(envelope.body.to_xml().as_bytes());
                let probe = || self.probe_generation();
                let fetch = || self.exchange(&envelope, true);
                cache.get_or_fetch(
                    &self.service,
                    envelope.method(),
                    digest,
                    Some(&probe),
                    &fetch,
                )
            }
            None => self.exchange(&envelope, false).map(|(value, _)| value),
        }
    }

    /// One wire round trip: serialize, send, parse, verify. Returns the
    /// reply value and the service generation piggybacked on the reply
    /// header, if any. Every observed generation — including those on
    /// faults and mutation replies — is fed to the read cache so stale
    /// entries die at the next lookup.
    fn exchange(
        &self,
        envelope: &Envelope,
        cache_fill: bool,
    ) -> Result<(SoapValue, Option<u64>), SoapError> {
        let mut req = Request::post(self.path.clone(), crate::scratch::envelope_body(envelope))
            .with_header("Content-Type", "text/xml; charset=utf-8")
            .with_header(
                "SOAPAction",
                format!("urn:{}#{}", self.service, envelope.method()),
            );
        if cache_fill {
            // Lets the pool attribute this reuse to the caching layer.
            req = req.with_header(CACHE_FILL_HEADER, "true");
        }
        if self.idempotent_methods.read().contains(envelope.method()) {
            req = req.with_header(IDEMPOTENT_HEADER, "true");
        }
        // Effective budget: the tighter of this client's configured
        // per-call deadline and any budget inherited from an enclosing
        // dispatch (see [`crate::deadline`]). A spent inherited budget
        // fails fast — no wire call can possibly complete in time.
        let inherited = crate::deadline::remaining();
        if inherited == Some(Duration::ZERO) {
            return Err(SoapError::Fault(Fault::portal(
                crate::fault::PortalErrorKind::DeadlineExceeded,
                format!(
                    "deadline budget spent before calling {}.{}",
                    self.service,
                    envelope.method()
                ),
            )));
        }
        let explicit = *self.call_deadline.read();
        let budget = match (explicit, inherited) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if let Some(budget) = budget {
            // Round up to a whole millisecond so a nonzero budget never
            // serializes as an already-expired "0".
            req = req.with_header(DEADLINE_HEADER, budget.as_millis().max(1).to_string());
        }
        let resp = self.transport.round_trip(req)?;
        let reply = Envelope::parse(&resp.body_str())
            .map_err(|e| SoapError::Protocol(format!("unparsable reply: {e}")))?;
        let generation = reply
            .header(GENERATION_HEADER)
            .and_then(|h| h.text().trim().parse::<u64>().ok());
        if let (Some(generation), Some(cache)) = (generation, self.read_cache.read().as_ref()) {
            cache.observe_generation(&self.service, generation);
        }
        if let Some(verifier) = self.reply_verifier.read().clone() {
            verifier(&reply)
                .map_err(|msg| SoapError::Protocol(format!("reply rejected: {msg}")))?;
        }
        if let Some(fault) = reply.as_fault() {
            return Err(SoapError::Fault(fault));
        }
        let value = reply.return_value().map_err(SoapError::Protocol)?;
        Ok((value, generation))
    }

    /// Cheap revalidation probe: ask the service for its current mutation
    /// generation (every versioned service exposes a `generation` method).
    /// `None` when the service is unreachable or unversioned — the cache
    /// then treats the entry as unprovable and refetches.
    fn probe_generation(&self) -> Option<u64> {
        let mut envelope = Envelope::request(&self.service, "generation", &[]);
        if let Some(supplier) = self.header_supplier.read().clone() {
            envelope.headers.extend(supplier());
        }
        let (value, generation) = self.exchange(&envelope, false).ok()?;
        // Checked conversion on the body fallback: a negative or garbage
        // reply must not wrap into a huge generation — observe_generation
        // only ever advances, so one bad probe would permanently
        // invalidate every future entry for the service.
        generation.or_else(|| value.as_i64().and_then(|g| u64::try_from(g).ok()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::PortalErrorKind;
    use crate::server::test_support::Calculator;
    use crate::server::SoapServer;
    use portalws_wire::{Handler, HttpServer, HttpTransport, InMemoryTransport};

    fn in_memory_client() -> SoapClient {
        let server = SoapServer::new();
        server.mount(Arc::new(Calculator));
        let handler: Arc<dyn Handler> = Arc::new(server);
        SoapClient::new(Arc::new(InMemoryTransport::new(handler)), "Calc")
    }

    #[test]
    fn call_success() {
        let client = in_memory_client();
        let out = client
            .call("add", &[SoapValue::Int(20), SoapValue::Int(22)])
            .unwrap();
        assert_eq!(out, SoapValue::Int(42));
    }

    #[test]
    fn call_named_success() {
        let client = in_memory_client();
        let out = client
            .call_named("echo", &[("value", SoapValue::str("marco"))])
            .unwrap();
        assert_eq!(out, SoapValue::str("marco"));
    }

    #[test]
    fn fault_surfaces_typed_error() {
        let client = in_memory_client();
        let err = client.call("add", &[SoapValue::str("bad")]).unwrap_err();
        let fault = err.as_fault().expect("fault");
        assert_eq!(fault.kind(), Some(PortalErrorKind::BadArguments));
    }

    #[test]
    fn unknown_method_is_fault() {
        let client = in_memory_client();
        assert!(matches!(
            client.call("frobnicate", &[]),
            Err(SoapError::Fault(_))
        ));
    }

    #[test]
    fn header_supplier_attaches_headers() {
        let server = SoapServer::new();
        server.mount(Arc::new(Calculator));
        server.set_guard(Arc::new(|env, _| {
            if env.header("Token").is_some() {
                Ok(())
            } else {
                Err(Fault::portal(PortalErrorKind::AuthFailed, "no token"))
            }
        }));
        let handler: Arc<dyn Handler> = Arc::new(server);
        let client = SoapClient::new(Arc::new(InMemoryTransport::new(handler)), "Calc");

        // Without supplier: rejected.
        assert!(client.call("echo", &[SoapValue::str("x")]).is_err());

        client.set_header_supplier(Arc::new(|| vec![Element::new("Token").with_text("t")]));
        assert_eq!(
            client.call("echo", &[SoapValue::str("x")]).unwrap(),
            SoapValue::str("x")
        );
    }

    #[test]
    fn over_real_http() {
        let soap = SoapServer::new();
        soap.mount(Arc::new(Calculator));
        let handler: Arc<dyn Handler> = Arc::new(soap);
        let server = HttpServer::start(handler, 2).unwrap();
        let client = SoapClient::new(Arc::new(HttpTransport::new(server.addr())), "Calc");
        assert_eq!(
            client
                .call("add", &[SoapValue::Int(4), SoapValue::Int(5)])
                .unwrap(),
            SoapValue::Int(9)
        );
        server.shutdown();
    }

    #[test]
    fn pooled_transport_reuses_connections_across_soap_calls() {
        use portalws_wire::PooledTransport;
        let soap = SoapServer::new();
        soap.mount(Arc::new(Calculator));
        let handler: Arc<dyn Handler> = Arc::new(soap);
        let server = HttpServer::start(handler, 2).unwrap();
        let client = SoapClient::new(Arc::new(PooledTransport::new(server.addr())), "Calc");
        for i in 0..5 {
            assert_eq!(
                client
                    .call("add", &[SoapValue::Int(i), SoapValue::Int(1)])
                    .unwrap(),
                SoapValue::Int(i + 1)
            );
        }
        let snap = client.transport().stats().snapshot();
        assert_eq!(snap.connections, 1, "pool amortized the per-call dial");
        assert_eq!(snap.pool_reuse_hits, 4);
        server.shutdown();
    }

    #[test]
    fn over_the_reactor_server_arm() {
        // The SOAP glue is arm-agnostic: the same SoapServer handler
        // round-trips over the epoll reactor, and pooled keep-alive
        // connections stay reusable across calls.
        use portalws_wire::PooledTransport;
        let soap = SoapServer::new();
        soap.mount(Arc::new(Calculator));
        let handler: Arc<dyn Handler> = Arc::new(soap);
        let server = HttpServer::start_reactor(handler, 2).unwrap();
        let client = SoapClient::new(Arc::new(PooledTransport::new(server.addr())), "Calc");
        for i in 0..5 {
            assert_eq!(
                client
                    .call("add", &[SoapValue::Int(i), SoapValue::Int(1)])
                    .unwrap(),
                SoapValue::Int(i + 1)
            );
        }
        let snap = client.transport().stats().snapshot();
        assert_eq!(snap.connections, 1, "reactor kept the connection alive");
        assert_eq!(snap.pool_reuse_hits, 4);
        server.shutdown();
    }

    #[test]
    fn idempotent_and_deadline_markers_ride_the_request() {
        use parking_lot::Mutex;
        use portalws_wire::{DEADLINE_HEADER, IDEMPOTENT_HEADER};
        let soap = SoapServer::new();
        soap.mount(Arc::new(Calculator));
        let inner: Arc<dyn Handler> = Arc::new(soap);
        type SeenMarkers = Vec<(bool, Option<String>)>;
        let seen: Arc<Mutex<SeenMarkers>> = Arc::new(Mutex::new(Vec::new()));
        let observer = Arc::clone(&seen);
        let handler: Arc<dyn Handler> = Arc::new(move |req: &Request| {
            observer.lock().push((
                req.header(IDEMPOTENT_HEADER).is_some(),
                req.header(DEADLINE_HEADER).map(str::to_owned),
            ));
            inner.handle(req)
        });
        let client = SoapClient::new(Arc::new(InMemoryTransport::new(handler)), "Calc");
        client.set_idempotent_methods(&["echo"]);
        client.set_call_deadline(std::time::Duration::from_millis(1500));

        client.call("echo", &[SoapValue::str("x")]).unwrap();
        client
            .call("add", &[SoapValue::Int(1), SoapValue::Int(2)])
            .unwrap();

        let seen = seen.lock();
        assert_eq!(seen[0], (true, Some("1500".into())), "echo is idempotent");
        assert_eq!(
            seen[1],
            (false, Some("1500".into())),
            "add is not marked idempotent"
        );
    }

    #[test]
    fn inherited_budget_tightens_the_deadline_header() {
        use parking_lot::Mutex;
        use portalws_wire::DEADLINE_HEADER;
        let soap = SoapServer::new();
        soap.mount(Arc::new(Calculator));
        let inner: Arc<dyn Handler> = Arc::new(soap);
        let seen: Arc<Mutex<Vec<Option<u64>>>> = Arc::new(Mutex::new(Vec::new()));
        let observer = Arc::clone(&seen);
        let handler: Arc<dyn Handler> = Arc::new(move |req: &Request| {
            observer.lock().push(
                req.header(DEADLINE_HEADER)
                    .and_then(|v| v.parse::<u64>().ok()),
            );
            inner.handle(req)
        });
        let client = SoapClient::new(Arc::new(InMemoryTransport::new(handler)), "Calc");
        client.set_call_deadline(std::time::Duration::from_millis(1500));

        // Enclosing budget tighter than the configured deadline wins.
        {
            let _scope = crate::deadline::install(std::time::Duration::from_millis(100));
            client.call("echo", &[SoapValue::str("x")]).unwrap();
        }
        // Looser enclosing budget leaves the configured deadline alone.
        {
            let _scope = crate::deadline::install(std::time::Duration::from_secs(60));
            client.call("echo", &[SoapValue::str("x")]).unwrap();
        }
        // No configured deadline: the inherited budget still rides alone.
        let bare = in_memory_client();
        {
            let _scope = crate::deadline::install(std::time::Duration::from_millis(250));
            bare.call("echo", &[SoapValue::str("x")]).unwrap();
        }

        let seen = seen.lock();
        let tightened = seen[0].expect("deadline header present");
        assert!(
            tightened > 0 && tightened <= 100,
            "inherited 100 ms budget capped the header, got {tightened}"
        );
        assert_eq!(seen[1], Some(1500), "60 s inherited budget did not loosen");
    }

    #[test]
    fn spent_inherited_budget_fails_fast_without_a_wire_call() {
        use parking_lot::Mutex;
        let soap = SoapServer::new();
        soap.mount(Arc::new(Calculator));
        let inner: Arc<dyn Handler> = Arc::new(soap);
        let calls = Arc::new(Mutex::new(0u32));
        let observer = Arc::clone(&calls);
        let handler: Arc<dyn Handler> = Arc::new(move |req: &Request| {
            *observer.lock() += 1;
            inner.handle(req)
        });
        let client = SoapClient::new(Arc::new(InMemoryTransport::new(handler)), "Calc");

        let _scope = crate::deadline::install(std::time::Duration::ZERO);
        let err = client.call("echo", &[SoapValue::str("x")]).unwrap_err();
        let fault = err.as_fault().expect("typed fault");
        assert_eq!(fault.kind(), Some(PortalErrorKind::DeadlineExceeded));
        assert_eq!(*calls.lock(), 0, "no wire call once the budget is spent");
    }

    #[test]
    fn transport_error_propagates() {
        let client = SoapClient::new(Arc::new(HttpTransport::new("127.0.0.1:1")), "Calc");
        assert!(matches!(
            client.call("add", &[]),
            Err(SoapError::Transport(_))
        ));
    }

    /// Wrap `inner` so every wire call is counted; returns the handler
    /// and the counter.
    fn counting_handler(
        inner: Arc<dyn Handler>,
    ) -> (Arc<dyn Handler>, Arc<std::sync::atomic::AtomicU64>) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let calls = Arc::new(AtomicU64::new(0));
        let observer = Arc::clone(&calls);
        let handler: Arc<dyn Handler> = Arc::new(move |req: &Request| {
            observer.fetch_add(1, Ordering::SeqCst);
            inner.handle(req)
        });
        (handler, calls)
    }

    #[test]
    fn cacheable_method_served_from_cache() {
        use crate::cache::{ReadCache, ReadCacheConfig};
        let soap = SoapServer::new();
        soap.mount(Arc::new(Calculator));
        let (handler, calls) = counting_handler(Arc::new(soap));
        let client = SoapClient::new(Arc::new(InMemoryTransport::new(handler)), "Calc");
        let cache = Arc::new(ReadCache::new(ReadCacheConfig::default()));
        client.enable_read_cache(Arc::clone(&cache), &["echo"]);

        for _ in 0..4 {
            assert_eq!(
                client.call("echo", &[SoapValue::str("x")]).unwrap(),
                SoapValue::str("x")
            );
        }
        // One fill, three hits; non-cacheable methods still hit the wire.
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1);
        client
            .call("add", &[SoapValue::Int(1), SoapValue::Int(2)])
            .unwrap();
        client
            .call("add", &[SoapValue::Int(1), SoapValue::Int(2)])
            .unwrap();
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 3);
        let snap = cache.stats().snapshot();
        assert_eq!(snap.cache_hits, 3);
        assert_eq!(snap.cache_misses, 1);
        // Distinct args are distinct cache keys.
        assert_eq!(
            client.call("echo", &[SoapValue::str("y")]).unwrap(),
            SoapValue::str("y")
        );
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    #[test]
    fn coalesced_identical_lookups_issue_one_wire_call() {
        // Satellite: M threads issuing the identical cacheable lookup
        // against a counting transport produce exactly one wire call and
        // M identical results. The handler holds the leader's call open
        // until released, so every other thread provably arrives while
        // the flight is pending and parks on it.
        use crate::cache::{ReadCache, ReadCacheConfig};
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Barrier;

        const M: usize = 8;
        let soap = SoapServer::new();
        soap.mount(Arc::new(Calculator));
        let inner: Arc<dyn Handler> = Arc::new(soap);
        let calls = Arc::new(AtomicU64::new(0));
        let release = Arc::new(AtomicBool::new(false));
        let (observer, gate) = (Arc::clone(&calls), Arc::clone(&release));
        let handler: Arc<dyn Handler> = Arc::new(move |req: &Request| {
            observer.fetch_add(1, Ordering::SeqCst);
            while !gate.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            inner.handle(req)
        });
        let client = Arc::new(SoapClient::new(
            Arc::new(InMemoryTransport::new(handler)),
            "Calc",
        ));
        let cache = Arc::new(ReadCache::new(ReadCacheConfig::default()));
        client.enable_read_cache(Arc::clone(&cache), &["echo"]);

        let barrier = Arc::new(Barrier::new(M));
        let workers: Vec<_> = (0..M)
            .map(|_| {
                let client = Arc::clone(&client);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    client.call("echo", &[SoapValue::str("same")])
                })
            })
            .collect();
        // Give every non-leader time to park on the flight, then let the
        // leader's wire call complete.
        std::thread::sleep(Duration::from_millis(100));
        release.store(true, Ordering::SeqCst);

        for worker in workers {
            let value = worker.join().expect("no stuck or panicked waiter");
            assert_eq!(value.unwrap(), SoapValue::str("same"));
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one wire call");
        let snap = cache.stats().snapshot();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(
            snap.coalesced_calls + snap.cache_hits,
            (M - 1) as u64,
            "every other caller was served without a wire call"
        );
    }

    #[test]
    fn failed_leader_does_not_strand_followers() {
        // Chaos variant: the leader's wire call fails (unparsable reply).
        // Followers must wake, re-race for leadership, and succeed on the
        // retry — no waiter parks forever behind a dead leader.
        use crate::cache::{ReadCache, ReadCacheConfig};
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Barrier;

        const M: usize = 6;
        let soap = SoapServer::new();
        soap.mount(Arc::new(Calculator));
        let inner: Arc<dyn Handler> = Arc::new(soap);
        let calls = Arc::new(AtomicU64::new(0));
        let release = Arc::new(AtomicBool::new(false));
        let (observer, gate) = (Arc::clone(&calls), Arc::clone(&release));
        let handler: Arc<dyn Handler> = Arc::new(move |req: &Request| {
            let n = observer.fetch_add(1, Ordering::SeqCst);
            if n == 0 {
                // First (leader) call: hold until followers are parked,
                // then fail with a body that cannot parse as an envelope.
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                return portalws_wire::Response::ok("text/xml", "garbage");
            }
            inner.handle(req)
        });
        let client = Arc::new(SoapClient::new(
            Arc::new(InMemoryTransport::new(handler)),
            "Calc",
        ));
        let cache = Arc::new(ReadCache::new(ReadCacheConfig::default()));
        client.enable_read_cache(Arc::clone(&cache), &["echo"]);

        let barrier = Arc::new(Barrier::new(M));
        let workers: Vec<_> = (0..M)
            .map(|_| {
                let client = Arc::clone(&client);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    client.call("echo", &[SoapValue::str("same")])
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(100));
        release.store(true, Ordering::SeqCst);

        let results: Vec<_> = workers
            .into_iter()
            .map(|w| w.join().expect("no stuck or panicked waiter"))
            .collect();
        let failures = results.iter().filter(|r| r.is_err()).count();
        let successes = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(failures, 1, "only the failed leader surfaces the error");
        assert_eq!(successes, M - 1, "every follower retried and succeeded");
        for r in results.iter().flatten() {
            assert_eq!(*r, SoapValue::str("same"));
        }
        // The retry path issued exactly one more wire call.
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }
}
