//! SOAP faults and the portal's common implementation-error vocabulary.
//!
//! §3 of the paper distinguishes two error classes: SOAP-level errors and
//! *implementation* errors ("the file didn't get transferred because the
//! disk was full"), and argues interoperability "requires consistent error
//! messaging" — a common set of error messages relayed by every portal
//! service. [`PortalErrorKind`] is that common set; it rides in the
//! `<detail>` element of a SOAP fault and survives a round trip through
//! the wire, so a Python-style client and a Java-style client (here: two
//! independent Rust clients) see the same failure taxonomy.

use std::fmt;

use portalws_wire::WireError;
use portalws_xml::Element;

/// SOAP 1.1 fault codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCode {
    /// The message was malformed or incomplete — sender's fault.
    Client,
    /// The service failed to process a well-formed message.
    Server,
    /// Envelope namespace mismatch.
    VersionMismatch,
    /// A mustUnderstand header was not understood.
    MustUnderstand,
}

impl FaultCode {
    /// Qualified wire form.
    pub fn wire_name(self) -> &'static str {
        match self {
            FaultCode::Client => "SOAP-ENV:Client",
            FaultCode::Server => "SOAP-ENV:Server",
            FaultCode::VersionMismatch => "SOAP-ENV:VersionMismatch",
            FaultCode::MustUnderstand => "SOAP-ENV:MustUnderstand",
        }
    }

    /// Parse from wire form (prefix-insensitive).
    pub fn from_wire_name(s: &str) -> FaultCode {
        let local = s.split_once(':').map(|(_, l)| l).unwrap_or(s);
        match local {
            "Client" => FaultCode::Client,
            "VersionMismatch" => FaultCode::VersionMismatch,
            "MustUnderstand" => FaultCode::MustUnderstand,
            _ => FaultCode::Server,
        }
    }
}

/// The portal-wide implementation-error taxonomy (§3's "common set of
/// error messages").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortalErrorKind {
    /// Storage is full — the paper's own example.
    DiskFull,
    /// Requested file or collection does not exist.
    FileNotFound,
    /// Caller lacks permission on the resource.
    PermissionDenied,
    /// Authentication failed or assertion rejected.
    AuthFailed,
    /// Target host is not registered or is down.
    HostUnavailable,
    /// Target queue does not exist on the host.
    QueueUnavailable,
    /// The scheduler rejected the job or script.
    JobRejected,
    /// No such job/session/context identifier.
    NotFound,
    /// Request arguments were invalid at the application level.
    BadArguments,
    /// The service is at a declared capacity limit (e.g. the transfer
    /// handle table or its buffered-byte budget is full); retry later.
    Busy,
    /// The call's end-to-end deadline budget was already spent when the
    /// request reached the service; retrying cannot help, the caller must
    /// start over with a fresh budget.
    DeadlineExceeded,
    /// Anything else; carries only its message.
    Internal,
}

impl PortalErrorKind {
    /// Stable wire code.
    pub fn code(self) -> &'static str {
        match self {
            PortalErrorKind::DiskFull => "DISK_FULL",
            PortalErrorKind::FileNotFound => "FILE_NOT_FOUND",
            PortalErrorKind::PermissionDenied => "PERMISSION_DENIED",
            PortalErrorKind::AuthFailed => "AUTH_FAILED",
            PortalErrorKind::HostUnavailable => "HOST_UNAVAILABLE",
            PortalErrorKind::QueueUnavailable => "QUEUE_UNAVAILABLE",
            PortalErrorKind::JobRejected => "JOB_REJECTED",
            PortalErrorKind::NotFound => "NOT_FOUND",
            PortalErrorKind::BadArguments => "BAD_ARGUMENTS",
            PortalErrorKind::Busy => "BUSY",
            PortalErrorKind::DeadlineExceeded => "DEADLINE_EXCEEDED",
            PortalErrorKind::Internal => "INTERNAL",
        }
    }

    /// Parse a wire code; unknown codes map to [`PortalErrorKind::Internal`]
    /// so that a newer peer never breaks an older client.
    pub fn from_code(code: &str) -> PortalErrorKind {
        match code {
            "DISK_FULL" => PortalErrorKind::DiskFull,
            "FILE_NOT_FOUND" => PortalErrorKind::FileNotFound,
            "PERMISSION_DENIED" => PortalErrorKind::PermissionDenied,
            "AUTH_FAILED" => PortalErrorKind::AuthFailed,
            "HOST_UNAVAILABLE" => PortalErrorKind::HostUnavailable,
            "QUEUE_UNAVAILABLE" => PortalErrorKind::QueueUnavailable,
            "JOB_REJECTED" => PortalErrorKind::JobRejected,
            "NOT_FOUND" => PortalErrorKind::NotFound,
            "BAD_ARGUMENTS" => PortalErrorKind::BadArguments,
            "BUSY" => PortalErrorKind::Busy,
            "DEADLINE_EXCEEDED" => PortalErrorKind::DeadlineExceeded,
            _ => PortalErrorKind::Internal,
        }
    }
}

/// A typed implementation error: common code plus human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortalError {
    /// Which common error this is.
    pub kind: PortalErrorKind,
    /// Human-readable context.
    pub message: String,
}

impl PortalError {
    /// Construct an error.
    pub fn new(kind: PortalErrorKind, message: impl Into<String>) -> Self {
        PortalError {
            kind,
            message: message.into(),
        }
    }

    /// Serialize as the fault `<detail>` payload.
    pub fn to_element(&self) -> Element {
        Element::new("portalError")
            .with_text_child("code", self.kind.code())
            .with_text_child("message", self.message.clone())
    }

    /// Parse from a fault `<detail>` payload.
    pub fn from_element(el: &Element) -> Option<PortalError> {
        let code = el.find_text("code")?;
        Some(PortalError {
            kind: PortalErrorKind::from_code(code),
            message: el.find_text("message").unwrap_or_default().to_owned(),
        })
    }
}

impl fmt::Display for PortalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.code(), self.message)
    }
}

impl std::error::Error for PortalError {}

/// A SOAP fault: code, human string, and optional typed portal error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// SOAP-level classification.
    pub code: FaultCode,
    /// `<faultstring>` text.
    pub string: String,
    /// Typed portal error carried in `<detail>`, if any.
    pub detail: Option<PortalError>,
}

impl Fault {
    /// A server-side fault without typed detail.
    pub fn server(msg: impl Into<String>) -> Fault {
        Fault {
            code: FaultCode::Server,
            string: msg.into(),
            detail: None,
        }
    }

    /// A client-side (caller) fault without typed detail.
    pub fn client(msg: impl Into<String>) -> Fault {
        Fault {
            code: FaultCode::Client,
            string: msg.into(),
            detail: None,
        }
    }

    /// A fault carrying a typed portal error. The fault code is `Server`
    /// except for errors that are by definition the caller's
    /// ([`PortalErrorKind::BadArguments`], [`PortalErrorKind::AuthFailed`]).
    pub fn portal(kind: PortalErrorKind, msg: impl Into<String>) -> Fault {
        let message = msg.into();
        let code = match kind {
            PortalErrorKind::BadArguments
            | PortalErrorKind::AuthFailed
            | PortalErrorKind::DeadlineExceeded => FaultCode::Client,
            _ => FaultCode::Server,
        };
        Fault {
            code,
            string: message.clone(),
            detail: Some(PortalError::new(kind, message)),
        }
    }

    /// Map a transport-level [`WireError`] to the portal fault taxonomy.
    ///
    /// This is the canonical wire→fault mapping: every `WireError` variant
    /// must appear here, and portalint's `wire-fault-map` rule checks that
    /// it does (add an arm before adding a variant).
    // portalint: wire-error-map
    pub fn from_wire(e: &WireError) -> Fault {
        match e {
            WireError::Io(io) => Fault::portal(
                PortalErrorKind::HostUnavailable,
                format!("transport I/O failure: {io}"),
            ),
            WireError::BadFrame(msg) => Fault::portal(
                PortalErrorKind::Internal,
                format!("malformed HTTP frame: {msg}"),
            ),
            WireError::HttpStatus(status, body) => Fault::portal(
                PortalErrorKind::Internal,
                format!("unexpected HTTP status {status}: {body}"),
            ),
            WireError::Timeout(what) => Fault::portal(
                PortalErrorKind::HostUnavailable,
                format!("timed out waiting for {what}"),
            ),
        }
    }

    /// The typed kind, if present.
    pub fn kind(&self) -> Option<PortalErrorKind> {
        self.detail.as_ref().map(|d| d.kind)
    }

    /// Serialize as the `<SOAP-ENV:Fault>` body entry.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("SOAP-ENV:Fault")
            .with_text_child("faultcode", self.code.wire_name())
            .with_text_child("faultstring", self.string.clone());
        if let Some(detail) = &self.detail {
            el.push_child(Element::new("detail").with_child(detail.to_element()));
        }
        el
    }

    /// Parse from a `<Fault>` body entry.
    pub fn from_element(el: &Element) -> Fault {
        let code = el
            .find_text("faultcode")
            .map(FaultCode::from_wire_name)
            .unwrap_or(FaultCode::Server);
        let string = el.find_text("faultstring").unwrap_or_default().to_owned();
        let detail = el
            .find("detail")
            .and_then(|d| d.find("portalError"))
            .and_then(PortalError::from_element);
        Fault {
            code,
            string,
            detail,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.detail {
            Some(d) => write!(f, "SOAP fault ({:?}): {d}", self.code),
            None => write!(f, "SOAP fault ({:?}): {}", self.code, self.string),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portal_fault_round_trip() {
        let f = Fault::portal(PortalErrorKind::DiskFull, "srb collection at quota");
        let el = f.to_element();
        let rt = Fault::from_element(&el);
        assert_eq!(rt, f);
        assert_eq!(rt.kind(), Some(PortalErrorKind::DiskFull));
    }

    #[test]
    fn plain_fault_round_trip() {
        let f = Fault::server("exploded");
        assert_eq!(Fault::from_element(&f.to_element()), f);
    }

    #[test]
    fn caller_errors_get_client_code() {
        assert_eq!(
            Fault::portal(PortalErrorKind::BadArguments, "x").code,
            FaultCode::Client
        );
        assert_eq!(
            Fault::portal(PortalErrorKind::AuthFailed, "x").code,
            FaultCode::Client
        );
        assert_eq!(
            Fault::portal(PortalErrorKind::DiskFull, "x").code,
            FaultCode::Server
        );
    }

    #[test]
    fn unknown_code_degrades_to_internal() {
        assert_eq!(
            PortalErrorKind::from_code("FUTURE_ERROR"),
            PortalErrorKind::Internal
        );
    }

    #[test]
    fn all_kinds_round_trip_codes() {
        for kind in [
            PortalErrorKind::DiskFull,
            PortalErrorKind::FileNotFound,
            PortalErrorKind::PermissionDenied,
            PortalErrorKind::AuthFailed,
            PortalErrorKind::HostUnavailable,
            PortalErrorKind::QueueUnavailable,
            PortalErrorKind::JobRejected,
            PortalErrorKind::NotFound,
            PortalErrorKind::BadArguments,
            PortalErrorKind::Busy,
            PortalErrorKind::DeadlineExceeded,
            PortalErrorKind::Internal,
        ] {
            assert_eq!(PortalErrorKind::from_code(kind.code()), kind);
        }
    }

    #[test]
    fn fault_code_wire_names() {
        assert_eq!(
            FaultCode::from_wire_name("SOAP-ENV:Client"),
            FaultCode::Client
        );
        assert_eq!(FaultCode::from_wire_name("Server"), FaultCode::Server);
        assert_eq!(FaultCode::from_wire_name("weird"), FaultCode::Server);
    }
}
