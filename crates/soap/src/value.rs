//! The RPC value model and its XML encoding.
//!
//! The paper's services exchange "plain strings", "XML definitions of a
//! job", arrays (the SRB `ls` result), and structs; §3.4 flags WSDL
//! *complex types* as the open interoperability question. [`SoapValue`]
//! covers exactly those shapes, and the encoder tags every parameter with
//! an `xsi:type` so independently written peers can decode without a
//! priori knowledge — the property the batch-script interop test (E10)
//! exercises.

use portalws_xml::Element;

use crate::base64;

/// Wire-level type tags for values and WSDL message parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoapType {
    /// `xsd:string`
    String,
    /// `xsd:int`
    Int,
    /// `xsd:double`
    Double,
    /// `xsd:boolean`
    Boolean,
    /// `xsd:base64Binary`
    Base64,
    /// `SOAP-ENC:Array`
    Array,
    /// Generic struct (complex type).
    Struct,
    /// Embedded literal XML (the paper's "XML definition of a job" pattern:
    /// an XML document passed through the RPC layer).
    Xml,
    /// No value (void return).
    Void,
}

impl SoapType {
    /// The `xsd:`/`SOAP-ENC:` name used in `xsi:type` attributes.
    pub fn wire_name(self) -> &'static str {
        match self {
            SoapType::String => "xsd:string",
            SoapType::Int => "xsd:int",
            SoapType::Double => "xsd:double",
            SoapType::Boolean => "xsd:boolean",
            SoapType::Base64 => "xsd:base64Binary",
            SoapType::Array => "SOAP-ENC:Array",
            SoapType::Struct => "tns:struct",
            SoapType::Xml => "tns:xml",
            SoapType::Void => "tns:void",
        }
    }

    /// Reverse of [`SoapType::wire_name`] (prefix-insensitive).
    pub fn from_wire_name(name: &str) -> Option<SoapType> {
        let local = name.split_once(':').map(|(_, l)| l).unwrap_or(name);
        Some(match local {
            "string" => SoapType::String,
            "int" | "integer" | "long" => SoapType::Int,
            "double" | "float" | "decimal" => SoapType::Double,
            "boolean" => SoapType::Boolean,
            "base64Binary" | "base64" => SoapType::Base64,
            "Array" => SoapType::Array,
            "struct" => SoapType::Struct,
            "xml" => SoapType::Xml,
            "void" => SoapType::Void,
            _ => return None,
        })
    }
}

/// One RPC value.
#[derive(Debug, Clone, PartialEq)]
pub enum SoapValue {
    /// Text.
    String(String),
    /// Integer.
    Int(i64),
    /// Floating point.
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// Raw bytes, carried as base64.
    Base64(Vec<u8>),
    /// Ordered array of values.
    Array(Vec<SoapValue>),
    /// Named fields in order.
    Struct(Vec<(String, SoapValue)>),
    /// A literal XML element passed through the RPC layer.
    Xml(Element),
    /// Absent value / void return.
    Null,
}

impl SoapValue {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> SoapValue {
        SoapValue::String(s.into())
    }

    /// The value's wire type.
    pub fn soap_type(&self) -> SoapType {
        match self {
            SoapValue::String(_) => SoapType::String,
            SoapValue::Int(_) => SoapType::Int,
            SoapValue::Double(_) => SoapType::Double,
            SoapValue::Bool(_) => SoapType::Boolean,
            SoapValue::Base64(_) => SoapType::Base64,
            SoapValue::Array(_) => SoapType::Array,
            SoapValue::Struct(_) => SoapType::Struct,
            SoapValue::Xml(_) => SoapType::Xml,
            SoapValue::Null => SoapType::Void,
        }
    }

    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            SoapValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// As integer (accepting `Int`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            SoapValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// As double (accepting `Double` or `Int`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            SoapValue::Double(d) => Some(*d),
            SoapValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// As boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            SoapValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As byte payload.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            SoapValue::Base64(b) => Some(b),
            _ => None,
        }
    }

    /// As array slice.
    pub fn as_array(&self) -> Option<&[SoapValue]> {
        match self {
            SoapValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// As embedded XML.
    pub fn as_xml(&self) -> Option<&Element> {
        match self {
            SoapValue::Xml(e) => Some(e),
            _ => None,
        }
    }

    /// Struct field lookup.
    pub fn field(&self, name: &str) -> Option<&SoapValue> {
        match self {
            SoapValue::Struct(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Encode this value as an element named `name`, with an `xsi:type`
    /// attribute identifying the type.
    pub fn to_element(&self, name: &str) -> Element {
        let mut el = Element::new(name).with_attr("xsi:type", self.soap_type().wire_name());
        match self {
            SoapValue::String(s) => {
                if !s.is_empty() {
                    el = Element::new(name)
                        .with_attr("xsi:type", self.soap_type().wire_name())
                        .with_text(s.clone());
                }
            }
            SoapValue::Int(i) => el = el.with_text(i.to_string()),
            SoapValue::Double(d) => el = el.with_text(format_double(*d)),
            SoapValue::Bool(b) => el = el.with_text(if *b { "true" } else { "false" }),
            SoapValue::Base64(bytes) => el = el.with_text(base64::encode(bytes)),
            SoapValue::Array(items) => {
                for item in items {
                    el.push_child(item.to_element("item"));
                }
            }
            SoapValue::Struct(fields) => {
                for (fname, fval) in fields {
                    el.push_child(fval.to_element(fname));
                }
            }
            SoapValue::Xml(doc) => {
                el.push_child(doc.clone());
            }
            SoapValue::Null => {
                el.set_attr("xsi:nil", "true");
            }
        }
        el
    }

    /// Decode an element produced by [`SoapValue::to_element`] (or by a
    /// peer implementation). Falls back to heuristics when `xsi:type` is
    /// absent, because 2002-era peers did not always send it.
    pub fn from_element(el: &Element) -> Result<SoapValue, String> {
        if el.attr("xsi:nil") == Some("true") {
            return Ok(SoapValue::Null);
        }
        let declared = el
            .attr("xsi:type")
            .and_then(SoapType::from_wire_name)
            .unwrap_or_else(|| infer_type(el));
        match declared {
            SoapType::String => Ok(SoapValue::String(el.text())),
            SoapType::Int => el
                .text()
                .trim()
                .parse::<i64>()
                .map(SoapValue::Int)
                .map_err(|_| format!("bad int value {:?}", el.text())),
            SoapType::Double => el
                .text()
                .trim()
                .parse::<f64>()
                .map(SoapValue::Double)
                .map_err(|_| format!("bad double value {:?}", el.text())),
            SoapType::Boolean => match el.text().trim() {
                "true" | "1" => Ok(SoapValue::Bool(true)),
                "false" | "0" => Ok(SoapValue::Bool(false)),
                other => Err(format!("bad boolean value {other:?}")),
            },
            SoapType::Base64 => base64::decode(&el.text())
                .map(SoapValue::Base64)
                .ok_or_else(|| "bad base64 payload".to_string()),
            SoapType::Array => {
                let items = el
                    .children()
                    .map(SoapValue::from_element)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(SoapValue::Array(items))
            }
            SoapType::Struct => {
                let fields = el
                    .children()
                    .map(|c| SoapValue::from_element(c).map(|v| (c.local_name().to_owned(), v)))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(SoapValue::Struct(fields))
            }
            SoapType::Xml => el
                .children()
                .next()
                .cloned()
                .map(SoapValue::Xml)
                .ok_or_else(|| "xml value with no embedded element".to_string()),
            SoapType::Void => Ok(SoapValue::Null),
        }
    }
}

/// Render a double the way 2002 toolchains did: plain decimal, no exponent
/// for ordinary magnitudes.
fn format_double(d: f64) -> String {
    if d == d.trunc() && d.abs() < 1e15 {
        format!("{d:.1}")
    } else {
        format!("{d}")
    }
}

/// Heuristic typing for untagged elements: children named `item` → array,
/// any children → struct, otherwise string.
fn infer_type(el: &Element) -> SoapType {
    let mut children = el.children().peekable();
    match children.peek() {
        None => SoapType::String,
        Some(first) if first.local_name() == "item" => SoapType::Array,
        Some(_) => SoapType::Struct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: SoapValue) -> SoapValue {
        let el = v.to_element("p");
        SoapValue::from_element(&el).unwrap()
    }

    #[test]
    fn scalar_round_trips() {
        assert_eq!(round_trip(SoapValue::str("hello")), SoapValue::str("hello"));
        assert_eq!(round_trip(SoapValue::Int(-42)), SoapValue::Int(-42));
        assert_eq!(round_trip(SoapValue::Bool(true)), SoapValue::Bool(true));
        assert_eq!(round_trip(SoapValue::Double(2.5)), SoapValue::Double(2.5));
        assert_eq!(round_trip(SoapValue::Null), SoapValue::Null);
    }

    #[test]
    fn whole_double_keeps_decimal_point() {
        let el = SoapValue::Double(3.0).to_element("p");
        assert_eq!(el.text(), "3.0");
    }

    #[test]
    fn base64_round_trip() {
        let bytes: Vec<u8> = (0u8..100).collect();
        assert_eq!(
            round_trip(SoapValue::Base64(bytes.clone())),
            SoapValue::Base64(bytes)
        );
    }

    #[test]
    fn array_round_trip() {
        let v = SoapValue::Array(vec![
            SoapValue::str("a"),
            SoapValue::Int(1),
            SoapValue::Array(vec![SoapValue::Bool(false)]),
        ]);
        assert_eq!(round_trip(v.clone()), v);
    }

    #[test]
    fn struct_round_trip_preserves_field_order() {
        let v = SoapValue::Struct(vec![
            ("host".into(), SoapValue::str("tg-login")),
            ("cpus".into(), SoapValue::Int(16)),
        ]);
        let rt = round_trip(v.clone());
        assert_eq!(rt, v);
        assert_eq!(rt.field("cpus"), Some(&SoapValue::Int(16)));
    }

    #[test]
    fn embedded_xml_round_trip() {
        let doc = Element::new("jobs")
            .with_child(Element::new("job").with_text_child("command", "/bin/hostname"));
        let v = SoapValue::Xml(doc.clone());
        assert_eq!(round_trip(v), SoapValue::Xml(doc));
    }

    #[test]
    fn empty_string_round_trip() {
        assert_eq!(round_trip(SoapValue::str("")), SoapValue::str(""));
    }

    #[test]
    fn untagged_elements_decoded_heuristically() {
        let el = Element::parse("<r><item>1</item><item>2</item></r>").unwrap();
        let v = SoapValue::from_element(&el).unwrap();
        assert_eq!(
            v,
            SoapValue::Array(vec![SoapValue::str("1"), SoapValue::str("2")])
        );
        let el = Element::parse("<r><a>1</a><b>2</b></r>").unwrap();
        let v = SoapValue::from_element(&el).unwrap();
        assert_eq!(v.field("b"), Some(&SoapValue::str("2")));
    }

    #[test]
    fn bad_typed_values_error() {
        let el = Element::parse(r#"<p xsi:type="xsd:int">notanint</p>"#).unwrap();
        assert!(SoapValue::from_element(&el).is_err());
        let el = Element::parse(r#"<p xsi:type="xsd:boolean">maybe</p>"#).unwrap();
        assert!(SoapValue::from_element(&el).is_err());
    }

    #[test]
    fn string_with_markup_escapes() {
        let v = SoapValue::str("<script>&");
        let el = v.to_element("p");
        let xml = el.to_xml();
        assert!(xml.contains("&lt;script&gt;&amp;"));
        assert_eq!(
            SoapValue::from_element(&Element::parse(&xml).unwrap()).unwrap(),
            v
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(SoapValue::str("x").as_str(), Some("x"));
        assert_eq!(SoapValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(SoapValue::Bool(true).as_bool(), Some(true));
        assert!(SoapValue::Null.as_str().is_none());
    }
}
