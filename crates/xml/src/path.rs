//! A tiny path language for extracting values from element trees.
//!
//! Supports exactly what the portal layers need — no more:
//!
//! * `a/b/c` — descend through first-matching children by local name;
//! * `a/b[2]` — the *n*-th (0-based) child matching that name;
//! * `a/@attr` — an attribute of the element reached so far;
//! * a trailing name step yields the element; [`text_at`] yields its text.
//!
//! This replaces the role XPath played in the 2002 stack for simple
//! value plucking, without dragging in the full axis model.

use crate::dom::Element;
use crate::{Result, XmlError};

/// One parsed step of a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step<'a> {
    Child { name: &'a str, index: usize },
    Attr(&'a str),
}

fn parse_steps(path: &str) -> Result<Vec<Step<'_>>> {
    let mut steps = Vec::new();
    for (i, raw) in path.split('/').enumerate() {
        if raw.is_empty() {
            return Err(XmlError::PathNotFound { path: path.into() });
        }
        if let Some(attr) = raw.strip_prefix('@') {
            steps.push(Step::Attr(attr));
            // attribute must be the last step
            if path.split('/').count() != i + 1 {
                return Err(XmlError::PathNotFound { path: path.into() });
            }
            continue;
        }
        let (name, index) = match raw.split_once('[') {
            Some((n, idx)) => {
                let idx = idx
                    .strip_suffix(']')
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(|| XmlError::PathNotFound { path: path.into() })?;
                (n, idx)
            }
            None => (raw, 0),
        };
        steps.push(Step::Child { name, index });
    }
    Ok(steps)
}

/// Resolve `path` relative to `root`, returning the element it names.
///
/// Attribute steps are not allowed here — use [`value_at`] for those.
pub fn element_at<'e>(root: &'e Element, path: &str) -> Result<&'e Element> {
    let mut cur = root;
    for step in parse_steps(path)? {
        match step {
            Step::Child { name, index } => {
                cur = cur
                    .find_all(name)
                    .nth(index)
                    .ok_or_else(|| XmlError::PathNotFound { path: path.into() })?;
            }
            Step::Attr(_) => {
                return Err(XmlError::PathNotFound { path: path.into() });
            }
        }
    }
    Ok(cur)
}

/// Resolve `path`, which may end in `@attr`, to a string value: the
/// attribute value, or the trimmed text of the final element.
pub fn value_at(root: &Element, path: &str) -> Result<String> {
    let steps = parse_steps(path)?;
    let mut cur = root;
    for step in &steps {
        match step {
            Step::Child { name, index } => {
                cur = cur
                    .find_all(name)
                    .nth(*index)
                    .ok_or_else(|| XmlError::PathNotFound { path: path.into() })?;
            }
            Step::Attr(attr) => {
                return cur
                    .attr(attr)
                    .map(str::to_owned)
                    .ok_or_else(|| XmlError::PathNotFound { path: path.into() });
            }
        }
    }
    Ok(cur.text().trim().to_owned())
}

/// Trimmed text at `path`, as a convenience over [`value_at`].
pub fn text_at(root: &Element, path: &str) -> Result<String> {
    value_at(root, path)
}

/// Count the elements matching the final name step of `path` under the
/// element reached by the preceding steps.
pub fn count_at(root: &Element, path: &str) -> Result<usize> {
    match path.rsplit_once('/') {
        Some((head, last)) => {
            let parent = element_at(root, head)?;
            Ok(parent.find_all(last).count())
        }
        None => Ok(root.find_all(path).count()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Element {
        Element::parse(
            r#"<app version="2">
                 <host dns="h0"><queue>batch</queue><queue>debug</queue></host>
                 <host dns="h1"><queue>normal</queue></host>
               </app>"#,
        )
        .unwrap()
    }

    #[test]
    fn descend_first_match() {
        assert_eq!(value_at(&doc(), "host/queue").unwrap(), "batch");
    }

    #[test]
    fn indexing() {
        assert_eq!(value_at(&doc(), "host/queue[1]").unwrap(), "debug");
        assert_eq!(value_at(&doc(), "host[1]/queue").unwrap(), "normal");
    }

    #[test]
    fn attributes() {
        assert_eq!(value_at(&doc(), "host[1]/@dns").unwrap(), "h1");
    }

    #[test]
    fn attribute_on_root_path() {
        let root = doc();
        // root attribute needs a child step first in this language; verify
        // direct attr access still works through the Element API instead.
        assert_eq!(root.attr("version"), Some("2"));
    }

    #[test]
    fn count() {
        assert_eq!(count_at(&doc(), "host").unwrap(), 2);
        assert_eq!(count_at(&doc(), "host/queue").unwrap(), 2);
        assert_eq!(count_at(&doc(), "host[1]/queue").unwrap(), 1);
    }

    #[test]
    fn missing_paths_error() {
        assert!(matches!(
            value_at(&doc(), "nosuch/queue"),
            Err(XmlError::PathNotFound { .. })
        ));
        assert!(value_at(&doc(), "host/queue[9]").is_err());
        assert!(value_at(&doc(), "host/@nope").is_err());
    }

    #[test]
    fn malformed_paths_error() {
        assert!(value_at(&doc(), "host//queue").is_err());
        assert!(value_at(&doc(), "host/queue[x]").is_err());
        assert!(value_at(&doc(), "@a/host").is_err());
    }

    #[test]
    fn element_at_returns_subtree() {
        let d = doc();
        let host = element_at(&d, "host[1]").unwrap();
        assert_eq!(host.attr("dns"), Some("h1"));
    }
}
