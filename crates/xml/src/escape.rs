//! Escaping and unescaping of XML character data.
//!
//! Section 3.2 of the paper notes that the SRB `get`/`put` operations moved
//! file contents "by simply streaming the file as a string" inside the SOAP
//! envelope — a mechanism that "does not scale well". A large part of that
//! cost is exactly this module: every `<`, `&`, and quote in the payload is
//! expanded, so escaping cost and byte amplification are measured directly
//! by experiment E5.

/// Escape text content (`<`, `>`, `&`).
///
/// `>` is escaped too, although strictly only required in the `]]>`
/// sequence, because the 2002-era toolchains did the same and it keeps the
/// output unambiguous.
pub fn escape_text(s: &str) -> String {
    escape(s, false)
}

/// Escape an attribute value (`<`, `>`, `&`, `"`, `'`).
pub fn escape_attr(s: &str) -> String {
    escape(s, true)
}

fn escape(s: &str, attr: bool) -> String {
    // Fast path: nothing to escape, return an owned copy without scanning
    // twice. The common case for markup-free payloads.
    let needs = s
        .bytes()
        .any(|b| matches!(b, b'<' | b'>' | b'&') || (attr && matches!(b, b'"' | b'\'')));
    if !needs {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len() + s.len() / 8);
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attr => out.push_str("&quot;"),
            '\'' if attr => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Resolve a single entity name (without `&` and `;`) to its character.
///
/// Supports the five XML predefined entities plus decimal (`#NN`) and
/// hexadecimal (`#xHH`) character references.
pub fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let rest = name.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

/// Unescape a string containing entity references.
///
/// Returns `None` if an entity is malformed or unknown. Callers in the
/// tokenizer convert that into a positioned [`crate::XmlError::BadEntity`].
pub fn unescape(s: &str) -> Option<String> {
    if !s.contains('&') {
        return Some(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';')?;
        out.push(resolve_entity(&after[..semi])?);
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_text_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn text_escape_leaves_quotes() {
        assert_eq!(escape_text("say \"hi\""), "say \"hi\"");
    }

    #[test]
    fn attr_escape_covers_quotes() {
        assert_eq!(escape_attr("a\"b'c"), "a&quot;b&apos;c");
    }

    #[test]
    fn fast_path_returns_same_content() {
        assert_eq!(escape_text("plain text 123"), "plain text 123");
    }

    #[test]
    fn unescape_round_trip() {
        let original = "x < y && y > \"z\" 'w'";
        assert_eq!(unescape(&escape_attr(original)).unwrap(), original);
        assert_eq!(unescape(&escape_text(original)).unwrap(), original);
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(unescape("&#65;&#x42;&#x43;").unwrap(), "ABC");
        assert_eq!(unescape("&#x263A;").unwrap(), "\u{263A}");
    }

    #[test]
    fn bad_entities_rejected() {
        assert!(unescape("&nosuch;").is_none());
        assert!(unescape("&unterminated").is_none());
        assert!(unescape("&#xZZ;").is_none());
        assert!(unescape("&#1114112;").is_none()); // beyond char::MAX
    }

    #[test]
    fn unescape_plain_passthrough() {
        assert_eq!(unescape("no entities").unwrap(), "no entities");
    }

    #[test]
    fn unicode_preserved() {
        let s = "héllo 世界";
        assert_eq!(unescape(&escape_text(s)).unwrap(), s);
    }
}
