//! Escaping and unescaping of XML character data.
//!
//! Section 3.2 of the paper notes that the SRB `get`/`put` operations moved
//! file contents "by simply streaming the file as a string" inside the SOAP
//! envelope — a mechanism that "does not scale well". A large part of that
//! cost is exactly this module: every `<`, `&`, and quote in the payload is
//! expanded, so escaping cost and byte amplification are measured directly
//! by experiment E5.
//!
//! Both directions are zero-copy on the common path: markup-free input is
//! returned as [`Cow::Borrowed`] without allocating, and the slow path
//! copies byte slices between special characters instead of pushing one
//! `char` at a time. Fast/slow-path hits are counted in [`crate::stats`]
//! so the E5/E11 experiments can report how often the allocation was
//! actually avoided.

use std::borrow::Cow;

use crate::scan;
use crate::stats;

/// Escape text content (`<`, `>`, `&`).
///
/// `>` is escaped too, although strictly only required in the `]]>`
/// sequence, because the 2002-era toolchains did the same and it keeps the
/// output unambiguous.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape(s, false)
}

/// Escape an attribute value (`<`, `>`, `&`, `"`, `'`).
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape(s, true)
}

fn escaped_entity(b: u8, attr: bool) -> Option<&'static str> {
    match b {
        b'<' => Some("&lt;"),
        b'>' => Some("&gt;"),
        b'&' => Some("&amp;"),
        b'"' if attr => Some("&quot;"),
        b'\'' if attr => Some("&apos;"),
        _ => None,
    }
}

const TEXT_SPECIALS: [u8; 3] = [b'<', b'>', b'&'];
const ATTR_SPECIALS: [u8; 5] = [b'<', b'>', b'&', b'"', b'\''];

fn escape(s: &str, attr: bool) -> Cow<'_, str> {
    let next = |s: &str, from: usize| {
        if attr {
            scan::find_any(s, from, ATTR_SPECIALS)
        } else {
            scan::find_any(s, from, TEXT_SPECIALS)
        }
    };
    // Fast path: nothing to escape — borrow the input unchanged. The scan
    // below resumes from the first special byte, so nothing is scanned
    // twice on the slow path either.
    let Some(first) = next(s, 0) else {
        stats::count_escape(true);
        return Cow::Borrowed(s);
    };
    stats::count_escape(false);
    let mut out = String::with_capacity(s.len() + s.len() / 8 + 8);
    let (plain, mut rest) = scan::split_at(s, first);
    out.push_str(plain);
    // Invariant: `rest` is empty or begins with a special (ASCII) byte.
    while let Some((b, after)) = scan::split_first_ascii(rest) {
        if let Some(entity) = escaped_entity(b, attr) {
            out.push_str(entity);
        }
        let run = next(after, 0).unwrap_or(after.len());
        let (plain, tail) = scan::split_at(after, run);
        out.push_str(plain);
        rest = tail;
    }
    Cow::Owned(out)
}

/// Resolve a single entity name (without `&` and `;`) to its character.
///
/// Supports the five XML predefined entities plus decimal (`#NN`) and
/// hexadecimal (`#xHH`) character references.
pub fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let rest = name.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

/// Unescape a string containing entity references.
///
/// Entity-free input is returned as [`Cow::Borrowed`] after a single byte
/// scan. Returns `None` if an entity is malformed or unknown; callers in
/// the tokenizer convert that into a positioned
/// [`crate::XmlError::BadEntity`].
pub fn unescape(s: &str) -> Option<Cow<'_, str>> {
    let Some(first) = scan::find_any(s, 0, [b'&']) else {
        stats::count_unescape(true);
        return Some(Cow::Borrowed(s));
    };
    stats::count_unescape(false);
    let mut out = String::with_capacity(s.len());
    let (plain, mut rest) = scan::split_at(s, first);
    out.push_str(plain);
    // Invariant: `rest` is empty or begins with '&'.
    loop {
        let after = scan::split_at(rest, 1).1; // skip the '&'
        let semi = scan::find_any(after, 0, [b';'])?;
        let (entity, tail) = scan::split_at(after, semi);
        out.push(resolve_entity(entity)?);
        rest = scan::split_at(tail, 1).1; // skip the ';'
        let Some(amp) = scan::find_any(rest, 0, [b'&']) else {
            out.push_str(rest);
            return Some(Cow::Owned(out));
        };
        let (plain, at_amp) = scan::split_at(rest, amp);
        out.push_str(plain);
        rest = at_amp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_text_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn text_escape_leaves_quotes() {
        assert_eq!(escape_text("say \"hi\""), "say \"hi\"");
    }

    #[test]
    fn attr_escape_covers_quotes() {
        assert_eq!(escape_attr("a\"b'c"), "a&quot;b&apos;c");
    }

    #[test]
    fn fast_path_borrows() {
        assert!(matches!(escape_text("plain text 123"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("plain text 123"), Cow::Borrowed(_)));
        assert!(matches!(unescape("no entities"), Some(Cow::Borrowed(_))));
    }

    #[test]
    fn slow_path_owns() {
        assert!(matches!(escape_text("a<b"), Cow::Owned(_)));
        assert!(matches!(escape_attr("a\"b"), Cow::Owned(_)));
        assert!(matches!(unescape("&amp;"), Some(Cow::Owned(_))));
    }

    #[test]
    fn fast_paths_counted() {
        let before = stats::snapshot();
        let _ = escape_text("nothing special");
        let _ = escape_text("a<b");
        let _ = unescape("nothing special");
        let _ = unescape("&lt;");
        let d = stats::snapshot().since(&before);
        // Other tests may run concurrently, so assert lower bounds only.
        assert!(d.escape_borrowed >= 1, "{d:?}");
        assert!(d.escape_owned >= 1, "{d:?}");
        assert!(d.unescape_borrowed >= 1, "{d:?}");
        assert!(d.unescape_owned >= 1, "{d:?}");
    }

    #[test]
    fn unescape_round_trip() {
        let original = "x < y && y > \"z\" 'w'";
        assert_eq!(unescape(&escape_attr(original)).unwrap(), original);
        assert_eq!(unescape(&escape_text(original)).unwrap(), original);
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(unescape("&#65;&#x42;&#x43;").unwrap(), "ABC");
        assert_eq!(unescape("&#x263A;").unwrap(), "\u{263A}");
    }

    #[test]
    fn bad_entities_rejected() {
        assert!(unescape("&nosuch;").is_none());
        assert!(unescape("&unterminated").is_none());
        assert!(unescape("&#xZZ;").is_none());
        assert!(unescape("&#1114112;").is_none()); // beyond char::MAX
    }

    #[test]
    fn unescape_plain_passthrough() {
        assert_eq!(unescape("no entities").unwrap(), "no entities");
    }

    #[test]
    fn entity_at_edges() {
        assert_eq!(unescape("&amp;middle&amp;").unwrap(), "&middle&");
        assert_eq!(escape_text("<edges>"), "&lt;edges&gt;");
    }

    #[test]
    fn unicode_preserved() {
        let s = "héllo 世界";
        assert_eq!(unescape(&escape_text(s)).unwrap(), s);
    }
}
