//! Owned XML element tree with a fluent builder and navigation helpers.
//!
//! The DOM is the interchange currency between every portal layer: SOAP
//! bodies, WSDL definitions, UDDI entries, application descriptors, and
//! generated forms are all built and inspected as [`Element`] trees.

use crate::event::{Event, Tokenizer};
use crate::writer;
use crate::{Result, XmlError};

/// One node in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Character data (entities already resolved).
    Text(String),
    /// A CDATA section, serialized back as CDATA.
    CData(String),
    /// A comment, preserved on round trip.
    Comment(String),
}

impl Node {
    /// The element inside this node, if it is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// The textual content of this node, if it is text or CDATA.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) | Node::CData(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element: a (possibly prefixed) name, attributes in document
/// order, and child nodes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Create an empty element named `name` (may include a `prefix:`).
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    // ---- builder -------------------------------------------------------

    /// Builder: add an attribute and return self.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder: append a child element and return self.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: append several child elements and return self.
    pub fn with_children(mut self, children: impl IntoIterator<Item = Element>) -> Self {
        self.children
            .extend(children.into_iter().map(Node::Element));
        self
    }

    /// Builder: append a text node and return self.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Builder: append a named child that holds only text — the most common
    /// shape in the portal's data documents.
    pub fn with_text_child(self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.with_child(Element::new(name).with_text(text))
    }

    /// Builder: append a CDATA section and return self.
    pub fn with_cdata(mut self, data: impl Into<String>) -> Self {
        self.children.push(Node::CData(data.into()));
        self
    }

    // ---- mutation ------------------------------------------------------

    /// Set (or replace) an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name, value));
        }
    }

    /// Append a child element.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Append a raw node.
    pub fn push_node(&mut self, node: Node) {
        self.children.push(node);
    }

    /// Remove and return all children, leaving the element empty.
    pub fn take_children(&mut self) -> Vec<Node> {
        std::mem::take(&mut self.children)
    }

    // ---- accessors -----------------------------------------------------

    /// Full element name as written, including any prefix.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Name with any `prefix:` removed.
    pub fn local_name(&self) -> &str {
        match self.name.split_once(':') {
            Some((_, local)) => local,
            None => &self.name,
        }
    }

    /// Namespace prefix, if the name is prefixed.
    pub fn prefix(&self) -> Option<&str> {
        self.name.split_once(':').map(|(p, _)| p)
    }

    /// Attribute value by exact name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All attributes in document order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attrs
    }

    /// All child nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.children
    }

    /// Iterator over child *elements* only.
    pub fn children(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Mutable iterator over child elements.
    pub fn children_mut(&mut self) -> impl Iterator<Item = &mut Element> {
        self.children.iter_mut().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// Concatenated text content of this element (direct text/CDATA
    /// children only).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Some(t) = n.as_text() {
                out.push_str(t);
            }
        }
        out
    }

    /// First child element whose *local* name equals `name`.
    ///
    /// Matching on local names lets navigation ignore which namespace
    /// prefix a peer implementation happened to choose — the essence of the
    /// paper's interoperability exercise.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.children().find(|e| e.local_name() == name)
    }

    /// Mutable variant of [`Element::find`].
    pub fn find_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.children_mut().find(|e| e.local_name() == name)
    }

    /// All child elements with local name `name`.
    pub fn find_all<'s, 'n>(
        &'s self,
        name: &'n str,
    ) -> impl Iterator<Item = &'s Element> + use<'s, 'n> {
        self.children().filter(move |e| e.local_name() == name)
    }

    /// Text of the first child with local name `name`, if present and
    /// non-empty after trimming.
    pub fn find_text(&self, name: &str) -> Option<&str> {
        let el = self.find(name)?;
        for n in &el.children {
            if let Some(t) = n.as_text() {
                let t = t.trim();
                if !t.is_empty() {
                    // Safe: trim of a &str borrowed from el outlives this fn's
                    // local borrows because el borrows from self.
                    return Some(t);
                }
            }
        }
        None
    }

    /// Namespace declarations made *on this element* (prefix → URI), with
    /// the default namespace under the empty string.
    pub fn namespace_decls(&self) -> Vec<(&str, &str)> {
        self.attrs
            .iter()
            .filter_map(|(n, v)| {
                if n == "xmlns" {
                    Some(("", v.as_str()))
                } else {
                    n.strip_prefix("xmlns:").map(|p| (p, v.as_str()))
                }
            })
            .collect()
    }

    /// Total number of elements in this subtree, including self.
    pub fn subtree_size(&self) -> usize {
        1 + self.children().map(Element::subtree_size).sum::<usize>()
    }

    // ---- serialization ---------------------------------------------------

    /// Serialize compactly (no added whitespace).
    pub fn to_xml(&self) -> String {
        writer::write_compact(self)
    }

    /// Serialize compactly into an existing buffer — the allocation-free
    /// form the SOAP hot path uses with per-worker scratch buffers.
    pub fn write_xml_into(&self, out: &mut String) {
        writer::write_compact_into(self, out);
    }

    /// Serialize with two-space indentation.
    pub fn to_pretty(&self) -> String {
        writer::write_pretty(self, 2)
    }

    /// Serialize as a document with an XML declaration.
    pub fn to_document(&self) -> String {
        let mut s = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        s.push_str(&writer::write_pretty(self, 2));
        s
    }

    // ---- parsing ---------------------------------------------------------

    /// Parse a document and return its root element.
    ///
    /// Whitespace-only text between elements is dropped (the portal's
    /// documents are data-oriented); mixed content with non-blank text is
    /// preserved verbatim.
    pub fn parse(src: &str) -> Result<Element> {
        let mut tok = Tokenizer::new(src);
        let mut stack: Vec<Element> = Vec::new();
        let mut root: Option<Element> = None;
        loop {
            // The hot path records only the byte offset; line/col is
            // recovered lazily when an error is actually constructed.
            let at = tok.offset();
            let Some(ev) = tok.next_event()? else { break };
            match ev {
                Event::Decl(_) | Event::Doctype(_) | Event::Pi { .. } => {}
                Event::Comment(c) => {
                    if let Some(top) = stack.last_mut() {
                        top.children.push(Node::Comment(c.into_owned()));
                    }
                }
                Event::Text(t) => {
                    if let Some(top) = stack.last_mut() {
                        if !t.trim().is_empty() {
                            top.children.push(Node::Text(t.into_owned()));
                        }
                    } else if !t.trim().is_empty() {
                        return Err(XmlError::Syntax {
                            pos: tok.pos_at(at),
                            msg: "text outside root element".into(),
                        });
                    }
                }
                Event::CData(t) => match stack.last_mut() {
                    Some(top) => top.children.push(Node::CData(t.into_owned())),
                    None => {
                        return Err(XmlError::Syntax {
                            pos: tok.pos_at(at),
                            msg: "CDATA outside root element".into(),
                        })
                    }
                },
                Event::StartTag {
                    name,
                    attrs,
                    self_closing,
                } => {
                    if root.is_some() && stack.is_empty() {
                        return Err(XmlError::Syntax {
                            pos: tok.pos_at(at),
                            msg: "multiple root elements".into(),
                        });
                    }
                    let el = Element {
                        name: name.into_owned(),
                        attrs: attrs
                            .into_iter()
                            .map(|(k, v)| (k.into_owned(), v.into_owned()))
                            .collect(),
                        children: Vec::new(),
                    };
                    if self_closing {
                        match stack.last_mut() {
                            Some(top) => top.children.push(Node::Element(el)),
                            None => root = Some(el),
                        }
                    } else {
                        stack.push(el);
                    }
                }
                Event::EndTag { name } => {
                    let Some(el) = stack.pop() else {
                        return Err(XmlError::Syntax {
                            pos: tok.pos_at(at),
                            msg: format!("unmatched close tag </{name}>"),
                        });
                    };
                    if el.name != name {
                        return Err(XmlError::MismatchedTag {
                            pos: tok.pos_at(at),
                            open: el.name,
                            close: name.into_owned(),
                        });
                    }
                    match stack.last_mut() {
                        Some(top) => top.children.push(Node::Element(el)),
                        None => root = Some(el),
                    }
                }
            }
        }
        if !stack.is_empty() {
            return Err(XmlError::UnexpectedEof { pos: tok.pos() });
        }
        root.ok_or(XmlError::Invalid("document has no root element".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_navigate() {
        let el = Element::new("app")
            .with_attr("version", "1")
            .with_text_child("name", "gaussian98")
            .with_child(
                Element::new("host")
                    .with_attr("dns", "tg-login.sdsc.edu")
                    .with_text_child("queue", "normal"),
            );
        assert_eq!(el.attr("version"), Some("1"));
        assert_eq!(el.find_text("name"), Some("gaussian98"));
        assert_eq!(
            el.find("host").and_then(|h| h.find_text("queue")),
            Some("normal")
        );
        assert_eq!(el.subtree_size(), 4);
    }

    #[test]
    fn parse_round_trip_compact() {
        let src = r#"<a k="v"><b>text</b><c/></a>"#;
        let el = Element::parse(src).unwrap();
        assert_eq!(el.to_xml(), src);
    }

    #[test]
    fn pretty_then_parse_is_identity_modulo_ws() {
        let el = Element::new("root")
            .with_text_child("x", "1")
            .with_child(Element::new("y").with_attr("a", "b"));
        let pretty = el.to_pretty();
        let reparsed = Element::parse(&pretty).unwrap();
        assert_eq!(reparsed, el);
    }

    #[test]
    fn local_name_ignores_prefix() {
        let el =
            Element::parse(r#"<soap:Envelope xmlns:soap="urn:e"><soap:Body/></soap:Envelope>"#)
                .unwrap();
        assert_eq!(el.local_name(), "Envelope");
        assert!(el.find("Body").is_some());
        assert_eq!(el.namespace_decls(), vec![("soap", "urn:e")]);
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(matches!(
            Element::parse("<a><b></a></b>"),
            Err(XmlError::MismatchedTag { .. })
        ));
    }

    #[test]
    fn multiple_roots_rejected() {
        assert!(Element::parse("<a/><b/>").is_err());
    }

    #[test]
    fn unclosed_root_rejected() {
        assert!(matches!(
            Element::parse("<a><b></b>"),
            Err(XmlError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn whitespace_between_elements_dropped() {
        let el = Element::parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(el.nodes().len(), 2);
    }

    #[test]
    fn significant_text_preserved() {
        let el = Element::parse("<a>one <b/> two</a>").unwrap();
        assert_eq!(el.text(), "one  two");
    }

    #[test]
    fn cdata_preserved_on_round_trip() {
        let src = "<a><![CDATA[x < y]]></a>";
        let el = Element::parse(src).unwrap();
        assert_eq!(el.text(), "x < y");
        assert_eq!(el.to_xml(), src);
    }

    #[test]
    fn set_attr_replaces() {
        let mut el = Element::new("a").with_attr("k", "1");
        el.set_attr("k", "2");
        assert_eq!(el.attr("k"), Some("2"));
        assert_eq!(el.attrs().len(), 1);
    }

    #[test]
    fn find_all_filters_by_local_name() {
        let el = Element::parse("<r><h>1</h><x/><h>2</h></r>").unwrap();
        let hs: Vec<_> = el.find_all("h").map(|e| e.text()).collect();
        assert_eq!(hs, vec!["1", "2"]);
    }

    #[test]
    fn declaration_and_doctype_ignored() {
        let el =
            Element::parse("<?xml version=\"1.0\"?><!DOCTYPE a><a><!-- note --><b/></a>").unwrap();
        assert_eq!(el.name(), "a");
        // comment preserved as node, element still findable
        assert!(el.find("b").is_some());
        assert_eq!(el.nodes().len(), 2);
    }
}
