//! The subset of XML Schema used by the paper's Application Web Services.
//!
//! Section 5.1 describes three linked descriptor schemas (application, host,
//! queue) built from sequences of typed elements with occurrence bounds,
//! enumerations, and free-form `parameter` name/value extensions; Section
//! 5.3's schema wizard consumes schemas of the same shape to generate user
//! interfaces. This module models exactly that subset:
//!
//! * global element declarations,
//! * named and inline types,
//! * complex types as **sequences** of element declarations plus attributes,
//! * simple types with a primitive base and optional enumeration facet,
//! * `minOccurs`/`maxOccurs` (including `unbounded`),
//! * instance validation against a schema,
//! * serialization to and parsing from `xs:`-style schema documents.

use std::collections::BTreeMap;
use std::fmt;

use crate::dom::Element;
use crate::{Result, XmlError};

/// Built-in simple types supported by the descriptor subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// `xs:string`
    String,
    /// `xs:int`
    Int,
    /// `xs:double`
    Double,
    /// `xs:boolean`
    Boolean,
    /// `xs:anyURI`
    AnyUri,
    /// `xs:dateTime` (loose lexical check)
    DateTime,
    /// `xs:base64Binary`
    Base64,
}

impl Primitive {
    /// The `xs:` name of the primitive.
    pub fn xsd_name(self) -> &'static str {
        match self {
            Primitive::String => "xs:string",
            Primitive::Int => "xs:int",
            Primitive::Double => "xs:double",
            Primitive::Boolean => "xs:boolean",
            Primitive::AnyUri => "xs:anyURI",
            Primitive::DateTime => "xs:dateTime",
            Primitive::Base64 => "xs:base64Binary",
        }
    }

    /// Parse an `xs:` name (prefix-insensitive) into a primitive.
    pub fn from_xsd_name(name: &str) -> Option<Primitive> {
        let local = name.split_once(':').map(|(_, l)| l).unwrap_or(name);
        Some(match local {
            "string" => Primitive::String,
            "int" | "integer" | "long" => Primitive::Int,
            "double" | "float" | "decimal" => Primitive::Double,
            "boolean" => Primitive::Boolean,
            "anyURI" => Primitive::AnyUri,
            "dateTime" => Primitive::DateTime,
            "base64Binary" => Primitive::Base64,
            _ => return None,
        })
    }

    /// Check a lexical value against the primitive's value space.
    pub fn accepts(self, value: &str) -> bool {
        let v = value.trim();
        match self {
            Primitive::String => true,
            Primitive::Int => v.parse::<i64>().is_ok(),
            Primitive::Double => v.parse::<f64>().is_ok(),
            Primitive::Boolean => matches!(v, "true" | "false" | "1" | "0"),
            Primitive::AnyUri => !v.is_empty() && !v.contains(char::is_whitespace),
            Primitive::DateTime => {
                // YYYY-MM-DDThh:mm:ss with optional trailing zone designator.
                let b = v.as_bytes();
                b.len() >= 19
                    && b.get(4) == Some(&b'-')
                    && b.get(7) == Some(&b'-')
                    && b.get(10) == Some(&b'T')
                    && b.get(13) == Some(&b':')
                    && b.get(16) == Some(&b':')
                    && b.get(..4)
                        .is_some_and(|year| year.iter().all(u8::is_ascii_digit))
            }
            Primitive::Base64 => v
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'+' | b'/' | b'=')),
        }
    }

    /// A sample lexical value, used by instance generation.
    pub fn sample(self) -> &'static str {
        match self {
            Primitive::String => "sample",
            Primitive::Int => "1",
            Primitive::Double => "1.0",
            Primitive::Boolean => "true",
            Primitive::AnyUri => "urn:sample",
            Primitive::DateTime => "2002-11-16T09:00:00Z",
            Primitive::Base64 => "QQ==",
        }
    }
}

/// A simple type: primitive base plus optional enumeration facet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleType {
    /// Base primitive.
    pub base: Primitive,
    /// If non-empty, the value must be one of these strings.
    pub enumeration: Vec<String>,
}

impl SimpleType {
    /// A plain (unfaceted) simple type.
    pub fn plain(base: Primitive) -> Self {
        SimpleType {
            base,
            enumeration: Vec::new(),
        }
    }

    /// A string type restricted to an enumeration.
    pub fn enumerated(values: impl IntoIterator<Item = impl Into<String>>) -> Self {
        SimpleType {
            base: Primitive::String,
            enumeration: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Check a value against base and facet.
    pub fn accepts(&self, value: &str) -> bool {
        self.base.accepts(value)
            && (self.enumeration.is_empty() || self.enumeration.iter().any(|e| e == value.trim()))
    }

    /// A sample valid value.
    pub fn sample(&self) -> String {
        self.enumeration
            .first()
            .cloned()
            .unwrap_or_else(|| self.base.sample().to_owned())
    }
}

/// Occurrence bounds for an element declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurs {
    /// Minimum occurrences.
    pub min: u32,
    /// Maximum occurrences; `None` means `unbounded`.
    pub max: Option<u32>,
}

impl Occurs {
    /// Exactly once (the XML Schema default).
    pub const ONE: Occurs = Occurs {
        min: 1,
        max: Some(1),
    };
    /// Zero or one.
    pub const OPTIONAL: Occurs = Occurs {
        min: 0,
        max: Some(1),
    };
    /// One or more.
    pub const MANY: Occurs = Occurs { min: 1, max: None };
    /// Zero or more.
    pub const ANY: Occurs = Occurs { min: 0, max: None };

    /// Does `n` occurrences satisfy the bounds?
    pub fn admits(&self, n: usize) -> bool {
        n as u64 >= self.min as u64 && self.max.is_none_or(|m| n as u64 <= m as u64)
    }

    /// Is more than one occurrence possible?
    pub fn is_unbounded(&self) -> bool {
        self.max.is_none_or(|m| m > 1)
    }
}

impl fmt::Display for Occurs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(m) => write!(f, "[{}..{}]", self.min, m),
            None => write!(f, "[{}..*]", self.min),
        }
    }
}

/// Reference to a type: by name (resolved through the schema's type table)
/// or inline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeRef {
    /// Named type, resolved against [`Schema::types`].
    Named(String),
    /// Inline anonymous type.
    Inline(Box<TypeDef>),
}

/// A type definition: simple or complex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDef {
    /// Simple content.
    Simple(SimpleType),
    /// Element-structured content.
    Complex(ComplexType),
}

/// An attribute declaration on a complex type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: String,
    /// Attribute value type.
    pub ty: SimpleType,
    /// Whether `use="required"`.
    pub required: bool,
}

/// A complex type: an ordered sequence of element declarations plus
/// attributes, or — the `xs:simpleContent` case — typed text content
/// plus attributes. (The descriptor subset only uses `xs:sequence`.)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ComplexType {
    /// Child element declarations, in sequence order. Must be empty when
    /// `text` is set (simple content admits no child elements).
    pub sequence: Vec<ElementDecl>,
    /// Attribute declarations.
    pub attributes: Vec<AttrDecl>,
    /// Simple content: the type of the element's text, for shapes like
    /// `<parameter name="k">value</parameter>`.
    pub text: Option<SimpleType>,
}

impl ComplexType {
    /// Builder: append an element declaration.
    pub fn with(mut self, decl: ElementDecl) -> Self {
        self.sequence.push(decl);
        self
    }

    /// Builder: append an attribute declaration.
    pub fn with_attr(mut self, name: impl Into<String>, ty: SimpleType, required: bool) -> Self {
        self.attributes.push(AttrDecl {
            name: name.into(),
            ty,
            required,
        });
        self
    }

    /// Builder: declare simple (text) content of the given type.
    pub fn with_text_content(mut self, ty: SimpleType) -> Self {
        self.text = Some(ty);
        self
    }
}

/// An element declaration: name, type reference, occurrence bounds, and an
/// optional documentation string (surfaced by the schema wizard as a field
/// label hint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// Element name.
    pub name: String,
    /// The element's type.
    pub ty: TypeRef,
    /// Occurrence bounds.
    pub occurs: Occurs,
    /// Human documentation (`xs:documentation`).
    pub doc: Option<String>,
}

impl ElementDecl {
    /// Declare an element with an inline type.
    pub fn new(name: impl Into<String>, ty: TypeDef) -> Self {
        ElementDecl {
            name: name.into(),
            ty: TypeRef::Inline(Box::new(ty)),
            occurs: Occurs::ONE,
            doc: None,
        }
    }

    /// Declare an element with a named type.
    pub fn named(name: impl Into<String>, ty_name: impl Into<String>) -> Self {
        ElementDecl {
            name: name.into(),
            ty: TypeRef::Named(ty_name.into()),
            occurs: Occurs::ONE,
            doc: None,
        }
    }

    /// Shorthand for a required `xs:string` element.
    pub fn string(name: impl Into<String>) -> Self {
        ElementDecl::new(name, TypeDef::Simple(SimpleType::plain(Primitive::String)))
    }

    /// Shorthand for a required `xs:int` element.
    pub fn int(name: impl Into<String>) -> Self {
        ElementDecl::new(name, TypeDef::Simple(SimpleType::plain(Primitive::Int)))
    }

    /// Shorthand for an enumerated string element.
    pub fn enumerated(
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        ElementDecl::new(name, TypeDef::Simple(SimpleType::enumerated(values)))
    }

    /// Builder: set occurrence bounds.
    pub fn occurs(mut self, occurs: Occurs) -> Self {
        self.occurs = occurs;
        self
    }

    /// Builder: attach documentation.
    pub fn doc(mut self, doc: impl Into<String>) -> Self {
        self.doc = Some(doc.into());
        self
    }
}

/// A schema: target namespace, global elements, and named types.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// `targetNamespace`, if declared.
    pub target_ns: Option<String>,
    /// Global element declarations (instance roots).
    pub elements: Vec<ElementDecl>,
    /// Named type definitions.
    pub types: BTreeMap<String, TypeDef>,
}

impl Schema {
    /// Create an empty schema with a target namespace.
    pub fn new(target_ns: impl Into<String>) -> Self {
        Schema {
            target_ns: Some(target_ns.into()),
            ..Default::default()
        }
    }

    /// Builder: add a global element.
    pub fn with_element(mut self, decl: ElementDecl) -> Self {
        self.elements.push(decl);
        self
    }

    /// Builder: add a named type.
    pub fn with_type(mut self, name: impl Into<String>, def: TypeDef) -> Self {
        self.types.insert(name.into(), def);
        self
    }

    /// Resolve a type reference to its definition.
    pub fn resolve<'s>(&'s self, r: &'s TypeRef) -> Result<&'s TypeDef> {
        match r {
            TypeRef::Inline(def) => Ok(def),
            TypeRef::Named(name) => self.types.get(name).ok_or_else(|| {
                XmlError::SchemaViolation(format!("unresolved type reference {name:?}"))
            }),
        }
    }

    /// Find the global element declaration matching `name`.
    pub fn global_element(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.iter().find(|e| e.name == name)
    }

    // ---- validation ----------------------------------------------------

    /// Validate `instance` against this schema. The instance root must match
    /// one of the global element declarations.
    pub fn validate(&self, instance: &Element) -> Result<()> {
        let decl = self.global_element(instance.local_name()).ok_or_else(|| {
            XmlError::SchemaViolation(format!(
                "no global element {:?} in schema",
                instance.local_name()
            ))
        })?;
        self.validate_element(instance, decl, instance.local_name())
    }

    fn validate_element(&self, el: &Element, decl: &ElementDecl, path: &str) -> Result<()> {
        match self.resolve(&decl.ty)? {
            TypeDef::Simple(st) => {
                if el.children().next().is_some() {
                    return Err(XmlError::SchemaViolation(format!(
                        "{path}: simple-typed element has child elements"
                    )));
                }
                let value = el.text();
                if !st.accepts(&value) {
                    return Err(XmlError::SchemaViolation(format!(
                        "{path}: value {:?} not valid for {}",
                        value.trim(),
                        st.base.xsd_name()
                    )));
                }
                Ok(())
            }
            TypeDef::Complex(ct) => self.validate_complex(el, ct, path),
        }
    }

    fn validate_complex(&self, el: &Element, ct: &ComplexType, path: &str) -> Result<()> {
        // Attributes.
        for ad in &ct.attributes {
            match el.attr(&ad.name) {
                Some(v) if !ad.ty.accepts(v) => {
                    return Err(XmlError::SchemaViolation(format!(
                        "{path}/@{}: value {v:?} not valid for {}",
                        ad.name,
                        ad.ty.base.xsd_name()
                    )));
                }
                Some(_) => {}
                None if ad.required => {
                    return Err(XmlError::SchemaViolation(format!(
                        "{path}: missing required attribute {:?}",
                        ad.name
                    )));
                }
                None => {}
            }
        }
        for (name, _) in el.attrs() {
            if name.starts_with("xmlns") {
                continue;
            }
            if !ct.attributes.iter().any(|a| a.name == *name) {
                return Err(XmlError::SchemaViolation(format!(
                    "{path}: undeclared attribute {name:?}"
                )));
            }
        }
        // Simple content: typed text, no child elements.
        if let Some(st) = &ct.text {
            if el.children().next().is_some() {
                return Err(XmlError::SchemaViolation(format!(
                    "{path}: simple-content element has child elements"
                )));
            }
            let value = el.text();
            if !st.accepts(&value) {
                return Err(XmlError::SchemaViolation(format!(
                    "{path}: text {:?} not valid for {}",
                    value.trim(),
                    st.base.xsd_name()
                )));
            }
            return Ok(());
        }
        // Children: sequence validation. Consume children in declaration
        // order, allowing each declaration its occurrence range.
        let children: Vec<&Element> = el.children().collect();
        let mut i = 0usize;
        for decl in &ct.sequence {
            let mut n = 0usize;
            while let Some(child) = children.get(i).filter(|c| c.local_name() == decl.name) {
                let child_path = format!("{path}/{}", decl.name);
                self.validate_element(child, decl, &child_path)?;
                i += 1;
                n += 1;
                if let Some(max) = decl.occurs.max {
                    if n as u64 == max as u64 {
                        break;
                    }
                }
            }
            if !decl.occurs.admits(n) {
                return Err(XmlError::SchemaViolation(format!(
                    "{path}: element {:?} occurs {n} times, allowed {}",
                    decl.name, decl.occurs
                )));
            }
        }
        if let Some(extra) = children.get(i) {
            return Err(XmlError::SchemaViolation(format!(
                "{path}: unexpected element {:?}",
                extra.local_name()
            )));
        }
        Ok(())
    }

    // ---- sample instance generation -------------------------------------

    /// Generate a minimal valid instance of global element `name`, using
    /// sample values for simple types. Used by the schema wizard's preview
    /// and by property tests (generate → validate must succeed).
    pub fn sample_instance(&self, name: &str) -> Result<Element> {
        let decl = self
            .global_element(name)
            .ok_or_else(|| XmlError::SchemaViolation(format!("no global element {name:?}")))?;
        self.sample_element(decl, 0)
    }

    fn sample_element(&self, decl: &ElementDecl, depth: usize) -> Result<Element> {
        if depth > 32 {
            return Err(XmlError::SchemaViolation(
                "schema recursion exceeds depth 32".into(),
            ));
        }
        let mut el = Element::new(decl.name.clone());
        match self.resolve(&decl.ty)? {
            TypeDef::Simple(st) => {
                el = el.with_text(st.sample());
            }
            TypeDef::Complex(ct) => {
                for ad in &ct.attributes {
                    if ad.required {
                        el.set_attr(ad.name.clone(), ad.ty.sample());
                    }
                }
                if let Some(st) = &ct.text {
                    el = el.with_text(st.sample());
                } else {
                    for child in &ct.sequence {
                        for _ in 0..child.occurs.min {
                            el.push_child(self.sample_element(child, depth + 1)?);
                        }
                    }
                }
            }
        }
        Ok(el)
    }

    // ---- serialization --------------------------------------------------

    /// Serialize as an `xs:schema` document element.
    pub fn to_xml(&self) -> Element {
        let mut root =
            Element::new("xs:schema").with_attr("xmlns:xs", "http://www.w3.org/2001/XMLSchema");
        if let Some(ns) = &self.target_ns {
            root.set_attr("targetNamespace", ns.clone());
        }
        for (name, def) in &self.types {
            root.push_child(type_to_xml(def, Some(name)));
        }
        for decl in &self.elements {
            root.push_child(element_decl_to_xml(decl));
        }
        root
    }

    /// Parse an `xs:schema` element back into a schema.
    pub fn from_xml(root: &Element) -> Result<Schema> {
        if root.local_name() != "schema" {
            return Err(XmlError::Invalid(format!(
                "expected schema element, found {:?}",
                root.local_name()
            )));
        }
        let mut schema = Schema {
            target_ns: root.attr("targetNamespace").map(str::to_owned),
            ..Default::default()
        };
        for child in root.children() {
            match child.local_name() {
                "element" => schema.elements.push(element_decl_from_xml(child)?),
                "complexType" => {
                    let name = named(child)?;
                    schema
                        .types
                        .insert(name, TypeDef::Complex(complex_from_xml(child)?));
                }
                "simpleType" => {
                    let name = named(child)?;
                    schema
                        .types
                        .insert(name, TypeDef::Simple(simple_from_xml(child)?));
                }
                other => {
                    return Err(XmlError::Invalid(format!(
                        "unsupported schema construct {other:?}"
                    )))
                }
            }
        }
        Ok(schema)
    }
}

fn named(el: &Element) -> Result<String> {
    el.attr("name")
        .map(str::to_owned)
        .ok_or_else(|| XmlError::Invalid(format!("{} missing name attribute", el.name())))
}

fn occurs_to_attrs(el: &mut Element, occurs: Occurs) {
    if occurs.min != 1 {
        el.set_attr("minOccurs", occurs.min.to_string());
    }
    match occurs.max {
        Some(1) => {}
        Some(m) => el.set_attr("maxOccurs", m.to_string()),
        None => el.set_attr("maxOccurs", "unbounded"),
    }
}

fn occurs_from_attrs(el: &Element) -> Result<Occurs> {
    let min = match el.attr("minOccurs") {
        Some(v) => v
            .parse()
            .map_err(|_| XmlError::Invalid(format!("bad minOccurs {v:?}")))?,
        None => 1,
    };
    let max = match el.attr("maxOccurs") {
        Some("unbounded") => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| XmlError::Invalid(format!("bad maxOccurs {v:?}")))?,
        ),
        None => Some(1),
    };
    Ok(Occurs { min, max })
}

fn element_decl_to_xml(decl: &ElementDecl) -> Element {
    let mut el = Element::new("xs:element").with_attr("name", decl.name.clone());
    occurs_to_attrs(&mut el, decl.occurs);
    if let Some(doc) = &decl.doc {
        el.push_child(
            Element::new("xs:annotation")
                .with_child(Element::new("xs:documentation").with_text(doc.clone())),
        );
    }
    match &decl.ty {
        TypeRef::Named(n) => el.set_attr("type", n.clone()),
        TypeRef::Inline(def) => match def.as_ref() {
            // Plain simple types collapse to a type attribute, like hand-
            // written schemas do.
            TypeDef::Simple(st) if st.enumeration.is_empty() => {
                el.set_attr("type", st.base.xsd_name())
            }
            other => el.push_child(type_to_xml(other, None)),
        },
    }
    el
}

fn element_decl_from_xml(el: &Element) -> Result<ElementDecl> {
    let name = named(el)?;
    let occurs = occurs_from_attrs(el)?;
    let doc = el
        .find("annotation")
        .and_then(|a| a.find_text("documentation"))
        .map(str::to_owned);
    let ty = if let Some(tyname) = el.attr("type") {
        match Primitive::from_xsd_name(tyname) {
            Some(p) => TypeRef::Inline(Box::new(TypeDef::Simple(SimpleType::plain(p)))),
            None => TypeRef::Named(tyname.to_owned()),
        }
    } else if let Some(ct) = el.find("complexType") {
        TypeRef::Inline(Box::new(TypeDef::Complex(complex_from_xml(ct)?)))
    } else if let Some(st) = el.find("simpleType") {
        TypeRef::Inline(Box::new(TypeDef::Simple(simple_from_xml(st)?)))
    } else {
        return Err(XmlError::Invalid(format!("element {name:?} has no type")));
    };
    Ok(ElementDecl {
        name,
        ty,
        occurs,
        doc,
    })
}

fn type_to_xml(def: &TypeDef, name: Option<&str>) -> Element {
    match def {
        TypeDef::Simple(st) => {
            let mut el = Element::new("xs:simpleType");
            if let Some(n) = name {
                el.set_attr("name", n);
            }
            let mut restriction =
                Element::new("xs:restriction").with_attr("base", st.base.xsd_name());
            for v in &st.enumeration {
                restriction
                    .push_child(Element::new("xs:enumeration").with_attr("value", v.clone()));
            }
            el.push_child(restriction);
            el
        }
        TypeDef::Complex(ct) => {
            let mut el = Element::new("xs:complexType");
            if let Some(n) = name {
                el.set_attr("name", n);
            }
            let attrs_to_xml = |parent: &mut Element| {
                for ad in &ct.attributes {
                    let mut a = Element::new("xs:attribute").with_attr("name", ad.name.clone());
                    if ad.required {
                        a.set_attr("use", "required");
                    }
                    if ad.ty.enumeration.is_empty() {
                        a.set_attr("type", ad.ty.base.xsd_name());
                    } else {
                        // Enumerated attributes carry an inline simple type
                        // so the facet survives the round trip.
                        a.push_child(type_to_xml(&TypeDef::Simple(ad.ty.clone()), None));
                    }
                    parent.push_child(a);
                }
            };
            if let Some(st) = &ct.text {
                // xs:simpleContent / xs:extension carries text + attributes.
                let mut ext = Element::new("xs:extension").with_attr("base", st.base.xsd_name());
                attrs_to_xml(&mut ext);
                el.push_child(Element::new("xs:simpleContent").with_child(ext));
                return el;
            }
            let mut seq = Element::new("xs:sequence");
            for decl in &ct.sequence {
                seq.push_child(element_decl_to_xml(decl));
            }
            el.push_child(seq);
            attrs_to_xml(&mut el);
            el
        }
    }
}

fn simple_from_xml(el: &Element) -> Result<SimpleType> {
    let restriction = el
        .find("restriction")
        .ok_or_else(|| XmlError::Invalid("simpleType without restriction".into()))?;
    let base = restriction
        .attr("base")
        .and_then(Primitive::from_xsd_name)
        .ok_or_else(|| XmlError::Invalid("simpleType restriction with unknown base".into()))?;
    let enumeration = restriction
        .find_all("enumeration")
        .filter_map(|e| e.attr("value").map(str::to_owned))
        .collect();
    Ok(SimpleType { base, enumeration })
}

fn complex_from_xml(el: &Element) -> Result<ComplexType> {
    let mut ct = ComplexType::default();
    // xs:simpleContent: text content plus attributes (on the extension).
    if let Some(sc) = el.find("simpleContent") {
        let ext = sc
            .find("extension")
            .ok_or_else(|| XmlError::Invalid("simpleContent without extension".into()))?;
        let base = ext
            .attr("base")
            .and_then(Primitive::from_xsd_name)
            .ok_or_else(|| XmlError::Invalid("simpleContent extension with unknown base".into()))?;
        ct.text = Some(SimpleType::plain(base));
        attrs_from_xml(ext, &mut ct)?;
        return Ok(ct);
    }
    if let Some(seq) = el.find("sequence") {
        for child in seq.find_all("element") {
            ct.sequence.push(element_decl_from_xml(child)?);
        }
    }
    attrs_from_xml(el, &mut ct)?;
    Ok(ct)
}

fn attrs_from_xml(el: &Element, ct: &mut ComplexType) -> Result<()> {
    for a in el.find_all("attribute") {
        let ty = if let Some(st) = a.find("simpleType") {
            simple_from_xml(st)?
        } else {
            SimpleType::plain(
                a.attr("type")
                    .and_then(Primitive::from_xsd_name)
                    .unwrap_or(Primitive::String),
            )
        };
        ct.attributes.push(AttrDecl {
            name: named(a)?,
            ty,
            required: a.attr("use") == Some("required"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature version of the paper's application descriptor schema.
    fn app_schema() -> Schema {
        Schema::new("http://servogrid.org/GCWS/Schema/app")
            .with_type(
                "HostType",
                TypeDef::Complex(
                    ComplexType::default()
                        .with(ElementDecl::string("dns"))
                        .with(ElementDecl::string("execPath"))
                        .with(
                            ElementDecl::enumerated("scheduler", ["PBS", "LSF", "NQS", "GRD"])
                                .occurs(Occurs::OPTIONAL),
                        )
                        .with_attr("ip", SimpleType::plain(Primitive::String), false),
                ),
            )
            .with_element(ElementDecl::new(
                "application",
                TypeDef::Complex(
                    ComplexType::default()
                        .with(ElementDecl::string("name").doc("Application name"))
                        .with(ElementDecl::string("version").occurs(Occurs::OPTIONAL))
                        .with(ElementDecl::named("host", "HostType").occurs(Occurs::MANY))
                        .with_attr("id", SimpleType::plain(Primitive::Int), true),
                ),
            ))
    }

    fn valid_instance() -> Element {
        Element::new("application")
            .with_attr("id", "7")
            .with_text_child("name", "gaussian98")
            .with_text_child("version", "A.9")
            .with_child(
                Element::new("host")
                    .with_text_child("dns", "tg-login.sdsc.edu")
                    .with_text_child("execPath", "/usr/local/bin/g98")
                    .with_text_child("scheduler", "PBS"),
            )
    }

    #[test]
    fn validates_conforming_instance() {
        app_schema().validate(&valid_instance()).unwrap();
    }

    #[test]
    fn missing_required_child_rejected() {
        let mut inst = valid_instance();
        // remove all hosts (minOccurs=1)
        let kept: Vec<_> = inst
            .take_children()
            .into_iter()
            .filter(|n| n.as_element().is_none_or(|e| e.local_name() != "host"))
            .collect();
        for n in kept {
            inst.push_node(n);
        }
        let err = app_schema().validate(&inst).unwrap_err();
        assert!(err.to_string().contains("host"), "{err}");
    }

    #[test]
    fn optional_child_may_be_absent() {
        let inst = Element::new("application")
            .with_attr("id", "1")
            .with_text_child("name", "code")
            .with_child(
                Element::new("host")
                    .with_text_child("dns", "h")
                    .with_text_child("execPath", "/bin/x"),
            );
        app_schema().validate(&inst).unwrap();
    }

    #[test]
    fn enumeration_enforced() {
        let mut inst = valid_instance();
        inst.find_mut("host")
            .unwrap()
            .find_mut("scheduler")
            .unwrap()
            .take_children();
        inst.find_mut("host")
            .unwrap()
            .find_mut("scheduler")
            .unwrap()
            .push_node(crate::Node::Text("SLURM".into()));
        assert!(app_schema().validate(&inst).is_err());
    }

    #[test]
    fn bad_attribute_type_rejected() {
        let mut inst = valid_instance();
        inst.set_attr("id", "not-a-number");
        assert!(app_schema().validate(&inst).is_err());
    }

    #[test]
    fn missing_required_attribute_rejected() {
        let inst = valid_instance();
        let mut no_id = Element::new("application");
        for n in inst.nodes() {
            no_id.push_node(n.clone());
        }
        assert!(app_schema().validate(&no_id).is_err());
    }

    #[test]
    fn undeclared_attribute_rejected() {
        let mut inst = valid_instance();
        inst.set_attr("bogus", "x");
        assert!(app_schema().validate(&inst).is_err());
    }

    #[test]
    fn unexpected_element_rejected() {
        let mut inst = valid_instance();
        inst.push_child(Element::new("extra"));
        assert!(app_schema().validate(&inst).is_err());
    }

    #[test]
    fn out_of_order_sequence_rejected() {
        let inst = Element::new("application")
            .with_attr("id", "1")
            .with_child(
                Element::new("host")
                    .with_text_child("dns", "h")
                    .with_text_child("execPath", "/bin/x"),
            )
            .with_text_child("name", "late");
        assert!(app_schema().validate(&inst).is_err());
    }

    #[test]
    fn repeated_unbounded_elements_accepted() {
        let mut inst = valid_instance();
        inst.push_child(
            Element::new("host")
                .with_text_child("dns", "h2")
                .with_text_child("execPath", "/bin/y"),
        );
        app_schema().validate(&inst).unwrap();
    }

    #[test]
    fn sample_instance_validates() {
        let schema = app_schema();
        let sample = schema.sample_instance("application").unwrap();
        schema.validate(&sample).unwrap();
    }

    #[test]
    fn schema_xml_round_trip() {
        let schema = app_schema();
        let xml = schema.to_xml();
        let parsed = Schema::from_xml(&xml).unwrap();
        assert_eq!(parsed, schema);
        // and the round-tripped schema still validates the instance
        parsed.validate(&valid_instance()).unwrap();
    }

    #[test]
    fn primitive_lexical_checks() {
        assert!(Primitive::Int.accepts(" -42 "));
        assert!(!Primitive::Int.accepts("4.2"));
        assert!(Primitive::Boolean.accepts("false"));
        assert!(!Primitive::Boolean.accepts("yes"));
        assert!(Primitive::DateTime.accepts("2002-11-16T09:00:00Z"));
        assert!(!Primitive::DateTime.accepts("Nov 16 2002"));
        assert!(Primitive::AnyUri.accepts("http://example.org/x"));
        assert!(!Primitive::AnyUri.accepts("two words"));
        assert!(Primitive::Base64.accepts("SGVsbG8="));
        assert!(!Primitive::Base64.accepts("a b"));
    }

    #[test]
    fn occurs_admits() {
        assert!(Occurs::ONE.admits(1));
        assert!(!Occurs::ONE.admits(0));
        assert!(!Occurs::ONE.admits(2));
        assert!(Occurs::ANY.admits(0));
        assert!(Occurs::ANY.admits(100));
        assert!(Occurs::MANY.admits(3));
        assert!(!Occurs::MANY.admits(0));
    }

    #[test]
    fn simple_content_complex_types() {
        // <parameter name="k">value</parameter>: text plus attributes.
        let schema = Schema::new("urn:t")
            .with_type(
                "ParameterType",
                TypeDef::Complex(
                    ComplexType::default()
                        .with_text_content(SimpleType::plain(Primitive::String))
                        .with_attr("name", SimpleType::plain(Primitive::String), true),
                ),
            )
            .with_element(ElementDecl::named("parameter", "ParameterType"));
        let ok = Element::new("parameter")
            .with_attr("name", "GAUSS_SCRDIR")
            .with_text("/scratch/g98");
        schema.validate(&ok).unwrap();
        // Child elements forbidden under simple content.
        let bad = Element::new("parameter")
            .with_attr("name", "x")
            .with_child(Element::new("child"));
        assert!(schema.validate(&bad).is_err());
        // Round trip through schema XML preserves the simple content.
        let rt = Schema::from_xml(&schema.to_xml()).unwrap();
        assert_eq!(rt, schema);
        rt.validate(&ok).unwrap();
        // Samples of simple-content types validate too.
        let sample = schema.sample_instance("parameter").unwrap();
        schema.validate(&sample).unwrap();
    }

    #[test]
    fn typed_simple_content_checks_values() {
        let schema = Schema::new("urn:t").with_element(ElementDecl::new(
            "count",
            TypeDef::Complex(
                ComplexType::default()
                    .with_text_content(SimpleType::plain(Primitive::Int))
                    .with_attr("unit", SimpleType::plain(Primitive::String), false),
            ),
        ));
        schema
            .validate(&Element::new("count").with_text("42"))
            .unwrap();
        assert!(schema
            .validate(&Element::new("count").with_text("forty-two"))
            .is_err());
    }

    #[test]
    fn unresolved_named_type_errors() {
        let schema = Schema::default().with_element(ElementDecl::named("x", "NoSuchType"));
        let inst = Element::new("x");
        assert!(matches!(
            schema.validate(&inst),
            Err(XmlError::SchemaViolation(_))
        ));
    }
}
