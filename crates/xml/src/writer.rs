//! Serialization of [`Element`] trees back to XML text.

use crate::dom::{Element, Node};
use crate::escape::{escape_attr, escape_text};

/// Serialize with no inserted whitespace. Parsing the output reproduces the
/// input tree exactly.
pub fn write_compact(el: &Element) -> String {
    let mut out = String::with_capacity(el.subtree_size() * 16);
    write_compact_into(el, &mut out);
    out
}

/// Serialize compactly into an existing buffer (appends; the caller owns
/// clearing). The hot-path form: SOAP workers reuse one buffer across
/// keep-alive requests instead of allocating per response.
// portalint: hot-path-entry
pub fn write_compact_into(el: &Element, out: &mut String) {
    write_element(out, el, None, 0);
}

/// Serialize with newline-separated, indented elements. Text-only elements
/// stay on one line so that values do not acquire spurious whitespace.
pub fn write_pretty(el: &Element, indent: usize) -> String {
    let mut out = String::with_capacity(el.subtree_size() * 24);
    write_pretty_into(el, indent, &mut out);
    out
}

/// Pretty-print into an existing buffer (appends).
pub fn write_pretty_into(el: &Element, indent: usize, out: &mut String) {
    write_element(out, el, Some(indent), 0);
}

fn is_inline(el: &Element) -> bool {
    el.nodes().iter().all(|n| !matches!(n, Node::Element(_)))
}

fn write_element(out: &mut String, el: &Element, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(step) = indent {
            for _ in 0..step * depth {
                out.push(' ');
            }
        }
    };
    pad(out, depth);
    out.push('<');
    out.push_str(el.name());
    for (k, v) in el.attrs() {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if el.nodes().is_empty() {
        out.push_str("/>");
        if indent.is_some() {
            out.push('\n');
        }
        return;
    }
    out.push('>');
    let inline = indent.is_none() || is_inline(el);
    if !inline {
        out.push('\n');
    }
    for node in el.nodes() {
        match node {
            Node::Element(child) => {
                if inline {
                    write_element(out, child, None, 0);
                } else {
                    write_element(out, child, indent, depth + 1);
                }
            }
            Node::Text(t) => out.push_str(&escape_text(t)),
            Node::CData(t) => {
                out.push_str("<![CDATA[");
                out.push_str(t);
                out.push_str("]]>");
            }
            Node::Comment(c) => {
                if !inline {
                    pad(out, depth + 1);
                }
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
                if !inline {
                    out.push('\n');
                }
            }
        }
    }
    if !inline {
        pad(out, depth);
    }
    out.push_str("</");
    out.push_str(el.name());
    out.push('>');
    if indent.is_some() {
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Element;

    #[test]
    fn compact_empty_element() {
        assert_eq!(write_compact(&Element::new("a")), "<a/>");
    }

    #[test]
    fn attributes_escaped() {
        let el = Element::new("a").with_attr("k", "x\"<&");
        assert_eq!(write_compact(&el), r#"<a k="x&quot;&lt;&amp;"/>"#);
    }

    #[test]
    fn text_escaped() {
        let el = Element::new("a").with_text("1<2 & 3");
        assert_eq!(write_compact(&el), "<a>1&lt;2 &amp; 3</a>");
    }

    #[test]
    fn pretty_inlines_text_elements() {
        let el = Element::new("r").with_text_child("name", "v");
        let p = write_pretty(&el, 2);
        assert!(p.contains("  <name>v</name>\n"), "got: {p}");
    }

    #[test]
    fn pretty_nests() {
        let el = Element::new("a").with_child(Element::new("b").with_child(Element::new("c")));
        let p = write_pretty(&el, 2);
        assert_eq!(p, "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n");
    }

    #[test]
    fn write_into_appends_to_existing_buffer() {
        let el = Element::new("a").with_text("x");
        let mut buf = String::from("prefix:");
        write_compact_into(&el, &mut buf);
        assert_eq!(buf, "prefix:<a>x</a>");
        assert_eq!(write_compact(&el), "<a>x</a>");
    }

    #[test]
    fn round_trip_compact_parse() {
        let el = Element::new("root")
            .with_attr("a", "1")
            .with_text_child("x", "he said \"hi\" & left")
            .with_child(Element::new("empty"));
        let parsed = Element::parse(&write_compact(&el)).unwrap();
        assert_eq!(parsed, el);
    }
}
