//! Process-wide fast-path counters for the zero-copy substrate.
//!
//! The escape/unescape fast paths ([`crate::escape`]) return
//! `Cow::Borrowed` without allocating; these counters record how often
//! that happened so the wire layer (`wire::stats`) and the E5/E11
//! experiments can report allocations avoided, not just time. Counters
//! are global atomics with relaxed ordering — they are telemetry, not
//! synchronization — and tests compare snapshots with
//! [`SubstrateCounters::since`] rather than resetting, so parallel test
//! threads do not interfere.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ESCAPE_BORROWED: AtomicU64 = AtomicU64::new(0);
static ESCAPE_OWNED: AtomicU64 = AtomicU64::new(0);
static UNESCAPE_BORROWED: AtomicU64 = AtomicU64::new(0);
static UNESCAPE_OWNED: AtomicU64 = AtomicU64::new(0);

pub(crate) fn count_escape(borrowed: bool) {
    if borrowed {
        ESCAPE_BORROWED.fetch_add(1, Relaxed);
    } else {
        ESCAPE_OWNED.fetch_add(1, Relaxed);
    }
}

pub(crate) fn count_unescape(borrowed: bool) {
    if borrowed {
        UNESCAPE_BORROWED.fetch_add(1, Relaxed);
    } else {
        UNESCAPE_OWNED.fetch_add(1, Relaxed);
    }
}

/// A point-in-time copy of the substrate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubstrateCounters {
    /// `escape_text`/`escape_attr` calls that borrowed (no allocation).
    pub escape_borrowed: u64,
    /// Escape calls that had to allocate.
    pub escape_owned: u64,
    /// `unescape` calls that borrowed (no allocation).
    pub unescape_borrowed: u64,
    /// Unescape calls that had to allocate.
    pub unescape_owned: u64,
}

impl SubstrateCounters {
    /// Counter deltas relative to an earlier snapshot.
    pub fn since(&self, earlier: &SubstrateCounters) -> SubstrateCounters {
        SubstrateCounters {
            escape_borrowed: self.escape_borrowed.wrapping_sub(earlier.escape_borrowed),
            escape_owned: self.escape_owned.wrapping_sub(earlier.escape_owned),
            unescape_borrowed: self
                .unescape_borrowed
                .wrapping_sub(earlier.unescape_borrowed),
            unescape_owned: self.unescape_owned.wrapping_sub(earlier.unescape_owned),
        }
    }

    /// Fraction of escape calls that avoided allocation (0.0 when none ran).
    pub fn escape_fast_path_rate(&self) -> f64 {
        rate(self.escape_borrowed, self.escape_owned)
    }

    /// Fraction of unescape calls that avoided allocation.
    pub fn unescape_fast_path_rate(&self) -> f64 {
        rate(self.unescape_borrowed, self.unescape_owned)
    }
}

fn rate(hit: u64, miss: u64) -> f64 {
    let total = hit + miss;
    if total == 0 {
        0.0
    } else {
        hit as f64 / total as f64
    }
}

/// Read the current counter values.
pub fn snapshot() -> SubstrateCounters {
    SubstrateCounters {
        escape_borrowed: ESCAPE_BORROWED.load(Relaxed),
        escape_owned: ESCAPE_OWNED.load(Relaxed),
        unescape_borrowed: UNESCAPE_BORROWED.load(Relaxed),
        unescape_owned: UNESCAPE_OWNED.load(Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = SubstrateCounters {
            escape_borrowed: 10,
            escape_owned: 2,
            unescape_borrowed: 5,
            unescape_owned: 1,
        };
        let b = SubstrateCounters {
            escape_borrowed: 4,
            escape_owned: 2,
            unescape_borrowed: 1,
            unescape_owned: 0,
        };
        let d = a.since(&b);
        assert_eq!(d.escape_borrowed, 6);
        assert_eq!(d.escape_owned, 0);
        assert!((d.escape_fast_path_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn rate_of_empty_is_zero() {
        assert_eq!(SubstrateCounters::default().escape_fast_path_rate(), 0.0);
    }
}
