//! From-scratch XML substrate for the `portalws` workspace.
//!
//! Every layer of the portal stack described in *Interoperable Web Services
//! for Computational Portals* (SC 2002) speaks XML: SOAP envelopes, WSDL
//! interface definitions, UDDI registry entries, application descriptors,
//! and the schema-wizard pipeline. In 2002 the authors leaned on Apache
//! SOAP, Castor, and the Java DOM; no equivalent Rust stack exists, so this
//! crate implements the substrate directly:
//!
//! * [`event`] — a pull tokenizer producing a stream of borrowed
//!   [`event::Event`]s (zero-copy on entity-free input) with
//!   byte-accurate, lazily computed error positions.
//! * [`dom`] — an owned element tree ([`Element`], [`Node`]) with a fluent
//!   builder API and namespace-aware navigation.
//! * [`writer`] — compact and pretty serialization back to XML text.
//! * [`path`] — a tiny path language (`"a/b/@c"`) for extracting values.
//! * [`schema`] — the subset of XML Schema used by the paper's Application
//!   Web Services descriptors and the schema wizard: elements, complex
//!   types, sequences, enumerations, occurrence bounds, and instance
//!   validation.
//!
//! # Quick example
//!
//! ```
//! use portalws_xml::Element;
//!
//! let doc = Element::parse("<job><host n=\"1\">tg-login</host></job>").unwrap();
//! assert_eq!(doc.find_text("host"), Some("tg-login"));
//! assert_eq!(doc.find("host").unwrap().attr("n"), Some("1"));
//!
//! let built = Element::new("job")
//!     .with_child(Element::new("host").with_attr("n", "1").with_text("tg-login"));
//! assert_eq!(built.to_xml(), doc.to_xml());
//! ```

pub mod dom;
pub mod escape;
pub mod event;
pub mod path;
pub mod scan;
pub mod schema;
pub mod stats;
pub mod writer;

pub use dom::{Element, Node};
pub use event::{Event, Tokenizer};
pub use schema::{
    ComplexType, ElementDecl, Occurs, Primitive, Schema, SimpleType, TypeDef, TypeRef,
};

use std::fmt;

/// Position of an error in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes on the line).
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors produced by parsing, navigation, or schema validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Lexical or well-formedness error at a source position.
    Syntax { pos: Pos, msg: String },
    /// The document ended before the parse was complete.
    UnexpectedEof { pos: Pos },
    /// A close tag did not match the open tag.
    MismatchedTag {
        pos: Pos,
        open: String,
        close: String,
    },
    /// An entity reference could not be resolved.
    BadEntity { pos: Pos, entity: String },
    /// A path expression did not match the document.
    PathNotFound { path: String },
    /// The document was structurally valid XML but invalid for the caller.
    Invalid(String),
    /// Schema validation failure: the instance does not conform.
    SchemaViolation(String),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Syntax { pos, msg } => write!(f, "xml syntax error at {pos}: {msg}"),
            XmlError::UnexpectedEof { pos } => write!(f, "unexpected end of input at {pos}"),
            XmlError::MismatchedTag { pos, open, close } => {
                write!(f, "mismatched tag at {pos}: <{open}> closed by </{close}>")
            }
            XmlError::BadEntity { pos, entity } => {
                write!(f, "unknown entity &{entity}; at {pos}")
            }
            XmlError::PathNotFound { path } => write!(f, "path not found: {path}"),
            XmlError::Invalid(msg) => write!(f, "invalid document: {msg}"),
            XmlError::SchemaViolation(msg) => write!(f, "schema violation: {msg}"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, XmlError>;
