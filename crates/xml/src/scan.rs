//! Panic-free byte-scan primitives for the zero-copy substrate.
//!
//! The tokenizer and the escaper both reduce to the same two operations:
//! "find the next interesting byte" and "split the slice there". Both are
//! implemented here in `get`-based shapes that cannot panic, so the hot
//! loops in [`crate::event`] and [`crate::escape`] stay clean under the
//! `portalint` panic rule without audited allows. The `byte_scan.rs`
//! fixture in `crates/portalint/tests` pins these shapes as the approved
//! idiom.
//!
//! All scan positions produced by [`find_byte`] with an ASCII predicate are
//! UTF-8 char boundaries (ASCII bytes never occur inside a multi-byte
//! sequence), so [`split_at`] succeeds for every index this module hands
//! out; the clamped fallback exists only to make the "impossible" case
//! total instead of panicking.

/// Index of the first byte at or after `from` for which `pred` holds.
///
/// Returns `None` when no byte matches or `from` is past the end. A single
/// forward scan with no per-byte position bookkeeping — the memchr-style
/// primitive the tokenizer's lazy line/col tracking relies on.
#[inline]
pub fn find_byte(s: &str, from: usize, pred: impl Fn(u8) -> bool) -> Option<usize> {
    let tail = s.as_bytes().get(from..)?;
    tail.iter().position(|&b| pred(b)).map(|i| from + i)
}

const LANE_LO: u64 = 0x0101_0101_0101_0101;
const LANE_HI: u64 = 0x8080_8080_8080_8080;

/// SWAR zero detector: the high bit of each lane that held 0x00.
#[inline]
const fn zero_lanes(w: u64) -> u64 {
    w.wrapping_sub(LANE_LO) & !w & LANE_HI
}

/// Index of the first byte at or after `from` equal to any byte in `set`.
///
/// Word-at-a-time variant of [`find_byte`] for the scans that dominate the
/// tokenizer and escaper: the needle set is known up front, so each 8-byte
/// word is checked with a branch-free zero-lane test per needle instead of
/// a per-byte predicate call. `set` must contain ASCII bytes for the
/// char-boundary guarantee described in the module docs to hold.
#[inline]
pub fn find_any<const N: usize>(s: &str, from: usize, set: [u8; N]) -> Option<usize> {
    let tail = s.as_bytes().get(from..)?;
    let mut chunks = tail.chunks_exact(8);
    let mut base = from;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap_or([0; 8]));
        let mut hits = 0u64;
        for &needle in &set {
            hits |= zero_lanes(w ^ (needle as u64).wrapping_mul(LANE_LO));
        }
        if hits != 0 {
            return Some(base + (hits.trailing_zeros() / 8) as usize);
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|b| set.contains(b))
        .map(|i| base + i)
}

/// Split `s` at byte index `mid`, clamping to the full string when `mid`
/// is out of bounds or not a char boundary (unreachable for indices from
/// [`find_byte`] with ASCII predicates, but total rather than panicking).
#[inline]
pub fn split_at(s: &str, mid: usize) -> (&str, &str) {
    s.split_at_checked(mid).unwrap_or((s, ""))
}

/// Split off the first byte when it is ASCII; `None` on empty input or a
/// multi-byte first character. Callers use this to step over a special
/// byte that a [`find_byte`] scan already located.
#[inline]
pub fn split_first_ascii(s: &str) -> Option<(u8, &str)> {
    let b = *s.as_bytes().first()?;
    if !b.is_ascii() {
        return None;
    }
    Some((b, split_at(s, 1).1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_byte_from_offset() {
        assert_eq!(find_byte("a<b<c", 0, |b| b == b'<'), Some(1));
        assert_eq!(find_byte("a<b<c", 2, |b| b == b'<'), Some(3));
        assert_eq!(find_byte("a<b<c", 4, |b| b == b'<'), None);
        assert_eq!(find_byte("abc", 99, |b| b == b'<'), None);
    }

    #[test]
    fn find_byte_skips_multibyte_interiors() {
        // '<' (0x3C) can never match inside a UTF-8 continuation byte.
        let s = "é<";
        assert_eq!(find_byte(s, 0, |b| b == b'<'), Some(2));
    }

    #[test]
    fn find_any_matches_find_byte() {
        // Differential check across chunk boundaries, offsets, and the
        // word-remainder tail.
        let src = "abcdefgh<ijklmnop&qrstuvwx>yz\"'end";
        for from in 0..=src.len() + 2 {
            let set = [b'<', b'&', b'>', b'"', b'\''];
            assert_eq!(
                find_any(src, from, set),
                find_byte(src, from, |b| set.contains(&b)),
                "from {from}"
            );
            assert_eq!(
                find_any(src, from, [b'&']),
                find_byte(src, from, |b| b == b'&'),
                "single-needle from {from}"
            );
        }
        assert_eq!(find_any("no specials here", 0, [b'<', b'&']), None);
        assert_eq!(find_any("é<", 0, [b'<']), Some(2));
    }

    #[test]
    fn split_at_clamps() {
        assert_eq!(split_at("abc", 1), ("a", "bc"));
        assert_eq!(split_at("abc", 99), ("abc", ""));
        // Non-boundary index clamps instead of panicking.
        assert_eq!(split_at("é", 1), ("é", ""));
    }

    #[test]
    fn split_first_ascii_cases() {
        assert_eq!(split_first_ascii("<a"), Some((b'<', "a")));
        assert_eq!(split_first_ascii(""), None);
        assert_eq!(split_first_ascii("éa"), None);
    }
}
