//! Pull tokenizer: turns XML text into a stream of [`Event`]s.
//!
//! The tokenizer is deliberately a single forward pass with no lookahead
//! buffer: SOAP envelopes arrive as one contiguous string from the wire
//! layer, and a single scan keeps the cost of the "XML tax" (experiments
//! E1/E5) honest and measurable.

use crate::escape::unescape;
use crate::{Pos, Result, XmlError};

/// One lexical event in the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// XML declaration `<?xml version="1.0"?>` (content unparsed).
    Decl(String),
    /// Start of an element. `self_closing` is true for `<a/>`.
    StartTag {
        name: String,
        attrs: Vec<(String, String)>,
        self_closing: bool,
    },
    /// End of an element `</a>`.
    EndTag { name: String },
    /// Character data between tags, entities already resolved.
    Text(String),
    /// CDATA section contents (not entity-processed, per the spec).
    CData(String),
    /// Comment contents.
    Comment(String),
    /// Processing instruction other than the XML declaration.
    Pi { target: String, data: String },
    /// DOCTYPE declaration, skipped and reported verbatim.
    Doctype(String),
}

/// Forward-only tokenizer over a source string.
pub struct Tokenizer<'a> {
    src: &'a str,
    /// Current byte offset into `src`.
    off: usize,
    line: u32,
    col: u32,
}

impl<'a> Tokenizer<'a> {
    /// Create a tokenizer over `src`.
    pub fn new(src: &'a str) -> Self {
        Tokenizer {
            src,
            off: 0,
            line: 1,
            col: 1,
        }
    }

    /// Current source position (for error reporting).
    pub fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.off..]
    }

    fn eof(&self) -> bool {
        self.off >= self.src.len()
    }

    /// Advance past `n` bytes, maintaining line/column counters.
    fn advance(&mut self, n: usize) {
        let chunk = &self.src[self.off..self.off + n];
        for b in chunk.bytes() {
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        self.off += n;
    }

    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            pos: self.pos(),
            msg: msg.into(),
        }
    }

    fn eof_err(&self) -> XmlError {
        XmlError::UnexpectedEof { pos: self.pos() }
    }

    /// Consume up to and including `needle`, returning the text before it.
    fn take_until(&mut self, needle: &str) -> Result<&'a str> {
        match self.rest().find(needle) {
            Some(i) => {
                let out = &self.rest()[..i];
                self.advance(i + needle.len());
                Ok(out)
            }
            None => Err(self.eof_err()),
        }
    }

    fn skip_ws(&mut self) {
        let n = self
            .rest()
            .bytes()
            .take_while(|b| b.is_ascii_whitespace())
            .count();
        self.advance(n);
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_' || c == ':'
    }

    fn is_name_char(c: char) -> bool {
        c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.')
    }

    fn take_name(&mut self) -> Result<String> {
        let rest = self.rest();
        let mut chars = rest.chars();
        match chars.next() {
            Some(c) if Self::is_name_start(c) => {}
            Some(c) => return Err(self.err(format!("expected name, found {c:?}"))),
            None => return Err(self.eof_err()),
        }
        let n: usize = rest
            .chars()
            .take_while(|&c| Self::is_name_char(c))
            .map(char::len_utf8)
            .sum();
        let name = &rest[..n];
        self.advance(n);
        Ok(name.to_owned())
    }

    fn take_quoted(&mut self) -> Result<String> {
        let quote = match self.rest().chars().next() {
            Some(q @ ('"' | '\'')) => q,
            Some(c) => return Err(self.err(format!("expected quoted value, found {c:?}"))),
            None => return Err(self.eof_err()),
        };
        self.advance(1);
        let pos = self.pos();
        let raw = self.take_until(&quote.to_string())?;
        unescape(raw).ok_or(XmlError::BadEntity {
            pos,
            entity: raw.to_owned(),
        })
    }

    /// Produce the next event, or `None` at end of input.
    pub fn next_event(&mut self) -> Result<Option<Event>> {
        if self.eof() {
            return Ok(None);
        }
        if !self.rest().starts_with('<') {
            return self.text_event().map(Some);
        }
        let r = self.rest();
        if r.starts_with("<!--") {
            self.advance(4);
            let body = self.take_until("-->")?;
            return Ok(Some(Event::Comment(body.to_owned())));
        }
        if r.starts_with("<![CDATA[") {
            self.advance(9);
            let body = self.take_until("]]>")?;
            return Ok(Some(Event::CData(body.to_owned())));
        }
        if r.starts_with("<!DOCTYPE") || r.starts_with("<!doctype") {
            return self.doctype_event().map(Some);
        }
        if r.starts_with("<?") {
            return self.pi_event().map(Some);
        }
        if r.starts_with("</") {
            self.advance(2);
            let name = self.take_name()?;
            self.skip_ws();
            if !self.rest().starts_with('>') {
                return Err(self.err("expected '>' after close tag name"));
            }
            self.advance(1);
            return Ok(Some(Event::EndTag { name }));
        }
        self.start_tag_event().map(Some)
    }

    fn text_event(&mut self) -> Result<Event> {
        let pos = self.pos();
        let raw = match self.rest().find('<') {
            Some(i) => {
                let t = &self.rest()[..i];
                self.advance(i);
                t
            }
            None => {
                let t = self.rest();
                self.advance(t.len());
                t
            }
        };
        let text = unescape(raw).ok_or(XmlError::BadEntity {
            pos,
            entity: raw.to_owned(),
        })?;
        Ok(Event::Text(text))
    }

    fn doctype_event(&mut self) -> Result<Event> {
        self.advance("<!DOCTYPE".len());
        // Skip to the matching '>' while tolerating an internal subset
        // bracketed by [ ... ].
        let start = self.off;
        let mut depth = 0usize;
        loop {
            let Some(c) = self.rest().chars().next() else {
                return Err(self.eof_err());
            };
            match c {
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                '>' if depth == 0 => {
                    let body = self.src[start..self.off].trim().to_owned();
                    self.advance(1);
                    return Ok(Event::Doctype(body));
                }
                _ => {}
            }
            self.advance(c.len_utf8());
        }
    }

    fn pi_event(&mut self) -> Result<Event> {
        self.advance(2);
        let target = self.take_name()?;
        self.skip_ws();
        let data = self.take_until("?>")?.trim_end().to_owned();
        if target.eq_ignore_ascii_case("xml") {
            Ok(Event::Decl(data))
        } else {
            Ok(Event::Pi { target, data })
        }
    }

    fn start_tag_event(&mut self) -> Result<Event> {
        self.advance(1); // consume '<'
        let name = self.take_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            let r = self.rest();
            if r.starts_with("/>") {
                self.advance(2);
                return Ok(Event::StartTag {
                    name,
                    attrs,
                    self_closing: true,
                });
            }
            if r.starts_with('>') {
                self.advance(1);
                return Ok(Event::StartTag {
                    name,
                    attrs,
                    self_closing: false,
                });
            }
            if r.is_empty() {
                return Err(self.eof_err());
            }
            let aname = self.take_name()?;
            self.skip_ws();
            if !self.rest().starts_with('=') {
                return Err(self.err(format!("attribute {aname:?} missing '='")));
            }
            self.advance(1);
            self.skip_ws();
            let value = self.take_quoted()?;
            if attrs.iter().any(|(n, _)| *n == aname) {
                return Err(self.err(format!("duplicate attribute {aname:?}")));
            }
            attrs.push((aname, value));
        }
    }

    /// Drain all events into a vector (convenience for tests and the DOM).
    pub fn collect_events(mut self) -> Result<Vec<Event>> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_event()? {
            out.push(ev);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event> {
        Tokenizer::new(src).collect_events().unwrap()
    }

    #[test]
    fn simple_element() {
        let ev = events("<a>hi</a>");
        assert_eq!(
            ev,
            vec![
                Event::StartTag {
                    name: "a".into(),
                    attrs: vec![],
                    self_closing: false
                },
                Event::Text("hi".into()),
                Event::EndTag { name: "a".into() },
            ]
        );
    }

    #[test]
    fn self_closing_with_attrs() {
        let ev = events(r#"<job name="g98" cpus='4'/>"#);
        assert_eq!(
            ev,
            vec![Event::StartTag {
                name: "job".into(),
                attrs: vec![("name".into(), "g98".into()), ("cpus".into(), "4".into())],
                self_closing: true
            }]
        );
    }

    #[test]
    fn declaration_and_comment_and_pi() {
        let ev = events("<?xml version=\"1.0\"?><!-- c --><?php echo ?><a/>");
        assert!(matches!(ev[0], Event::Decl(_)));
        assert_eq!(ev[1], Event::Comment(" c ".into()));
        assert!(matches!(&ev[2], Event::Pi { target, .. } if target == "php"));
    }

    #[test]
    fn cdata_not_entity_processed() {
        let ev = events("<a><![CDATA[x < y & z]]></a>");
        assert_eq!(ev[1], Event::CData("x < y & z".into()));
    }

    #[test]
    fn entities_resolved_in_text_and_attrs() {
        let ev = events(r#"<a k="&lt;v&gt;">&amp;</a>"#);
        match &ev[0] {
            Event::StartTag { attrs, .. } => assert_eq!(attrs[0].1, "<v>"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ev[1], Event::Text("&".into()));
    }

    #[test]
    fn doctype_skipped() {
        let ev = events("<!DOCTYPE html [ <!ENTITY x \"y\"> ]><a/>");
        assert!(matches!(ev[0], Event::Doctype(_)));
        assert!(matches!(ev[1], Event::StartTag { .. }));
    }

    #[test]
    fn error_positions_track_lines() {
        let mut t = Tokenizer::new("<a>\n  <b<>\n</a>");
        t.next_event().unwrap(); // <a>
        t.next_event().unwrap(); // text
        let err = t.next_event().unwrap_err();
        match err {
            XmlError::Syntax { pos, .. } => {
                assert_eq!(pos.line, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut t = Tokenizer::new(r#"<a k="1" k="2"/>"#);
        assert!(matches!(t.next_event(), Err(XmlError::Syntax { .. })));
    }

    #[test]
    fn unterminated_tag_is_eof() {
        let mut t = Tokenizer::new("<a ");
        assert!(matches!(
            t.next_event(),
            Err(XmlError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bad_entity_reported() {
        let mut t = Tokenizer::new("<a>&bogus;</a>");
        t.next_event().unwrap();
        assert!(matches!(t.next_event(), Err(XmlError::BadEntity { .. })));
    }

    #[test]
    fn namespaced_names_allowed() {
        let ev = events(r#"<soap:Envelope xmlns:soap="urn:x"/>"#);
        match &ev[0] {
            Event::StartTag { name, attrs, .. } => {
                assert_eq!(name, "soap:Envelope");
                assert_eq!(attrs[0].0, "xmlns:soap");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
