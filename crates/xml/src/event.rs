//! Pull tokenizer: turns XML text into a stream of borrowed [`Event`]s.
//!
//! The tokenizer is deliberately a single forward pass with no lookahead
//! buffer: SOAP envelopes arrive as one contiguous string from the wire
//! layer, and a single scan keeps the cost of the "XML tax" (experiments
//! E1/E5/E11) honest and measurable.
//!
//! Events borrow from the source — names, attribute values, text, and
//! CDATA are [`Cow::Borrowed`] slices unless entity resolution forces an
//! allocation. Line/column positions are *lazy*: the hot path tracks only
//! a byte offset, and [`Tokenizer::pos_at`] scans the prefix to recover
//! line/col only when an error is being constructed.

use std::borrow::Cow;

use crate::escape::unescape;
use crate::scan;
use crate::{Pos, Result, XmlError};

/// One lexical event in the document, borrowing from the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// XML declaration `<?xml version="1.0"?>` (content unparsed).
    Decl(Cow<'a, str>),
    /// Start of an element. `self_closing` is true for `<a/>`.
    StartTag {
        name: Cow<'a, str>,
        attrs: Vec<(Cow<'a, str>, Cow<'a, str>)>,
        self_closing: bool,
    },
    /// End of an element `</a>`.
    EndTag { name: Cow<'a, str> },
    /// Character data between tags, entities already resolved.
    Text(Cow<'a, str>),
    /// CDATA section contents (not entity-processed, per the spec).
    CData(Cow<'a, str>),
    /// Comment contents.
    Comment(Cow<'a, str>),
    /// Processing instruction other than the XML declaration.
    Pi {
        target: Cow<'a, str>,
        data: Cow<'a, str>,
    },
    /// DOCTYPE declaration, skipped and reported verbatim.
    Doctype(Cow<'a, str>),
}

impl Event<'_> {
    /// Detach the event from the source buffer.
    ///
    /// Holders of a borrowed `Event` may not outlive the source string the
    /// tokenizer was built over; `into_owned` is the escape hatch for the
    /// rare consumer that must keep one (see DESIGN.md "substrate
    /// performance" for the ownership rules).
    pub fn into_owned(self) -> Event<'static> {
        fn own(c: Cow<'_, str>) -> Cow<'static, str> {
            Cow::Owned(c.into_owned())
        }
        match self {
            Event::Decl(d) => Event::Decl(own(d)),
            Event::StartTag {
                name,
                attrs,
                self_closing,
            } => Event::StartTag {
                name: own(name),
                attrs: attrs.into_iter().map(|(k, v)| (own(k), own(v))).collect(),
                self_closing,
            },
            Event::EndTag { name } => Event::EndTag { name: own(name) },
            Event::Text(t) => Event::Text(own(t)),
            Event::CData(t) => Event::CData(own(t)),
            Event::Comment(c) => Event::Comment(own(c)),
            Event::Pi { target, data } => Event::Pi {
                target: own(target),
                data: own(data),
            },
            Event::Doctype(d) => Event::Doctype(own(d)),
        }
    }
}

/// Forward-only tokenizer over a source string.
pub struct Tokenizer<'a> {
    src: &'a str,
    /// Current byte offset into `src` — the only position state the hot
    /// path maintains.
    off: usize,
}

impl<'a> Tokenizer<'a> {
    /// Create a tokenizer over `src`.
    pub fn new(src: &'a str) -> Self {
        Tokenizer { src, off: 0 }
    }

    /// Current byte offset (cheap; record this on the hot path and convert
    /// with [`Tokenizer::pos_at`] only when building an error).
    pub fn offset(&self) -> usize {
        self.off
    }

    /// Line/column of byte offset `off`, computed by scanning the prefix.
    ///
    /// O(off) — intended for error construction only, never per event.
    pub fn pos_at(&self, off: usize) -> Pos {
        let prefix = self
            .src
            .as_bytes()
            .get(..off)
            .unwrap_or(self.src.as_bytes());
        let mut line = 1u32;
        let mut line_start = 0usize;
        for (i, &b) in prefix.iter().enumerate() {
            if b == b'\n' {
                line += 1;
                line_start = i + 1;
            }
        }
        Pos {
            line,
            col: (prefix.len() - line_start) as u32 + 1,
        }
    }

    /// Current source position (for error reporting; O(offset), see
    /// [`Tokenizer::pos_at`]).
    pub fn pos(&self) -> Pos {
        self.pos_at(self.off)
    }

    fn rest(&self) -> &'a str {
        self.src.get(self.off..).unwrap_or("")
    }

    fn eof(&self) -> bool {
        self.off >= self.src.len()
    }

    /// Source bytes `start..end`, clamped (panic-free).
    fn span(&self, start: usize, end: usize) -> &'a str {
        self.src.get(start..end).unwrap_or("")
    }

    /// Advance past `n` bytes. No per-byte bookkeeping — positions are
    /// recovered lazily from the offset on error paths.
    fn advance(&mut self, n: usize) {
        self.off = self.off.saturating_add(n).min(self.src.len());
    }

    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            pos: self.pos(),
            msg: msg.into(),
        }
    }

    fn eof_err(&self) -> XmlError {
        XmlError::UnexpectedEof { pos: self.pos() }
    }

    /// Consume up to and including `needle`, returning the text before it.
    fn take_until(&mut self, needle: &str) -> Result<&'a str> {
        let rest = self.rest();
        match rest.find(needle) {
            Some(i) => {
                let (out, _) = scan::split_at(rest, i);
                self.advance(i + needle.len());
                Ok(out)
            }
            None => Err(self.eof_err()),
        }
    }

    fn skip_ws(&mut self) {
        let n = self
            .rest()
            .bytes()
            .take_while(|b| b.is_ascii_whitespace())
            .count();
        self.advance(n);
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_' || c == ':'
    }

    fn is_name_char(c: char) -> bool {
        c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.')
    }

    fn is_ascii_name_byte(b: u8) -> bool {
        b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.')
    }

    /// Length of the name-character run at the start of `rest`, resolved
    /// with a byte scan for the ASCII names that dominate SOAP documents
    /// and a `char` walk only from the first non-ASCII byte on.
    fn name_len(rest: &str) -> usize {
        let ascii =
            scan::find_byte(rest, 0, |b| !Self::is_ascii_name_byte(b)).unwrap_or(rest.len());
        if rest.as_bytes().get(ascii).is_none_or(|b| b.is_ascii()) {
            return ascii;
        }
        let tail_len: usize = rest.get(ascii..).map_or(0, |tail| {
            tail.chars()
                .take_while(|&c| Self::is_name_char(c))
                .map(char::len_utf8)
                .sum()
        });
        ascii + tail_len
    }

    fn take_name(&mut self) -> Result<&'a str> {
        let rest = self.rest();
        match rest.chars().next() {
            Some(c) if Self::is_name_start(c) => {}
            // portalint: allow(hot-path-alloc) — parse-error branch; never runs on well-formed input
            Some(c) => return Err(self.err(format!("expected name, found {c:?}"))),
            None => return Err(self.eof_err()),
        }
        let n = Self::name_len(rest);
        let (name, _) = scan::split_at(rest, n);
        self.advance(n);
        Ok(name)
    }

    fn take_quoted(&mut self) -> Result<Cow<'a, str>> {
        let quote = match self.rest().chars().next() {
            Some(q @ ('"' | '\'')) => q as u8,
            // portalint: allow(hot-path-alloc) — parse-error branch; never runs on well-formed input
            Some(c) => return Err(self.err(format!("expected quoted value, found {c:?}"))),
            None => return Err(self.eof_err()),
        };
        self.advance(1);
        let start = self.off;
        let rest = self.rest();
        let Some(i) = scan::find_any(rest, 0, [quote]) else {
            return Err(self.eof_err());
        };
        let (raw, _) = scan::split_at(rest, i);
        self.advance(i + 1);
        unescape(raw).ok_or_else(|| XmlError::BadEntity {
            pos: self.pos_at(start),
            entity: raw.to_owned(),
        })
    }

    /// Produce the next event, or `None` at end of input.
    // portalint: hot-path-entry
    pub fn next_event(&mut self) -> Result<Option<Event<'a>>> {
        if self.eof() {
            return Ok(None);
        }
        if !self.rest().starts_with('<') {
            return self.text_event().map(Some);
        }
        let r = self.rest();
        if r.starts_with("<!--") {
            self.advance(4);
            let body = self.take_until("-->")?;
            return Ok(Some(Event::Comment(Cow::Borrowed(body))));
        }
        if r.starts_with("<![CDATA[") {
            self.advance(9);
            let body = self.take_until("]]>")?;
            return Ok(Some(Event::CData(Cow::Borrowed(body))));
        }
        if r.starts_with("<!DOCTYPE") || r.starts_with("<!doctype") {
            return self.doctype_event().map(Some);
        }
        if r.starts_with("<?") {
            return self.pi_event().map(Some);
        }
        if r.starts_with("</") {
            self.advance(2);
            let name = self.take_name()?;
            self.skip_ws();
            if !self.rest().starts_with('>') {
                return Err(self.err("expected '>' after close tag name"));
            }
            self.advance(1);
            return Ok(Some(Event::EndTag {
                name: Cow::Borrowed(name),
            }));
        }
        self.start_tag_event().map(Some)
    }

    fn text_event(&mut self) -> Result<Event<'a>> {
        let start = self.off;
        let rest = self.rest();
        let i = scan::find_any(rest, 0, [b'<']).unwrap_or(rest.len());
        let (raw, _) = scan::split_at(rest, i);
        self.advance(i);
        let text = unescape(raw).ok_or_else(|| XmlError::BadEntity {
            pos: self.pos_at(start),
            entity: raw.to_owned(),
        })?;
        Ok(Event::Text(text))
    }

    fn doctype_event(&mut self) -> Result<Event<'a>> {
        self.advance("<!DOCTYPE".len());
        // Skip to the matching '>' while tolerating an internal subset
        // bracketed by [ ... ].
        let start = self.off;
        let mut depth = 0usize;
        loop {
            let Some(c) = self.rest().chars().next() else {
                return Err(self.eof_err());
            };
            match c {
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                '>' if depth == 0 => {
                    let body = self.span(start, self.off).trim();
                    self.advance(1);
                    return Ok(Event::Doctype(Cow::Borrowed(body)));
                }
                _ => {}
            }
            self.advance(c.len_utf8());
        }
    }

    fn pi_event(&mut self) -> Result<Event<'a>> {
        self.advance(2);
        let target = self.take_name()?;
        self.skip_ws();
        let data = self.take_until("?>")?.trim_end();
        if target.eq_ignore_ascii_case("xml") {
            Ok(Event::Decl(Cow::Borrowed(data)))
        } else {
            Ok(Event::Pi {
                target: Cow::Borrowed(target),
                data: Cow::Borrowed(data),
            })
        }
    }

    fn start_tag_event(&mut self) -> Result<Event<'a>> {
        self.advance(1); // consume '<'
        let name = self.take_name()?;
        // portalint: allow(hot-path-alloc) — an empty Vec allocates nothing; it grows only on attribute-bearing tags
        let mut attrs: Vec<(Cow<'a, str>, Cow<'a, str>)> = Vec::new();
        loop {
            self.skip_ws();
            let r = self.rest();
            if r.starts_with("/>") {
                self.advance(2);
                return Ok(Event::StartTag {
                    name: Cow::Borrowed(name),
                    attrs,
                    self_closing: true,
                });
            }
            if r.starts_with('>') {
                self.advance(1);
                return Ok(Event::StartTag {
                    name: Cow::Borrowed(name),
                    attrs,
                    self_closing: false,
                });
            }
            if r.is_empty() {
                return Err(self.eof_err());
            }
            let aname = self.take_name()?;
            self.skip_ws();
            if !self.rest().starts_with('=') {
                // portalint: allow(hot-path-alloc) — parse-error branch; never runs on well-formed input
                return Err(self.err(format!("attribute {aname:?} missing '='")));
            }
            self.advance(1);
            self.skip_ws();
            let value = self.take_quoted()?;
            if attrs.iter().any(|(n, _)| n.as_ref() == aname) {
                // portalint: allow(hot-path-alloc) — parse-error branch; never runs on well-formed input
                return Err(self.err(format!("duplicate attribute {aname:?}")));
            }
            attrs.push((Cow::Borrowed(aname), value));
        }
    }

    /// Drain all events into a vector (convenience for tests and the DOM).
    pub fn collect_events(mut self) -> Result<Vec<Event<'a>>> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_event()? {
            out.push(ev);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event<'_>> {
        Tokenizer::new(src).collect_events().unwrap()
    }

    #[test]
    fn simple_element() {
        let ev = events("<a>hi</a>");
        assert_eq!(
            ev,
            vec![
                Event::StartTag {
                    name: "a".into(),
                    attrs: vec![],
                    self_closing: false
                },
                Event::Text("hi".into()),
                Event::EndTag { name: "a".into() },
            ]
        );
    }

    #[test]
    fn self_closing_with_attrs() {
        let ev = events(r#"<job name="g98" cpus='4'/>"#);
        assert_eq!(
            ev,
            vec![Event::StartTag {
                name: "job".into(),
                attrs: vec![("name".into(), "g98".into()), ("cpus".into(), "4".into())],
                self_closing: true
            }]
        );
    }

    #[test]
    fn entity_free_events_borrow() {
        let ev = events(r#"<a k="v">plain text</a>"#);
        match &ev[0] {
            Event::StartTag { name, attrs, .. } => {
                assert!(matches!(name, Cow::Borrowed(_)));
                assert!(matches!(&attrs[0].1, Cow::Borrowed(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&ev[1], Event::Text(Cow::Borrowed(_))));
    }

    #[test]
    fn entity_resolution_allocates_only_then() {
        let ev = events(r#"<a k="&lt;v">x &amp; y</a>"#);
        match &ev[0] {
            Event::StartTag { attrs, .. } => {
                assert!(matches!(&attrs[0].1, Cow::Owned(_)));
                assert_eq!(attrs[0].1, "<v");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&ev[1], Event::Text(Cow::Owned(_))));
    }

    #[test]
    fn into_owned_detaches() {
        let owned: Vec<Event<'static>> = {
            let src = String::from("<a k=\"v\">hi</a>");
            events(&src).into_iter().map(Event::into_owned).collect()
        };
        assert_eq!(owned[1], Event::Text("hi".into()));
    }

    #[test]
    fn declaration_and_comment_and_pi() {
        let ev = events("<?xml version=\"1.0\"?><!-- c --><?php echo ?><a/>");
        assert!(matches!(ev[0], Event::Decl(_)));
        assert_eq!(ev[1], Event::Comment(" c ".into()));
        assert!(matches!(&ev[2], Event::Pi { target, .. } if target.as_ref() == "php"));
    }

    #[test]
    fn cdata_not_entity_processed() {
        let ev = events("<a><![CDATA[x < y & z]]></a>");
        assert_eq!(ev[1], Event::CData("x < y & z".into()));
    }

    #[test]
    fn entities_resolved_in_text_and_attrs() {
        let ev = events(r#"<a k="&lt;v&gt;">&amp;</a>"#);
        match &ev[0] {
            Event::StartTag { attrs, .. } => assert_eq!(attrs[0].1, "<v>"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ev[1], Event::Text("&".into()));
    }

    #[test]
    fn doctype_skipped() {
        let ev = events("<!DOCTYPE html [ <!ENTITY x \"y\"> ]><a/>");
        assert!(matches!(ev[0], Event::Doctype(_)));
        assert!(matches!(ev[1], Event::StartTag { .. }));
    }

    #[test]
    fn error_positions_track_lines() {
        let mut t = Tokenizer::new("<a>\n  <b<>\n</a>");
        t.next_event().unwrap(); // <a>
        t.next_event().unwrap(); // text
        let err = t.next_event().unwrap_err();
        match err {
            XmlError::Syntax { pos, .. } => {
                assert_eq!(pos.line, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lazy_pos_matches_eager_walk() {
        let src = "line one\nline <two>\n\nand three";
        let t = Tokenizer::new(src);
        // Reference: walk every byte the way the old tokenizer did.
        let mut line = 1u32;
        let mut col = 1u32;
        for (i, b) in src.bytes().enumerate() {
            assert_eq!(t.pos_at(i), Pos { line, col }, "offset {i}");
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        assert_eq!(t.pos_at(src.len()), Pos { line, col });
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut t = Tokenizer::new(r#"<a k="1" k="2"/>"#);
        assert!(matches!(t.next_event(), Err(XmlError::Syntax { .. })));
    }

    #[test]
    fn unterminated_tag_is_eof() {
        let mut t = Tokenizer::new("<a ");
        assert!(matches!(
            t.next_event(),
            Err(XmlError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bad_entity_reported() {
        let mut t = Tokenizer::new("<a>&bogus;</a>");
        t.next_event().unwrap();
        assert!(matches!(t.next_event(), Err(XmlError::BadEntity { .. })));
    }

    #[test]
    fn namespaced_names_allowed() {
        let ev = events(r#"<soap:Envelope xmlns:soap="urn:x"/>"#);
        match &ev[0] {
            Event::StartTag { name, attrs, .. } => {
                assert_eq!(name, "soap:Envelope");
                assert_eq!(attrs[0].0, "xmlns:soap");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
