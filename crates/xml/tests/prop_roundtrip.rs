//! Property tests for the XML substrate: serialization/parsing round trips
//! and escaping invariants, over randomly generated documents.

use portalws_xml::escape::{escape_attr, escape_text, unescape};
use portalws_xml::{Element, Node};
use proptest::prelude::*;

/// Arbitrary element name: ascii letter followed by name chars.
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_.-]{0,11}"
}

/// Arbitrary text including characters that require escaping.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,40}").unwrap()
}

/// Strategy for an element tree of bounded depth/width.
fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (name_strategy(), text_strategy()).prop_map(|(n, t)| {
        let mut el = Element::new(n);
        let trimmed = t.trim();
        if !trimmed.is_empty() {
            // Whitespace-only and leading/trailing-whitespace text is
            // normalized by the parser, so generate pre-trimmed text.
            el.push_node(Node::Text(trimmed.to_owned()));
        }
        el
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut el = Element::new(name);
                for (k, v) in attrs {
                    el.set_attr(k, v);
                }
                for c in children {
                    el.push_child(c);
                }
                el
            })
    })
}

proptest! {
    #[test]
    fn compact_round_trip(el in element_strategy()) {
        let xml = el.to_xml();
        let parsed = Element::parse(&xml).expect("serialized XML must reparse");
        prop_assert_eq!(parsed, el);
    }

    #[test]
    fn pretty_round_trip(el in element_strategy()) {
        let xml = el.to_pretty();
        let parsed = Element::parse(&xml).expect("pretty XML must reparse");
        prop_assert_eq!(parsed, el);
    }

    #[test]
    fn document_round_trip(el in element_strategy()) {
        let xml = el.to_document();
        let parsed = Element::parse(&xml).expect("document must reparse");
        prop_assert_eq!(parsed, el);
    }

    #[test]
    fn escape_unescape_text_identity(s in "\\PC{0,200}") {
        let escaped = escape_text(&s);
        prop_assert_eq!(unescape(&escaped).unwrap(), s);
    }

    #[test]
    fn escape_unescape_attr_identity(s in "\\PC{0,200}") {
        let escaped = escape_attr(&s);
        prop_assert_eq!(unescape(&escaped).unwrap(), s);
    }

    #[test]
    fn escaped_attr_has_no_specials(s in "\\PC{0,200}") {
        let e = escape_attr(&s);
        prop_assert!(!e.contains('<'));
        prop_assert!(!e.contains('"'));
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,300}") {
        // Arbitrary input must produce Ok or Err, never a panic.
        let _ = Element::parse(&s);
    }

    #[test]
    fn subtree_size_consistent(el in element_strategy()) {
        let n = el.subtree_size();
        let children_sum: usize = el.children().map(|c| c.subtree_size()).sum();
        prop_assert_eq!(n, 1 + children_sum);
    }
}
