//! Differential test: the borrowed zero-copy tokenizer must be
//! byte-for-byte equivalent to the owned event stream it replaced.
//!
//! The `reference` module below is the pre-zero-copy tokenizer (owned
//! `String` events, eager line/col tracking) kept verbatim as an oracle.
//! Both tokenizers run over arbitrary generated documents — well-formed
//! trees and adversarial tag soup — and must agree on every event *and*
//! every error, including the error's line/col position (the lazy
//! position computation must reproduce the eager walk exactly). Delete
//! this file when the owned path's behavior is no longer the contract.

use portalws_xml::event::{Event, Tokenizer};
use portalws_xml::XmlError;
use proptest::prelude::*;

/// The old owned tokenizer, preserved as the behavioral oracle.
mod reference {
    use portalws_xml::escape::resolve_entity;
    use portalws_xml::{Pos, XmlError};

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Event {
        Decl(String),
        StartTag {
            name: String,
            attrs: Vec<(String, String)>,
            self_closing: bool,
        },
        EndTag {
            name: String,
        },
        Text(String),
        CData(String),
        Comment(String),
        Pi {
            target: String,
            data: String,
        },
        Doctype(String),
    }

    type Result<T> = std::result::Result<T, XmlError>;

    fn unescape(s: &str) -> Option<String> {
        if !s.contains('&') {
            return Some(s.to_owned());
        }
        let mut out = String::with_capacity(s.len());
        let mut rest = s;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            let after = &rest[amp + 1..];
            let semi = after.find(';')?;
            out.push(resolve_entity(&after[..semi])?);
            rest = &after[semi + 1..];
        }
        out.push_str(rest);
        Some(out)
    }

    pub struct Tokenizer<'a> {
        src: &'a str,
        off: usize,
        line: u32,
        col: u32,
    }

    impl<'a> Tokenizer<'a> {
        pub fn new(src: &'a str) -> Self {
            Tokenizer {
                src,
                off: 0,
                line: 1,
                col: 1,
            }
        }

        pub fn pos(&self) -> Pos {
            Pos {
                line: self.line,
                col: self.col,
            }
        }

        fn rest(&self) -> &'a str {
            &self.src[self.off..]
        }

        fn eof(&self) -> bool {
            self.off >= self.src.len()
        }

        fn advance(&mut self, n: usize) {
            let chunk = &self.src[self.off..self.off + n];
            for b in chunk.bytes() {
                if b == b'\n' {
                    self.line += 1;
                    self.col = 1;
                } else {
                    self.col += 1;
                }
            }
            self.off += n;
        }

        fn err(&self, msg: impl Into<String>) -> XmlError {
            XmlError::Syntax {
                pos: self.pos(),
                msg: msg.into(),
            }
        }

        fn eof_err(&self) -> XmlError {
            XmlError::UnexpectedEof { pos: self.pos() }
        }

        fn take_until(&mut self, needle: &str) -> Result<&'a str> {
            match self.rest().find(needle) {
                Some(i) => {
                    let out = &self.rest()[..i];
                    self.advance(i + needle.len());
                    Ok(out)
                }
                None => Err(self.eof_err()),
            }
        }

        fn skip_ws(&mut self) {
            let n = self
                .rest()
                .bytes()
                .take_while(|b| b.is_ascii_whitespace())
                .count();
            self.advance(n);
        }

        fn is_name_start(c: char) -> bool {
            c.is_alphabetic() || c == '_' || c == ':'
        }

        fn is_name_char(c: char) -> bool {
            c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.')
        }

        fn take_name(&mut self) -> Result<String> {
            let rest = self.rest();
            let mut chars = rest.chars();
            match chars.next() {
                Some(c) if Self::is_name_start(c) => {}
                Some(c) => return Err(self.err(format!("expected name, found {c:?}"))),
                None => return Err(self.eof_err()),
            }
            let n: usize = rest
                .chars()
                .take_while(|&c| Self::is_name_char(c))
                .map(char::len_utf8)
                .sum();
            let name = &rest[..n];
            self.advance(n);
            Ok(name.to_owned())
        }

        fn take_quoted(&mut self) -> Result<String> {
            let quote = match self.rest().chars().next() {
                Some(q @ ('"' | '\'')) => q,
                Some(c) => return Err(self.err(format!("expected quoted value, found {c:?}"))),
                None => return Err(self.eof_err()),
            };
            self.advance(1);
            let pos = self.pos();
            let raw = self.take_until(&quote.to_string())?;
            unescape(raw).ok_or(XmlError::BadEntity {
                pos,
                entity: raw.to_owned(),
            })
        }

        pub fn next_event(&mut self) -> Result<Option<Event>> {
            if self.eof() {
                return Ok(None);
            }
            if !self.rest().starts_with('<') {
                return self.text_event().map(Some);
            }
            let r = self.rest();
            if r.starts_with("<!--") {
                self.advance(4);
                let body = self.take_until("-->")?;
                return Ok(Some(Event::Comment(body.to_owned())));
            }
            if r.starts_with("<![CDATA[") {
                self.advance(9);
                let body = self.take_until("]]>")?;
                return Ok(Some(Event::CData(body.to_owned())));
            }
            if r.starts_with("<!DOCTYPE") || r.starts_with("<!doctype") {
                return self.doctype_event().map(Some);
            }
            if r.starts_with("<?") {
                return self.pi_event().map(Some);
            }
            if r.starts_with("</") {
                self.advance(2);
                let name = self.take_name()?;
                self.skip_ws();
                if !self.rest().starts_with('>') {
                    return Err(self.err("expected '>' after close tag name"));
                }
                self.advance(1);
                return Ok(Some(Event::EndTag { name }));
            }
            self.start_tag_event().map(Some)
        }

        fn text_event(&mut self) -> Result<Event> {
            let pos = self.pos();
            let raw = match self.rest().find('<') {
                Some(i) => {
                    let t = &self.rest()[..i];
                    self.advance(i);
                    t
                }
                None => {
                    let t = self.rest();
                    self.advance(t.len());
                    t
                }
            };
            let text = unescape(raw).ok_or(XmlError::BadEntity {
                pos,
                entity: raw.to_owned(),
            })?;
            Ok(Event::Text(text))
        }

        fn doctype_event(&mut self) -> Result<Event> {
            self.advance("<!DOCTYPE".len());
            let start = self.off;
            let mut depth = 0usize;
            loop {
                let Some(c) = self.rest().chars().next() else {
                    return Err(self.eof_err());
                };
                match c {
                    '[' => depth += 1,
                    ']' => depth = depth.saturating_sub(1),
                    '>' if depth == 0 => {
                        let body = self.src[start..self.off].trim().to_owned();
                        self.advance(1);
                        return Ok(Event::Doctype(body));
                    }
                    _ => {}
                }
                self.advance(c.len_utf8());
            }
        }

        fn pi_event(&mut self) -> Result<Event> {
            self.advance(2);
            let target = self.take_name()?;
            self.skip_ws();
            let data = self.take_until("?>")?.trim_end().to_owned();
            if target.eq_ignore_ascii_case("xml") {
                Ok(Event::Decl(data))
            } else {
                Ok(Event::Pi { target, data })
            }
        }

        fn start_tag_event(&mut self) -> Result<Event> {
            self.advance(1);
            let name = self.take_name()?;
            let mut attrs = Vec::new();
            loop {
                self.skip_ws();
                let r = self.rest();
                if r.starts_with("/>") {
                    self.advance(2);
                    return Ok(Event::StartTag {
                        name,
                        attrs,
                        self_closing: true,
                    });
                }
                if r.starts_with('>') {
                    self.advance(1);
                    return Ok(Event::StartTag {
                        name,
                        attrs,
                        self_closing: false,
                    });
                }
                if r.is_empty() {
                    return Err(self.eof_err());
                }
                let aname = self.take_name()?;
                self.skip_ws();
                if !self.rest().starts_with('=') {
                    return Err(self.err(format!("attribute {aname:?} missing '='")));
                }
                self.advance(1);
                self.skip_ws();
                let value = self.take_quoted()?;
                if attrs.iter().any(|(n, _)| *n == aname) {
                    return Err(self.err(format!("duplicate attribute {aname:?}")));
                }
                attrs.push((aname, value));
            }
        }

        pub fn collect_events(mut self) -> Result<Vec<Event>> {
            let mut out = Vec::new();
            while let Some(ev) = self.next_event()? {
                out.push(ev);
            }
            Ok(out)
        }
    }
}

/// Project a borrowed event onto the reference's owned shape.
fn to_reference(ev: Event<'_>) -> reference::Event {
    match ev {
        Event::Decl(d) => reference::Event::Decl(d.into_owned()),
        Event::StartTag {
            name,
            attrs,
            self_closing,
        } => reference::Event::StartTag {
            name: name.into_owned(),
            attrs: attrs
                .into_iter()
                .map(|(k, v)| (k.into_owned(), v.into_owned()))
                .collect(),
            self_closing,
        },
        Event::EndTag { name } => reference::Event::EndTag {
            name: name.into_owned(),
        },
        Event::Text(t) => reference::Event::Text(t.into_owned()),
        Event::CData(t) => reference::Event::CData(t.into_owned()),
        Event::Comment(c) => reference::Event::Comment(c.into_owned()),
        Event::Pi { target, data } => reference::Event::Pi {
            target: target.into_owned(),
            data: data.into_owned(),
        },
        Event::Doctype(d) => reference::Event::Doctype(d.into_owned()),
    }
}

fn assert_equivalent(src: &str) -> Result<(), TestCaseError> {
    let new: Result<Vec<reference::Event>, XmlError> = Tokenizer::new(src)
        .collect_events()
        .map(|evs| evs.into_iter().map(to_reference).collect());
    let old = reference::Tokenizer::new(src).collect_events();
    prop_assert_eq!(new, old, "divergence on {:?}", src);
    Ok(())
}

/// Fragments that exercise every tokenizer branch, including broken ones.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z][a-zA-Z0-9:_.-]{0,8}",
        Just("<".to_owned()),
        Just(">".to_owned()),
        Just("/>".to_owned()),
        Just("</".to_owned()),
        Just("=\"v\"".to_owned()),
        Just("='v'".to_owned()),
        Just("=\"unterminated".to_owned()),
        Just("&amp;".to_owned()),
        Just("&bogus;".to_owned()),
        Just("&unterminated".to_owned()),
        Just("&#x41;".to_owned()),
        Just("<!-- c -->".to_owned()),
        Just("<!--".to_owned()),
        Just("<![CDATA[x < y]]>".to_owned()),
        Just("<![CDATA[".to_owned()),
        Just("<!DOCTYPE a [ <!ENTITY x \"y\"> ]>".to_owned()),
        Just("<?xml version=\"1.0\"?>".to_owned()),
        Just("<?pi data ?>".to_owned()),
        Just(" \n\t".to_owned()),
        Just("héllo 世界".to_owned()),
        "[ -~]{0,12}",
    ]
}

proptest! {
    #[test]
    fn well_formed_documents_agree(el in well_formed::element_strategy()) {
        let compact = el.to_xml();
        assert_equivalent(&compact)?;
        let pretty = el.to_pretty();
        assert_equivalent(&pretty)?;
    }

    #[test]
    fn arbitrary_soup_agrees(parts in proptest::collection::vec(fragment(), 0..12)) {
        let src = parts.concat();
        assert_equivalent(&src)?;
    }

    #[test]
    fn arbitrary_strings_agree(s in "\\PC{0,200}") {
        assert_equivalent(&s)?;
    }
}

/// Well-formed tree generator (mirrors prop_roundtrip's strategy).
mod well_formed {
    use portalws_xml::{Element, Node};
    use proptest::prelude::*;

    fn name_strategy() -> impl Strategy<Value = String> {
        "[a-zA-Z][a-zA-Z0-9_.-]{0,11}"
    }

    fn text_strategy() -> impl Strategy<Value = String> {
        proptest::string::string_regex("[ -~]{0,40}").unwrap()
    }

    pub fn element_strategy() -> impl Strategy<Value = Element> {
        let leaf = (name_strategy(), text_strategy()).prop_map(|(n, t)| {
            let mut el = Element::new(n);
            let trimmed = t.trim();
            if !trimmed.is_empty() {
                el.push_node(Node::Text(trimmed.to_owned()));
            }
            el
        });
        leaf.prop_recursive(3, 24, 4, |inner| {
            (
                name_strategy(),
                proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
                proptest::collection::vec(inner, 0..4),
            )
                .prop_map(|(name, attrs, children)| {
                    let mut el = Element::new(name);
                    for (k, v) in attrs {
                        el.set_attr(k, v);
                    }
                    for c in children {
                        el.push_child(c);
                    }
                    el
                })
        })
    }
}
