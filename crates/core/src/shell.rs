//! The portal shell: Figure 4's "distributed operating system" surface.
//!
//! "One may envision a scripting environment for example that provides
//! the syntax for linking the various core services (redirecting output
//! through pipes, for example) and the logic for executing services."
//!
//! Commands (each encapsulating one or more core-service SOAP calls):
//!
//! ```text
//! login <principal> <secret>      logout          whoami
//! hosts                           ls <path>       cat <path>
//! put <path>                      rm <path>       mkdir <path>
//! scriptgen <site> <sched> <queue> <name> <cpus> <wall> -- <command…>
//! jobrun <host> <sched>           jobsub <host> <sched>
//! jobstat <id>    jobout <id>     jobcancel <id>
//! find <keyword>                  inspect <host>
//! echo <text…>
//! ```
//!
//! Pipelines compose with `|` (the previous command's output becomes the
//! next command's standard input — `put` and the job commands consume
//! it), and `;` sequences commands.

use std::sync::Arc;

use portalws_soap::SoapValue;
use portalws_wsdl::DynamicClient;

use crate::transfer::TransferClient;
use crate::ui::UiServer;
use crate::{PortalError, Result};

/// Above this size, `put`/`get`/`cp` leave the 2002 single-envelope
/// string path and stream through the chunked transfer protocol.
pub const STREAM_THRESHOLD_BYTES: usize = 64 * 1024;

/// The shell: parses command lines and drives the UI server's proxies.
pub struct PortalShell {
    ui: Arc<UiServer>,
}

impl PortalShell {
    /// A shell over a UI server.
    pub fn new(ui: Arc<UiServer>) -> PortalShell {
        PortalShell { ui }
    }

    /// Execute a command line: `;`-separated pipelines of `|`-joined
    /// commands. Returns the final output text.
    pub fn exec(&self, line: &str) -> Result<String> {
        let mut last = String::new();
        for pipeline in split_top(line, ';') {
            let pipeline = pipeline.trim();
            if pipeline.is_empty() {
                continue;
            }
            let mut stdin: Option<String> = None;
            for stage in split_top(pipeline, '|') {
                let stage = stage.trim();
                let out = self.run_command(stage, stdin.take())?;
                stdin = Some(out);
            }
            last = stdin.unwrap_or_default();
        }
        Ok(last)
    }

    fn run_command(&self, stage: &str, stdin: Option<String>) -> Result<String> {
        let (words, tail) = split_command(stage);
        let cmd = words
            .first()
            .map(String::as_str)
            .ok_or_else(|| PortalError::Shell("empty command".into()))?;
        let args = &words[1..];
        let need = |i: usize, what: &str| -> Result<&str> {
            args.get(i)
                .map(String::as_str)
                .ok_or_else(|| PortalError::Shell(format!("{cmd}: missing {what}")))
        };
        let need_stdin = || -> Result<String> {
            stdin
                .clone()
                .ok_or_else(|| PortalError::Shell(format!("{cmd}: needs piped input")))
        };
        match cmd {
            "echo" => {
                let mut text = args.join(" ");
                if let Some(t) = &tail {
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(t);
                }
                Ok(text)
            }
            "whoami" => Ok(self
                .ui
                .principal()
                .unwrap_or_else(|| "not logged in".into())),
            "login" => {
                self.ui.login(need(0, "principal")?, need(1, "secret")?)?;
                Ok(format!("logged in as {}", need(0, "principal")?))
            }
            "logout" => {
                self.ui.logout();
                Ok("logged out".into())
            }
            "inspect" => {
                let doc = self.ui.inspect(need(0, "host")?)?;
                let mut lines: Vec<String> = doc
                    .services
                    .iter()
                    .map(|s| format!("{}\t{}", s.name, s.endpoint))
                    .collect();
                for link in &doc.links {
                    lines.push(format!("-> {link}"));
                }
                Ok(lines.join("\n"))
            }
            "find" => {
                let hits = self.ui.find_services(need(0, "keyword")?)?;
                Ok(hits
                    .iter()
                    .map(|h| format!("{}\t{}\t{}", h.business, h.name, h.access_point))
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            "hosts" => {
                let out = self.jobsub()?.call("listHosts", &[]).map_err(svc_err)?;
                let mut lines = Vec::new();
                for h in out.as_array().unwrap_or_default() {
                    let name = h.field("name").and_then(|v| v.as_str()).unwrap_or("?");
                    let cpus = h.field("cpus").and_then(|v| v.as_i64()).unwrap_or(0);
                    let scheds: Vec<&str> = h
                        .field("schedulers")
                        .and_then(|v| v.as_array())
                        .map(|a| a.iter().filter_map(SoapValue::as_str).collect())
                        .unwrap_or_default();
                    lines.push(format!("{name}\t{cpus} cpus\t{}", scheds.join(",")));
                }
                Ok(lines.join("\n"))
            }
            "ls" => {
                let out = self
                    .data()?
                    .call("ls", &[SoapValue::str(need(0, "path")?)])
                    .map_err(svc_err)?;
                let mut lines = Vec::new();
                for e in out.as_array().unwrap_or_default() {
                    let name = e.field("name").and_then(|v| v.as_str()).unwrap_or("?");
                    let is_col = e
                        .field("isCollection")
                        .and_then(|v| v.as_bool())
                        .unwrap_or(false);
                    let size = e.field("size").and_then(|v| v.as_i64()).unwrap_or(0);
                    lines.push(if is_col {
                        format!("{name}/")
                    } else {
                        format!("{name}\t{size}")
                    });
                }
                Ok(lines.join("\n"))
            }
            "cat" => {
                let out = self
                    .data()?
                    .call("cat", &[SoapValue::str(need(0, "path")?)])
                    .map_err(svc_err)?;
                Ok(out.as_str().unwrap_or("").to_owned())
            }
            "put" => {
                let content = need_stdin()?;
                let path = need(0, "path")?;
                if content.len() > STREAM_THRESHOLD_BYTES {
                    // Large payloads leave the single-envelope regime and
                    // stream as bounded chunks, transparently.
                    let client = self.data()?;
                    let report = TransferClient::new(&client)
                        .put(path, content.as_bytes())
                        .map_err(svc_err)?;
                    return Ok(format!("{} bytes written", report.bytes));
                }
                let out = self
                    .data()?
                    .call("put", &[SoapValue::str(path), SoapValue::str(content)])
                    .map_err(svc_err)?;
                Ok(format!("{} bytes written", out.as_i64().unwrap_or(0)))
            }
            "get" => {
                // Like `cat`, but chunked end to end: works for any size
                // without materializing a single oversized envelope.
                let path = need(0, "path")?;
                let client = self.data()?;
                let bytes = self.fetch(&client, path)?;
                String::from_utf8(bytes).map_err(|_| {
                    PortalError::Service(format!(
                        "get {path}: binary content; pipe through cp or use getB64"
                    ))
                })
            }
            "cp" => {
                let src = need(0, "source path")?;
                let dst = need(1, "destination path")?;
                let client = self.data()?;
                let bytes = self.fetch(&client, src)?;
                let n = bytes.len();
                if n > STREAM_THRESHOLD_BYTES {
                    TransferClient::new(&client)
                        .put(dst, &bytes)
                        .map_err(svc_err)?;
                } else {
                    client
                        .call("putB64", &[SoapValue::str(dst), SoapValue::Base64(bytes)])
                        .map_err(svc_err)?;
                }
                Ok(format!("{n} bytes copied"))
            }
            "rm" => {
                self.data()?
                    .call("rm", &[SoapValue::str(need(0, "path")?)])
                    .map_err(svc_err)?;
                Ok(String::new())
            }
            "mkdir" => {
                self.data()?
                    .call("mkdir", &[SoapValue::str(need(0, "path")?)])
                    .map_err(svc_err)?;
                Ok(String::new())
            }
            "scriptgen" => {
                // scriptgen <site> <sched> <queue> <name> <cpus> <wall> -- <cmd…>
                let site = need(0, "site (iu|sdsc)")?;
                let command = tail.clone().ok_or_else(|| {
                    PortalError::Shell("scriptgen: missing '-- <command>'".into())
                })?;
                let client = self.scriptgen(site)?;
                let out = client
                    .call(
                        "generateScript",
                        &[
                            SoapValue::str(need(1, "scheduler")?),
                            SoapValue::str(need(2, "queue")?),
                            SoapValue::str(need(3, "job name")?),
                            SoapValue::str(command),
                            SoapValue::Int(parse_int(need(4, "cpus")?)?),
                            SoapValue::Int(parse_int(need(5, "wall minutes")?)?),
                        ],
                    )
                    .map_err(|e| PortalError::Service(e.to_string()))?;
                Ok(out.as_str().unwrap_or("").to_owned())
            }
            "jobrun" => {
                let script = need_stdin()?;
                let out = self
                    .jobsub()?
                    .call(
                        "run",
                        &[
                            SoapValue::str(need(0, "host")?),
                            SoapValue::str(need(1, "scheduler")?),
                            SoapValue::str(script),
                        ],
                    )
                    .map_err(svc_err)?;
                Ok(out.as_str().unwrap_or("").to_owned())
            }
            "jobsub" => {
                let script = need_stdin()?;
                let out = self
                    .jobsub()?
                    .call(
                        "submit",
                        &[
                            SoapValue::str(need(0, "host")?),
                            SoapValue::str(need(1, "scheduler")?),
                            SoapValue::str(script),
                        ],
                    )
                    .map_err(svc_err)?;
                Ok(format!("job {}", out.as_i64().unwrap_or(-1)))
            }
            "jobstat" => {
                let id = parse_int(need(0, "job id")?)?;
                let out = self
                    .jobsub()?
                    .call("status", &[SoapValue::Int(id)])
                    .map_err(svc_err)?;
                let state = out.field("state").and_then(|v| v.as_str()).unwrap_or("?");
                Ok(state.to_owned())
            }
            "jobout" => {
                let id = parse_int(need(0, "job id")?)?;
                let out = self
                    .jobsub()?
                    .call("output", &[SoapValue::Int(id)])
                    .map_err(svc_err)?;
                Ok(out.as_str().unwrap_or("").to_owned())
            }
            "jobcancel" => {
                let id = parse_int(need(0, "job id")?)?;
                self.jobsub()?
                    .call("cancel", &[SoapValue::Int(id)])
                    .map_err(svc_err)?;
                Ok(format!("job {id} cancelled"))
            }
            other => Err(PortalError::Shell(format!("unknown command {other:?}"))),
        }
    }

    fn jobsub(&self) -> Result<portalws_soap::SoapClient> {
        self.ui.proxy("grid.sdsc.edu", "JobSubmission")
    }

    fn data(&self) -> Result<portalws_soap::SoapClient> {
        self.ui.proxy("grid.sdsc.edu", "DataManagement")
    }

    /// Fetch a file's bytes through the chunked transfer protocol.
    /// `open_get` doubles as the stat, so small files cost one chunk
    /// round-trip and large files stream with bounded memory — no
    /// separate size probe is needed on the read side.
    fn fetch(&self, client: &portalws_soap::SoapClient, path: &str) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        TransferClient::new(client)
            .get_with(path, |chunk| buf.extend_from_slice(chunk))
            .map_err(svc_err)?;
        Ok(buf)
    }

    fn scriptgen(&self, site: &str) -> Result<DynamicClient> {
        let host = match site {
            "iu" => "gateway.iu.edu",
            "sdsc" => "hotpage.sdsc.edu",
            other => {
                return Err(PortalError::Shell(format!(
                    "scriptgen: unknown site {other:?} (use iu or sdsc)"
                )))
            }
        };
        self.ui
            .bind_endpoint(&format!("http://{host}/soap/BatchScriptGen"))
    }
}

fn svc_err(e: portalws_soap::SoapError) -> PortalError {
    PortalError::Service(e.to_string())
}

fn parse_int(s: &str) -> Result<i64> {
    s.parse()
        .map_err(|_| PortalError::Shell(format!("expected a number, got {s:?}")))
}

/// Split on a separator at top level (no quoting in this little shell,
/// but `--` tails are protected by splitting the command first).
fn split_top(s: &str, sep: char) -> Vec<&str> {
    s.split(sep).collect()
}

/// Split a stage into words plus an optional `--`-introduced tail kept
/// verbatim.
fn split_command(stage: &str) -> (Vec<String>, Option<String>) {
    match stage.split_once(" -- ") {
        Some((head, tail)) => (
            head.split_whitespace().map(str::to_owned).collect(),
            Some(tail.trim().to_owned()),
        ),
        None => {
            let trimmed = stage.strip_suffix(" --").unwrap_or(stage);
            (
                trimmed.split_whitespace().map(str::to_owned).collect(),
                None,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{PortalDeployment, SecurityMode};

    fn shell(mode: SecurityMode) -> PortalShell {
        PortalShell::new(Arc::new(UiServer::new(PortalDeployment::in_memory(mode))))
    }

    #[test]
    fn echo_and_sequencing() {
        let sh = shell(SecurityMode::Open);
        assert_eq!(sh.exec("echo one; echo two three").unwrap(), "two three");
    }

    #[test]
    fn hosts_lists_grid() {
        let sh = shell(SecurityMode::Open);
        let out = sh.exec("hosts").unwrap();
        assert!(out.contains("tg-login"), "{out}");
        assert!(out.contains("modi4"));
    }

    #[test]
    fn srb_cycle_through_shell() {
        let sh = shell(SecurityMode::Open);
        sh.exec("mkdir /public/demo").unwrap();
        let out = sh
            .exec("echo hello srb | put /public/demo/hello.txt")
            .unwrap();
        assert_eq!(out, "9 bytes written");
        assert_eq!(sh.exec("cat /public/demo/hello.txt").unwrap(), "hello srb");
        let ls = sh.exec("ls /public/demo").unwrap();
        assert!(ls.contains("hello.txt\t9"), "{ls}");
        sh.exec("rm /public/demo/hello.txt").unwrap();
        assert_eq!(sh.exec("ls /public/demo").unwrap(), "");
    }

    #[test]
    fn figure4_pipeline_scriptgen_to_jobrun() {
        let sh = shell(SecurityMode::Open);
        let out = sh
            .exec("scriptgen iu PBS batch demo 2 10 -- hostname | jobrun tg-login PBS")
            .unwrap();
        assert_eq!(out, "tg-login\n");
    }

    #[test]
    fn async_job_cycle() {
        let sh = shell(SecurityMode::Open);
        let out = sh
            .exec("scriptgen sdsc LSF normal demo 2 10 -- hostname | jobsub tg-login LSF")
            .unwrap();
        let id: i64 = out.strip_prefix("job ").unwrap().parse().unwrap();
        assert_eq!(sh.exec(&format!("jobstat {id}")).unwrap(), "QUEUED");
        // Drive the grid forward.
        let deployment = Arc::clone(sh.ui.deployment());
        deployment.grid.tick(0);
        deployment.grid.tick(2000);
        assert_eq!(sh.exec(&format!("jobstat {id}")).unwrap(), "DONE");
        assert_eq!(sh.exec(&format!("jobout {id}")).unwrap(), "tg-login\n");
    }

    #[test]
    fn cancel_through_shell() {
        let sh = shell(SecurityMode::Open);
        let out = sh
            .exec("scriptgen iu GRD normal long 2 60 -- sleep 1000 | jobsub modi4 GRD")
            .unwrap();
        let id: i64 = out.strip_prefix("job ").unwrap().parse().unwrap();
        assert_eq!(
            sh.exec(&format!("jobcancel {id}")).unwrap(),
            format!("job {id} cancelled")
        );
        assert_eq!(sh.exec(&format!("jobstat {id}")).unwrap(), "CANCELLED");
    }

    #[test]
    fn secured_shell_requires_login() {
        let sh = shell(SecurityMode::Central);
        assert!(sh.exec("hosts").is_err());
        sh.exec("login alice@GCE.ORG alice-pass").unwrap();
        assert_eq!(sh.exec("whoami").unwrap(), "alice@GCE.ORG");
        assert!(sh.exec("hosts").unwrap().contains("tg-login"));
        sh.exec("logout").unwrap();
        assert!(sh.exec("hosts").is_err());
    }

    #[test]
    fn wsil_inspection_through_shell() {
        let sh = shell(SecurityMode::Open);
        let out = sh.exec("inspect hotpage.sdsc.edu").unwrap();
        assert!(
            out.contains("BatchScriptGen\thttp://hotpage.sdsc.edu/soap/BatchScriptGen"),
            "{out}"
        );
        assert!(out.contains("-> http://"));
        assert!(sh.exec("inspect nowhere.example").is_err());
    }

    #[test]
    fn discovery_through_shell() {
        let sh = shell(SecurityMode::Open);
        let out = sh.exec("find BatchScriptGenerator").unwrap();
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("gateway.iu.edu"));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let sh = shell(SecurityMode::Open);
        assert!(sh.exec("frobnicate").is_err());
        assert!(sh.exec("cat").is_err());
        assert!(sh.exec("put /x").is_err()); // no piped input
        assert!(sh.exec("jobstat notanumber").is_err());
        assert!(sh.exec("cat /ghost/file").is_err());
        assert!(sh.exec("scriptgen mars PBS b n 1 1 -- x").is_err());
    }

    #[test]
    fn get_and_cp_round_trip_small_files() {
        let sh = shell(SecurityMode::Open);
        sh.exec("echo tiny payload | put /public/small.txt")
            .unwrap();
        assert_eq!(sh.exec("get /public/small.txt").unwrap(), "tiny payload");
        assert_eq!(
            sh.exec("cp /public/small.txt /public/small-copy.txt")
                .unwrap(),
            "12 bytes copied"
        );
        assert_eq!(
            sh.exec("cat /public/small-copy.txt").unwrap(),
            "tiny payload"
        );
    }

    #[test]
    fn large_put_streams_chunked_and_reads_back_identically() {
        let sh = shell(SecurityMode::Open);
        // Well above STREAM_THRESHOLD_BYTES so `put` takes the chunked
        // path; content is plain text so `get`/`cat` both reproduce it.
        let body = "streaming-line\n".repeat(8 * 1024); // 120 KiB
        assert!(body.len() > STREAM_THRESHOLD_BYTES);
        let out = sh
            .exec(&format!(
                "echo -- {} | put /public/big.txt",
                body.trim_end()
            ))
            .unwrap();
        // `echo --` preserves the tail verbatim (minus trailing newline).
        let expected = body.trim_end();
        assert_eq!(out, format!("{} bytes written", expected.len()));
        assert_eq!(sh.exec("get /public/big.txt").unwrap(), expected);
        let copied = sh.exec("cp /public/big.txt /public/big2.txt").unwrap();
        assert_eq!(copied, format!("{} bytes copied", expected.len()));
        assert_eq!(sh.exec("get /public/big2.txt").unwrap(), expected);
    }

    #[test]
    fn get_of_missing_file_and_cp_to_missing_collection_error_cleanly() {
        let sh = shell(SecurityMode::Open);
        assert!(sh.exec("get /ghost/file").is_err());
        sh.exec("echo x | put /public/x.txt").unwrap();
        assert!(sh.exec("cp /public/x.txt /ghost/collection/x.txt").is_err());
    }

    #[test]
    fn pipes_feed_left_to_right() {
        let sh = shell(SecurityMode::Open);
        let out = sh
            .exec("echo payload | put /public/p.txt; cat /public/p.txt")
            .unwrap();
        assert_eq!(out, "payload");
    }
}
