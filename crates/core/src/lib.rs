//! The integrated portal of Figures 1 and 4.
//!
//! "We believe that the integrated architecture begins to resemble a
//! distributed operating system: user interactions are through a finite
//! list of basic commands that operate in a 'shell' or execution
//! environment. These commands encapsulate 'system' level calls to
//! actually interact with computing resources." (§6)
//!
//! * [`deployment`] — [`PortalDeployment`]: stands up the whole
//!   multi-server topology (registry server, authentication server, grid
//!   SSP, two script-generation SSPs) over in-memory or real TCP
//!   transports, populates the registries, and wires the security guards.
//! * [`ui`] — [`UiServer`]: the Figure 1 client side. Logs users in
//!   through the Authentication Service, then *discovers* services in the
//!   UDDI, *fetches* their WSDL, and *binds* dynamic client proxies with
//!   signed SAML assertions attached to every call.
//! * [`shell`] — [`PortalShell`]: the Figure 4 command environment —
//!   `ls`, `cat`, `put`, `scriptgen`, `jobsub`, … composable with pipes
//!   (`scriptgen … | jobrun tg-login PBS`), each command encapsulating
//!   core-service calls.

pub mod deployment;
pub mod shell;
pub mod transfer;
pub mod ui;

pub use deployment::{ChaosPolicy, PortalDeployment, SecurityMode, ServerArm, TransportMode};
pub use shell::PortalShell;
pub use transfer::{TransferClient, TransferConfig, TransferReport};
pub use ui::UiServer;

use std::fmt;

/// Errors raised by the integrated portal layer.
#[derive(Debug)]
pub enum PortalError {
    /// Discovery failed (service not in the registry).
    Discovery(String),
    /// Bind failed (WSDL fetch/parse, unreachable endpoint).
    Bind(String),
    /// Authentication failure.
    Auth(String),
    /// A downstream service call failed.
    Service(String),
    /// Shell usage error.
    Shell(String),
}

impl fmt::Display for PortalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortalError::Discovery(m) => write!(f, "discovery: {m}"),
            PortalError::Bind(m) => write!(f, "bind: {m}"),
            PortalError::Auth(m) => write!(f, "auth: {m}"),
            PortalError::Service(m) => write!(f, "service: {m}"),
            PortalError::Shell(m) => write!(f, "shell: {m}"),
        }
    }
}

impl std::error::Error for PortalError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PortalError>;
