//! Client side of the chunked streaming transfer protocol (E13).
//!
//! [`TransferClient`] decorates a bound `DataManagement` proxy and moves a
//! file as a *pipeline* of bounded chunk calls over the pooled keep-alive
//! transport: up to `window` chunk requests are in flight concurrently
//! across pooled connections, so the wire stays busy while the client's
//! resident transfer memory stays O(window × chunk) — never O(file), the
//! failure mode of the paper's single-envelope string streaming.
//!
//! The memory bound is enforced by construction, not measured after the
//! fact: a worker may only claim the next chunk while the claimed-but-
//! undelivered span is under `window × chunk_bytes`, and the high-water of
//! that span is reported per transfer (and into the transport's
//! [`portalws_wire::WireStats`]) so E13 can assert it.
//!
//! Resume semantics lean on the server's idempotent protocol: every chunk
//! method is marked idempotent (the pooled transport's retry policy
//! re-sends it after a transport fault), `get_chunk` is a pure ranged
//! read, a duplicate `put_chunk` is acknowledged without re-appending, and
//! a retried `commit`/`abort` of a settled handle succeeds. On top of
//! that, a small bounded per-chunk retry loop rides out fault bursts;
//! transport errors that exhaust it are surfaced through the canonical
//! [`Fault::from_wire`] taxonomy.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use portalws_soap::{Fault, PortalErrorKind, SoapClient, SoapError, SoapValue};

/// Default chunk payload size.
pub const DEFAULT_CHUNK_BYTES: usize = 256 * 1024;

/// Default window of in-flight chunk requests.
pub const DEFAULT_WINDOW: usize = 4;

/// Default bound on attempts per chunk call (on top of the pooled
/// transport's own idempotent retries).
pub const DEFAULT_CHUNK_ATTEMPTS: usize = 8;

/// The six protocol methods; all safe to re-send, so all are marked
/// idempotent on the proxy.
const TRANSFER_METHODS: [&str; 6] = [
    "open_get",
    "get_chunk",
    "open_put",
    "put_chunk",
    "commit",
    "abort",
];

/// Tunables for one transfer client.
#[derive(Debug, Clone, Copy)]
pub struct TransferConfig {
    /// Payload bytes per chunk call.
    pub chunk_bytes: usize,
    /// In-flight chunk requests allowed concurrently.
    pub window: usize,
    /// Attempts per chunk call before the transfer fails.
    pub chunk_attempts: usize,
}

impl Default for TransferConfig {
    fn default() -> TransferConfig {
        TransferConfig {
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            window: DEFAULT_WINDOW,
            chunk_attempts: DEFAULT_CHUNK_ATTEMPTS,
        }
    }
}

/// What one transfer did: the asserted numbers of E13.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransferReport {
    /// File-content bytes moved.
    pub bytes: usize,
    /// Chunk round-trips performed.
    pub chunks: usize,
    /// Peak resident transfer memory on this client (bytes claimed but
    /// not yet delivered/acknowledged). Bounded by window × chunk_bytes.
    pub buffer_high_water: usize,
}

/// Streaming transfer client over a bound `DataManagement` proxy.
pub struct TransferClient<'a> {
    client: &'a SoapClient,
    cfg: TransferConfig,
}

struct GetState {
    /// Next byte offset a worker may claim.
    next_claim: usize,
    /// Bytes delivered to the sink, in order.
    frontier: usize,
    /// Completed chunks waiting for the frontier to reach them.
    done: BTreeMap<usize, Vec<u8>>,
    /// Claimed-but-undelivered bytes (in flight + parked in `done`).
    resident: usize,
    high_water: usize,
    chunks: usize,
    failed: Option<SoapError>,
}

struct PutState {
    next_claim: usize,
    /// Highest append frontier the server has acknowledged.
    acked: usize,
    /// Claimed-but-unacknowledged bytes (chunk copies in flight).
    resident: usize,
    high_water: usize,
    chunks: usize,
    failed: Option<SoapError>,
}

impl<'a> TransferClient<'a> {
    /// Wrap a proxy with default tunables.
    pub fn new(client: &'a SoapClient) -> TransferClient<'a> {
        TransferClient::with_config(client, TransferConfig::default())
    }

    /// Wrap a proxy with explicit tunables. Marks the protocol methods
    /// idempotent on the proxy (additively) so the pooled transport's
    /// retry policy covers every chunk call.
    pub fn with_config(client: &'a SoapClient, cfg: TransferConfig) -> TransferClient<'a> {
        client.add_idempotent_methods(&TRANSFER_METHODS);
        TransferClient { client, cfg }
    }

    /// Is this failure worth retrying on an idempotent method? Transport
    /// errors and garbled replies (`Protocol`/`Xml`) are wire damage;
    /// *untyped* faults are a corrupted request the server could only
    /// answer with a generic parse fault; `Busy`, `AuthFailed`, and
    /// `HostUnavailable` are transient infrastructure answers (capacity
    /// pressure, an auth-verification hop that lost its own connection).
    /// Every other typed fault is a real protocol answer — fail fast.
    fn transient(err: &SoapError) -> bool {
        match err {
            SoapError::Transport(_) | SoapError::Protocol(_) | SoapError::Xml(_) => true,
            SoapError::Fault(f) => matches!(
                f.kind(),
                None | Some(PortalErrorKind::Busy)
                    | Some(PortalErrorKind::AuthFailed)
                    | Some(PortalErrorKind::HostUnavailable)
            ),
        }
    }

    /// One protocol call with a bounded retry loop over transient
    /// failures (every transfer method is idempotent by design). A
    /// transport error that survives the loop is folded through the
    /// canonical wire→fault table so callers always see the portal's
    /// typed taxonomy.
    fn call_retry(&self, method: &str, args: &[SoapValue]) -> Result<SoapValue, SoapError> {
        let attempts = self.cfg.chunk_attempts.max(1);
        let mut attempt = 0;
        loop {
            match self.client.call(method, args) {
                Err(e) if Self::transient(&e) => {
                    attempt += 1;
                    if attempt >= attempts {
                        return Err(match e {
                            SoapError::Transport(w) => SoapError::Fault(Fault::from_wire(&w)),
                            other => other,
                        });
                    }
                    // Deterministic linear backoff; the pooled transport
                    // already jitters its own idempotent retries.
                    std::thread::sleep(Duration::from_millis((attempt as u64).min(8)));
                }
                other => return other,
            }
        }
    }

    /// Download `path` into memory. See [`TransferClient::get_with`].
    pub fn get(&self, path: &str) -> Result<(Vec<u8>, TransferReport), SoapError> {
        let mut out = Vec::new();
        let report = self.get_with(path, |chunk| out.extend_from_slice(chunk))?;
        Ok((out, report))
    }

    /// Stream `path` to `sink` in order, with up to `window` chunk reads
    /// in flight. The sink sees each byte exactly once, in file order.
    pub fn get_with(
        &self,
        path: &str,
        mut sink: impl FnMut(&[u8]),
    ) -> Result<TransferReport, SoapError> {
        let opened = self.call_retry("open_get", &[SoapValue::str(path)])?;
        let handle = opened
            .field("handle")
            .and_then(|v| v.as_str())
            .ok_or_else(|| SoapError::Protocol("open_get reply missing handle".into()))?
            .to_owned();
        let size = opened
            .field("size")
            .and_then(|v| v.as_i64())
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| SoapError::Protocol("open_get reply missing size".into()))?;
        let chunk = self.cfg.chunk_bytes.max(1);
        let window = self.cfg.window.max(1);
        let budget = window.saturating_mul(chunk);

        let state = Mutex::new(GetState {
            next_claim: 0,
            frontier: 0,
            done: BTreeMap::new(),
            resident: 0,
            high_water: 0,
            chunks: 0,
            failed: None,
        });
        let cv = Condvar::new();
        let workers = window.min(size.div_ceil(chunk)).max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Claim the next chunk, or wait until the window has
                    // room. Claims are contiguous, so the lowest claimed
                    // chunk is always the frontier chunk — its completion
                    // re-opens the window and progress is guaranteed.
                    let (off, len) = {
                        let mut st = state.lock().expect("transfer lock");
                        loop {
                            if st.failed.is_some() || st.next_claim >= size {
                                return;
                            }
                            if st.next_claim < st.frontier.saturating_add(budget) {
                                break;
                            }
                            st = cv.wait(st).expect("transfer lock");
                        }
                        let off = st.next_claim;
                        let len = chunk.min(size - off);
                        st.next_claim += len;
                        st.resident += len;
                        st.high_water = st.high_water.max(st.resident);
                        (off, len)
                    };
                    let fetched = self.call_retry(
                        "get_chunk",
                        &[
                            SoapValue::str(handle.clone()),
                            SoapValue::Int(off as i64),
                            SoapValue::Int(len as i64),
                        ],
                    );
                    let mut st = state.lock().expect("transfer lock");
                    match fetched {
                        Ok(v) => match v.as_bytes() {
                            Some(data) if data.len() == len => {
                                st.done.insert(off, data.to_vec());
                                st.chunks += 1;
                            }
                            Some(data) => {
                                st.failed.get_or_insert(SoapError::Protocol(format!(
                                    "get_chunk at {off} returned {} bytes, wanted {len}",
                                    data.len()
                                )));
                            }
                            None => {
                                st.failed.get_or_insert(SoapError::Protocol(
                                    "get_chunk reply was not base64 data".into(),
                                ));
                            }
                        },
                        Err(e) => {
                            st.failed.get_or_insert(e);
                        }
                    }
                    cv.notify_all();
                });
            }

            // This thread is the deliverer: it hands chunks to the sink in
            // file order as they become contiguous with the frontier.
            loop {
                let (off, data) = {
                    let mut st = state.lock().expect("transfer lock");
                    loop {
                        if st.failed.is_some() || st.frontier >= size {
                            return;
                        }
                        let frontier = st.frontier;
                        if let Some(data) = st.done.remove(&frontier) {
                            break (frontier, data);
                        }
                        st = cv.wait(st).expect("transfer lock");
                    }
                };
                sink(&data);
                let mut st = state.lock().expect("transfer lock");
                st.frontier = off + data.len();
                st.resident -= data.len();
                cv.notify_all();
            }
        });

        // Free the handle server-side; best effort (it would idle out).
        let _ = self.client.call("abort", &[SoapValue::str(handle)]);

        let mut st = state.into_inner().expect("transfer lock");
        if let Some(e) = st.failed.take() {
            return Err(e);
        }
        let report = TransferReport {
            bytes: size,
            chunks: st.chunks,
            buffer_high_water: st.high_water,
        };
        self.record(&report);
        Ok(report)
    }

    /// Upload `data` to `path` with up to `window` chunk writes in
    /// flight. The destination only ever flips to the complete content
    /// (server-side staging + atomic commit); on failure the staged
    /// partial is abandoned via `abort`.
    pub fn put(&self, path: &str, data: &[u8]) -> Result<TransferReport, SoapError> {
        let handle = self
            .call_retry("open_put", &[SoapValue::str(path)])?
            .as_str()
            .ok_or_else(|| SoapError::Protocol("open_put reply was not a handle".into()))?
            .to_owned();
        let size = data.len();
        let chunk = self.cfg.chunk_bytes.max(1);
        let window = self.cfg.window.max(1);
        let budget = window.saturating_mul(chunk);

        let state = Mutex::new(PutState {
            next_claim: 0,
            acked: 0,
            resident: 0,
            high_water: 0,
            chunks: 0,
            failed: None,
        });
        let cv = Condvar::new();
        let workers = window.min(size.div_ceil(chunk)).max(1);

        if size > 0 {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let (off, len) = {
                            let mut st = state.lock().expect("transfer lock");
                            loop {
                                if st.failed.is_some() || st.next_claim >= size {
                                    return;
                                }
                                if st.next_claim < st.acked.saturating_add(budget) {
                                    break;
                                }
                                st = cv.wait(st).expect("transfer lock");
                            }
                            let off = st.next_claim;
                            let len = chunk.min(size - off);
                            st.next_claim += len;
                            st.resident += len;
                            st.high_water = st.high_water.max(st.resident);
                            (off, len)
                        };
                        // The owned chunk copy below is the resident
                        // memory the window bounds.
                        let sent = self.call_retry(
                            "put_chunk",
                            &[
                                SoapValue::str(handle.clone()),
                                SoapValue::Int(off as i64),
                                SoapValue::Base64(data[off..off + len].to_vec()),
                            ],
                        );
                        let mut st = state.lock().expect("transfer lock");
                        match sent.map(|v| v.as_i64()) {
                            Ok(Some(acked)) => {
                                let acked = usize::try_from(acked).unwrap_or(0);
                                st.acked = st.acked.max(acked);
                                st.resident -= len;
                                st.chunks += 1;
                            }
                            Ok(None) => {
                                st.failed.get_or_insert(SoapError::Protocol(
                                    "put_chunk reply was not a frontier".into(),
                                ));
                            }
                            Err(e) => {
                                st.failed.get_or_insert(e);
                            }
                        }
                        cv.notify_all();
                    });
                }
            });
        }

        let mut st = state.into_inner().expect("transfer lock");
        if let Some(e) = st.failed.take() {
            // Reclaim the staged partial; best effort (abort of a settled
            // or expired handle also succeeds).
            let _ = self.client.call("abort", &[SoapValue::str(handle)]);
            return Err(e);
        }
        let total = self
            .call_retry("commit", &[SoapValue::str(handle.clone())])?
            .as_i64()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| SoapError::Protocol("commit reply was not a total".into()))?;
        if total != size {
            let _ = self.client.call("abort", &[SoapValue::str(handle)]);
            return Err(SoapError::Protocol(format!(
                "commit acknowledged {total} bytes, sent {size}"
            )));
        }
        let report = TransferReport {
            bytes: size,
            chunks: st.chunks,
            buffer_high_water: st.high_water,
        };
        self.record(&report);
        Ok(report)
    }

    /// Publish a finished transfer's numbers into the transport's wire
    /// stats so E13 reads them the same way it reads every other counter.
    fn record(&self, report: &TransferReport) {
        let stats = self.client.transport().stats();
        stats.record_transfer_chunks(report.chunks as u64, report.bytes as u64);
        stats.record_transfer_buffer(report.buffer_high_water as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_gridsim::srb::Srb;
    use portalws_services::DataManagementService;
    use portalws_soap::SoapServer;
    use portalws_wire::{Handler, InMemoryTransport};
    use std::sync::Arc;

    fn harness() -> (Arc<Srb>, SoapClient) {
        let srb = Arc::new(Srb::new());
        srb.mkdir("/data").unwrap();
        let server = SoapServer::new();
        server.mount(Arc::new(DataManagementService::new(Arc::clone(&srb))));
        let handler: Arc<dyn Handler> = Arc::new(server);
        (
            srb,
            SoapClient::new(Arc::new(InMemoryTransport::new(handler)), "DataManagement"),
        )
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn put_then_get_round_trip_pipelined() {
        let (srb, client) = harness();
        let tc = TransferClient::with_config(
            &client,
            TransferConfig {
                chunk_bytes: 1024,
                window: 4,
                chunk_attempts: 2,
            },
        );
        let data = payload(10_000);
        let up = tc.put("/data/f.bin", &data).unwrap();
        assert_eq!(up.bytes, 10_000);
        assert_eq!(up.chunks, 10);
        assert_eq!(srb.get("anonymous", "/data/f.bin").unwrap(), data);

        let (back, down) = tc.get("/data/f.bin").unwrap();
        assert_eq!(back, data);
        assert_eq!(down.bytes, 10_000);
        assert_eq!(down.chunks, 10);
    }

    #[test]
    fn buffer_high_water_is_bounded_by_window_times_chunk() {
        // The satellite's deterministic pin: with window ≤ 2 the client's
        // resident transfer memory never exceeds 2 × chunk — asserted on
        // the report, which tracks the bound the claim rule enforces.
        let (_, client) = harness();
        let chunk = 512;
        let tc = TransferClient::with_config(
            &client,
            TransferConfig {
                chunk_bytes: chunk,
                window: 2,
                chunk_attempts: 2,
            },
        );
        let data = payload(64 * 512); // 64 chunks
        let up = tc.put("/data/bounded.bin", &data).unwrap();
        assert!(
            up.buffer_high_water <= 2 * chunk,
            "put high-water {} > {}",
            up.buffer_high_water,
            2 * chunk
        );
        let (_, down) = tc.get("/data/bounded.bin").unwrap();
        assert!(
            down.buffer_high_water <= 2 * chunk,
            "get high-water {} > {}",
            down.buffer_high_water,
            2 * chunk
        );
        // And the numbers surface through the transport's wire stats.
        let snap = client.transport().stats().snapshot();
        assert!(snap.transfer_chunks >= 128);
        assert!(snap.transfer_bytes >= 2 * data.len() as u64);
        assert!(snap.transfer_buffer_high_water <= 2 * chunk as u64);
    }

    #[test]
    fn zero_length_file_round_trips() {
        let (srb, client) = harness();
        let tc = TransferClient::new(&client);
        let up = tc.put("/data/empty", b"").unwrap();
        assert_eq!(up.bytes, 0);
        assert_eq!(up.chunks, 0);
        assert_eq!(srb.get("anonymous", "/data/empty").unwrap(), b"");
        let (back, down) = tc.get("/data/empty").unwrap();
        assert_eq!(back, b"");
        assert_eq!(down.chunks, 0);
    }

    #[test]
    fn unaligned_tail_chunk_round_trips() {
        let (_, client) = harness();
        let tc = TransferClient::with_config(
            &client,
            TransferConfig {
                chunk_bytes: 1000,
                window: 3,
                chunk_attempts: 2,
            },
        );
        // 3 full chunks + 1-byte tail, and an exactly-one-chunk file.
        for n in [3001, 1000, 1, 999] {
            let data = payload(n);
            let path = format!("/data/tail-{n}");
            tc.put(&path, &data).unwrap();
            let (back, _) = tc.get(&path).unwrap();
            assert_eq!(back, data, "size {n}");
        }
    }

    #[test]
    fn typed_faults_surface_and_putting_missing_collection_fails_clean() {
        let (srb, client) = harness();
        let tc = TransferClient::new(&client);
        let err = tc.get("/data/ghost").unwrap_err();
        assert!(err.as_fault().is_some());
        let err = tc.put("/ghost/file", b"x").unwrap_err();
        assert!(err.as_fault().is_some());
        // No staging debris anywhere.
        let names: Vec<String> = srb
            .ls("anonymous", "/data")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert!(names.iter().all(|n| !n.starts_with(".part-")), "{names:?}");
    }
}
