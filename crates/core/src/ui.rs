//! The User Interface server: Figure 1's client side.
//!
//! "A user interacts with the User Interface server, which maintains
//! client proxies to the UDDI and SOAP Service Providers… The client
//! examines the UDDI for the desired service and then binds to the SSP."
//!
//! [`UiServer`] performs all three stages — *find* (UDDI keyword
//! search), *fetch* (WSDL download from the provider), *bind* (dynamic
//! client stub) — and wires the per-user SSO session into every bound
//! proxy as a SOAP header supplier.

use std::sync::Arc;

use parking_lot::RwLock;
use portalws_auth::{GssSession, UserSession};
use portalws_gridsim::cred::Mechanism;
use portalws_soap::{ReadCache, SoapClient, SoapValue};
use portalws_wsdl::handler::{fetch_wsdl, fetch_wsdl_cached};
use portalws_wsdl::DynamicClient;

use crate::deployment::PortalDeployment;
use crate::{PortalError, Result};

/// UDDI methods whose results may be served from the read cache: pure
/// queries, invalidated by the registry's mutation generation.
const UDDI_CACHEABLE: &[&str] = &["findService", "findBusiness"];

/// The UI server: holds proxies and the user's SSO session.
pub struct UiServer {
    deployment: Arc<PortalDeployment>,
    uddi: SoapClient,
    session: RwLock<Option<Arc<UserSession>>>,
    /// Shared read cache for the discovery hot path (UDDI queries and
    /// WSDL downloads), when enabled.
    read_cache: RwLock<Option<Arc<ReadCache>>>,
}

/// One discovery hit, surfaced to the user interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveredService {
    /// Owning organization.
    pub business: String,
    /// Service name.
    pub name: String,
    /// Description text.
    pub description: String,
    /// SOAP endpoint URL.
    pub access_point: String,
}

impl UiServer {
    /// A UI server against a deployment.
    pub fn new(deployment: Arc<PortalDeployment>) -> UiServer {
        let uddi = SoapClient::new(
            deployment
                .transport("registry.gce.org")
                .expect("registry host exists"),
            "Uddi",
        );
        UiServer {
            deployment,
            uddi,
            session: RwLock::new(None),
            read_cache: RwLock::new(None),
        }
    }

    /// The deployment behind this UI server.
    pub fn deployment(&self) -> &Arc<PortalDeployment> {
        &self.deployment
    }

    /// Turn on versioned read caching for the discovery hot path: UDDI
    /// keyword queries are cached against the registry's mutation
    /// generation (a publish anywhere invalidates them on the next
    /// observed reply), and WSDL downloads are cached TTL-bounded.
    /// Returns the cache so callers can inspect hit/miss counters.
    pub fn enable_read_caching(&self, cache: Arc<ReadCache>) -> Arc<ReadCache> {
        self.uddi
            .enable_read_cache(Arc::clone(&cache), UDDI_CACHEABLE);
        *self.read_cache.write() = Some(Arc::clone(&cache));
        cache
    }

    /// The discovery read cache, if enabled.
    pub fn read_cache(&self) -> Option<Arc<ReadCache>> {
        self.read_cache.read().clone()
    }

    /// Log a user in (Figure 2 step 1): authenticate against the
    /// Authentication Service over SOAP and hold the session object.
    pub fn login(&self, principal: &str, secret: &str) -> Result<()> {
        let auth_client =
            SoapClient::new(self.deployment.transport("auth.gce.org")?, "Authentication");
        let out = auth_client
            .call(
                "login",
                &[
                    SoapValue::str(principal),
                    SoapValue::str(secret),
                    SoapValue::str("kerberos"),
                ],
            )
            .map_err(|e| PortalError::Auth(e.to_string()))?;
        let field = |name: &str| -> Result<String> {
            out.field(name)
                .and_then(|v| v.as_str())
                .map(str::to_owned)
                .ok_or_else(|| PortalError::Auth(format!("login reply missing {name}")))
        };
        let gss = GssSession {
            context_id: field("contextId")?,
            key: field("sessionKey")?,
            principal: principal.to_owned(),
            mechanism: Mechanism::Kerberos,
            expires_at_ms: out.field("expiresAt").and_then(|v| v.as_i64()).unwrap_or(0) as u64,
        };
        let session = UserSession::new(gss, Arc::clone(&self.deployment.clock));
        *self.session.write() = Some(session);
        Ok(())
    }

    /// The live session object, if logged in (e.g. to enable assertion
    /// reuse for verify-cache-friendly deployments).
    pub fn session(&self) -> Option<Arc<UserSession>> {
        self.session.read().clone()
    }

    /// The logged-in principal, if any.
    pub fn principal(&self) -> Option<String> {
        self.session
            .read()
            .as_ref()
            .map(|s| s.principal().to_owned())
    }

    /// Drop the session (and its server-side context).
    pub fn logout(&self) {
        if let Some(session) = self.session.write().take() {
            self.deployment.auth.logout(session.context_id());
        }
    }

    /// Find services by keyword (the UDDI leg of Figure 1).
    pub fn find_services(&self, keyword: &str) -> Result<Vec<DiscoveredService>> {
        let out = self
            .uddi
            .call("findService", &[SoapValue::str(keyword)])
            .map_err(|e| PortalError::Discovery(e.to_string()))?;
        let hits = out
            .as_array()
            .ok_or_else(|| PortalError::Discovery("malformed findService reply".into()))?;
        Ok(hits
            .iter()
            .map(|h| {
                let s = |f: &str| h.field(f).and_then(|v| v.as_str()).unwrap_or("").to_owned();
                DiscoveredService {
                    business: s("business"),
                    name: s("name"),
                    description: s("description"),
                    access_point: s("accessPoint"),
                }
            })
            .collect())
    }

    /// Bind to a discovered service: fetch its WSDL from the provider and
    /// generate a dynamic proxy, with the SSO session attached.
    pub fn bind(&self, service: &DiscoveredService) -> Result<DynamicClient> {
        self.bind_endpoint(&service.access_point)
    }

    /// Bind directly to an endpoint URL.
    pub fn bind_endpoint(&self, url: &str) -> Result<DynamicClient> {
        let (transport, service_name) = self.deployment.resolve_endpoint(url)?;
        let wsdl = match self.read_cache.read().as_ref() {
            // The endpoint URL rides into the cache key: the cache is
            // shared across binds to every host, and two hosts exposing
            // the same service name must not share one WSDL entry.
            Some(cache) => fetch_wsdl_cached(&*transport, url, &service_name, cache),
            None => fetch_wsdl(&*transport, &service_name),
        }
        .map_err(|e| PortalError::Bind(e.to_string()))?;
        let client = DynamicClient::bind(wsdl, transport);
        if let Some(session) = self.session.read().as_ref() {
            client
                .soap_client()
                .set_header_supplier(session.header_supplier());
        }
        if let Some(host) = url
            .strip_prefix("http://")
            .and_then(|r| r.split('/').next())
        {
            self.install_mutual_verifier(client.soap_client(), host);
        }
        Ok(client)
    }

    /// When mutual authentication is enabled, require the server to prove
    /// it is the host principal the client believes it is calling.
    fn install_mutual_verifier(&self, client: &SoapClient, host: &str) {
        if self.deployment.mutual_enabled() {
            client.set_reply_verifier(portalws_auth::mutual::expect_server(
                Arc::clone(&self.deployment.auth),
                &PortalDeployment::server_principal(host),
            ));
        }
    }

    /// The full Figure 1 interaction: find by keyword, pick the first
    /// hit, fetch WSDL, bind.
    pub fn discover_and_bind(&self, keyword: &str) -> Result<DynamicClient> {
        let hits = self.find_services(keyword)?;
        let hit = hits
            .first()
            .ok_or_else(|| PortalError::Discovery(format!("no services match {keyword:?}")))?;
        self.bind(hit)
    }

    /// Decentralized discovery: fetch a host's WSIL inspection document
    /// (the §2 alternative to UDDI — works even when the central registry
    /// is down).
    pub fn inspect(&self, host: &str) -> Result<portalws_registry::InspectionDocument> {
        let transport = self.deployment.transport(host)?;
        portalws_registry::wsil::fetch_inspection(&*transport)
            .map_err(|e| PortalError::Discovery(e.to_string()))
    }

    /// A plain (non-WSDL) client proxy to a named service on a host, with
    /// the session attached — for services the UI knows a priori.
    pub fn proxy(&self, host: &str, service: &str) -> Result<SoapClient> {
        let client = SoapClient::new(self.deployment.transport(host)?, service);
        if let Some(session) = self.session.read().as_ref() {
            client.set_header_supplier(session.header_supplier());
        }
        self.install_mutual_verifier(&client, host);
        Ok(client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::SecurityMode;

    #[test]
    fn wsil_inspection_lists_host_services_and_links() {
        let ui = ui(SecurityMode::Open);
        let doc = ui.inspect("gateway.iu.edu").unwrap();
        let names: Vec<&str> = doc.services.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"BatchScriptGen"), "{names:?}");
        assert!(names.contains(&"ContextManager"));
        // Peers linked: the host set is walkable.
        assert_eq!(doc.links.len(), 4);
    }

    #[test]
    fn wsil_discovery_survives_without_the_registry() {
        // Walk hosts via WSIL, bind from the discovered endpoint — no
        // UDDI involved.
        let ui = ui(SecurityMode::Open);
        let doc = ui.inspect("hotpage.sdsc.edu").unwrap();
        let svc = doc.service("BatchScriptGen").unwrap();
        let client = ui.bind_endpoint(&svc.endpoint).unwrap();
        let out = client.call("supportedSchedulers", &[]).unwrap();
        assert_eq!(out.as_array().unwrap().len(), 2);
    }

    fn ui(mode: SecurityMode) -> UiServer {
        UiServer::new(PortalDeployment::in_memory(mode))
    }

    #[test]
    fn login_success_and_failure() {
        let ui = ui(SecurityMode::Central);
        assert!(ui.login("alice@GCE.ORG", "wrong").is_err());
        assert!(ui.principal().is_none());
        ui.login("alice@GCE.ORG", "alice-pass").unwrap();
        assert_eq!(ui.principal().as_deref(), Some("alice@GCE.ORG"));
    }

    #[test]
    fn find_services_by_keyword() {
        let ui = ui(SecurityMode::Open);
        let hits = ui.find_services("script").unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits
            .iter()
            .any(|h| h.access_point.contains("gateway.iu.edu")));
        assert!(ui.find_services("teleport").unwrap().is_empty());
    }

    #[test]
    fn cached_discovery_serves_hits_and_invalidates_on_observed_publish() {
        use portalws_soap::ReadCache;
        let ui = ui(SecurityMode::Open);
        let cache = ui.enable_read_caching(Arc::new(ReadCache::default()));
        let before = ui.find_services("script").unwrap();
        assert_eq!(ui.find_services("script").unwrap(), before);
        assert_eq!(cache.stats().snapshot().cache_hits, 1, "second query hit");
        // Repeated binds of the same endpoint fetch the WSDL once.
        let hit = before.first().unwrap().clone();
        ui.bind(&hit).unwrap();
        ui.bind(&hit).unwrap();
        assert_eq!(cache.stats().snapshot().cache_hits, 2, "WSDL re-bind hit");

        // A publisher sharing this cache mutates the registry; its reply
        // carries the bumped generation, so the cached query result is
        // invalidated before it can ever be served again.
        let publisher = SoapClient::new(
            ui.deployment().transport("registry.gce.org").unwrap(),
            "Uddi",
        );
        publisher.enable_read_cache(Arc::clone(&cache), &[]);
        let bkey = publisher
            .call(
                "publishBusiness",
                &[SoapValue::str("ScriptCo"), SoapValue::str("newcomer")],
            )
            .unwrap();
        publisher
            .call(
                "publishService",
                &[
                    bkey,
                    SoapValue::str("ScriptWizard"),
                    SoapValue::str("another batch script generator"),
                    SoapValue::str("http://grid.sdsc.edu/soap/BatchScriptGen"),
                ],
            )
            .unwrap();
        let after = ui.find_services("script").unwrap();
        assert_eq!(after.len(), before.len() + 1, "no stale read after bump");
        assert!(cache.stats().snapshot().cache_invalidations >= 1);
    }

    #[test]
    fn figure1_find_fetch_bind_invoke() {
        let ui = ui(SecurityMode::Open);
        let client = ui.discover_and_bind("JobSubmission").unwrap();
        let hosts = client.call("listHosts", &[]).unwrap();
        assert_eq!(hosts.as_array().unwrap().len(), 2);
    }

    #[test]
    fn secured_flow_end_to_end() {
        let ui = ui(SecurityMode::Central);
        ui.login("alice@GCE.ORG", "alice-pass").unwrap();
        let client = ui.discover_and_bind("JobSubmission").unwrap();
        // The bound proxy carries a fresh signed assertion per call, so
        // the guarded SSP accepts it.
        let hosts = client.call("listHosts", &[]).unwrap();
        assert_eq!(hosts.as_array().unwrap().len(), 2);
        // Central verification actually happened on the auth server.
        assert!(ui.deployment().auth.verification_count() >= 1);
    }

    #[test]
    fn logout_invalidates_bound_proxies() {
        let ui = ui(SecurityMode::Central);
        ui.login("alice@GCE.ORG", "alice-pass").unwrap();
        let client = ui.discover_and_bind("JobSubmission").unwrap();
        client.call("listHosts", &[]).unwrap();
        ui.logout();
        assert!(client.call("listHosts", &[]).is_err());
    }

    #[test]
    fn bind_unknown_endpoint_fails() {
        let ui = ui(SecurityMode::Open);
        assert!(ui
            .bind_endpoint("http://grid.sdsc.edu/soap/NoSuchService")
            .is_err());
        assert!(ui.bind_endpoint("http://ghost.example/soap/X").is_err());
    }

    #[test]
    fn two_script_generators_bindable_from_one_search() {
        let ui = ui(SecurityMode::Open);
        let hits = ui.find_services("BatchScriptGenerator").unwrap();
        assert_eq!(hits.len(), 2);
        let mut supported = Vec::new();
        for hit in &hits {
            let client = ui.bind(hit).unwrap();
            let out = client.call("supportedSchedulers", &[]).unwrap();
            supported.push(
                out.as_array()
                    .unwrap()
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect::<Vec<_>>(),
            );
        }
        supported.sort();
        assert_eq!(supported, vec![vec!["LSF", "NQS"], vec!["PBS", "GRD"]]);
    }
}
