//! Deployment: the multi-server GCE testbed topology.
//!
//! Figure 1's premise is that every piece "runs on a separate web
//! server". This module stands up that topology:
//!
//! | Logical host        | Services |
//! |---------------------|----------|
//! | `registry.gce.org`  | `Uddi`, `ContainerRegistry` |
//! | `auth.gce.org`      | `Authentication` |
//! | `grid.sdsc.edu`     | `JobSubmission`, `DataManagement`, `BatchJob` |
//! | `gateway.iu.edu`    | `BatchScriptGen` (IU impl), `ContextManager`, decomposed context services |
//! | `hotpage.sdsc.edu`  | `BatchScriptGen` (SDSC impl) |
//!
//! Every host also publishes `/wsdl/<Service>` documents, and the UDDI is
//! pre-populated with the testbed's businesses and services (with the
//! era-faithful free-text capability descriptions), while the container
//! registry carries the same services with *typed* metadata — the two
//! sides of experiment E7.

use std::collections::HashMap;
use std::sync::Arc;

use portalws_auth::{guard, AuthService, AuthSoapFacade};
use portalws_gridsim::clock::SimClock;
use portalws_gridsim::grid::Grid;
use portalws_gridsim::srb::Srb;
use portalws_registry::{
    BindingTemplate, ContainerRegistry, ContainerRegistryService, ServiceEntry, UddiRegistry,
    UddiService,
};
use portalws_services::context::{ContextManagerMonolith, ContextStore, DecomposedContextServices};
use portalws_services::scriptgen::{ContextCoupling, IuScriptGen, SdscScriptGen};
use portalws_services::{
    AppFactoryService, BatchJobService, DataManagementService, JobSubmissionService,
    ShardedDataService,
};
use portalws_soap::{SoapClient, SoapServer, SoapService};
use portalws_wire::{
    derive_seed, ChaosConfig, ChaosTransport, Handler, HttpServer, HttpTransport,
    InMemoryTransport, Pool, PoolConfig, PooledTransport, Router, SeededServerChaos,
    ServerChaosConfig, ServerConfig, ServerHandle, Transport,
};
use portalws_wsdl::handler::WsdlHandler;
use portalws_wsdl::WsdlDefinition;
use portalws_xml::Element;

use crate::{PortalError, Result};

/// How SOAP Service Providers verify callers (the E2 arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityMode {
    /// No authentication (baseline).
    Open,
    /// Figure 2 central verification: SSPs forward assertions to the
    /// Authentication Service per call.
    Central,
    /// Decentralized ablation: SSPs verify in-process.
    Local,
}

/// Client transport regime for the testbed — the deployment-wide flag
/// switching every consumer (registry lookups, job submission, the Fig. 2
/// auth hop, the portal shell) between the 2002 connect-per-call wire and
/// the pooled keep-alive one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// Full message framing, no sockets (tests and micro-benchmarks).
    #[default]
    InMemory,
    /// One TCP connection per call — the 2002 regime, kept as the
    /// benchmark ablation baseline.
    TcpPerCall,
    /// Keep-alive connections drawn from a deployment-wide pool, with
    /// per-request deadlines and bounded idempotent retry.
    TcpPooled,
}

/// Server concurrency regime for the testbed's TCP arms — orthogonal to
/// [`TransportMode`], which picks the *client* side. The blocking arm is
/// the thread-per-connection pool the 2002 servers ran; the reactor arm
/// drives all connections per worker through epoll state machines, so
/// idle keep-alive sessions park instead of pinning worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerArm {
    /// Fixed worker pool, one blocking connection per worker at a time
    /// (the ablation baseline).
    #[default]
    Blocking,
    /// Epoll reactor: each worker multiplexes many nonblocking
    /// connections (`wire::reactor`).
    Reactor,
}

/// A deployment-wide fault schedule: one master seed fans out to a
/// per-host client seed (`derive_seed(seed, host)`) and a per-host server
/// seed (`derive_seed(seed, "server:<host>")`), so every failure the
/// topology produces is replayable from the single printed `seed`.
///
/// Client-side faults apply in every [`TransportMode`]; the server-side
/// response hook only exists where there is a real TCP server, so it is a
/// no-op under [`TransportMode::InMemory`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPolicy {
    /// Master seed, printed by the soak harness for replay.
    pub seed: u64,
    /// Client-side fault probabilities (per request).
    pub client: ChaosConfig,
    /// Server-side fault probabilities (per response).
    pub server: ServerChaosConfig,
}

impl ChaosPolicy {
    /// Derive the whole schedule from one seed: fault mixes and rates are
    /// themselves seeded, so distinct seeds explore distinct regimes.
    pub fn from_seed(seed: u64) -> ChaosPolicy {
        ChaosPolicy {
            seed,
            client: ChaosConfig::from_seed(derive_seed(seed, "client-config")),
            server: ServerChaosConfig::from_seed(derive_seed(seed, "server-config")),
        }
    }

    /// A fixed moderate mix (every fault class enabled) under `seed`.
    pub fn moderate(seed: u64) -> ChaosPolicy {
        ChaosPolicy {
            seed,
            client: ChaosConfig::moderate(),
            server: ServerChaosConfig::moderate(),
        }
    }
}

/// One logical server: a router holding `/soap`, `/wsdl`, and the
/// decentralized-discovery document at `/inspection.wsil`.
struct LogicalServer {
    router: Arc<Router>,
    soap: Arc<SoapServer>,
    wsdl: Arc<WsdlHandler>,
    wsil: Arc<portalws_registry::WsilHandler>,
}

impl LogicalServer {
    fn new() -> LogicalServer {
        let router = Arc::new(Router::new());
        let soap = Arc::new(SoapServer::new());
        let wsdl = Arc::new(WsdlHandler::new());
        let wsil = Arc::new(portalws_registry::WsilHandler::new());
        router.mount("/soap", Arc::clone(&soap) as Arc<dyn Handler>);
        router.mount("/wsdl", Arc::clone(&wsdl) as Arc<dyn Handler>);
        router.mount("/inspection.wsil", Arc::clone(&wsil) as Arc<dyn Handler>);
        LogicalServer {
            router,
            soap,
            wsdl,
            wsil,
        }
    }

    fn mount(&self, host: &str, service: Arc<dyn SoapService>) {
        let endpoint = format!("http://{host}/soap/{}", service.name());
        self.wsdl
            .publish(WsdlDefinition::from_service(&*service).with_endpoint(endpoint.clone()));
        self.wsil.announce(portalws_registry::WsilService {
            name: service.name().to_owned(),
            abstract_text: service
                .methods()
                .first()
                .map(|m| m.doc.clone())
                .unwrap_or_default(),
            wsdl_location: format!("http://{host}/wsdl/{}", service.name()),
            endpoint,
        });
        self.soap.mount(service);
    }
}

/// The running testbed.
pub struct PortalDeployment {
    /// Shared simulation clock.
    pub clock: Arc<SimClock>,
    /// The simulated grid.
    pub grid: Arc<Grid>,
    /// The storage broker.
    pub srb: Arc<Srb>,
    /// The data-management service instance (kept so benches and tests
    /// can read the chunked-transfer table's buffering high-water). In a
    /// sharded deployment this is shard 0's backend, and [`Self::srb`]
    /// is shard 0's broker.
    pub data_service: Arc<DataManagementService>,
    /// The consistent-hash shard router serving `DataManagement` when
    /// the deployment was built with more than one data shard (the e12
    /// cross-shard fault family reaches its fault hook and recovery
    /// through this); `None` in unsharded deployments.
    pub data_shards: Option<Arc<ShardedDataService>>,
    /// The Authentication Service (keytab holder).
    pub auth: Arc<AuthService>,
    /// The Gateway context store.
    pub contexts: Arc<ContextStore>,
    /// The UDDI registry (shared with its SOAP facade).
    pub uddi: Arc<UddiRegistry>,
    /// The container registry (shared with its SOAP facade).
    pub container_registry: Arc<ContainerRegistry>,
    transports: HashMap<String, Arc<dyn Transport>>,
    /// True once [`PortalDeployment::enable_mutual_auth`] has run.
    mutual: std::sync::atomic::AtomicBool,
    /// SOAP servers by host, kept so guards (security mode, access
    /// policies) can be reconfigured after deployment.
    soap_servers: HashMap<String, Arc<SoapServer>>,
    /// Keeps TCP servers alive in `over_tcp` mode.
    _tcp_servers: Vec<ServerHandle>,
    /// Per-host server-side wire counters (TCP modes only) — this is
    /// where server-injected chaos (drops, truncations, delays) lands.
    server_stats: HashMap<String, Arc<portalws_wire::WireStats>>,
    /// Access policy composed into the guards, if installed.
    policy: parking_lot::RwLock<Option<Arc<portalws_auth::PolicyEngine>>>,
    /// Per-tenant admission quotas composed into the guards, if enabled.
    quotas: parking_lot::RwLock<Option<Arc<portalws_auth::TenantQuotas>>>,
    security: SecurityMode,
    mode: TransportMode,
    arm: ServerArm,
    chaos: Option<ChaosPolicy>,
}

/// Registered demo users: (principal, secret).
pub const USERS: [(&str, &str); 2] = [("alice@GCE.ORG", "alice-pass"), ("bob@GCE.ORG", "bob-pass")];

impl PortalDeployment {
    /// Stand the testbed up over in-memory transports (full message
    /// framing, no sockets) — the default for tests and benchmarks.
    pub fn in_memory(security: SecurityMode) -> Arc<PortalDeployment> {
        Self::build(security, TransportMode::InMemory)
    }

    /// In-memory testbed whose `DataManagement` endpoint is a
    /// consistent-hash router over `shards` backend brokers instead of a
    /// single one. With `shards <= 1` this is exactly
    /// [`PortalDeployment::in_memory`].
    pub fn in_memory_sharded(security: SecurityMode, shards: usize) -> Arc<PortalDeployment> {
        Self::build_inner(
            security,
            TransportMode::InMemory,
            None,
            ServerArm::Blocking,
            None,
            shards,
        )
    }

    /// Chaos deployment with a sharded data plane — the e12 cross-shard
    /// move fault family runs this on both server arms.
    pub fn with_chaos_arm_sharded(
        security: SecurityMode,
        mode: TransportMode,
        policy: ChaosPolicy,
        arm: ServerArm,
        shards: usize,
    ) -> Arc<PortalDeployment> {
        Self::build_inner(security, mode, Some(policy), arm, None, shards)
    }

    /// Stand the testbed up over real TCP servers on localhost, each
    /// logical host on its own port with `2` worker threads. One TCP
    /// connection per call, as deployed in 2002.
    pub fn over_tcp(security: SecurityMode) -> Arc<PortalDeployment> {
        Self::build(security, TransportMode::TcpPerCall)
    }

    /// Like [`PortalDeployment::over_tcp`], but clients draw keep-alive
    /// connections from a deployment-wide pool instead of dialing per
    /// call.
    pub fn over_tcp_pooled(security: SecurityMode) -> Arc<PortalDeployment> {
        Self::build(security, TransportMode::TcpPooled)
    }

    /// Like [`PortalDeployment::over_tcp_pooled`], but every logical host
    /// serves through the epoll reactor arm instead of the blocking
    /// worker pool.
    pub fn over_tcp_pooled_reactor(security: SecurityMode) -> Arc<PortalDeployment> {
        Self::build_with_chaos_arm(security, TransportMode::TcpPooled, None, ServerArm::Reactor)
    }

    /// Pooled TCP deployment with explicit admission-control tuning:
    /// every logical host serves under `config` (bounded queues, shed
    /// retry hints, connection caps) on the chosen server `arm`. This is
    /// the production posture E15 loads to the knee and beyond.
    pub fn over_tcp_pooled_tuned(
        security: SecurityMode,
        arm: ServerArm,
        config: ServerConfig,
    ) -> Arc<PortalDeployment> {
        Self::build_inner(
            security,
            TransportMode::TcpPooled,
            None,
            arm,
            Some(config),
            1,
        )
    }

    /// Stand the testbed up under a deterministic fault schedule: every
    /// client transport is wrapped in a [`ChaosTransport`] and (in TCP
    /// modes) every server gets a seeded response hook. The full Fig. 4
    /// topology then runs under the schedule — E12 soaks this.
    pub fn with_chaos(
        security: SecurityMode,
        mode: TransportMode,
        policy: ChaosPolicy,
    ) -> Arc<PortalDeployment> {
        Self::build_with_chaos_arm(security, mode, Some(policy), ServerArm::Blocking)
    }

    /// Like [`PortalDeployment::with_chaos`], but also choosing the server
    /// concurrency regime — the E12 soak runs both arms under the same
    /// schedule.
    pub fn with_chaos_arm(
        security: SecurityMode,
        mode: TransportMode,
        policy: ChaosPolicy,
        arm: ServerArm,
    ) -> Arc<PortalDeployment> {
        Self::build_with_chaos_arm(security, mode, Some(policy), arm)
    }

    /// Chaos plus explicit admission bounds: the E12 shed-under-chaos
    /// schedules run overloaded, fault-injected deployments and assert
    /// that shed replies still arrive typed and whole.
    pub fn with_chaos_arm_tuned(
        security: SecurityMode,
        mode: TransportMode,
        policy: ChaosPolicy,
        arm: ServerArm,
        config: ServerConfig,
    ) -> Arc<PortalDeployment> {
        Self::build_inner(security, mode, Some(policy), arm, Some(config), 1)
    }

    fn build(security: SecurityMode, mode: TransportMode) -> Arc<PortalDeployment> {
        Self::build_with_chaos_arm(security, mode, None, ServerArm::Blocking)
    }

    fn build_with_chaos_arm(
        security: SecurityMode,
        mode: TransportMode,
        chaos: Option<ChaosPolicy>,
        arm: ServerArm,
    ) -> Arc<PortalDeployment> {
        Self::build_inner(security, mode, chaos, arm, None, 1)
    }

    fn build_inner(
        security: SecurityMode,
        mode: TransportMode,
        chaos: Option<ChaosPolicy>,
        arm: ServerArm,
        tuning: Option<ServerConfig>,
        shards: usize,
    ) -> Arc<PortalDeployment> {
        let clock = SimClock::new();
        let grid = Grid::with_clock(Arc::clone(&clock));
        // Mirror the paper testbed hosts/schedulers.
        for spec in testbed_hosts() {
            grid.add_host(spec.0, spec.1);
        }
        // With `shards > 1` the `DataManagement` endpoint is a
        // consistent-hash router over that many backend brokers; the
        // deployment's `srb`/`data_service` fields then point at shard 0
        // so existing benches and tests keep a valid (if partial) view.
        let data_shards = (shards > 1).then(|| {
            Arc::new(ShardedDataService::testbed(
                &["alice@GCE.ORG", "bob@GCE.ORG"],
                shards,
            ))
        });
        let srb = match data_shards
            .as_ref()
            .and_then(|router| router.backends().first())
        {
            Some(backend) => Arc::clone(backend.srb()),
            None => Arc::new(Srb::testbed(&["alice@GCE.ORG", "bob@GCE.ORG"])),
        };
        let auth = AuthService::new(Arc::clone(&clock));
        for (user, pass) in USERS {
            auth.register_user(user, pass);
        }
        let contexts = ContextStore::new();
        let uddi = Arc::new(UddiRegistry::new());
        let container_registry = Arc::new(ContainerRegistry::new());

        // ---- logical servers -------------------------------------------
        let registry_srv = LogicalServer::new();
        registry_srv.mount(
            "registry.gce.org",
            Arc::new(UddiService::new(Arc::clone(&uddi))),
        );
        registry_srv.mount(
            "registry.gce.org",
            Arc::new(ContainerRegistryService::new(Arc::clone(
                &container_registry,
            ))),
        );

        let auth_srv = LogicalServer::new();
        auth_srv.mount("auth.gce.org", Arc::new(AuthSoapFacade(Arc::clone(&auth))));

        let grid_srv = LogicalServer::new();
        let jobsub = Arc::new(JobSubmissionService::new(Arc::clone(&grid)));
        grid_srv.mount("grid.sdsc.edu", jobsub);
        let data_service = match data_shards
            .as_ref()
            .and_then(|router| router.backends().first())
        {
            Some(backend) => Arc::clone(backend),
            None => Arc::new(DataManagementService::new(Arc::clone(&srb))),
        };
        match &data_shards {
            Some(router) => {
                grid_srv.mount("grid.sdsc.edu", Arc::clone(router) as Arc<dyn SoapService>)
            }
            None => grid_srv.mount(
                "grid.sdsc.edu",
                Arc::clone(&data_service) as Arc<dyn SoapService>,
            ),
        }
        grid_srv.mount(
            "grid.sdsc.edu",
            Arc::new(AppFactoryService::new(
                Arc::clone(&grid),
                Some(Arc::clone(&contexts)),
            )),
        );

        let iu_srv = LogicalServer::new();
        iu_srv.mount(
            "gateway.iu.edu",
            Arc::new(IuScriptGen::new(ContextCoupling::Integrated(Arc::clone(
                &contexts,
            )))),
        );
        iu_srv.mount(
            "gateway.iu.edu",
            Arc::new(ContextManagerMonolith::new(Arc::clone(&contexts))),
        );
        let decomposed = DecomposedContextServices::new(Arc::clone(&contexts));
        iu_srv.mount(
            "gateway.iu.edu",
            Arc::clone(&decomposed.tree) as Arc<dyn SoapService>,
        );
        iu_srv.mount(
            "gateway.iu.edu",
            Arc::clone(&decomposed.properties) as Arc<dyn SoapService>,
        );
        iu_srv.mount(
            "gateway.iu.edu",
            Arc::clone(&decomposed.archive) as Arc<dyn SoapService>,
        );

        let sdsc_srv = LogicalServer::new();
        sdsc_srv.mount("hotpage.sdsc.edu", Arc::new(SdscScriptGen));

        let servers: Vec<(&str, LogicalServer)> = vec![
            ("registry.gce.org", registry_srv),
            ("auth.gce.org", auth_srv),
            ("grid.sdsc.edu", grid_srv),
            ("gateway.iu.edu", iu_srv),
            ("hotpage.sdsc.edu", sdsc_srv),
        ];

        // WSIL documents link their peers, making the host set walkable
        // without the central registry.
        for (host, server) in &servers {
            for (other, _) in &servers {
                if other != host {
                    server.wsil.link(format!("http://{other}/inspection.wsil"));
                }
            }
        }

        // ---- transports --------------------------------------------------
        let mut transports: HashMap<String, Arc<dyn Transport>> = HashMap::new();
        let mut tcp_servers = Vec::new();
        let mut server_stats: HashMap<String, Arc<portalws_wire::WireStats>> = HashMap::new();
        // Per-host client-side fault wrapper; the seed fans out so each
        // host draws an independent but replayable fault stream.
        let chaos_wrap = |host: &str, inner: Arc<dyn Transport>| -> Arc<dyn Transport> {
            match &chaos {
                Some(policy) => Arc::new(ChaosTransport::new(
                    inner,
                    derive_seed(policy.seed, host),
                    policy.client,
                )),
                None => inner,
            }
        };
        match mode {
            TransportMode::InMemory => {
                for (host, server) in &servers {
                    let inner = Arc::new(InMemoryTransport::new(
                        Arc::clone(&server.router) as Arc<dyn Handler>
                    )) as Arc<dyn Transport>;
                    transports.insert((*host).to_owned(), chaos_wrap(host, inner));
                }
            }
            TransportMode::TcpPerCall | TransportMode::TcpPooled => {
                // One idle-connection pool for the whole deployment, keyed
                // internally by endpoint (unused in per-call mode).
                let pool = Arc::new(Pool::new(PoolConfig::default()));
                for (host, server) in &servers {
                    let handler = Arc::clone(&server.router) as Arc<dyn Handler>;
                    let server_chaos = chaos.as_ref().map(|policy| {
                        Arc::new(SeededServerChaos::new(
                            derive_seed(policy.seed, &format!("server:{host}")),
                            policy.server,
                        )) as Arc<dyn portalws_wire::ServerChaos>
                    });
                    let config = tuning.unwrap_or_default();
                    let handle = match (arm, server_chaos) {
                        (ServerArm::Blocking, Some(hook)) => {
                            HttpServer::start_tuned_chaotic(handler, config, hook)
                        }
                        (ServerArm::Blocking, None) => HttpServer::start_tuned(handler, config),
                        (ServerArm::Reactor, Some(hook)) => {
                            HttpServer::start_reactor_tuned_chaotic(handler, config, hook)
                        }
                        (ServerArm::Reactor, None) => {
                            HttpServer::start_reactor_tuned(handler, config)
                        }
                    }
                    .expect("bind localhost");
                    let inner: Arc<dyn Transport> = match mode {
                        TransportMode::TcpPooled => {
                            Arc::new(PooledTransport::with_pool(handle.addr(), Arc::clone(&pool)))
                        }
                        _ => Arc::new(HttpTransport::new(handle.addr())),
                    };
                    transports.insert((*host).to_owned(), chaos_wrap(host, inner));
                    server_stats.insert((*host).to_owned(), Arc::clone(handle.stats()));
                    tcp_servers.push(handle);
                }
            }
        }

        // ---- composed service: BatchJob forwards to JobSubmission -------
        {
            let jobsub_client = Arc::new(SoapClient::new(
                Arc::clone(&transports["grid.sdsc.edu"]),
                "JobSubmission",
            ));
            let (_, grid_ls) = servers
                .iter()
                .find(|(h, _)| *h == "grid.sdsc.edu")
                .expect("grid server exists");
            grid_ls.mount(
                "grid.sdsc.edu",
                Arc::new(BatchJobService::new(jobsub_client)),
            );
        }

        let soap_servers: HashMap<String, Arc<SoapServer>> = servers
            .iter()
            .map(|(host, server)| ((*host).to_owned(), Arc::clone(&server.soap)))
            .collect();

        let deployment = PortalDeployment {
            clock,
            grid,
            srb,
            data_service,
            data_shards,
            auth,
            contexts,
            uddi,
            container_registry,
            transports,
            mutual: std::sync::atomic::AtomicBool::new(false),
            soap_servers,
            _tcp_servers: tcp_servers,
            server_stats,
            policy: parking_lot::RwLock::new(None),
            quotas: parking_lot::RwLock::new(None),
            security,
            mode,
            arm,
            chaos,
        };
        deployment.apply_guards();
        deployment.populate_registries();
        Arc::new(deployment)
    }

    /// Security mode in effect.
    pub fn security(&self) -> SecurityMode {
        self.security
    }

    /// Transport regime in effect.
    pub fn transport_mode(&self) -> TransportMode {
        self.mode
    }

    /// Server concurrency regime in effect (TCP modes; in-memory
    /// deployments have no server loop either way).
    pub fn server_arm(&self) -> ServerArm {
        self.arm
    }

    /// The fault schedule in effect, if any.
    pub fn chaos_policy(&self) -> Option<ChaosPolicy> {
        self.chaos
    }

    /// Server-side wire counters for a logical host (TCP modes only;
    /// in-memory deployments have no server loop). Server-injected chaos
    /// — drops, delays, truncations — is counted here, while client-side
    /// chaos lands on [`PortalDeployment::transport`]'s stats.
    pub fn server_wire_stats(&self, host: &str) -> Option<Arc<portalws_wire::WireStats>> {
        self.server_stats.get(host).map(Arc::clone)
    }

    /// Hosts whose SSPs are guarded. The paper guards protected services,
    /// not the Authentication Service itself or public discovery.
    fn is_protected_host(host: &str) -> bool {
        host != "auth.gce.org" && host != "registry.gce.org"
    }

    /// Build the authentication guard for the deployment's security mode.
    fn authn_guard(&self) -> portalws_soap::Guard {
        match self.security {
            SecurityMode::Open => guard::no_auth_guard(),
            SecurityMode::Central => {
                let auth_client = Arc::new(SoapClient::new(
                    Arc::clone(&self.transports["auth.gce.org"]),
                    "Authentication",
                ));
                guard::remote_guard(auth_client)
            }
            SecurityMode::Local => guard::local_guard(Arc::clone(&self.auth)),
        }
    }

    /// (Re)apply guards to every protected SSP, composing whatever is
    /// installed on top of authentication: an Akenti-style access policy,
    /// then per-tenant admission quotas (outermost, so a quota shed only
    /// ever charges verified, authorized callers).
    fn apply_guards(&self) {
        let policy = self.policy.read().clone();
        let quotas = self.quotas.read().clone();
        if self.security == SecurityMode::Open && policy.is_none() && quotas.is_none() {
            return;
        }
        for (host, server) in &self.soap_servers {
            if !Self::is_protected_host(host) {
                continue;
            }
            // Policies and quotas require a verified subject, so Open
            // mode keeps its authn-less base only when neither is
            // installed.
            let mut g = if self.security == SecurityMode::Open {
                guard::local_guard(Arc::clone(&self.auth))
            } else {
                self.authn_guard()
            };
            if let Some(policy) = &policy {
                g = guard::authorized(g, Arc::clone(policy));
            }
            if let Some(quotas) = &quotas {
                // Quota sheds land on the host's wire counters (TCP
                // modes), next to the queue-full and deadline sheds.
                let on_shed = self.server_stats.get(host).map(|stats| {
                    let stats = Arc::clone(stats);
                    Arc::new(move || stats.record_shed_quota()) as portalws_auth::quota::ShedHook
                });
                g = portalws_auth::quota_guard(g, Arc::clone(quotas), on_shed);
            }
            server.set_guard(g);
        }
    }

    /// Install an access-control policy on every protected SSP (§4's
    /// further-work item). Callers must already be authenticated; the
    /// policy decides per `(principal, service, method)`.
    pub fn install_access_policy(&self, policy: Arc<portalws_auth::PolicyEngine>) {
        *self.policy.write() = Some(policy);
        self.apply_guards();
    }

    /// Enable per-tenant admission quotas on every protected SSP: after
    /// authentication (and any access policy), the verified assertion
    /// subject must hold a token or the call sheds as a `Busy` fault with
    /// `Retry-After` hints. Sheds are counted on the host's wire stats as
    /// `shed_quota` in TCP modes.
    pub fn enable_tenant_quotas(&self, quotas: Arc<portalws_auth::TenantQuotas>) {
        *self.quotas.write() = Some(quotas);
        self.apply_guards();
    }

    /// The host principal a server authenticates itself as under mutual
    /// authentication.
    pub fn server_principal(host: &str) -> String {
        format!("{host}@GCE.ORG")
    }

    /// Is mutual authentication enabled?
    pub fn mutual_enabled(&self) -> bool {
        self.mutual.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Enable mutual authentication (§4's "each server in the system would
    /// authenticate itself"): every server gets a host principal in the
    /// keytab, logs in, and stamps a signed assertion into each reply.
    /// `UiServer` proxies created afterwards verify those assertions.
    pub fn enable_mutual_auth(&self) {
        for (host, server) in &self.soap_servers {
            let principal = Self::server_principal(host);
            let secret = format!("{host}-host-secret");
            self.auth.register_user(&principal, &secret);
            let gss = self
                .auth
                .login(
                    &principal,
                    &secret,
                    portalws_gridsim::cred::Mechanism::Kerberos,
                )
                .expect("host principal just registered");
            let session = portalws_auth::UserSession::new(gss, Arc::clone(&self.clock));
            server.set_response_header_supplier(portalws_auth::mutual::server_identity(session));
        }
        self.mutual
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Transport to a logical host.
    pub fn transport(&self, host: &str) -> Result<Arc<dyn Transport>> {
        self.transports
            .get(host)
            .map(Arc::clone)
            .ok_or_else(|| PortalError::Bind(format!("no transport for host {host:?}")))
    }

    /// Resolve a full endpoint URL (`http://host/soap/Service`) to its
    /// transport plus the service name.
    pub fn resolve_endpoint(&self, url: &str) -> Result<(Arc<dyn Transport>, String)> {
        let rest = url
            .strip_prefix("http://")
            .ok_or_else(|| PortalError::Bind(format!("unsupported URL scheme: {url}")))?;
        let (host, path) = rest
            .split_once('/')
            .ok_or_else(|| PortalError::Bind(format!("URL has no path: {url}")))?;
        let service = path
            .rsplit('/')
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| PortalError::Bind(format!("URL has no service name: {url}")))?;
        Ok((self.transport(host)?, service.to_owned()))
    }

    /// Logical host names.
    pub fn hosts(&self) -> Vec<String> {
        let mut hosts: Vec<String> = self.transports.keys().cloned().collect();
        hosts.sort();
        hosts
    }

    fn populate_registries(&self) {
        // UDDI: businesses + services with free-text descriptions
        // (capability info only by convention, as in §3.4).
        let iu = self
            .uddi
            .publish_business("Community Grids Lab", "Indiana University portal group")
            .expect("fresh registry");
        let sdsc = self
            .uddi
            .publish_business("SDSC", "San Diego Supercomputer Center")
            .expect("fresh registry");
        let publish = |biz: &str, name: &str, desc: &str, url: &str| {
            self.uddi
                .publish_service(
                    biz,
                    name,
                    desc,
                    vec![BindingTemplate {
                        access_point: url.to_owned(),
                        tmodel_keys: vec![],
                    }],
                )
                .expect("fresh registry");
        };
        publish(
            &iu,
            "BatchScriptGenerator",
            "Batch script generation service. Supports PBS and GRD schedulers.",
            "http://gateway.iu.edu/soap/BatchScriptGen",
        );
        publish(
            &sdsc,
            "BatchScriptGenerator",
            "Script generator. Supports LSF and NQS; previously ran PBS.",
            "http://hotpage.sdsc.edu/soap/BatchScriptGen",
        );
        publish(
            &sdsc,
            "JobSubmission",
            "Globusrun-style secure job submission over the grid.",
            "http://grid.sdsc.edu/soap/JobSubmission",
        );
        publish(
            &sdsc,
            "DataManagement",
            "SRB data management: ls, cat, get, put, xml_call.",
            "http://grid.sdsc.edu/soap/DataManagement",
        );
        publish(
            &iu,
            "ContextManager",
            "Gateway user context management and session archiving.",
            "http://gateway.iu.edu/soap/ContextManager",
        );

        // Container registry: same services, typed metadata.
        let entry = |name: &str, host: &str, service: &str, schedulers: &[&str]| {
            let mut metadata =
                Element::new("serviceMetadata").with_text_child("kind", kind_of(service));
            if !schedulers.is_empty() {
                let mut s = Element::new("schedulers");
                for sch in schedulers {
                    s.push_child(Element::new("scheduler").with_text(*sch));
                }
                metadata.push_child(s);
            }
            ServiceEntry {
                name: name.to_owned(),
                access_point: format!("http://{host}/soap/{service}"),
                wsdl_url: format!("http://{host}/wsdl/{service}"),
                metadata,
            }
        };
        let reg = &self.container_registry;
        reg.register(
            "/gce/scriptgen",
            entry("iu", "gateway.iu.edu", "BatchScriptGen", &["PBS", "GRD"]),
        )
        .expect("fresh registry");
        reg.register(
            "/gce/scriptgen",
            entry(
                "sdsc",
                "hotpage.sdsc.edu",
                "BatchScriptGen",
                &["LSF", "NQS"],
            ),
        )
        .expect("fresh registry");
        reg.register(
            "/gce/jobsub",
            entry("sdsc", "grid.sdsc.edu", "JobSubmission", &[]),
        )
        .expect("fresh registry");
        reg.register(
            "/gce/data",
            entry("sdsc", "grid.sdsc.edu", "DataManagement", &[]),
        )
        .expect("fresh registry");
        reg.register(
            "/gce/context",
            entry("iu", "gateway.iu.edu", "ContextManager", &[]),
        )
        .expect("fresh registry");
    }
}

fn kind_of(service: &str) -> &'static str {
    match service {
        "BatchScriptGen" => "scriptgen",
        "JobSubmission" => "jobsub",
        "DataManagement" => "datamgmt",
        "ContextManager" => "context",
        _ => "other",
    }
}

/// One grid host plus its schedulers and queues.
type HostTopology = (
    portalws_gridsim::grid::HostSpec,
    Vec<(
        portalws_gridsim::sched::SchedulerKind,
        Vec<portalws_gridsim::queue::QueueSpec>,
    )>,
);

fn testbed_hosts() -> Vec<HostTopology> {
    use portalws_gridsim::grid::HostSpec;
    use portalws_gridsim::queue::QueueSpec;
    use portalws_gridsim::sched::SchedulerKind;
    vec![
        (
            HostSpec::new("tg-login", "tg-login.sdsc.edu", 32),
            vec![
                (
                    SchedulerKind::Pbs,
                    vec![
                        QueueSpec::new("batch", 32, 720),
                        QueueSpec::new("debug", 4, 30),
                    ],
                ),
                (SchedulerKind::Lsf, vec![QueueSpec::new("normal", 16, 360)]),
            ],
        ),
        (
            HostSpec::new("modi4", "modi4.ucs.indiana.edu", 32),
            vec![
                (SchedulerKind::Nqs, vec![QueueSpec::new("batch", 32, 720)]),
                (
                    SchedulerKind::Grd,
                    vec![
                        QueueSpec::new("normal", 16, 360),
                        QueueSpec::new("long", 32, 2880),
                    ],
                ),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_soap::SoapValue;

    #[test]
    fn topology_stands_up_in_memory() {
        let d = PortalDeployment::in_memory(SecurityMode::Open);
        assert_eq!(d.hosts().len(), 5);
        assert_eq!(d.uddi.service_count(), 5);
        assert_eq!(d.container_registry.entry_count(), 5);
    }

    #[test]
    fn endpoint_resolution() {
        let d = PortalDeployment::in_memory(SecurityMode::Open);
        let (t, svc) = d
            .resolve_endpoint("http://grid.sdsc.edu/soap/JobSubmission")
            .unwrap();
        assert_eq!(svc, "JobSubmission");
        let client = SoapClient::new(t, svc);
        let hosts = client.call("listHosts", &[]).unwrap();
        assert_eq!(hosts.as_array().unwrap().len(), 2);
        assert!(d.resolve_endpoint("ftp://x/y").is_err());
        assert!(d.resolve_endpoint("http://unknown.host/soap/X").is_err());
    }

    #[test]
    fn open_mode_serves_unauthenticated_calls() {
        let d = PortalDeployment::in_memory(SecurityMode::Open);
        let client = SoapClient::new(d.transport("hotpage.sdsc.edu").unwrap(), "BatchScriptGen");
        let out = client.call("supportedSchedulers", &[]).unwrap();
        assert_eq!(out.as_array().unwrap().len(), 2);
    }

    #[test]
    fn central_mode_rejects_unauthenticated_calls() {
        let d = PortalDeployment::in_memory(SecurityMode::Central);
        let client = SoapClient::new(d.transport("grid.sdsc.edu").unwrap(), "JobSubmission");
        assert!(client.call("listHosts", &[]).is_err());
        // But the registry stays public.
        let reg = SoapClient::new(d.transport("registry.gce.org").unwrap(), "Uddi");
        assert!(reg.call("findService", &[SoapValue::str("script")]).is_ok());
    }

    #[test]
    fn wsdl_published_for_every_service() {
        let d = PortalDeployment::in_memory(SecurityMode::Open);
        for (host, service) in [
            ("registry.gce.org", "Uddi"),
            ("registry.gce.org", "ContainerRegistry"),
            ("auth.gce.org", "Authentication"),
            ("grid.sdsc.edu", "JobSubmission"),
            ("grid.sdsc.edu", "DataManagement"),
            ("grid.sdsc.edu", "BatchJob"),
            ("grid.sdsc.edu", "AppFactory"),
            ("gateway.iu.edu", "ContextTree"),
            ("gateway.iu.edu", "ContextProperty"),
            ("gateway.iu.edu", "ContextArchive"),
            ("gateway.iu.edu", "BatchScriptGen"),
            ("gateway.iu.edu", "ContextManager"),
            ("hotpage.sdsc.edu", "BatchScriptGen"),
        ] {
            let t = d.transport(host).unwrap();
            let wsdl = portalws_wsdl::handler::fetch_wsdl(&*t, service)
                .unwrap_or_else(|e| panic!("no WSDL for {service} on {host}: {e}"));
            assert_eq!(wsdl.service, service);
            assert!(wsdl.endpoint.as_deref().unwrap_or("").contains(host));
        }
    }

    #[test]
    fn over_tcp_round_trip() {
        let d = PortalDeployment::over_tcp(SecurityMode::Open);
        let client = SoapClient::new(d.transport("grid.sdsc.edu").unwrap(), "JobSubmission");
        let hosts = client.call("listHosts", &[]).unwrap();
        assert_eq!(hosts.as_array().unwrap().len(), 2);
    }

    #[test]
    fn pooled_deployment_round_trip_and_reuse() {
        let d = PortalDeployment::over_tcp_pooled(SecurityMode::Open);
        assert_eq!(d.transport_mode(), TransportMode::TcpPooled);
        let t = d.transport("grid.sdsc.edu").unwrap();
        let client = SoapClient::new(Arc::clone(&t), "JobSubmission");
        for _ in 0..4 {
            let hosts = client.call("listHosts", &[]).unwrap();
            assert_eq!(hosts.as_array().unwrap().len(), 2);
        }
        let snap = t.stats().snapshot();
        assert_eq!(snap.connections, 1, "one dial for four calls");
        assert_eq!(snap.pool_reuse_hits, 3);
    }

    #[test]
    fn reactor_arm_round_trip_and_reuse() {
        // The full topology on the reactor server arm: SOAP round trips
        // work and pooled keep-alive connections stay reusable, i.e. the
        // reactor honors `Connection: keep-alive` across exchanges.
        let d = PortalDeployment::over_tcp_pooled_reactor(SecurityMode::Open);
        assert_eq!(d.server_arm(), ServerArm::Reactor);
        assert_eq!(d.transport_mode(), TransportMode::TcpPooled);
        let t = d.transport("grid.sdsc.edu").unwrap();
        let client = SoapClient::new(Arc::clone(&t), "JobSubmission");
        for _ in 0..4 {
            let hosts = client.call("listHosts", &[]).unwrap();
            assert_eq!(hosts.as_array().unwrap().len(), 2);
        }
        let snap = t.stats().snapshot();
        assert_eq!(snap.connections, 1, "one dial for four calls");
        assert_eq!(snap.pool_reuse_hits, 3);
        let server = d.server_wire_stats("grid.sdsc.edu").unwrap().snapshot();
        assert_eq!(server.requests, 4);
        assert!(server.connections_high_water >= 1, "{server:?}");
    }

    #[test]
    fn tuned_deployment_serves_on_both_arms() {
        // The production posture: explicit admission bounds on every
        // host. Under nominal load nothing sheds and both arms serve the
        // full topology normally.
        let config = ServerConfig {
            workers: 2,
            queue_cap: Some(64),
            max_connections: 128,
            shed_retry_after_ms: 25,
        };
        for arm in [ServerArm::Blocking, ServerArm::Reactor] {
            let d = PortalDeployment::over_tcp_pooled_tuned(SecurityMode::Open, arm, config);
            assert_eq!(d.server_arm(), arm);
            let client = SoapClient::new(d.transport("grid.sdsc.edu").unwrap(), "JobSubmission");
            for _ in 0..3 {
                let hosts = client.call("listHosts", &[]).unwrap();
                assert_eq!(hosts.as_array().unwrap().len(), 2);
            }
            let stats = d.server_wire_stats("grid.sdsc.edu").unwrap().snapshot();
            assert_eq!(stats.requests, 3);
            assert_eq!(stats.shed_queue_full, 0, "nominal load never sheds");
        }
    }

    #[test]
    fn tenant_quotas_shed_busy_and_count_on_server_stats() {
        let d = PortalDeployment::over_tcp_pooled(SecurityMode::Local);
        d.enable_tenant_quotas(portalws_auth::TenantQuotas::new(
            portalws_auth::QuotaConfig {
                burst: 2.0,
                refill_per_sec: 0.001,
            },
        ));
        let ui = crate::ui::UiServer::new(Arc::clone(&d));
        ui.login("alice@GCE.ORG", "alice-pass").unwrap();
        let client = ui.proxy("grid.sdsc.edu", "JobSubmission").unwrap();
        for _ in 0..2 {
            client.call("listHosts", &[]).unwrap();
        }
        let err = client.call("listHosts", &[]).unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(portalws_soap::PortalErrorKind::Busy),
            "third call in the burst sheds as Busy"
        );
        let stats = d.server_wire_stats("grid.sdsc.edu").unwrap().snapshot();
        assert_eq!(
            stats.shed_quota, 1,
            "quota shed lands on the host's counters"
        );
        // A fresh tenant is untouched by alice's exhaustion.
        let ui2 = crate::ui::UiServer::new(Arc::clone(&d));
        ui2.login("bob@GCE.ORG", "bob-pass").unwrap();
        let bob = ui2.proxy("grid.sdsc.edu", "JobSubmission").unwrap();
        assert!(bob.call("listHosts", &[]).is_ok());
    }

    #[test]
    fn per_call_mode_stays_the_2002_regime() {
        let d = PortalDeployment::over_tcp(SecurityMode::Open);
        assert_eq!(d.transport_mode(), TransportMode::TcpPerCall);
        let t = d.transport("grid.sdsc.edu").unwrap();
        let client = SoapClient::new(Arc::clone(&t), "JobSubmission");
        for _ in 0..3 {
            client.call("listHosts", &[]).unwrap();
        }
        let snap = t.stats().snapshot();
        assert_eq!(snap.connections, 3, "a dial per call, as in 2002");
        assert_eq!(snap.pool_reuse_hits, 0);
    }

    #[test]
    fn central_auth_verification_hop_rides_the_pool() {
        // In Central mode every guarded SSP call triggers a verification
        // call to auth.gce.org (Fig. 2); under the pooled deployment that
        // hop reuses a pooled connection instead of dialing per call.
        let d = PortalDeployment::over_tcp_pooled(SecurityMode::Central);
        let ui = crate::ui::UiServer::new(Arc::clone(&d));
        ui.login("alice@GCE.ORG", "alice-pass").unwrap();
        let client = ui.proxy("grid.sdsc.edu", "JobSubmission").unwrap();
        for _ in 0..3 {
            client.call("listHosts", &[]).unwrap();
        }
        let auth_t = d.transport("auth.gce.org").unwrap();
        let snap = auth_t.stats().snapshot();
        assert!(
            snap.pool_reuse_hits >= 1,
            "verification hop reused pooled connections: {snap:?}"
        );
        assert!(snap.connections < snap.requests, "fewer dials than calls");
    }

    #[test]
    fn chaotic_deployment_replays_identically_from_the_same_seed() {
        // Two deployments under the same master seed must produce the
        // same per-class fault counts for the same call sequence — that
        // is the whole point of printing a seed on soak failure.
        let counts = |seed: u64| {
            let d = PortalDeployment::with_chaos(
                SecurityMode::Open,
                TransportMode::InMemory,
                ChaosPolicy::moderate(seed),
            );
            let t = d.transport("grid.sdsc.edu").unwrap();
            let client = SoapClient::new(Arc::clone(&t), "JobSubmission");
            for _ in 0..40 {
                let _ = client.call("listHosts", &[]);
            }
            let snap = t.stats().snapshot();
            portalws_wire::ChaosClass::ALL
                .iter()
                .map(|c| snap.chaos_class(*c))
                .collect::<Vec<u64>>()
        };
        let a = counts(0xE12_0001);
        let b = counts(0xE12_0001);
        let c = counts(0xE12_0002);
        assert_eq!(a, b, "same seed, same fault sequence");
        assert!(a.iter().sum::<u64>() > 0, "moderate chaos injected faults");
        assert_ne!(a, c, "different seeds explore different sequences");
    }

    #[test]
    fn chaos_policy_fans_out_per_host() {
        let d = PortalDeployment::with_chaos(
            SecurityMode::Open,
            TransportMode::InMemory,
            ChaosPolicy::from_seed(7),
        );
        assert_eq!(d.chaos_policy().map(|p| p.seed), Some(7));
        // Transports on different hosts still answer (chaos is a wrapper,
        // not a replacement), and calls can succeed under a from_seed mix.
        let client = SoapClient::new(d.transport("hotpage.sdsc.edu").unwrap(), "BatchScriptGen");
        let mut ok = 0;
        for _ in 0..30 {
            if client.call("supportedSchedulers", &[]).is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 0, "some calls survive the fault schedule");
    }

    #[test]
    fn sharded_deployment_serves_data_management_end_to_end() {
        let d = PortalDeployment::in_memory_sharded(SecurityMode::Open, 4);
        let router = d.data_shards.as_ref().expect("sharded deployment");
        assert_eq!(router.backends().len(), 4);
        let c = SoapClient::new(d.transport("grid.sdsc.edu").unwrap(), "DataManagement");
        // The testbed namespace is reachable through the router.
        let readme = c.call("cat", &[SoapValue::str("/public/README")]).unwrap();
        assert_eq!(readme.as_str(), Some("GCE testbed public collection\n"));
        // Root listing merges every shard: both homes plus /public.
        let root = c.call("ls", &[SoapValue::str("/")]).unwrap();
        assert_eq!(root.as_array().unwrap().len(), 3);
        // A cross-shard move through the SOAP surface leaves exactly one
        // visible copy.
        let mut tops = vec!["/public".to_owned()];
        for i in 0..100 {
            let cand = format!("/exp-{i}");
            if router.owner_of(&cand) != router.owner_of("/public") {
                c.call("mkdir", &[SoapValue::str(cand.clone())]).unwrap();
                tops.push(cand);
                break;
            }
        }
        let dst = format!("{}/README", tops[1]);
        c.call(
            "rename",
            &[
                SoapValue::str("/public/README"),
                SoapValue::str(dst.clone()),
            ],
        )
        .unwrap();
        assert!(c.call("cat", &[SoapValue::str("/public/README")]).is_err());
        assert_eq!(
            c.call("cat", &[SoapValue::str(dst)]).unwrap().as_str(),
            Some("GCE testbed public collection\n")
        );
        assert_eq!(router.pending_moves(), 0);
        // Unsharded deployments advertise no router.
        let plain = PortalDeployment::in_memory(SecurityMode::Open);
        assert!(plain.data_shards.is_none());
    }

    #[test]
    fn uddi_string_search_has_the_known_false_positive() {
        let d = PortalDeployment::in_memory(SecurityMode::Open);
        // "PBS" matches both script generators: IU genuinely supports it,
        // SDSC's description merely mentions it historically.
        let pbs_hits = d.uddi.find_service("PBS");
        assert_eq!(pbs_hits.len(), 2);
        // The typed registry gets it right.
        let typed = d.container_registry.query("schedulers/scheduler", "PBS");
        assert_eq!(typed.len(), 1);
        assert_eq!(typed[0].1.name, "iu");
    }
}
