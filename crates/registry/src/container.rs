//! The paper's proposed discovery system: "a recursive, self-describing
//! XML container hierarchy into which metadata about services may be
//! flexibly mapped" (§3.4).
//!
//! Containers form a slash-separated namespace (`/gce/scriptgen/...`);
//! every [`ServiceEntry`] carries an arbitrary XML metadata document, and
//! queries are typed path expressions over that metadata
//! (`schedulers/scheduler == "LSF"`) rather than substring conventions.
//! Experiment E7 contrasts this registry's precision/recall against the
//! UDDI string search on the same service population.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use portalws_xml::{path, Element};

use crate::{RegistryError, Result};

/// A registered service with typed metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceEntry {
    /// Entry name (unique within its container).
    pub name: String,
    /// SOAP endpoint URL.
    pub access_point: String,
    /// WSDL document URL.
    pub wsdl_url: String,
    /// Arbitrary self-describing metadata.
    pub metadata: Element,
}

/// One node in the container hierarchy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Container {
    /// Container name (path segment).
    pub name: String,
    /// Child containers.
    pub children: Vec<Container>,
    /// Entries registered directly in this container.
    pub entries: Vec<ServiceEntry>,
}

impl Container {
    fn child_mut(&mut self, name: &str) -> Option<&mut Container> {
        self.children.iter_mut().find(|c| c.name == name)
    }

    fn child(&self, name: &str) -> Option<&Container> {
        self.children.iter().find(|c| c.name == name)
    }

    fn ensure_child(&mut self, name: &str) -> &mut Container {
        // (The borrow checker rejects the `iter_mut().find()` + push
        // fallback form, so both arms carry an audited index/expect.)
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            // portalint: allow(panic) — index produced by position() on the same vec
            &mut self.children[i]
        } else {
            self.children.push(Container {
                name: name.to_owned(),
                ..Default::default()
            });
            // portalint: allow(panic) — the push on the line above makes last_mut Some
            self.children.last_mut().expect("just pushed")
        }
    }

    fn visit<'c>(&'c self, prefix: &str, out: &mut Vec<(String, &'c ServiceEntry)>) {
        for entry in &self.entries {
            out.push((format!("{prefix}/{}", entry.name), entry));
        }
        for child in &self.children {
            child.visit(&format!("{prefix}/{}", child.name), out);
        }
    }

    /// Serialize this container subtree as self-describing XML.
    pub fn to_xml(&self) -> Element {
        let mut el = Element::new("container").with_attr("name", self.name.clone());
        for entry in &self.entries {
            el.push_child(
                Element::new("entry")
                    .with_attr("name", entry.name.clone())
                    .with_text_child("accessPoint", entry.access_point.clone())
                    .with_text_child("wsdlUrl", entry.wsdl_url.clone())
                    .with_child(Element::new("metadata").with_child(entry.metadata.clone())),
            );
        }
        for child in &self.children {
            el.push_child(child.to_xml());
        }
        el
    }

    /// Parse a subtree serialized by [`Container::to_xml`].
    pub fn from_xml(el: &Element) -> Result<Container> {
        if el.local_name() != "container" {
            return Err(RegistryError::Invalid(format!(
                "expected container, found {:?}",
                el.local_name()
            )));
        }
        let mut c = Container {
            name: el.attr("name").unwrap_or("").to_owned(),
            ..Default::default()
        };
        for child in el.children() {
            match child.local_name() {
                "entry" => {
                    let metadata = child
                        .find("metadata")
                        .and_then(|m| m.children().next().cloned())
                        .unwrap_or_else(|| Element::new("metadata"));
                    c.entries.push(ServiceEntry {
                        name: child.attr("name").unwrap_or("").to_owned(),
                        access_point: child.find_text("accessPoint").unwrap_or("").to_owned(),
                        wsdl_url: child.find_text("wsdlUrl").unwrap_or("").to_owned(),
                        metadata,
                    });
                }
                "container" => c.children.push(Container::from_xml(child)?),
                other => {
                    return Err(RegistryError::Invalid(format!(
                        "unexpected element {other:?} in container"
                    )))
                }
            }
        }
        Ok(c)
    }
}

/// The registry root plus thread-safe operations.
#[derive(Default)]
pub struct ContainerRegistry {
    root: RwLock<Container>,
    // Monotonic mutation generation; see `generation()`.
    generation: AtomicU64,
}

fn split_path(p: &str) -> Result<Vec<&str>> {
    let segs: Vec<&str> = p.split('/').filter(|s| !s.is_empty()).collect();
    if p.trim().is_empty() {
        return Err(RegistryError::Invalid("empty path".into()));
    }
    Ok(segs)
}

impl ContainerRegistry {
    /// New registry with an unnamed root.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current mutation generation: bumped once per successful mutation
    /// (register, unregister, create_container). Readers cache results
    /// against a generation and revalidate with this single number; the
    /// SOAP layer piggybacks it on every response header.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    // Bump after a mutation has been applied under the write lock. Release
    // ordering pairs with the Acquire load so a reader that observes the
    // new generation also observes the mutation it numbers.
    fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Create the container at `path` (and all intermediates).
    pub fn create_container(&self, path_str: &str) -> Result<()> {
        let segs = split_path(path_str)?;
        let mut root = self.root.write();
        let mut cur = &mut *root;
        for seg in segs {
            cur = cur.ensure_child(seg);
        }
        self.bump_generation();
        Ok(())
    }

    /// Register an entry inside the container at `path` (creating the
    /// container if needed). Fails on duplicate entry names.
    pub fn register(&self, path_str: &str, entry: ServiceEntry) -> Result<()> {
        let segs = split_path(path_str)?;
        let mut root = self.root.write();
        let mut cur = &mut *root;
        for seg in segs {
            cur = cur.ensure_child(seg);
        }
        if cur.entries.iter().any(|e| e.name == entry.name) {
            return Err(RegistryError::Duplicate(format!(
                "{path_str}/{}",
                entry.name
            )));
        }
        cur.entries.push(entry);
        self.bump_generation();
        Ok(())
    }

    /// Fetch an entry by full path (`/a/b/name`).
    pub fn lookup(&self, full_path: &str) -> Result<ServiceEntry> {
        let segs = split_path(full_path)?;
        let (entry_name, container_segs) = segs
            .split_last()
            .ok_or_else(|| RegistryError::Invalid("path has no entry name".into()))?;
        let root = self.root.read();
        let mut cur = &*root;
        for seg in container_segs {
            cur = cur
                .child(seg)
                .ok_or_else(|| RegistryError::NotFound(format!("container {seg:?}")))?;
        }
        cur.entries
            .iter()
            .find(|e| e.name == *entry_name)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound(full_path.to_owned()))
    }

    /// Remove an entry by full path.
    pub fn unregister(&self, full_path: &str) -> Result<()> {
        let segs = split_path(full_path)?;
        let (entry_name, container_segs) = segs
            .split_last()
            .ok_or_else(|| RegistryError::Invalid("path has no entry name".into()))?;
        let mut root = self.root.write();
        let mut cur = &mut *root;
        for seg in container_segs {
            cur = cur
                .child_mut(seg)
                .ok_or_else(|| RegistryError::NotFound(format!("container {seg:?}")))?;
        }
        let before = cur.entries.len();
        cur.entries.retain(|e| e.name != *entry_name);
        if cur.entries.len() == before {
            return Err(RegistryError::NotFound(full_path.to_owned()));
        }
        self.bump_generation();
        Ok(())
    }

    /// All entries with their full paths.
    pub fn all_entries(&self) -> Vec<(String, ServiceEntry)> {
        let root = self.root.read();
        let mut out = Vec::new();
        root.visit("", &mut out);
        out.into_iter().map(|(p, e)| (p, e.clone())).collect()
    }

    /// Typed metadata query: entries whose metadata has *any* value at
    /// `path_expr` equal to `value`. `path_expr` uses the xml path
    /// language relative to the metadata root, with repeated elements
    /// checked at every index (so `schedulers/scheduler` matches if any
    /// `<scheduler>` equals `value`).
    pub fn query(&self, path_expr: &str, value: &str) -> Vec<(String, ServiceEntry)> {
        self.all_entries()
            .into_iter()
            .filter(|(_, e)| metadata_matches(&e.metadata, path_expr, value))
            .collect()
    }

    /// Number of entries in the registry.
    pub fn entry_count(&self) -> usize {
        self.all_entries().len()
    }

    /// Serialize the whole registry (self-describing document).
    pub fn to_xml(&self) -> Element {
        let mut el = self.root.read().to_xml();
        el.set_attr("name", "registry");
        el
    }

    /// Load a registry from a serialized document.
    pub fn from_xml(el: &Element) -> Result<ContainerRegistry> {
        let root = Container::from_xml(el)?;
        Ok(ContainerRegistry {
            root: RwLock::new(root),
            generation: AtomicU64::new(0),
        })
    }
}

/// Check whether `metadata` has any value equal to `value` at `path_expr`,
/// trying successive indices on the final step for repeated elements.
fn metadata_matches(metadata: &Element, path_expr: &str, value: &str) -> bool {
    // Fast path: direct match on the expression as given.
    if path::value_at(metadata, path_expr).is_ok_and(|v| v == value) {
        return true;
    }
    // Then walk repeated final elements: a/b, a/b[1], a/b[2], …
    if path_expr.ends_with(']') || path_expr.contains('@') {
        return false;
    }
    for i in 1..64 {
        match path::value_at(metadata, &format!("{path_expr}[{i}]")) {
            Ok(v) if v == value => return true,
            Ok(_) => continue,
            Err(_) => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scriptgen_entry(name: &str, schedulers: &[&str]) -> ServiceEntry {
        let mut scheds = Element::new("schedulers");
        for s in schedulers {
            scheds.push_child(Element::new("scheduler").with_text(*s));
        }
        ServiceEntry {
            name: name.to_owned(),
            access_point: format!("http://{name}:8080/soap/BatchScriptGen"),
            wsdl_url: format!("http://{name}:8080/wsdl/BatchScriptGen"),
            metadata: Element::new("serviceMetadata")
                .with_text_child("kind", "scriptgen")
                .with_child(scheds),
        }
    }

    fn populated() -> ContainerRegistry {
        let reg = ContainerRegistry::new();
        reg.register("/gce/scriptgen", scriptgen_entry("iu", &["PBS", "GRD"]))
            .unwrap();
        reg.register("/gce/scriptgen", scriptgen_entry("sdsc", &["LSF", "NQS"]))
            .unwrap();
        reg.register("/gce/jobsub", scriptgen_entry("npaci", &["PBS"]))
            .unwrap();
        reg
    }

    #[test]
    fn register_and_lookup() {
        let reg = populated();
        let e = reg.lookup("/gce/scriptgen/iu").unwrap();
        assert!(e.access_point.contains("iu"));
        assert!(reg.lookup("/gce/scriptgen/ghost").is_err());
        assert!(reg.lookup("/nosuch/x").is_err());
    }

    #[test]
    fn duplicate_entry_rejected() {
        let reg = populated();
        let err = reg
            .register("/gce/scriptgen", scriptgen_entry("iu", &["PBS"]))
            .unwrap_err();
        assert!(matches!(err, RegistryError::Duplicate(_)));
    }

    #[test]
    fn typed_query_is_exact() {
        let reg = populated();
        // LSF matches only the SDSC service — no substring false positives.
        let hits = reg.query("schedulers/scheduler", "LSF");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.name, "sdsc");
        // PBS appears in two services' metadata.
        assert_eq!(reg.query("schedulers/scheduler", "PBS").len(), 2);
        // Repeated-element matching reaches the second scheduler.
        assert_eq!(reg.query("schedulers/scheduler", "GRD").len(), 1);
        assert_eq!(reg.query("schedulers/scheduler", "NQS").len(), 1);
    }

    #[test]
    fn query_by_kind() {
        let reg = populated();
        assert_eq!(reg.query("kind", "scriptgen").len(), 3);
        assert_eq!(reg.query("kind", "datamgmt").len(), 0);
    }

    #[test]
    fn unregister_removes() {
        let reg = populated();
        reg.unregister("/gce/scriptgen/iu").unwrap();
        assert!(reg.lookup("/gce/scriptgen/iu").is_err());
        assert_eq!(reg.entry_count(), 2);
        assert!(reg.unregister("/gce/scriptgen/iu").is_err());
    }

    #[test]
    fn all_entries_carry_full_paths() {
        let reg = populated();
        let mut paths: Vec<String> = reg.all_entries().into_iter().map(|(p, _)| p).collect();
        paths.sort();
        assert_eq!(
            paths,
            vec![
                "/gce/jobsub/npaci",
                "/gce/scriptgen/iu",
                "/gce/scriptgen/sdsc"
            ]
        );
    }

    #[test]
    fn xml_round_trip() {
        let reg = populated();
        let doc = reg.to_xml();
        let restored = ContainerRegistry::from_xml(&doc).unwrap();
        assert_eq!(restored.entry_count(), 3);
        assert_eq!(
            restored.lookup("/gce/scriptgen/sdsc").unwrap(),
            reg.lookup("/gce/scriptgen/sdsc").unwrap()
        );
        // Queries behave identically after the round trip.
        assert_eq!(restored.query("schedulers/scheduler", "LSF").len(), 1);
    }

    #[test]
    fn deep_nesting() {
        let reg = ContainerRegistry::new();
        reg.create_container("/a/b/c/d/e").unwrap();
        reg.register("/a/b/c/d/e", scriptgen_entry("deep", &["PBS"]))
            .unwrap();
        assert!(reg.lookup("/a/b/c/d/e/deep").is_ok());
    }

    #[test]
    fn generation_bumps_on_every_mutation_only() {
        let reg = ContainerRegistry::new();
        assert_eq!(reg.generation(), 0);
        reg.create_container("/gce").unwrap();
        assert_eq!(reg.generation(), 1);
        reg.register("/gce/scriptgen", scriptgen_entry("iu", &["PBS"]))
            .unwrap();
        assert_eq!(reg.generation(), 2);
        reg.unregister("/gce/scriptgen/iu").unwrap();
        assert_eq!(reg.generation(), 3);
        // Failed mutations and reads leave the generation alone.
        assert!(reg.unregister("/gce/scriptgen/iu").is_err());
        let _ = reg.query("kind", "scriptgen");
        let _ = reg.entry_count();
        assert_eq!(reg.generation(), 3);
    }

    #[test]
    fn empty_path_invalid() {
        let reg = ContainerRegistry::new();
        assert!(matches!(
            reg.create_container("  "),
            Err(RegistryError::Invalid(_))
        ));
    }

    #[test]
    fn bad_container_xml_rejected() {
        let el = Element::parse("<container><bogus/></container>").unwrap();
        assert!(Container::from_xml(&el).is_err());
        let el = Element::parse("<notcontainer/>").unwrap();
        assert!(Container::from_xml(&el).is_err());
    }
}
