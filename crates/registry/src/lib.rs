//! Service discovery: UDDI and the paper's proposed replacement.
//!
//! §3.4 of the paper reports two findings about discovery:
//!
//! 1. **UDDI worked structurally but not semantically.** Mapping portal
//!    groups to `businessEntity` and services to `businessService` "were
//!    reasonable, but UDDI lacked flexible descriptions that could be used
//!    to distinguish between something as simple as one script generator
//!    service that supports PBS and GRD and another that supports LSF and
//!    NQS". The groups fell back to free-text description strings, which
//!    "works only by convention". [`uddi`] reproduces that system,
//!    including the string-matching search whose imprecision experiment E7
//!    measures.
//! 2. **A better registry is "a recursive, self-describing XML container
//!    hierarchy into which metadata about services may be flexibly
//!    mapped".** [`container`] implements that proposal: a tree of named
//!    containers, each entry carrying arbitrary XML metadata, queried with
//!    typed path expressions instead of substring conventions.
//!
//! [`soap_api`] wraps both registries as SOAP services, because "UDDI is a
//! specialized Web Service" — discovery itself is just another service in
//! Figure 1. [`wsil`] implements the *decentralized* alternative §2 also
//! lists: per-host Web Services Inspection Language documents.

pub mod container;
pub mod soap_api;
pub mod uddi;
pub mod wsil;

pub use container::{Container, ContainerRegistry, ServiceEntry};
pub use soap_api::{ContainerRegistryService, UddiService};
pub use uddi::{BindingTemplate, BusinessEntity, BusinessService, TModel, UddiRegistry};
pub use wsil::{InspectionDocument, WsilHandler, WsilService};

use std::fmt;

/// Errors raised by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A referenced key or path does not exist.
    NotFound(String),
    /// An entity with the same identity already exists.
    Duplicate(String),
    /// Malformed input (bad path, bad metadata XML).
    Invalid(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NotFound(what) => write!(f, "not found: {what}"),
            RegistryError::Duplicate(what) => write!(f, "duplicate: {what}"),
            RegistryError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RegistryError>;
