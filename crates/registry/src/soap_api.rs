//! SOAP facades for both registries.
//!
//! "UDDI is a specialized Web Service" (§3.4) — so discovery is exposed
//! through the same SOAP machinery as every other portal service. The UI
//! server's find→bind flow in Figure 1 talks to [`UddiService`]; the E7
//! comparison talks to both services over identical transports so that
//! query latencies are measured on equal footing.

use std::sync::Arc;

use portalws_soap::{
    CallContext, Fault, MethodDesc, PortalErrorKind, SoapResult, SoapService, SoapType, SoapValue,
};
use portalws_xml::Element;

use crate::container::{ContainerRegistry, ServiceEntry};
use crate::uddi::{BindingTemplate, ServiceHit, UddiRegistry};

/// SOAP wrapper around [`UddiRegistry`].
pub struct UddiService {
    registry: Arc<UddiRegistry>,
}

impl UddiService {
    /// Wrap a registry.
    pub fn new(registry: Arc<UddiRegistry>) -> Self {
        UddiService { registry }
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &Arc<UddiRegistry> {
        &self.registry
    }
}

fn arg_str<'a>(args: &'a [(String, SoapValue)], i: usize, name: &str) -> SoapResult<&'a str> {
    args.get(i)
        .and_then(|(_, v)| v.as_str())
        .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, format!("missing {name}")))
}

fn hit_to_value(hit: &ServiceHit) -> SoapValue {
    SoapValue::Struct(vec![
        ("business".into(), SoapValue::str(hit.business.clone())),
        ("key".into(), SoapValue::str(hit.key.clone())),
        ("name".into(), SoapValue::str(hit.name.clone())),
        (
            "description".into(),
            SoapValue::str(hit.description.clone()),
        ),
        (
            "accessPoint".into(),
            SoapValue::str(hit.access_point.clone().unwrap_or_default()),
        ),
    ])
}

impl SoapService for UddiService {
    fn name(&self) -> &str {
        "Uddi"
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        _ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        match method {
            "publishBusiness" => {
                let name = arg_str(args, 0, "name")?;
                let desc = arg_str(args, 1, "description")?;
                let key = self
                    .registry
                    .publish_business(name, desc)
                    .map_err(|e| Fault::portal(PortalErrorKind::BadArguments, e.to_string()))?;
                Ok(SoapValue::str(key))
            }
            "publishService" => {
                let business_key = arg_str(args, 0, "businessKey")?;
                let name = arg_str(args, 1, "name")?;
                let desc = arg_str(args, 2, "description")?;
                let access_point = arg_str(args, 3, "accessPoint")?;
                let key = self
                    .registry
                    .publish_service(
                        business_key,
                        name,
                        desc,
                        vec![BindingTemplate {
                            access_point: access_point.to_owned(),
                            tmodel_keys: vec![],
                        }],
                    )
                    .map_err(|e| Fault::portal(PortalErrorKind::NotFound, e.to_string()))?;
                Ok(SoapValue::str(key))
            }
            "findService" => {
                let keyword = arg_str(args, 0, "keyword")?;
                let hits = self.registry.find_service(keyword);
                Ok(SoapValue::Array(hits.iter().map(hit_to_value).collect()))
            }
            "findBusiness" => {
                let keyword = arg_str(args, 0, "keyword")?;
                let hits = self.registry.find_business(keyword);
                Ok(SoapValue::Array(
                    hits.iter()
                        .map(|b| {
                            SoapValue::Struct(vec![
                                ("key".into(), SoapValue::str(b.key.clone())),
                                ("name".into(), SoapValue::str(b.name.clone())),
                            ])
                        })
                        .collect(),
                ))
            }
            "generation" => Ok(SoapValue::Int(self.registry.generation() as i64)),
            other => Err(Fault::client(format!("Uddi has no method {other:?}"))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        vec![
            MethodDesc::new(
                "publishBusiness",
                vec![
                    ("name", SoapType::String),
                    ("description", SoapType::String),
                ],
                SoapType::String,
                "Register a business entity; returns its key",
            ),
            MethodDesc::new(
                "publishService",
                vec![
                    ("businessKey", SoapType::String),
                    ("name", SoapType::String),
                    ("description", SoapType::String),
                    ("accessPoint", SoapType::String),
                ],
                SoapType::String,
                "Register a service under a business; returns its key",
            ),
            MethodDesc::new(
                "findService",
                vec![("keyword", SoapType::String)],
                SoapType::Array,
                "Substring search over service names and descriptions",
            ),
            MethodDesc::new(
                "findBusiness",
                vec![("keyword", SoapType::String)],
                SoapType::Array,
                "Substring search over business names",
            ),
            MethodDesc::new(
                "generation",
                vec![],
                SoapType::Int,
                "Current mutation generation (cheap cache revalidation probe)",
            ),
        ]
    }

    fn generation(&self) -> Option<u64> {
        Some(self.registry.generation())
    }
}

/// SOAP wrapper around [`ContainerRegistry`].
pub struct ContainerRegistryService {
    registry: Arc<ContainerRegistry>,
}

impl ContainerRegistryService {
    /// Wrap a registry.
    pub fn new(registry: Arc<ContainerRegistry>) -> Self {
        ContainerRegistryService { registry }
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &Arc<ContainerRegistry> {
        &self.registry
    }
}

fn entry_to_value(path: &str, entry: &ServiceEntry) -> SoapValue {
    SoapValue::Struct(vec![
        ("path".into(), SoapValue::str(path)),
        ("name".into(), SoapValue::str(entry.name.clone())),
        (
            "accessPoint".into(),
            SoapValue::str(entry.access_point.clone()),
        ),
        ("wsdlUrl".into(), SoapValue::str(entry.wsdl_url.clone())),
        ("metadata".into(), SoapValue::Xml(entry.metadata.clone())),
    ])
}

impl SoapService for ContainerRegistryService {
    fn name(&self) -> &str {
        "ContainerRegistry"
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        _ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        match method {
            "register" => {
                let path = arg_str(args, 0, "path")?;
                let name = arg_str(args, 1, "name")?;
                let access_point = arg_str(args, 2, "accessPoint")?;
                let wsdl_url = arg_str(args, 3, "wsdlUrl")?;
                let metadata = args
                    .get(4)
                    .and_then(|(_, v)| v.as_xml())
                    .cloned()
                    .unwrap_or_else(|| Element::new("metadata"));
                self.registry
                    .register(
                        path,
                        ServiceEntry {
                            name: name.to_owned(),
                            access_point: access_point.to_owned(),
                            wsdl_url: wsdl_url.to_owned(),
                            metadata,
                        },
                    )
                    .map_err(|e| Fault::portal(PortalErrorKind::BadArguments, e.to_string()))?;
                Ok(SoapValue::Null)
            }
            "lookup" => {
                let path = arg_str(args, 0, "path")?;
                let entry = self
                    .registry
                    .lookup(path)
                    .map_err(|e| Fault::portal(PortalErrorKind::NotFound, e.to_string()))?;
                Ok(entry_to_value(path, &entry))
            }
            "query" => {
                let path_expr = arg_str(args, 0, "pathExpr")?;
                let value = arg_str(args, 1, "value")?;
                let hits = self.registry.query(path_expr, value);
                Ok(SoapValue::Array(
                    hits.iter().map(|(p, e)| entry_to_value(p, e)).collect(),
                ))
            }
            "generation" => Ok(SoapValue::Int(self.registry.generation() as i64)),
            other => Err(Fault::client(format!(
                "ContainerRegistry has no method {other:?}"
            ))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        vec![
            MethodDesc::new(
                "register",
                vec![
                    ("path", SoapType::String),
                    ("name", SoapType::String),
                    ("accessPoint", SoapType::String),
                    ("wsdlUrl", SoapType::String),
                    ("metadata", SoapType::Xml),
                ],
                SoapType::Void,
                "Register a service entry with typed metadata",
            ),
            MethodDesc::new(
                "lookup",
                vec![("path", SoapType::String)],
                SoapType::Struct,
                "Fetch an entry by full path",
            ),
            MethodDesc::new(
                "query",
                vec![("pathExpr", SoapType::String), ("value", SoapType::String)],
                SoapType::Array,
                "Typed metadata query over all entries",
            ),
            MethodDesc::new(
                "generation",
                vec![],
                SoapType::Int,
                "Current mutation generation (cheap cache revalidation probe)",
            ),
        ]
    }

    fn generation(&self) -> Option<u64> {
        Some(self.registry.generation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_soap::{SoapClient, SoapServer};
    use portalws_wire::{Handler, InMemoryTransport};

    fn clients() -> (SoapClient, SoapClient) {
        let server = SoapServer::new();
        server.mount(Arc::new(UddiService::new(Arc::new(UddiRegistry::new()))));
        server.mount(Arc::new(ContainerRegistryService::new(Arc::new(
            ContainerRegistry::new(),
        ))));
        let handler: Arc<dyn Handler> = Arc::new(server);
        let t1: Arc<InMemoryTransport> = Arc::new(InMemoryTransport::new(Arc::clone(&handler)));
        let t2: Arc<InMemoryTransport> = Arc::new(InMemoryTransport::new(handler));
        (
            SoapClient::new(t1, "Uddi"),
            SoapClient::new(t2, "ContainerRegistry"),
        )
    }

    #[test]
    fn uddi_publish_and_find_over_soap() {
        let (uddi, _) = clients();
        let key = uddi
            .call(
                "publishBusiness",
                &[SoapValue::str("SDSC"), SoapValue::str("portal group")],
            )
            .unwrap();
        let key = key.as_str().unwrap().to_owned();
        uddi.call(
            "publishService",
            &[
                SoapValue::str(key),
                SoapValue::str("BatchScriptGenerator"),
                SoapValue::str("Supports LSF and NQS"),
                SoapValue::str("http://sdsc:1/soap/BatchScriptGen"),
            ],
        )
        .unwrap();
        let hits = uddi.call("findService", &[SoapValue::str("lsf")]).unwrap();
        let hits = hits.as_array().unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].field("accessPoint").and_then(|v| v.as_str()),
            Some("http://sdsc:1/soap/BatchScriptGen")
        );
    }

    #[test]
    fn uddi_bad_business_key_is_not_found_fault() {
        let (uddi, _) = clients();
        let err = uddi
            .call(
                "publishService",
                &[
                    SoapValue::str("uuid:biz-404"),
                    SoapValue::str("S"),
                    SoapValue::str(""),
                    SoapValue::str("http://x"),
                ],
            )
            .unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::NotFound)
        );
    }

    #[test]
    fn container_register_query_over_soap() {
        let (_, creg) = clients();
        let metadata = Element::new("serviceMetadata").with_child(
            Element::new("schedulers")
                .with_child(Element::new("scheduler").with_text("LSF"))
                .with_child(Element::new("scheduler").with_text("NQS")),
        );
        creg.call(
            "register",
            &[
                SoapValue::str("/gce/scriptgen"),
                SoapValue::str("sdsc"),
                SoapValue::str("http://sdsc:1/soap/BatchScriptGen"),
                SoapValue::str("http://sdsc:1/wsdl/BatchScriptGen"),
                SoapValue::Xml(metadata),
            ],
        )
        .unwrap();
        let hits = creg
            .call(
                "query",
                &[
                    SoapValue::str("schedulers/scheduler"),
                    SoapValue::str("NQS"),
                ],
            )
            .unwrap();
        assert_eq!(hits.as_array().unwrap().len(), 1);

        let entry = creg
            .call("lookup", &[SoapValue::str("/gce/scriptgen/sdsc")])
            .unwrap();
        assert_eq!(
            entry.field("wsdlUrl").and_then(|v| v.as_str()),
            Some("http://sdsc:1/wsdl/BatchScriptGen")
        );
    }

    #[test]
    fn container_lookup_missing_is_fault() {
        let (_, creg) = clients();
        let err = creg
            .call("lookup", &[SoapValue::str("/ghost/x")])
            .unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::NotFound)
        );
    }

    #[test]
    fn wsdl_generation_for_registry_services() {
        // Both facades describe themselves for WSDL publication.
        let u = UddiService::new(Arc::new(UddiRegistry::new()));
        assert_eq!(u.methods().len(), 5);
        let c = ContainerRegistryService::new(Arc::new(ContainerRegistry::new()));
        assert_eq!(c.methods().len(), 4);
    }

    #[test]
    fn generation_probe_and_reply_header_track_mutations() {
        let (uddi, creg) = clients();
        // Probe method returns the current generation over the wire.
        let g0 = uddi.call("generation", &[]).unwrap().as_i64().unwrap();
        assert_eq!(g0, 0);
        uddi.call(
            "publishBusiness",
            &[SoapValue::str("SDSC"), SoapValue::str("")],
        )
        .unwrap();
        let g1 = uddi.call("generation", &[]).unwrap().as_i64().unwrap();
        assert_eq!(g1, 1);

        // The container facade is versioned too, and mutations advance it.
        assert_eq!(creg.call("generation", &[]).unwrap(), SoapValue::Int(0));
        creg.call(
            "register",
            &[
                SoapValue::str("/gce/scriptgen"),
                SoapValue::str("iu"),
                SoapValue::str("http://iu:1/soap/x"),
                SoapValue::str("http://iu:1/wsdl/x"),
            ],
        )
        .unwrap();
        assert_eq!(creg.call("generation", &[]).unwrap(), SoapValue::Int(1));
    }
}
