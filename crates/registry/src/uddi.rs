//! A UDDI-style registry: businessEntity / businessService /
//! bindingTemplate / tModel, with string-based search.
//!
//! The search deliberately reproduces what the paper found inadequate:
//! "UDDI entries are described with string comments and Identifier and
//! Category data types based on industry standard descriptions of
//! commercial entities… We developed workarounds with the string
//! description, but this works only by convention." Keyword search here is
//! case-insensitive substring match over names and description strings —
//! nothing more — so a description like *"ported from LSF to PBS"* matches
//! a query for `LSF` even though the service does not support LSF. That
//! imprecision is the measured quantity in experiment E7.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::{RegistryError, Result};

/// A tModel: a named technical fingerprint, typically pointing at a WSDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TModel {
    /// Registry-assigned key (`uuid:tm-N`).
    pub key: String,
    /// tModel name.
    pub name: String,
    /// URL of the interface document this tModel identifies.
    pub overview_url: String,
}

/// A binding template: where and how to reach one deployment of a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingTemplate {
    /// Endpoint URL (the SOAP access point).
    pub access_point: String,
    /// tModel keys this binding implements.
    pub tmodel_keys: Vec<String>,
}

/// A business service: one logical service offered by a business entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessService {
    /// Registry-assigned key (`uuid:svc-N`).
    pub key: String,
    /// Service name.
    pub name: String,
    /// Free-text description — the only place capability metadata can go,
    /// per the paper's complaint.
    pub description: String,
    /// Deployments of this service.
    pub bindings: Vec<BindingTemplate>,
}

/// A business entity: a portal group (IU, SDSC, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessEntity {
    /// Registry-assigned key (`uuid:biz-N`).
    pub key: String,
    /// Organization name.
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Services offered.
    pub services: Vec<BusinessService>,
}

/// A search hit, flattened for client consumption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceHit {
    /// Owning business name.
    pub business: String,
    /// Service key.
    pub key: String,
    /// Service name.
    pub name: String,
    /// Service description.
    pub description: String,
    /// First access point, if any binding exists.
    pub access_point: Option<String>,
}

/// The registry. Thread-safe; shared by the SOAP wrapper.
#[derive(Default)]
pub struct UddiRegistry {
    inner: RwLock<Inner>,
    // Monotonic mutation generation; see `generation()`.
    generation: AtomicU64,
}

#[derive(Default)]
struct Inner {
    businesses: Vec<BusinessEntity>,
    tmodels: HashMap<String, TModel>,
    next_key: u64,
}

impl Inner {
    fn fresh_key(&mut self, prefix: &str) -> String {
        self.next_key += 1;
        format!("uuid:{prefix}-{:04}", self.next_key)
    }
}

impl UddiRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current mutation generation: bumped once per successful publish.
    /// Readers cache results against a generation and revalidate with this
    /// single number instead of refetching bodies; the SOAP layer
    /// piggybacks it on every response header.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    // Bump after a mutation has been applied under the write lock. Release
    // ordering pairs with the Acquire load so a reader that observes the
    // new generation also observes the mutation it numbers.
    fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Register a business entity; returns its key.
    pub fn publish_business(
        &self,
        name: impl Into<String>,
        description: impl Into<String>,
    ) -> Result<String> {
        let name = name.into();
        let mut inner = self.inner.write();
        if inner.businesses.iter().any(|b| b.name == name) {
            return Err(RegistryError::Duplicate(format!("business {name:?}")));
        }
        let key = inner.fresh_key("biz");
        inner.businesses.push(BusinessEntity {
            key: key.clone(),
            name,
            description: description.into(),
            services: Vec::new(),
        });
        self.bump_generation();
        Ok(key)
    }

    /// Register a service under a business; returns the service key.
    pub fn publish_service(
        &self,
        business_key: &str,
        name: impl Into<String>,
        description: impl Into<String>,
        bindings: Vec<BindingTemplate>,
    ) -> Result<String> {
        let mut inner = self.inner.write();
        let key = inner.fresh_key("svc");
        let biz = inner
            .businesses
            .iter_mut()
            .find(|b| b.key == business_key)
            .ok_or_else(|| RegistryError::NotFound(format!("business {business_key:?}")))?;
        biz.services.push(BusinessService {
            key: key.clone(),
            name: name.into(),
            description: description.into(),
            bindings,
        });
        self.bump_generation();
        Ok(key)
    }

    /// Register a tModel; returns its key.
    pub fn publish_tmodel(
        &self,
        name: impl Into<String>,
        overview_url: impl Into<String>,
    ) -> String {
        let mut inner = self.inner.write();
        let key = inner.fresh_key("tm");
        let tm = TModel {
            key: key.clone(),
            name: name.into(),
            overview_url: overview_url.into(),
        };
        inner.tmodels.insert(key.clone(), tm);
        self.bump_generation();
        key
    }

    /// Look up a tModel.
    pub fn tmodel(&self, key: &str) -> Option<TModel> {
        self.inner.read().tmodels.get(key).cloned()
    }

    /// All businesses (cloned snapshot).
    pub fn businesses(&self) -> Vec<BusinessEntity> {
        self.inner.read().businesses.clone()
    }

    /// find_business: case-insensitive substring match on business names.
    pub fn find_business(&self, keyword: &str) -> Vec<BusinessEntity> {
        let kw = keyword.to_lowercase();
        self.inner
            .read()
            .businesses
            .iter()
            .filter(|b| b.name.to_lowercase().contains(&kw))
            .cloned()
            .collect()
    }

    /// find_service: case-insensitive substring match over service *names
    /// and description strings* — the convention-only search the paper
    /// criticizes.
    pub fn find_service(&self, keyword: &str) -> Vec<ServiceHit> {
        let kw = keyword.to_lowercase();
        let inner = self.inner.read();
        let mut hits = Vec::new();
        for biz in &inner.businesses {
            for svc in &biz.services {
                if svc.name.to_lowercase().contains(&kw)
                    || svc.description.to_lowercase().contains(&kw)
                {
                    hits.push(ServiceHit {
                        business: biz.name.clone(),
                        key: svc.key.clone(),
                        name: svc.name.clone(),
                        description: svc.description.clone(),
                        access_point: svc.bindings.first().map(|b| b.access_point.clone()),
                    });
                }
            }
        }
        hits
    }

    /// Retrieve one service by key (the UDDI `get_serviceDetail` step).
    pub fn service_detail(&self, key: &str) -> Result<BusinessService> {
        let inner = self.inner.read();
        inner
            .businesses
            .iter()
            .flat_map(|b| &b.services)
            .find(|s| s.key == key)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound(format!("service {key:?}")))
    }

    /// Number of services registered (for experiment reporting).
    pub fn service_count(&self) -> usize {
        self.inner
            .read()
            .businesses
            .iter()
            .map(|b| b.services.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_scriptgens() -> UddiRegistry {
        let reg = UddiRegistry::new();
        let iu = reg
            .publish_business("Community Grids Lab", "IU portal group")
            .unwrap();
        let sdsc = reg
            .publish_business("SDSC", "San Diego Supercomputer Center")
            .unwrap();
        reg.publish_service(
            &iu,
            "BatchScriptGenerator",
            "Batch script generation. Supports PBS and GRD schedulers.",
            vec![BindingTemplate {
                access_point: "http://iu:8080/soap/BatchScriptGen".into(),
                tmodel_keys: vec![],
            }],
        )
        .unwrap();
        reg.publish_service(
            &sdsc,
            "BatchScriptGenerator",
            "Script generator service. Supports LSF and NQS. Recently ported from PBS.",
            vec![BindingTemplate {
                access_point: "http://sdsc:8080/soap/BatchScriptGen".into(),
                tmodel_keys: vec![],
            }],
        )
        .unwrap();
        reg
    }

    #[test]
    fn publish_and_find_business() {
        let reg = registry_with_scriptgens();
        assert_eq!(reg.find_business("sdsc").len(), 1);
        assert_eq!(reg.find_business("lab").len(), 1);
        assert_eq!(reg.find_business("nosuch").len(), 0);
    }

    #[test]
    fn duplicate_business_rejected() {
        let reg = UddiRegistry::new();
        reg.publish_business("X", "").unwrap();
        assert!(matches!(
            reg.publish_business("X", ""),
            Err(RegistryError::Duplicate(_))
        ));
    }

    #[test]
    fn service_under_missing_business_rejected() {
        let reg = UddiRegistry::new();
        assert!(matches!(
            reg.publish_service("uuid:biz-999", "S", "", vec![]),
            Err(RegistryError::NotFound(_))
        ));
    }

    #[test]
    fn keyword_search_matches_name_and_description() {
        let reg = registry_with_scriptgens();
        assert_eq!(reg.find_service("scriptgenerator").len(), 2);
        assert_eq!(reg.find_service("GRD").len(), 1);
    }

    #[test]
    fn string_search_is_imprecise_by_design() {
        // The SDSC description mentions PBS only to say the service was
        // *ported from* it — but substring search cannot tell. This is the
        // paper's "works only by convention" failure, preserved on purpose.
        let reg = registry_with_scriptgens();
        let pbs_hits = reg.find_service("PBS");
        assert_eq!(pbs_hits.len(), 2, "false positive expected: {pbs_hits:?}");
    }

    #[test]
    fn service_detail_by_key() {
        let reg = registry_with_scriptgens();
        let hits = reg.find_service("LSF");
        let detail = reg.service_detail(&hits[0].key).unwrap();
        assert_eq!(detail.bindings.len(), 1);
        assert!(reg.service_detail("uuid:svc-404").is_err());
    }

    #[test]
    fn tmodels_stored_and_fetched() {
        let reg = UddiRegistry::new();
        let key = reg.publish_tmodel("scriptgen-interface", "http://gce/wsdl/scriptgen");
        let tm = reg.tmodel(&key).unwrap();
        assert_eq!(tm.overview_url, "http://gce/wsdl/scriptgen");
        assert!(reg.tmodel("uuid:tm-999").is_none());
    }

    #[test]
    fn counts() {
        let reg = registry_with_scriptgens();
        assert_eq!(reg.service_count(), 2);
        assert_eq!(reg.businesses().len(), 2);
    }

    #[test]
    fn generation_bumps_on_every_mutation_only() {
        let reg = UddiRegistry::new();
        assert_eq!(reg.generation(), 0);
        let biz = reg.publish_business("X", "").unwrap();
        assert_eq!(reg.generation(), 1);
        reg.publish_service(&biz, "S", "", vec![]).unwrap();
        assert_eq!(reg.generation(), 2);
        reg.publish_tmodel("tm", "http://x/wsdl");
        assert_eq!(reg.generation(), 3);
        // Failed mutations and reads leave the generation alone.
        assert!(reg.publish_business("X", "").is_err());
        assert!(reg
            .publish_service("uuid:biz-999", "S", "", vec![])
            .is_err());
        let _ = reg.find_service("s");
        let _ = reg.businesses();
        assert_eq!(reg.generation(), 3);
    }
}
