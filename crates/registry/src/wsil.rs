//! Web Services Inspection Language (WSIL) documents.
//!
//! §2 lists WSIL alongside UDDI as the naming/discovery leg of the Web
//! Services trio. Where UDDI is a central registry, WSIL is
//! *decentralized*: each provider host serves an `inspection.wsil`
//! document enumerating its services and pointing at their WSDL
//! descriptions. This module implements the document model and an HTTP
//! handler, giving the portal a second discovery path: walk the known
//! hosts instead of querying the central registry (exercised by the
//! UI-server integration tests as a registry-outage fallback).

use parking_lot::RwLock;
use portalws_wire::{Handler, Request, Response, Status};
use portalws_xml::Element;

use crate::{RegistryError, Result};

/// One `<service>` entry of an inspection document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WsilService {
    /// Human-readable service name.
    pub name: String,
    /// The `<abstract>` description.
    pub abstract_text: String,
    /// Location of the WSDL description.
    pub wsdl_location: String,
    /// SOAP endpoint (carried as a second description link).
    pub endpoint: String,
}

/// A WSIL inspection document: the services one provider host offers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InspectionDocument {
    /// Services in declaration order.
    pub services: Vec<WsilService>,
    /// Links to further inspection documents (WSIL is recursive).
    pub links: Vec<String>,
}

impl InspectionDocument {
    /// Empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: add a service entry.
    pub fn with_service(mut self, service: WsilService) -> Self {
        self.services.push(service);
        self
    }

    /// Builder: link another inspection document.
    pub fn with_link(mut self, location: impl Into<String>) -> Self {
        self.links.push(location.into());
        self
    }

    /// Serialize as an `inspection` document element.
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("inspection")
            .with_attr("xmlns", "http://schemas.xmlsoap.org/ws/2001/10/inspection/");
        for svc in &self.services {
            root.push_child(
                Element::new("service")
                    .with_child(Element::new("name").with_text(svc.name.clone()))
                    .with_child(Element::new("abstract").with_text(svc.abstract_text.clone()))
                    .with_child(
                        Element::new("description")
                            .with_attr("referencedNamespace", "http://schemas.xmlsoap.org/wsdl/")
                            .with_attr("location", svc.wsdl_location.clone()),
                    )
                    .with_child(
                        Element::new("description")
                            .with_attr("referencedNamespace", "urn:endpoint")
                            .with_attr("location", svc.endpoint.clone()),
                    ),
            );
        }
        for link in &self.links {
            root.push_child(
                Element::new("link")
                    .with_attr(
                        "referencedNamespace",
                        "http://schemas.xmlsoap.org/ws/2001/10/inspection/",
                    )
                    .with_attr("location", link.clone()),
            );
        }
        root
    }

    /// Parse an inspection document.
    pub fn from_xml(root: &Element) -> Result<InspectionDocument> {
        if root.local_name() != "inspection" {
            return Err(RegistryError::Invalid(format!(
                "expected inspection document, found {:?}",
                root.local_name()
            )));
        }
        let mut doc = InspectionDocument::new();
        for svc in root.find_all("service") {
            let mut wsdl_location = String::new();
            let mut endpoint = String::new();
            for d in svc.find_all("description") {
                let loc = d.attr("location").unwrap_or("").to_owned();
                match d.attr("referencedNamespace") {
                    Some("http://schemas.xmlsoap.org/wsdl/") => wsdl_location = loc,
                    Some("urn:endpoint") => endpoint = loc,
                    _ => {}
                }
            }
            doc.services.push(WsilService {
                name: svc.find_text("name").unwrap_or("").to_owned(),
                abstract_text: svc.find_text("abstract").unwrap_or("").to_owned(),
                wsdl_location,
                endpoint,
            });
        }
        doc.links = root
            .find_all("link")
            .filter_map(|l| l.attr("location").map(str::to_owned))
            .collect();
        Ok(doc)
    }

    /// Find a service entry by exact name.
    pub fn service(&self, name: &str) -> Option<&WsilService> {
        self.services.iter().find(|s| s.name == name)
    }
}

/// Serves the host's inspection document at `/inspection.wsil`.
#[derive(Default)]
pub struct WsilHandler {
    doc: RwLock<InspectionDocument>,
}

impl WsilHandler {
    /// Handler with an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a service entry to the served document.
    pub fn announce(&self, service: WsilService) {
        self.doc.write().services.push(service);
    }

    /// Link another host's inspection document.
    pub fn link(&self, location: impl Into<String>) {
        self.doc.write().links.push(location.into());
    }

    /// Current document snapshot.
    pub fn document(&self) -> InspectionDocument {
        self.doc.read().clone()
    }
}

impl Handler for WsilHandler {
    fn handle(&self, req: &Request) -> Response {
        if req.method != "GET" {
            return Response::error(Status::BadRequest, "inspection documents are GET-only");
        }
        Response::xml(self.doc.read().to_xml().to_document())
    }
}

/// Fetch and parse an inspection document from a host.
pub fn fetch_inspection(transport: &dyn portalws_wire::Transport) -> Result<InspectionDocument> {
    let resp = transport
        .round_trip(Request::get("/inspection.wsil"))
        .map_err(|e| RegistryError::Invalid(format!("wsil fetch failed: {e}")))?;
    if resp.status != Status::Ok {
        return Err(RegistryError::NotFound(format!(
            "inspection document ({})",
            resp.status.code()
        )));
    }
    let root = Element::parse(&resp.body_str())
        .map_err(|e| RegistryError::Invalid(format!("wsil xml: {e}")))?;
    InspectionDocument::from_xml(&root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_wire::InMemoryTransport;
    use std::sync::Arc;

    fn sample() -> InspectionDocument {
        InspectionDocument::new()
            .with_service(WsilService {
                name: "BatchScriptGen".into(),
                abstract_text: "Batch script generation for PBS and GRD".into(),
                wsdl_location: "http://gateway.iu.edu/wsdl/BatchScriptGen".into(),
                endpoint: "http://gateway.iu.edu/soap/BatchScriptGen".into(),
            })
            .with_service(WsilService {
                name: "ContextManager".into(),
                abstract_text: "Gateway context management".into(),
                wsdl_location: "http://gateway.iu.edu/wsdl/ContextManager".into(),
                endpoint: "http://gateway.iu.edu/soap/ContextManager".into(),
            })
            .with_link("http://hotpage.sdsc.edu/inspection.wsil")
    }

    #[test]
    fn xml_round_trip() {
        let doc = sample();
        let rt = InspectionDocument::from_xml(&doc.to_xml()).unwrap();
        assert_eq!(rt, doc);
    }

    #[test]
    fn service_lookup() {
        let doc = sample();
        let s = doc.service("ContextManager").unwrap();
        assert!(s.wsdl_location.ends_with("/wsdl/ContextManager"));
        assert!(doc.service("Ghost").is_none());
    }

    #[test]
    fn non_inspection_rejected() {
        assert!(InspectionDocument::from_xml(&Element::new("wrong")).is_err());
    }

    #[test]
    fn handler_serves_document() {
        let h = WsilHandler::new();
        for svc in sample().services {
            h.announce(svc);
        }
        h.link("http://other/inspection.wsil");
        let resp = h.handle(&Request::get("/inspection.wsil"));
        assert_eq!(resp.status, Status::Ok);
        let doc = InspectionDocument::from_xml(&Element::parse(&resp.body_str()).unwrap()).unwrap();
        assert_eq!(doc.services.len(), 2);
        assert_eq!(doc.links.len(), 1);
        // POST rejected.
        assert_eq!(
            h.handle(&Request::post("/inspection.wsil", "")).status,
            Status::BadRequest
        );
    }

    #[test]
    fn fetch_round_trip() {
        let h = WsilHandler::new();
        h.announce(sample().services[0].clone());
        let transport = InMemoryTransport::new(Arc::new(h));
        let doc = fetch_inspection(&transport).unwrap();
        assert_eq!(doc.services[0].name, "BatchScriptGen");
    }

    #[test]
    fn fetch_missing_errors() {
        let handler: Arc<dyn portalws_wire::Handler> =
            Arc::new(|_req: &Request| Response::error(Status::NotFound, "no wsil here"));
        let transport = InMemoryTransport::new(handler);
        assert!(fetch_inspection(&transport).is_err());
    }
}
