//! Property tests over both discovery systems: registrations are always
//! findable (full recall), the container registry round-trips through its
//! self-describing XML form, and typed queries never return a service
//! that does not carry the queried metadata (full precision).

use portalws_registry::{
    BindingTemplate, Container, ContainerRegistry, InspectionDocument, ServiceEntry, UddiRegistry,
    WsilService,
};
use portalws_xml::Element;
use proptest::prelude::*;

fn names() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::btree_set("[a-z][a-z0-9]{1,8}", 1..12)
        .prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn uddi_recall_is_total(names in names()) {
        let uddi = UddiRegistry::new();
        let biz = uddi.publish_business("B", "test").unwrap();
        for n in &names {
            uddi.publish_service(
                &biz,
                n.clone(),
                format!("service named {n}"),
                vec![BindingTemplate {
                    access_point: format!("http://x/soap/{n}"),
                    tmodel_keys: vec![],
                }],
            )
            .unwrap();
        }
        prop_assert_eq!(uddi.service_count(), names.len());
        // Every registered service is found by its own full name.
        for n in &names {
            let hits = uddi.find_service(n);
            prop_assert!(
                hits.iter().any(|h| &h.name == n),
                "{n} not found among {hits:?}"
            );
            // And its detail is retrievable by key.
            let key = hits.iter().find(|h| &h.name == n).unwrap().key.clone();
            prop_assert!(uddi.service_detail(&key).is_ok());
        }
    }

    #[test]
    fn container_round_trip_and_query_precision(
        entries in proptest::collection::btree_map(
            "[a-z][a-z0-9]{1,8}",
            prop_oneof![Just("PBS"), Just("LSF"), Just("NQS"), Just("GRD")],
            1..10,
        ),
    ) {
        let reg = ContainerRegistry::new();
        for (name, sched) in &entries {
            reg.register(
                "/gce/svc",
                ServiceEntry {
                    name: name.clone(),
                    access_point: format!("http://{name}/soap/S"),
                    wsdl_url: format!("http://{name}/wsdl/S"),
                    metadata: Element::new("m").with_child(
                        Element::new("schedulers")
                            .with_child(Element::new("scheduler").with_text(*sched)),
                    ),
                },
            )
            .unwrap();
        }
        // Self-describing round trip preserves everything.
        let doc = reg.to_xml();
        let restored = ContainerRegistry::from_xml(&doc).unwrap();
        prop_assert_eq!(restored.entry_count(), entries.len());

        // Typed queries: exact precision and recall per scheduler.
        for sched in ["PBS", "LSF", "NQS", "GRD"] {
            let expected: Vec<&String> = entries
                .iter()
                .filter(|(_, s)| **s == sched)
                .map(|(n, _)| n)
                .collect();
            let hits = restored.query("schedulers/scheduler", sched);
            prop_assert_eq!(hits.len(), expected.len(), "{}", sched);
            for (_, e) in &hits {
                prop_assert!(expected.contains(&&e.name));
            }
        }
        // Path lookups find each entry.
        for name in entries.keys() {
            let path = format!("/gce/svc/{name}");
            prop_assert!(restored.lookup(&path).is_ok());
        }
    }

    #[test]
    fn container_xml_never_panics_on_arbitrary_input(s in "\\PC{0,300}") {
        if let Ok(el) = Element::parse(&s) {
            let _ = Container::from_xml(&el);
        }
    }

    #[test]
    fn wsil_round_trip(services in names(), links in names()) {
        let mut doc = InspectionDocument::new();
        for s in &services {
            doc = doc.with_service(WsilService {
                name: s.clone(),
                abstract_text: format!("about {s}"),
                wsdl_location: format!("http://h/wsdl/{s}"),
                endpoint: format!("http://h/soap/{s}"),
            });
        }
        for l in &links {
            doc = doc.with_link(format!("http://{l}/inspection.wsil"));
        }
        let rt = InspectionDocument::from_xml(&doc.to_xml()).unwrap();
        prop_assert_eq!(&rt, &doc);
        for s in &services {
            prop_assert!(rt.service(s).is_some());
        }
    }
}
