//! SRB data-management Web service (§3.2).
//!
//! "The methods exposed in the SRB Web Services are `ls`, `cat`, `get`,
//! `put`, and `xml_call`. … The get and put methods transfer a file
//! between an SRB collection and the client by simply streaming the file
//! as a string. This transfer mechanism does not scale well, and was only
//! used as a proof of concept. The `xml_call` method allows the client to
//! create a single request string consisting of multiple SRB commands …
//! sent to the Web Service using a single connection. The service
//! executes the separate commands found within the requests sequentially."
//!
//! Both the string-streaming (measured in E5) and the batching (measured
//! in E6) are reproduced exactly; `getB64`/`putB64` are the encoding
//! ablation E5 compares against.

use std::sync::Arc;

use portalws_gridsim::srb::{Srb, SrbError};
use portalws_soap::{
    CallContext, Fault, MethodDesc, PortalErrorKind, SoapResult, SoapService, SoapType, SoapValue,
};
use portalws_xml::Element;

use crate::caller_principal;

/// SOAP facade over the Storage Resource Broker.
pub struct DataManagementService {
    srb: Arc<Srb>,
}

impl DataManagementService {
    /// Wrap a broker.
    pub fn new(srb: Arc<Srb>) -> DataManagementService {
        DataManagementService { srb }
    }

    /// The wrapped broker.
    pub fn srb(&self) -> &Arc<Srb> {
        &self.srb
    }
}

/// Map broker errors onto the portal's common error codes — the paper's
/// consistent-error-messaging requirement, with `DISK_FULL` as its own
/// worked example.
fn srb_fault(e: SrbError) -> Fault {
    let kind = match &e {
        SrbError::NotFound(_) => PortalErrorKind::FileNotFound,
        SrbError::PermissionDenied(_) => PortalErrorKind::PermissionDenied,
        SrbError::DiskFull { .. } => PortalErrorKind::DiskFull,
        SrbError::Invalid(_) => PortalErrorKind::BadArguments,
    };
    Fault::portal(kind, e.to_string())
}

fn arg_str<'a>(args: &'a [(String, SoapValue)], i: usize, name: &str) -> SoapResult<&'a str> {
    args.get(i)
        .and_then(|(_, v)| v.as_str())
        .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, format!("missing {name}")))
}

impl DataManagementService {
    /// Execute one `xml_call` command element, returning its result
    /// element. Used by both the SOAP method and tests.
    fn run_command(&self, principal: &str, cmd: &Element) -> Element {
        let op = cmd.local_name().to_owned();
        let outcome = (|| -> Result<Element, SrbError> {
            match op.as_str() {
                "ls" => {
                    // The broker rejects relative and blank paths, so a
                    // missing attribute faults up front instead of being
                    // papered over with a default.
                    let path = cmd
                        .attr("collection")
                        .ok_or_else(|| SrbError::Invalid("ls needs collection".into()))?;
                    let entries = self.srb.ls(principal, path)?;
                    let mut out = Element::new("result").with_attr("op", "ls");
                    for e in entries {
                        out.push_child(
                            Element::new("entry")
                                .with_attr("name", e.name)
                                .with_attr("collection", e.is_collection.to_string())
                                .with_attr("size", e.size.to_string()),
                        );
                    }
                    Ok(out)
                }
                "cat" => {
                    let path = cmd
                        .attr("path")
                        .ok_or_else(|| SrbError::Invalid("cat needs path".into()))?;
                    let text = self.srb.cat(principal, path)?;
                    Ok(Element::new("result")
                        .with_attr("op", "cat")
                        .with_text(text))
                }
                "get" => {
                    let path = cmd
                        .attr("path")
                        .ok_or_else(|| SrbError::Invalid("get needs path".into()))?;
                    let text = self.srb.cat(principal, path)?;
                    Ok(Element::new("result")
                        .with_attr("op", "get")
                        .with_text(text))
                }
                "put" => {
                    let path = cmd
                        .attr("path")
                        .ok_or_else(|| SrbError::Invalid("put needs path".into()))?;
                    self.srb.put(principal, path, cmd.text().as_bytes())?;
                    Ok(Element::new("result")
                        .with_attr("op", "put")
                        .with_attr("bytes", cmd.text().len().to_string()))
                }
                "rm" => {
                    let path = cmd
                        .attr("path")
                        .ok_or_else(|| SrbError::Invalid("rm needs path".into()))?;
                    self.srb.rm(principal, path)?;
                    Ok(Element::new("result").with_attr("op", "rm"))
                }
                "mkdir" => {
                    let path = cmd
                        .attr("path")
                        .ok_or_else(|| SrbError::Invalid("mkdir needs path".into()))?;
                    self.srb.mkdir(path)?;
                    Ok(Element::new("result").with_attr("op", "mkdir"))
                }
                other => Err(SrbError::Invalid(format!("unknown command {other:?}"))),
            }
        })();
        match outcome {
            Ok(el) => el,
            Err(e) => Element::new("result")
                .with_attr("op", op)
                .with_attr("error", "true")
                .with_text(e.to_string()),
        }
    }
}

impl SoapService for DataManagementService {
    fn name(&self) -> &str {
        "DataManagement"
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        let principal = caller_principal(ctx);
        match method {
            "ls" => {
                let path = arg_str(args, 0, "collection")?;
                let entries = self.srb.ls(&principal, path).map_err(srb_fault)?;
                // The paper's ls "returns an array containing the directory
                // listing".
                Ok(SoapValue::Array(
                    entries
                        .into_iter()
                        .map(|e| {
                            SoapValue::Struct(vec![
                                ("name".into(), SoapValue::str(e.name)),
                                ("isCollection".into(), SoapValue::Bool(e.is_collection)),
                                ("size".into(), SoapValue::Int(e.size as i64)),
                            ])
                        })
                        .collect(),
                ))
            }
            "cat" => {
                let path = arg_str(args, 0, "path")?;
                let text = self.srb.cat(&principal, path).map_err(srb_fault)?;
                Ok(SoapValue::String(text))
            }
            // String streaming, exactly as deployed in 2002.
            "get" => {
                let path = arg_str(args, 0, "path")?;
                let text = self.srb.cat(&principal, path).map_err(srb_fault)?;
                Ok(SoapValue::String(text))
            }
            "put" => {
                let path = arg_str(args, 0, "path")?;
                let content = arg_str(args, 1, "content")?;
                self.srb
                    .put(&principal, path, content.as_bytes())
                    .map_err(srb_fault)?;
                Ok(SoapValue::Int(content.len() as i64))
            }
            // Base64 ablation (E5): binary-safe, no escaping amplification.
            "getB64" => {
                let path = arg_str(args, 0, "path")?;
                let bytes = self.srb.get(&principal, path).map_err(srb_fault)?;
                Ok(SoapValue::Base64(bytes))
            }
            "putB64" => {
                let path = arg_str(args, 0, "path")?;
                let bytes = args
                    .get(1)
                    .and_then(|(_, v)| v.as_bytes())
                    .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "missing data"))?;
                self.srb.put(&principal, path, bytes).map_err(srb_fault)?;
                Ok(SoapValue::Int(bytes.len() as i64))
            }
            "rm" => {
                let path = arg_str(args, 0, "path")?;
                self.srb.rm(&principal, path).map_err(srb_fault)?;
                Ok(SoapValue::Null)
            }
            "mkdir" => {
                let path = arg_str(args, 0, "path")?;
                self.srb.mkdir(path).map_err(srb_fault)?;
                Ok(SoapValue::Null)
            }
            "xml_call" => {
                let request = args.first().and_then(|(_, v)| v.as_xml()).ok_or_else(|| {
                    Fault::portal(PortalErrorKind::BadArguments, "missing request document")
                })?;
                if request.local_name() != "request" {
                    return Err(Fault::portal(
                        PortalErrorKind::BadArguments,
                        "xml_call expects a <request> document",
                    ));
                }
                // "The service executes the separate commands found within
                // the requests sequentially."
                let mut response = Element::new("response");
                for cmd in request.children() {
                    response.push_child(self.run_command(&principal, cmd));
                }
                Ok(SoapValue::Xml(response))
            }
            other => Err(Fault::client(format!(
                "DataManagement has no method {other:?}"
            ))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        vec![
            MethodDesc::new(
                "ls",
                vec![("collection", SoapType::String)],
                SoapType::Array,
                "Directory listing of an SRB collection",
            ),
            MethodDesc::new(
                "cat",
                vec![("path", SoapType::String)],
                SoapType::String,
                "Contents of a file in an SRB collection",
            ),
            MethodDesc::new(
                "get",
                vec![("path", SoapType::String)],
                SoapType::String,
                "Transfer a file to the client as a string",
            ),
            MethodDesc::new(
                "put",
                vec![("path", SoapType::String), ("content", SoapType::String)],
                SoapType::Int,
                "Transfer a file from the client as a string",
            ),
            MethodDesc::new(
                "getB64",
                vec![("path", SoapType::String)],
                SoapType::Base64,
                "Binary-safe transfer to the client (ablation)",
            ),
            MethodDesc::new(
                "putB64",
                vec![("path", SoapType::String), ("data", SoapType::Base64)],
                SoapType::Int,
                "Binary-safe transfer from the client (ablation)",
            ),
            MethodDesc::new(
                "rm",
                vec![("path", SoapType::String)],
                SoapType::Void,
                "Delete an object",
            ),
            MethodDesc::new(
                "mkdir",
                vec![("path", SoapType::String)],
                SoapType::Void,
                "Create a collection",
            ),
            MethodDesc::new(
                "xml_call",
                vec![("request", SoapType::Xml)],
                SoapType::Xml,
                "Execute multiple SRB commands from one XML request over one connection",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_soap::{SoapClient, SoapError, SoapServer};
    use portalws_wire::{Handler, InMemoryTransport};

    fn client() -> (Arc<Srb>, SoapClient) {
        let srb = Arc::new(Srb::new());
        srb.mkdir("/data").unwrap();
        srb.put("anonymous", "/data/in.txt", b"line one\nline two\n")
            .unwrap();
        let server = SoapServer::new();
        server.mount(Arc::new(DataManagementService::new(Arc::clone(&srb))));
        let handler: Arc<dyn Handler> = Arc::new(server);
        (
            srb,
            SoapClient::new(Arc::new(InMemoryTransport::new(handler)), "DataManagement"),
        )
    }

    #[test]
    fn ls_returns_array_of_structs() {
        let (_, c) = client();
        let out = c.call("ls", &[SoapValue::str("/data")]).unwrap();
        let arr = out.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].field("name").unwrap().as_str(), Some("in.txt"));
        assert_eq!(arr[0].field("size").unwrap().as_i64(), Some(18));
    }

    #[test]
    fn cat_and_get_stream_strings() {
        let (_, c) = client();
        let out = c.call("cat", &[SoapValue::str("/data/in.txt")]).unwrap();
        assert_eq!(out.as_str().unwrap(), "line one\nline two\n");
        let out = c.call("get", &[SoapValue::str("/data/in.txt")]).unwrap();
        assert!(out.as_str().unwrap().starts_with("line one"));
    }

    #[test]
    fn put_then_get_round_trip() {
        let (srb, c) = client();
        let content = "x <b>&</b> y\n".repeat(10);
        let n = c
            .call(
                "put",
                &[
                    SoapValue::str("/data/out.txt"),
                    SoapValue::str(content.clone()),
                ],
            )
            .unwrap();
        assert_eq!(n.as_i64(), Some(content.len() as i64));
        assert_eq!(srb.cat("anonymous", "/data/out.txt").unwrap(), content);
        let back = c.call("get", &[SoapValue::str("/data/out.txt")]).unwrap();
        assert_eq!(back.as_str().unwrap(), content);
    }

    #[test]
    fn base64_round_trip_is_binary_safe() {
        let (_, c) = client();
        let data: Vec<u8> = (0u8..=255).collect();
        c.call(
            "putB64",
            &[SoapValue::str("/data/bin"), SoapValue::Base64(data.clone())],
        )
        .unwrap();
        let back = c.call("getB64", &[SoapValue::str("/data/bin")]).unwrap();
        assert_eq!(back.as_bytes().unwrap(), &data[..]);
    }

    #[test]
    fn missing_file_maps_to_file_not_found() {
        let (_, c) = client();
        let err = c.call("get", &[SoapValue::str("/data/ghost")]).unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::FileNotFound)
        );
    }

    #[test]
    fn quota_maps_to_disk_full() {
        let (srb, c) = client();
        srb.set_quota("/data", 32);
        let err = c
            .call(
                "put",
                &[
                    SoapValue::str("/data/big.txt"),
                    SoapValue::str("much more than thirty-two bytes of text"),
                ],
            )
            .unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::DiskFull)
        );
    }

    #[test]
    fn acl_maps_to_permission_denied() {
        let (srb, c) = client();
        srb.set_acl("/data", vec!["alice".into()]);
        let err = c.call("ls", &[SoapValue::str("/data")]).unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::PermissionDenied)
        );
    }

    #[test]
    fn xml_call_batches_commands_sequentially() {
        let (_, c) = client();
        let request = Element::new("request")
            .with_child(Element::new("mkdir").with_attr("path", "/data/sub"))
            .with_child(
                Element::new("put")
                    .with_attr("path", "/data/sub/a.txt")
                    .with_text("alpha"),
            )
            .with_child(Element::new("cat").with_attr("path", "/data/sub/a.txt"))
            .with_child(Element::new("ls").with_attr("collection", "/data/sub"));
        let out = c.call("xml_call", &[SoapValue::Xml(request)]).unwrap();
        let response = out.as_xml().unwrap();
        let results: Vec<&Element> = response.children().collect();
        assert_eq!(results.len(), 4);
        assert_eq!(results[2].text(), "alpha");
        assert_eq!(results[3].children().count(), 1);
    }

    #[test]
    fn xml_call_reports_per_command_errors_inline() {
        let (_, c) = client();
        let request = Element::new("request")
            .with_child(Element::new("cat").with_attr("path", "/data/ghost"))
            .with_child(Element::new("cat").with_attr("path", "/data/in.txt"));
        let out = c.call("xml_call", &[SoapValue::Xml(request)]).unwrap();
        let response = out.as_xml().unwrap();
        let results: Vec<&Element> = response.children().collect();
        assert_eq!(results[0].attr("error"), Some("true"));
        // A failed command does not abort the batch.
        assert_eq!(results[1].text(), "line one\nline two\n");
    }

    #[test]
    fn xml_call_rejects_non_request_documents() {
        let (_, c) = client();
        let err = c
            .call("xml_call", &[SoapValue::Xml(Element::new("wrong"))])
            .unwrap_err();
        assert!(matches!(err, SoapError::Fault(_)));
    }

    #[test]
    fn unknown_method_is_fault() {
        let (_, c) = client();
        assert!(c.call("chmod", &[]).is_err());
    }
}
