//! SRB data-management Web service (§3.2).
//!
//! "The methods exposed in the SRB Web Services are `ls`, `cat`, `get`,
//! `put`, and `xml_call`. … The get and put methods transfer a file
//! between an SRB collection and the client by simply streaming the file
//! as a string. This transfer mechanism does not scale well, and was only
//! used as a proof of concept. The `xml_call` method allows the client to
//! create a single request string consisting of multiple SRB commands …
//! sent to the Web Service using a single connection. The service
//! executes the separate commands found within the requests sequentially."
//!
//! Both the string-streaming (measured in E5) and the batching (measured
//! in E6) are reproduced exactly; `getB64`/`putB64` are the encoding
//! ablation E5 compares against.

use std::sync::Arc;

use portalws_gridsim::srb::{Srb, SrbError};
use portalws_soap::{
    CallContext, Fault, MethodDesc, PortalErrorKind, SoapResult, SoapService, SoapType, SoapValue,
};
use portalws_xml::Element;

use crate::caller_principal;
use crate::transfer::TransferTable;

/// SOAP facade over the Storage Resource Broker.
pub struct DataManagementService {
    srb: Arc<Srb>,
    transfers: TransferTable,
}

impl DataManagementService {
    /// Wrap a broker.
    pub fn new(srb: Arc<Srb>) -> DataManagementService {
        let transfers = TransferTable::new(Arc::clone(&srb));
        DataManagementService { srb, transfers }
    }

    /// The wrapped broker.
    pub fn srb(&self) -> &Arc<Srb> {
        &self.srb
    }

    /// The chunked-transfer handle table (benches and tests read its
    /// buffering high-water and tune its caps).
    pub fn transfers(&self) -> &TransferTable {
        &self.transfers
    }
}

/// Map broker errors onto the portal's common error codes — the paper's
/// consistent-error-messaging requirement, with `DISK_FULL` as its own
/// worked example.
pub(crate) fn srb_fault(e: SrbError) -> Fault {
    let kind = match &e {
        SrbError::NotFound(_) => PortalErrorKind::FileNotFound,
        SrbError::PermissionDenied(_) => PortalErrorKind::PermissionDenied,
        SrbError::DiskFull { .. } => PortalErrorKind::DiskFull,
        SrbError::Invalid(_) => PortalErrorKind::BadArguments,
    };
    Fault::portal(kind, e.to_string())
}

pub(crate) fn arg_str<'a>(
    args: &'a [(String, SoapValue)],
    i: usize,
    name: &str,
) -> SoapResult<&'a str> {
    args.get(i)
        .and_then(|(_, v)| v.as_str())
        .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, format!("missing {name}")))
}

pub(crate) fn arg_usize(args: &[(String, SoapValue)], i: usize, name: &str) -> SoapResult<usize> {
    let v = args
        .get(i)
        .and_then(|(_, v)| v.as_i64())
        .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, format!("missing {name}")))?;
    usize::try_from(v).map_err(|_| {
        Fault::portal(
            PortalErrorKind::BadArguments,
            format!("{name} must be non-negative"),
        )
    })
}

impl DataManagementService {
    /// Read an object as UTF-8 text, or fault with a message that points
    /// the caller at the binary-safe paths. Before this check the string
    /// path degraded into a generic "not UTF-8" broker error with no hint
    /// that `getB64` and the chunked `open_get`/`get_chunk` protocol
    /// exist.
    pub(crate) fn cat_utf8(&self, principal: &str, path: &str) -> SoapResult<String> {
        let bytes = self.srb.get(principal, path).map_err(srb_fault)?;
        String::from_utf8(bytes).map_err(|_| {
            Fault::portal(
                PortalErrorKind::BadArguments,
                format!(
                    "object at {path:?} is not UTF-8 text; use getB64 or the chunked open_get/get_chunk path for binary content"
                ),
            )
        })
    }

    /// Execute one `xml_call` command element, returning its result
    /// element. Used by the SOAP method, the shard router (which routes
    /// each batched command to its owning backend), and tests.
    pub(crate) fn run_command(&self, principal: &str, cmd: &Element) -> Element {
        let op = cmd.local_name().to_owned();
        let outcome = (|| -> Result<Element, SrbError> {
            match op.as_str() {
                "ls" => {
                    // The broker rejects relative and blank paths, so a
                    // missing attribute faults up front instead of being
                    // papered over with a default.
                    let path = cmd
                        .attr("collection")
                        .ok_or_else(|| SrbError::Invalid("ls needs collection".into()))?;
                    let entries = self.srb.ls(principal, path)?;
                    let mut out = Element::new("result").with_attr("op", "ls");
                    for e in entries {
                        out.push_child(
                            Element::new("entry")
                                .with_attr("name", e.name)
                                .with_attr("collection", e.is_collection.to_string())
                                .with_attr("size", e.size.to_string()),
                        );
                    }
                    Ok(out)
                }
                "cat" => {
                    let path = cmd
                        .attr("path")
                        .ok_or_else(|| SrbError::Invalid("cat needs path".into()))?;
                    let text = self.srb.cat(principal, path)?;
                    Ok(Element::new("result")
                        .with_attr("op", "cat")
                        .with_text(text))
                }
                "get" => {
                    let path = cmd
                        .attr("path")
                        .ok_or_else(|| SrbError::Invalid("get needs path".into()))?;
                    let text = self.srb.cat(principal, path)?;
                    Ok(Element::new("result")
                        .with_attr("op", "get")
                        .with_text(text))
                }
                "put" => {
                    let path = cmd
                        .attr("path")
                        .ok_or_else(|| SrbError::Invalid("put needs path".into()))?;
                    self.srb.put(principal, path, cmd.text().as_bytes())?;
                    Ok(Element::new("result")
                        .with_attr("op", "put")
                        .with_attr("bytes", cmd.text().len().to_string()))
                }
                "rm" => {
                    let path = cmd
                        .attr("path")
                        .ok_or_else(|| SrbError::Invalid("rm needs path".into()))?;
                    self.srb.rm(principal, path)?;
                    Ok(Element::new("result").with_attr("op", "rm"))
                }
                "mkdir" => {
                    let path = cmd
                        .attr("path")
                        .ok_or_else(|| SrbError::Invalid("mkdir needs path".into()))?;
                    self.srb.mkdir(path)?;
                    Ok(Element::new("result").with_attr("op", "mkdir"))
                }
                other => Err(SrbError::Invalid(format!("unknown command {other:?}"))),
            }
        })();
        match outcome {
            Ok(el) => el,
            Err(e) => Element::new("result")
                .with_attr("op", op)
                .with_attr("error", "true")
                .with_text(e.to_string()),
        }
    }
}

impl SoapService for DataManagementService {
    fn name(&self) -> &str {
        "DataManagement"
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        let principal = caller_principal(ctx);
        match method {
            "ls" => {
                let path = arg_str(args, 0, "collection")?;
                let entries = self.srb.ls(&principal, path).map_err(srb_fault)?;
                // The paper's ls "returns an array containing the directory
                // listing".
                Ok(SoapValue::Array(
                    entries
                        .into_iter()
                        .map(|e| {
                            SoapValue::Struct(vec![
                                ("name".into(), SoapValue::str(e.name)),
                                ("isCollection".into(), SoapValue::Bool(e.is_collection)),
                                ("size".into(), SoapValue::Int(e.size as i64)),
                            ])
                        })
                        .collect(),
                ))
            }
            "cat" => {
                let path = arg_str(args, 0, "path")?;
                Ok(SoapValue::String(self.cat_utf8(&principal, path)?))
            }
            // String streaming, exactly as deployed in 2002.
            "get" => {
                let path = arg_str(args, 0, "path")?;
                Ok(SoapValue::String(self.cat_utf8(&principal, path)?))
            }
            "put" => {
                let path = arg_str(args, 0, "path")?;
                let content = arg_str(args, 1, "content")?;
                self.srb
                    .put(&principal, path, content.as_bytes())
                    .map_err(srb_fault)?;
                Ok(SoapValue::Int(content.len() as i64))
            }
            // Base64 ablation (E5): binary-safe, no escaping amplification.
            "getB64" => {
                let path = arg_str(args, 0, "path")?;
                let bytes = self.srb.get(&principal, path).map_err(srb_fault)?;
                Ok(SoapValue::Base64(bytes))
            }
            "putB64" => {
                let path = arg_str(args, 0, "path")?;
                let bytes = args
                    .get(1)
                    .and_then(|(_, v)| v.as_bytes())
                    .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "missing data"))?;
                self.srb.put(&principal, path, bytes).map_err(srb_fault)?;
                Ok(SoapValue::Int(bytes.len() as i64))
            }
            "rm" => {
                let path = arg_str(args, 0, "path")?;
                self.srb.rm(&principal, path).map_err(srb_fault)?;
                Ok(SoapValue::Null)
            }
            "mkdir" => {
                let path = arg_str(args, 0, "path")?;
                self.srb.mkdir(path).map_err(srb_fault)?;
                Ok(SoapValue::Null)
            }
            // Namespace moves (PR 10): atomic within one broker, and the
            // building block the shard router composes its cross-shard
            // move protocol from.
            "rename" => {
                let from = arg_str(args, 0, "from")?;
                let to = arg_str(args, 1, "to")?;
                self.srb.rename(&principal, from, to).map_err(srb_fault)?;
                Ok(SoapValue::Null)
            }
            "cp" => {
                let from = arg_str(args, 0, "from")?;
                let to = arg_str(args, 1, "to")?;
                self.srb.cp(&principal, from, to).map_err(srb_fault)?;
                Ok(SoapValue::Null)
            }
            // Chunked streaming transfer protocol (E13): SOAP stays the
            // control channel, the payload moves as bounded chunks.
            "open_get" => {
                let path = arg_str(args, 0, "path")?;
                let (handle, size) = self
                    .transfers
                    .open_get(&principal, path)
                    .map_err(|e| e.to_fault())?;
                Ok(SoapValue::Struct(vec![
                    ("handle".into(), SoapValue::str(handle)),
                    ("size".into(), SoapValue::Int(size as i64)),
                ]))
            }
            "get_chunk" => {
                let handle = arg_str(args, 0, "handle")?;
                let off = arg_usize(args, 1, "offset")?;
                let len = arg_usize(args, 2, "length")?;
                let bytes = self
                    .transfers
                    .get_chunk(&principal, handle, off, len)
                    .map_err(|e| e.to_fault())?;
                Ok(SoapValue::Base64(bytes))
            }
            "open_put" => {
                let path = arg_str(args, 0, "path")?;
                let handle = self
                    .transfers
                    .open_put(&principal, path)
                    .map_err(|e| e.to_fault())?;
                Ok(SoapValue::String(handle))
            }
            "put_chunk" => {
                let handle = arg_str(args, 0, "handle")?;
                let off = arg_usize(args, 1, "offset")?;
                let data = args
                    .get(2)
                    .and_then(|(_, v)| v.as_bytes())
                    .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "missing data"))?;
                let acked = self
                    .transfers
                    .put_chunk(&principal, handle, off, data)
                    .map_err(|e| e.to_fault())?;
                Ok(SoapValue::Int(acked as i64))
            }
            "commit" => {
                let handle = arg_str(args, 0, "handle")?;
                let total = self
                    .transfers
                    .commit(&principal, handle)
                    .map_err(|e| e.to_fault())?;
                Ok(SoapValue::Int(total as i64))
            }
            "abort" => {
                let handle = arg_str(args, 0, "handle")?;
                self.transfers
                    .abort(&principal, handle)
                    .map_err(|e| e.to_fault())?;
                Ok(SoapValue::Null)
            }
            "xml_call" => {
                let request = args.first().and_then(|(_, v)| v.as_xml()).ok_or_else(|| {
                    Fault::portal(PortalErrorKind::BadArguments, "missing request document")
                })?;
                if request.local_name() != "request" {
                    return Err(Fault::portal(
                        PortalErrorKind::BadArguments,
                        "xml_call expects a <request> document",
                    ));
                }
                // "The service executes the separate commands found within
                // the requests sequentially."
                let mut response = Element::new("response");
                for cmd in request.children() {
                    response.push_child(self.run_command(&principal, cmd));
                }
                Ok(SoapValue::Xml(response))
            }
            other => Err(Fault::client(format!(
                "DataManagement has no method {other:?}"
            ))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        vec![
            MethodDesc::new(
                "ls",
                vec![("collection", SoapType::String)],
                SoapType::Array,
                "Directory listing of an SRB collection",
            ),
            MethodDesc::new(
                "cat",
                vec![("path", SoapType::String)],
                SoapType::String,
                "Contents of a file in an SRB collection",
            ),
            MethodDesc::new(
                "get",
                vec![("path", SoapType::String)],
                SoapType::String,
                "Transfer a file to the client as a string",
            ),
            MethodDesc::new(
                "put",
                vec![("path", SoapType::String), ("content", SoapType::String)],
                SoapType::Int,
                "Transfer a file from the client as a string",
            ),
            MethodDesc::new(
                "getB64",
                vec![("path", SoapType::String)],
                SoapType::Base64,
                "Binary-safe transfer to the client (ablation)",
            ),
            MethodDesc::new(
                "putB64",
                vec![("path", SoapType::String), ("data", SoapType::Base64)],
                SoapType::Int,
                "Binary-safe transfer from the client (ablation)",
            ),
            MethodDesc::new(
                "rm",
                vec![("path", SoapType::String)],
                SoapType::Void,
                "Delete an object",
            ),
            MethodDesc::new(
                "mkdir",
                vec![("path", SoapType::String)],
                SoapType::Void,
                "Create a collection",
            ),
            MethodDesc::new(
                "rename",
                vec![("from", SoapType::String), ("to", SoapType::String)],
                SoapType::Void,
                "Atomically move an object, replacing any existing destination",
            ),
            MethodDesc::new(
                "cp",
                vec![("from", SoapType::String), ("to", SoapType::String)],
                SoapType::Void,
                "Copy an object, leaving the source in place",
            ),
            MethodDesc::new(
                "open_get",
                vec![("path", SoapType::String)],
                SoapType::Struct,
                "Open a chunked read handle; returns {handle, size}",
            ),
            MethodDesc::new(
                "get_chunk",
                vec![
                    ("handle", SoapType::String),
                    ("offset", SoapType::Int),
                    ("length", SoapType::Int),
                ],
                SoapType::Base64,
                "Ranged read through a transfer handle; empty at EOF",
            ),
            MethodDesc::new(
                "open_put",
                vec![("path", SoapType::String)],
                SoapType::String,
                "Open a chunked write handle staging beside the destination",
            ),
            MethodDesc::new(
                "put_chunk",
                vec![
                    ("handle", SoapType::String),
                    ("offset", SoapType::Int),
                    ("data", SoapType::Base64),
                ],
                SoapType::Int,
                "Append one chunk; returns the acknowledged frontier",
            ),
            MethodDesc::new(
                "commit",
                vec![("handle", SoapType::String)],
                SoapType::Int,
                "Atomically promote a staged put to its destination",
            ),
            MethodDesc::new(
                "abort",
                vec![("handle", SoapType::String)],
                SoapType::Void,
                "Abandon a transfer and reclaim its handle and staging",
            ),
            MethodDesc::new(
                "xml_call",
                vec![("request", SoapType::Xml)],
                SoapType::Xml,
                "Execute multiple SRB commands from one XML request over one connection",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_soap::{SoapClient, SoapError, SoapServer};
    use portalws_wire::{Handler, InMemoryTransport};

    fn client() -> (Arc<Srb>, SoapClient) {
        let srb = Arc::new(Srb::new());
        srb.mkdir("/data").unwrap();
        srb.put("anonymous", "/data/in.txt", b"line one\nline two\n")
            .unwrap();
        let server = SoapServer::new();
        server.mount(Arc::new(DataManagementService::new(Arc::clone(&srb))));
        let handler: Arc<dyn Handler> = Arc::new(server);
        (
            srb,
            SoapClient::new(Arc::new(InMemoryTransport::new(handler)), "DataManagement"),
        )
    }

    #[test]
    fn ls_returns_array_of_structs() {
        let (_, c) = client();
        let out = c.call("ls", &[SoapValue::str("/data")]).unwrap();
        let arr = out.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].field("name").unwrap().as_str(), Some("in.txt"));
        assert_eq!(arr[0].field("size").unwrap().as_i64(), Some(18));
    }

    #[test]
    fn cat_and_get_stream_strings() {
        let (_, c) = client();
        let out = c.call("cat", &[SoapValue::str("/data/in.txt")]).unwrap();
        assert_eq!(out.as_str().unwrap(), "line one\nline two\n");
        let out = c.call("get", &[SoapValue::str("/data/in.txt")]).unwrap();
        assert!(out.as_str().unwrap().starts_with("line one"));
    }

    #[test]
    fn put_then_get_round_trip() {
        let (srb, c) = client();
        let content = "x <b>&</b> y\n".repeat(10);
        let n = c
            .call(
                "put",
                &[
                    SoapValue::str("/data/out.txt"),
                    SoapValue::str(content.clone()),
                ],
            )
            .unwrap();
        assert_eq!(n.as_i64(), Some(content.len() as i64));
        assert_eq!(srb.cat("anonymous", "/data/out.txt").unwrap(), content);
        let back = c.call("get", &[SoapValue::str("/data/out.txt")]).unwrap();
        assert_eq!(back.as_str().unwrap(), content);
    }

    #[test]
    fn rename_and_cp_over_soap() {
        let (srb, c) = client();
        c.call(
            "rename",
            &[
                SoapValue::str("/data/in.txt"),
                SoapValue::str("/data/moved.txt"),
            ],
        )
        .unwrap();
        assert!(srb.stat("anonymous", "/data/in.txt").is_err());
        c.call(
            "cp",
            &[
                SoapValue::str("/data/moved.txt"),
                SoapValue::str("/data/copy.txt"),
            ],
        )
        .unwrap();
        assert_eq!(
            srb.cat("anonymous", "/data/moved.txt").unwrap(),
            "line one\nline two\n"
        );
        assert_eq!(
            srb.cat("anonymous", "/data/copy.txt").unwrap(),
            "line one\nline two\n"
        );
    }

    #[test]
    fn base64_round_trip_is_binary_safe() {
        let (_, c) = client();
        let data: Vec<u8> = (0u8..=255).collect();
        c.call(
            "putB64",
            &[SoapValue::str("/data/bin"), SoapValue::Base64(data.clone())],
        )
        .unwrap();
        let back = c.call("getB64", &[SoapValue::str("/data/bin")]).unwrap();
        assert_eq!(back.as_bytes().unwrap(), &data[..]);
    }

    #[test]
    fn missing_file_maps_to_file_not_found() {
        let (_, c) = client();
        let err = c.call("get", &[SoapValue::str("/data/ghost")]).unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::FileNotFound)
        );
    }

    #[test]
    fn quota_maps_to_disk_full() {
        let (srb, c) = client();
        srb.set_quota("/data", 32);
        let err = c
            .call(
                "put",
                &[
                    SoapValue::str("/data/big.txt"),
                    SoapValue::str("much more than thirty-two bytes of text"),
                ],
            )
            .unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::DiskFull)
        );
    }

    #[test]
    fn acl_maps_to_permission_denied() {
        let (srb, c) = client();
        srb.set_acl("/data", vec!["alice".into()]);
        let err = c.call("ls", &[SoapValue::str("/data")]).unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::PermissionDenied)
        );
    }

    #[test]
    fn xml_call_batches_commands_sequentially() {
        let (_, c) = client();
        let request = Element::new("request")
            .with_child(Element::new("mkdir").with_attr("path", "/data/sub"))
            .with_child(
                Element::new("put")
                    .with_attr("path", "/data/sub/a.txt")
                    .with_text("alpha"),
            )
            .with_child(Element::new("cat").with_attr("path", "/data/sub/a.txt"))
            .with_child(Element::new("ls").with_attr("collection", "/data/sub"));
        let out = c.call("xml_call", &[SoapValue::Xml(request)]).unwrap();
        let response = out.as_xml().unwrap();
        let results: Vec<&Element> = response.children().collect();
        assert_eq!(results.len(), 4);
        assert_eq!(results[2].text(), "alpha");
        assert_eq!(results[3].children().count(), 1);
    }

    #[test]
    fn xml_call_reports_per_command_errors_inline() {
        let (_, c) = client();
        let request = Element::new("request")
            .with_child(Element::new("cat").with_attr("path", "/data/ghost"))
            .with_child(Element::new("cat").with_attr("path", "/data/in.txt"));
        let out = c.call("xml_call", &[SoapValue::Xml(request)]).unwrap();
        let response = out.as_xml().unwrap();
        let results: Vec<&Element> = response.children().collect();
        assert_eq!(results[0].attr("error"), Some("true"));
        // A failed command does not abort the batch.
        assert_eq!(results[1].text(), "line one\nline two\n");
    }

    #[test]
    fn xml_call_rejects_non_request_documents() {
        let (_, c) = client();
        let err = c
            .call("xml_call", &[SoapValue::Xml(Element::new("wrong"))])
            .unwrap_err();
        assert!(matches!(err, SoapError::Fault(_)));
    }

    #[test]
    fn unknown_method_is_fault() {
        let (_, c) = client();
        assert!(c.call("chmod", &[]).is_err());
    }

    #[test]
    fn non_utf8_get_faults_toward_binary_paths() {
        // Regression: the string path used to surface a bare broker error
        // with no redirect; callers must be pointed at getB64/open_get.
        let (srb, c) = client();
        srb.put("anonymous", "/data/bin", &[0xC3, 0x28, 0xFF])
            .unwrap();
        for method in ["get", "cat"] {
            let err = c.call(method, &[SoapValue::str("/data/bin")]).unwrap_err();
            let fault = err.as_fault().expect("typed fault");
            assert_eq!(fault.kind(), Some(PortalErrorKind::BadArguments));
            assert!(
                fault.string.contains("getB64") && fault.string.contains("open_get"),
                "{method} fault must direct to the binary paths: {}",
                fault.string
            );
        }
        // The binary paths themselves still work on the same object.
        let back = c.call("getB64", &[SoapValue::str("/data/bin")]).unwrap();
        assert_eq!(back.as_bytes().unwrap(), &[0xC3, 0x28, 0xFF]);
    }

    #[test]
    fn chunked_transfer_round_trip_over_soap() {
        let (srb, c) = client();
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        // Put in 7 KiB chunks.
        let handle = c
            .call("open_put", &[SoapValue::str("/data/big.bin")])
            .unwrap();
        let handle = handle.as_str().unwrap().to_owned();
        let chunk = 7 * 1024;
        let mut off = 0usize;
        while off < payload.len() {
            let end = (off + chunk).min(payload.len());
            let acked = c
                .call(
                    "put_chunk",
                    &[
                        SoapValue::str(handle.clone()),
                        SoapValue::Int(off as i64),
                        SoapValue::Base64(payload[off..end].to_vec()),
                    ],
                )
                .unwrap();
            assert_eq!(acked.as_i64(), Some(end as i64));
            off = end;
        }
        let total = c.call("commit", &[SoapValue::str(handle)]).unwrap();
        assert_eq!(total.as_i64(), Some(payload.len() as i64));
        assert_eq!(srb.get("anonymous", "/data/big.bin").unwrap(), payload);

        // Get it back in different-sized chunks.
        let opened = c
            .call("open_get", &[SoapValue::str("/data/big.bin")])
            .unwrap();
        let gh = opened.field("handle").unwrap().as_str().unwrap().to_owned();
        let size = opened.field("size").unwrap().as_i64().unwrap() as usize;
        assert_eq!(size, payload.len());
        let mut back = Vec::new();
        let chunk = 9 * 1024;
        while back.len() < size {
            let piece = c
                .call(
                    "get_chunk",
                    &[
                        SoapValue::str(gh.clone()),
                        SoapValue::Int(back.len() as i64),
                        SoapValue::Int(chunk as i64),
                    ],
                )
                .unwrap();
            let piece = piece.as_bytes().unwrap().to_vec();
            assert!(!piece.is_empty());
            back.extend_from_slice(&piece);
        }
        assert_eq!(back, payload);
        // One more read lands exactly at EOF: clean empty chunk.
        let eof = c
            .call(
                "get_chunk",
                &[
                    SoapValue::str(gh.clone()),
                    SoapValue::Int(size as i64),
                    SoapValue::Int(chunk as i64),
                ],
            )
            .unwrap();
        assert_eq!(eof.as_bytes().unwrap(), b"");
        c.call("abort", &[SoapValue::str(gh)]).unwrap();
    }

    #[test]
    fn chunked_put_of_zero_length_file_round_trips() {
        let (srb, c) = client();
        let handle = c
            .call("open_put", &[SoapValue::str("/data/empty.bin")])
            .unwrap();
        let handle = handle.as_str().unwrap().to_owned();
        let total = c.call("commit", &[SoapValue::str(handle)]).unwrap();
        assert_eq!(total.as_i64(), Some(0));
        assert_eq!(srb.get("anonymous", "/data/empty.bin").unwrap(), b"");
        // And the chunked read of it: open reports size 0, first read EOF.
        let opened = c
            .call("open_get", &[SoapValue::str("/data/empty.bin")])
            .unwrap();
        assert_eq!(opened.field("size").unwrap().as_i64(), Some(0));
        let gh = opened.field("handle").unwrap().as_str().unwrap().to_owned();
        let eof = c
            .call(
                "get_chunk",
                &[SoapValue::str(gh), SoapValue::Int(0), SoapValue::Int(4096)],
            )
            .unwrap();
        assert_eq!(eof.as_bytes().unwrap(), b"");
    }

    #[test]
    fn transfer_faults_carry_typed_kinds_over_soap() {
        let (_, c) = client();
        // Unknown handle → NOT_FOUND.
        let err = c
            .call(
                "get_chunk",
                &[
                    SoapValue::str("t-404"),
                    SoapValue::Int(0),
                    SoapValue::Int(16),
                ],
            )
            .unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::NotFound)
        );
        // Negative offset → BAD_ARGUMENTS before touching the table.
        let err = c
            .call(
                "get_chunk",
                &[
                    SoapValue::str("t-404"),
                    SoapValue::Int(-1),
                    SoapValue::Int(16),
                ],
            )
            .unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::BadArguments)
        );
    }
}
