//! Cross-process namespace sharding for the data plane (PR 10).
//!
//! One [`DataManagementService`] scales until a single broker's stripes
//! saturate; past that the namespace itself must be split across
//! processes. [`ShardedDataService`] is a drop-in `DataManagement` SOAP
//! service that consistent-hashes the **top-level collection** of every
//! path onto one of M backend brokers and routes the call there:
//!
//! * [`ShardMap`] is a consistent-hash ring with virtual nodes, so adding
//!   a shard moves only ~1/M of the keyspace instead of rehashing it all.
//! * Transfer handles are wrapped as `s<k>/t-<id>` so chunked reads and
//!   writes keep flowing to the backend that opened them, with no router
//!   state per handle.
//! * The shard map carries a **generation**: the router implements
//!   [`SoapService::generation`], bumping it on every mutation and on
//!   every topology change, so the E14 versioned read cache and clients
//!   revalidate instead of serving reads from a stale layout.
//! * `rename`/`cp` whose source and destination land on different shards
//!   cannot use a broker's atomic move. The router runs a journaled
//!   copy-then-delete protocol built from the E13 chunked-transfer
//!   primitives, designed so that a coordinator crash at any step leaves
//!   the namespace recoverable with **exactly one** complete copy
//!   visible under the *user-facing* names:
//!
//!   1. stage a chunked put at the destination shard (validates the
//!      destination ACL before anything moves),
//!   2. atomically rename the source to a hidden `.mv-<id>-…` tombstone
//!      on its own shard — from here the source *name* is gone, but the
//!      bytes are not,
//!   3. stream the tombstone into the destination staging area,
//!   4. commit the destination (atomic promote — the point of no return),
//!   5. delete the tombstone.
//!
//!   A journal entry recorded before step 2 drives [`recover`]: entries
//!   that reached step 4 roll forward (re-run the delete leg), earlier
//!   ones roll back (abort staging, rename the tombstone home). The e12
//!   chaos harness injects coordinator faults at `copy-chunk`,
//!   `pre-commit` and `delete-leg` and asserts the exactly-one-copy
//!   invariant after recovery.
//!
//! [`recover`]: ShardedDataService::recover

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use portalws_gridsim::srb::{DirEntry, Srb, SrbError};

type SrbResult<T> = std::result::Result<T, SrbError>;
use portalws_soap::{
    CallContext, Fault, MethodDesc, PortalErrorKind, SoapResult, SoapService, SoapType, SoapValue,
};
use portalws_wire::ArcCell;
use portalws_xml::Element;

use crate::caller_principal;
use crate::data::{arg_str, arg_usize, srb_fault, DataManagementService};

/// Virtual nodes per shard on the ring. Enough that 64 top-level
/// collections over 4 shards balance within the e16 gate (max/mean ≤
/// 1.25) while keeping the ring a few hundred entries.
pub const DEFAULT_VNODES: usize = 160;

/// Bytes streamed per chunk while a cross-shard move copies the
/// tombstone into the destination staging area.
const COPY_CHUNK: usize = 64 * 1024;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// splitmix64 finalizer. Raw FNV-1a of near-identical strings (the ring's
/// `shard-s/vnode-v` labels differ only in trailing digits) clusters so
/// tightly that each shard's vnodes form one contiguous arc and the ring
/// degenerates to a single owner; the finalizer's avalanche restores a
/// uniform spread.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Position of a label on the hash ring.
fn ring_point(label: &str) -> u64 {
    mix64(fnv1a(label.as_bytes()))
}

/// Top-level collection segment of a path, the unit of placement.
/// `None` for the root itself.
fn top_of(path: &str) -> Option<&str> {
    path.trim_matches('/')
        .split('/')
        .next()
        .filter(|s| !s.is_empty())
}

/// Consistent-hash ring mapping top-level collections onto shard
/// indices. Pure data: the router swaps whole maps atomically.
#[derive(Clone)]
pub struct ShardMap {
    /// `(point, shard)` sorted by point; a key owns the first point at or
    /// after its own hash, wrapping at the top.
    ring: Vec<(u64, usize)>,
    shards: usize,
    vnodes: usize,
}

impl ShardMap {
    /// A ring of `shards` shards with `vnodes` virtual nodes each.
    pub fn new(shards: usize, vnodes: usize) -> ShardMap {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut ring = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            for v in 0..vnodes {
                ring.push((ring_point(&format!("shard-{s}/vnode-{v}")), s));
            }
        }
        ring.sort_unstable();
        // A hash collision between vnodes would make ownership depend on
        // sort stability; keep the first (lowest shard) deterministically.
        ring.dedup_by_key(|e| e.0);
        ShardMap {
            ring,
            shards,
            vnodes,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Shard owning top-level collection `top`.
    pub fn owner_of_top(&self, top: &str) -> usize {
        let h = ring_point(top);
        let idx = self.ring.partition_point(|e| e.0 < h);
        self.ring
            .get(idx)
            .or_else(|| self.ring.first())
            .map(|e| e.1)
            .unwrap_or(0)
    }
}

/// Decides whether an injected coordinator fault fires at a named
/// protocol point (`copy-chunk`, `pre-commit`, `delete-leg`).
pub type FaultHook = Arc<dyn Fn(&str) -> bool + Send + Sync>;

/// Journal entry for one in-flight cross-shard move; drives `recover`.
struct MoveRecord {
    principal: String,
    src_shard: usize,
    dst_shard: usize,
    /// Original user-facing source path (rollback target).
    src: String,
    /// Hidden tombstone the source was renamed to; empty for `cp`,
    /// which never hides its source.
    tombstone: String,
    /// Backend-local read handle streaming the source, if still open.
    src_handle: Option<String>,
    /// Backend-local staged-put handle at the destination, if still open.
    dst_handle: Option<String>,
    /// True once the destination committed: roll forward from here.
    committed: bool,
    /// True for `cp`: no tombstone, no delete leg, rollback only ever
    /// aborts staging.
    copy_only: bool,
}

/// Counts of moves repaired by [`ShardedDataService::recover`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Moves past the commit point whose delete leg was re-run.
    pub rolled_forward: usize,
    /// Moves before the commit point whose source was restored.
    pub rolled_back: usize,
}

/// Consistent-hash router over M backend data services, itself a
/// `DataManagement` SOAP service (drop-in for the unsharded one).
pub struct ShardedDataService {
    backends: Box<[Arc<DataManagementService>]>,
    map: ArcCell<ShardMap>,
    /// Bumped on every mutation and on every topology change. Excess
    /// bumps only cost cache refills, staleness is never possible.
    generation: AtomicU64,
    fault_hook: RwLock<Option<FaultHook>>,
    moves: Mutex<HashMap<u64, MoveRecord>>,
    next_move: AtomicU64,
}

impl ShardedDataService {
    /// A router over `shards` fresh brokers.
    pub fn new(shards: usize) -> ShardedDataService {
        let backends = (0..shards.max(1))
            .map(|_| Arc::new(DataManagementService::new(Arc::new(Srb::new()))))
            .collect();
        Self::with_backends(backends, DEFAULT_VNODES)
    }

    /// A router over existing backends with `vnodes` virtual nodes each.
    pub fn with_backends(
        backends: Vec<Arc<DataManagementService>>,
        vnodes: usize,
    ) -> ShardedDataService {
        let shards = backends.len().max(1);
        ShardedDataService {
            backends: backends.into_boxed_slice(),
            map: ArcCell::new(Arc::new(ShardMap::new(shards, vnodes))),
            generation: AtomicU64::new(0),
            fault_hook: RwLock::new_named(None, "shard-fault-hook"),
            moves: Mutex::new_named(HashMap::new(), "shard-move-journal"),
            next_move: AtomicU64::new(1),
        }
    }

    /// A sharded namespace populated like the GCE testbed (one home
    /// collection per user plus a world-readable `/public`), with each
    /// top-level collection provisioned only on its owning shard.
    pub fn testbed(users: &[&str], shards: usize) -> ShardedDataService {
        let svc = Self::new(shards);
        for user in users {
            let home = format!("/home-{user}");
            let _ = svc.mkdir(&home);
            svc.set_acl(&home, vec![(*user).to_owned()]);
            svc.set_quota(&home, 1 << 20);
        }
        let _ = svc.mkdir("/public");
        let _ = svc.put_bytes(
            "anonymous",
            "/public/README",
            b"GCE testbed public collection\n",
        );
        svc
    }

    /// The backend data services, in shard order.
    pub fn backends(&self) -> &[Arc<DataManagementService>] {
        &self.backends
    }

    /// The current shard map.
    pub fn map(&self) -> Arc<ShardMap> {
        self.map.load()
    }

    /// Install a new shard map (topology change) and bump the
    /// generation so cached reads revalidate against the new layout.
    pub fn install_map(&self, map: ShardMap) {
        self.map.store(Arc::new(map));
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Current namespace generation (also stamped on SOAP replies).
    pub fn current_generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Shard index owning `path`, or `None` for the root.
    pub fn owner_of(&self, path: &str) -> Option<usize> {
        top_of(path).map(|top| self.map.load().owner_of_top(top))
    }

    /// Install (or clear) the chaos hook fired at cross-shard move
    /// protocol points. Test/chaos instrumentation only.
    pub fn set_fault_hook(&self, hook: Option<FaultHook>) {
        *self.fault_hook.write() = hook;
    }

    /// Cross-shard moves still in the journal (0 after clean runs and
    /// after `recover`).
    pub fn pending_moves(&self) -> usize {
        self.moves.lock().len()
    }

    fn bump(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    fn backend(&self, k: usize) -> SoapResult<&Arc<DataManagementService>> {
        self.backends.get(k).ok_or_else(|| {
            Fault::portal(
                PortalErrorKind::NotFound,
                format!("no shard {k} in a {}-shard map", self.backends.len()),
            )
        })
    }

    /// Backend owning `path`; the root routes to shard 0, whose broker
    /// then produces the same error an unsharded deployment would.
    fn route(&self, path: &str) -> SoapResult<&Arc<DataManagementService>> {
        let k = self.owner_of(path).unwrap_or(0);
        self.backend(k)
    }

    /// Split a wrapped `s<k>/t-<id>` handle into its shard and the
    /// backend-local handle.
    fn parse_handle<'a>(&self, handle: &'a str) -> SoapResult<(usize, &'a str)> {
        let parsed = handle
            .strip_prefix('s')
            .and_then(|rest| rest.split_once('/'))
            .and_then(|(shard, inner)| shard.parse::<usize>().ok().map(|k| (k, inner)));
        let Some((k, inner)) = parsed else {
            return Err(Fault::portal(
                PortalErrorKind::NotFound,
                format!("no transfer handle {handle:?}"),
            ));
        };
        if k >= self.backends.len() {
            return Err(Fault::portal(
                PortalErrorKind::NotFound,
                format!("no transfer handle {handle:?}"),
            ));
        }
        Ok((k, inner))
    }

    fn fault_point(&self, point: &str, op: &str) -> SoapResult<()> {
        let hook = self.fault_hook.read().clone();
        if let Some(hook) = hook {
            if hook(point) {
                return Err(Fault::portal(
                    PortalErrorKind::Internal,
                    format!("injected coordinator fault at {point} during {op}"),
                ));
            }
        }
        Ok(())
    }

    // ---- provisioning helpers (routed equivalents of the Srb admin API)

    /// Create a collection on the owning shard.
    pub fn mkdir(&self, path: &str) -> SrbResult<()> {
        self.bump();
        self.route(path)
            .map_err(|_| SrbError::Invalid(path.to_owned()))?
            .srb()
            .mkdir(path)
    }

    /// Restrict a top-level collection on its owning shard.
    pub fn set_acl(&self, top: &str, principals: Vec<String>) {
        self.bump();
        if let Ok(b) = self.route(top) {
            b.srb().set_acl(top, principals);
        }
    }

    /// Set a byte quota on a top-level collection's owning shard.
    pub fn set_quota(&self, top: &str, bytes: usize) {
        self.bump();
        if let Ok(b) = self.route(top) {
            b.srb().set_quota(top, bytes);
        }
    }

    /// Routed write (testbed seeding and chaos ground truth).
    pub fn put_bytes(&self, principal: &str, path: &str, bytes: &[u8]) -> SrbResult<()> {
        self.bump();
        self.route(path)
            .map_err(|_| SrbError::Invalid(path.to_owned()))?
            .srb()
            .put(principal, path, bytes)
    }

    /// Routed read (chaos ground truth).
    pub fn get_bytes(&self, principal: &str, path: &str) -> SrbResult<Vec<u8>> {
        self.route(path)
            .map_err(|_| SrbError::Invalid(path.to_owned()))?
            .srb()
            .get(principal, path)
    }

    // ---- routed operations

    /// Root listing: the union of every shard's top-level collections
    /// (each top exists only on its owner, so entries never collide);
    /// any other path lists on its owning shard.
    fn ls_routed(&self, principal: &str, path: &str) -> SoapResult<Vec<DirEntry>> {
        if top_of(path).is_some() {
            return self
                .route(path)?
                .srb()
                .ls(principal, path)
                .map_err(srb_fault);
        }
        let mut entries = Vec::new();
        for b in self.backends.iter() {
            entries.extend(b.srb().ls_root());
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(entries)
    }

    /// Copy `src_path` on shard `si` into a staged put of `dst_path` on
    /// shard `di` using the chunked-transfer primitives, updating the
    /// journal entry `id` with the open handles as they appear. Returns
    /// the destination's backend-local staging handle, **not yet
    /// committed**.
    fn copy_across(
        &self,
        id: u64,
        op: &str,
        principal: &str,
        (si, src_path): (usize, &str),
        (di, dst_path): (usize, &str),
    ) -> SoapResult<String> {
        let src_b = self.backend(si)?;
        let dst_b = self.backend(di)?;
        let dst_handle = dst_b
            .transfers()
            .open_put(principal, dst_path)
            .map_err(|e| e.to_fault())?;
        if let Some(rec) = self.moves.lock().get_mut(&id) {
            rec.dst_handle = Some(dst_handle.clone());
        }
        let (src_handle, size) = match src_b.transfers().open_get(principal, src_path) {
            Ok(opened) => opened,
            Err(e) => {
                let _ = dst_b.transfers().abort(principal, &dst_handle);
                if let Some(rec) = self.moves.lock().get_mut(&id) {
                    rec.dst_handle = None;
                }
                return Err(e.to_fault());
            }
        };
        if let Some(rec) = self.moves.lock().get_mut(&id) {
            rec.src_handle = Some(src_handle.clone());
        }
        let stream = (|| -> SoapResult<()> {
            let mut off = 0usize;
            while off < size {
                self.fault_point("copy-chunk", op)?;
                let chunk = src_b
                    .transfers()
                    .get_chunk(principal, &src_handle, off, COPY_CHUNK)
                    .map_err(|e| e.to_fault())?;
                if chunk.is_empty() {
                    break;
                }
                dst_b
                    .transfers()
                    .put_chunk(principal, &dst_handle, off, &chunk)
                    .map_err(|e| e.to_fault())?;
                off += chunk.len();
            }
            Ok(())
        })();
        stream?;
        // Done reading: release the source handle eagerly rather than
        // letting the idle TTL reclaim it.
        let _ = src_b.transfers().abort(principal, &src_handle);
        if let Some(rec) = self.moves.lock().get_mut(&id) {
            rec.src_handle = None;
        }
        Ok(dst_handle)
    }

    /// Cross-shard `rename`: the journaled hide → copy → commit → delete
    /// protocol described in the module docs.
    fn rename_across(
        &self,
        principal: &str,
        si: usize,
        from: &str,
        di: usize,
        to: &str,
    ) -> SoapResult<()> {
        let src_b = self.backend(si)?;
        let (parent, leaf) = from.rsplit_once('/').unwrap_or(("", from));
        let id = self.next_move.fetch_add(1, Ordering::Relaxed);
        let tombstone = format!("{parent}/.mv-{id}-{leaf}");
        self.moves.lock().insert(
            id,
            MoveRecord {
                principal: principal.to_owned(),
                src_shard: si,
                dst_shard: di,
                src: from.to_owned(),
                tombstone: tombstone.clone(),
                src_handle: None,
                dst_handle: None,
                committed: false,
                copy_only: false,
            },
        );
        let outcome = (|| -> SoapResult<()> {
            // Hide the source under its tombstone name first: an atomic
            // single-shard rename, so the user-facing source name is
            // either fully present or fully gone.
            src_b
                .srb()
                .rename(principal, from, &tombstone)
                .map_err(srb_fault)?;
            let dst_handle =
                self.copy_across(id, "rename", principal, (si, &tombstone), (di, to))?;
            self.fault_point("pre-commit", "rename")?;
            let dst_b = self.backend(di)?;
            dst_b
                .transfers()
                .commit(principal, &dst_handle)
                .map_err(|e| e.to_fault())?;
            // Point of no return: the destination is visible and complete.
            if let Some(rec) = self.moves.lock().get_mut(&id) {
                rec.committed = true;
                rec.dst_handle = None;
            }
            self.fault_point("delete-leg", "rename")?;
            src_b.srb().rm(principal, &tombstone).map_err(srb_fault)?;
            Ok(())
        })();
        match outcome {
            Ok(()) => {
                self.moves.lock().remove(&id);
                Ok(())
            }
            // The journal entry stays: `recover` rolls it forward or
            // back depending on whether the commit landed.
            Err(e) => Err(e),
        }
    }

    /// Cross-shard `cp`: copy → commit, no tombstone and no delete leg.
    fn cp_across(
        &self,
        principal: &str,
        si: usize,
        from: &str,
        di: usize,
        to: &str,
    ) -> SoapResult<()> {
        let id = self.next_move.fetch_add(1, Ordering::Relaxed);
        self.moves.lock().insert(
            id,
            MoveRecord {
                principal: principal.to_owned(),
                src_shard: si,
                dst_shard: di,
                src: from.to_owned(),
                tombstone: String::new(),
                src_handle: None,
                dst_handle: None,
                committed: false,
                copy_only: true,
            },
        );
        let outcome = (|| -> SoapResult<()> {
            let dst_handle = self.copy_across(id, "cp", principal, (si, from), (di, to))?;
            self.fault_point("pre-commit", "cp")?;
            self.backend(di)?
                .transfers()
                .commit(principal, &dst_handle)
                .map_err(|e| e.to_fault())?;
            if let Some(rec) = self.moves.lock().get_mut(&id) {
                rec.committed = true;
                rec.dst_handle = None;
            }
            Ok(())
        })();
        match outcome {
            Ok(()) => {
                self.moves.lock().remove(&id);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Repair every journaled move: committed entries roll forward
    /// (re-run the delete leg), uncommitted ones roll back (abort
    /// staging, rename the tombstone back to the source name). Safe to
    /// call repeatedly; the journal is empty afterwards.
    pub fn recover(&self) -> RecoveryReport {
        let drained: Vec<MoveRecord> = {
            let mut moves = self.moves.lock();
            moves.drain().map(|(_, rec)| rec).collect()
        };
        let mut report = RecoveryReport::default();
        for rec in drained {
            self.bump();
            let src_b = self.backends.get(rec.src_shard);
            let dst_b = self.backends.get(rec.dst_shard);
            // Open handles die first: staging `.part-` files and read
            // handles must not outlive the move.
            if let (Some(b), Some(h)) = (src_b, rec.src_handle.as_deref()) {
                let _ = b.transfers().abort(&rec.principal, h);
            }
            if let (Some(b), Some(h)) = (dst_b, rec.dst_handle.as_deref()) {
                let _ = b.transfers().abort(&rec.principal, h);
            }
            if rec.committed {
                // The destination is complete: finish the delete leg
                // (`cp` has none — its source was never hidden).
                if !rec.copy_only {
                    if let Some(b) = src_b {
                        let _ = b.srb().rm(&rec.principal, &rec.tombstone);
                    }
                }
                report.rolled_forward += 1;
            } else {
                // The destination never committed: restore the source.
                if !rec.copy_only {
                    if let Some(b) = src_b {
                        if b.srb().stat(&rec.principal, &rec.tombstone).is_ok() {
                            let _ = b.srb().rename(&rec.principal, &rec.tombstone, &rec.src);
                        }
                    }
                }
                report.rolled_back += 1;
            }
        }
        report
    }

    /// Route one `xml_call` command to its owning backend (a root `ls`
    /// merges across shards like the `ls` method does).
    fn run_routed_command(&self, principal: &str, cmd: &Element) -> Element {
        let op = cmd.local_name();
        let path_attr = if op == "ls" {
            cmd.attr("collection")
        } else {
            cmd.attr("path")
        };
        if op == "ls" && path_attr.is_some_and(|p| top_of(p).is_none()) {
            return match self.ls_routed(principal, "/") {
                Ok(entries) => {
                    let mut out = Element::new("result").with_attr("op", "ls");
                    for e in entries {
                        out.push_child(
                            Element::new("entry")
                                .with_attr("name", e.name)
                                .with_attr("collection", e.is_collection.to_string())
                                .with_attr("size", e.size.to_string()),
                        );
                    }
                    out
                }
                Err(e) => Element::new("result")
                    .with_attr("op", "ls")
                    .with_attr("error", "true")
                    .with_text(e.string),
            };
        }
        // A missing path attribute routes to shard 0, whose broker
        // reports the same inline error an unsharded service would.
        let k = path_attr.and_then(|p| self.owner_of(p)).unwrap_or(0);
        match self.backend(k) {
            Ok(b) => b.run_command(principal, cmd),
            Err(e) => Element::new("result")
                .with_attr("op", op)
                .with_attr("error", "true")
                .with_text(e.string),
        }
    }
}

impl SoapService for ShardedDataService {
    fn name(&self) -> &str {
        "DataManagement"
    }

    fn generation(&self) -> Option<u64> {
        Some(self.generation.load(Ordering::Relaxed))
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        let principal = caller_principal(ctx);
        // Over-approximate mutation detection: anything that can change
        // visible namespace state bumps the generation up front, so the
        // versioned read cache can never serve across a write.
        if matches!(
            method,
            "put"
                | "putB64"
                | "rm"
                | "mkdir"
                | "rename"
                | "cp"
                | "open_put"
                | "put_chunk"
                | "commit"
                | "abort"
                | "xml_call"
        ) {
            self.bump();
        }
        match method {
            "ls" => {
                let path = arg_str(args, 0, "collection")?;
                let entries = self.ls_routed(&principal, path)?;
                Ok(SoapValue::Array(
                    entries
                        .into_iter()
                        .map(|e| {
                            SoapValue::Struct(vec![
                                ("name".into(), SoapValue::str(e.name)),
                                ("isCollection".into(), SoapValue::Bool(e.is_collection)),
                                ("size".into(), SoapValue::Int(e.size as i64)),
                            ])
                        })
                        .collect(),
                ))
            }
            "cat" => {
                let path = arg_str(args, 0, "path")?;
                Ok(SoapValue::String(
                    self.route(path)?.cat_utf8(&principal, path)?,
                ))
            }
            "get" => {
                let path = arg_str(args, 0, "path")?;
                Ok(SoapValue::String(
                    self.route(path)?.cat_utf8(&principal, path)?,
                ))
            }
            "put" => {
                let path = arg_str(args, 0, "path")?;
                let content = arg_str(args, 1, "content")?;
                self.route(path)?
                    .srb()
                    .put(&principal, path, content.as_bytes())
                    .map_err(srb_fault)?;
                Ok(SoapValue::Int(content.len() as i64))
            }
            "getB64" => {
                let path = arg_str(args, 0, "path")?;
                let bytes = self
                    .route(path)?
                    .srb()
                    .get(&principal, path)
                    .map_err(srb_fault)?;
                Ok(SoapValue::Base64(bytes))
            }
            "putB64" => {
                let path = arg_str(args, 0, "path")?;
                let bytes = args
                    .get(1)
                    .and_then(|(_, v)| v.as_bytes())
                    .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "missing data"))?;
                self.route(path)?
                    .srb()
                    .put(&principal, path, bytes)
                    .map_err(srb_fault)?;
                Ok(SoapValue::Int(bytes.len() as i64))
            }
            "rm" => {
                let path = arg_str(args, 0, "path")?;
                self.route(path)?
                    .srb()
                    .rm(&principal, path)
                    .map_err(srb_fault)?;
                Ok(SoapValue::Null)
            }
            "mkdir" => {
                let path = arg_str(args, 0, "path")?;
                self.route(path)?.srb().mkdir(path).map_err(srb_fault)?;
                Ok(SoapValue::Null)
            }
            "rename" => {
                let from = arg_str(args, 0, "from")?;
                let to = arg_str(args, 1, "to")?;
                let (si, di) = (
                    self.owner_of(from).unwrap_or(0),
                    self.owner_of(to).unwrap_or(0),
                );
                if si == di {
                    self.backend(si)?
                        .srb()
                        .rename(&principal, from, to)
                        .map_err(srb_fault)?;
                } else {
                    self.rename_across(&principal, si, from, di, to)?;
                }
                Ok(SoapValue::Null)
            }
            "cp" => {
                let from = arg_str(args, 0, "from")?;
                let to = arg_str(args, 1, "to")?;
                let (si, di) = (
                    self.owner_of(from).unwrap_or(0),
                    self.owner_of(to).unwrap_or(0),
                );
                if si == di {
                    self.backend(si)?
                        .srb()
                        .cp(&principal, from, to)
                        .map_err(srb_fault)?;
                } else {
                    self.cp_across(&principal, si, from, di, to)?;
                }
                Ok(SoapValue::Null)
            }
            "open_get" => {
                let path = arg_str(args, 0, "path")?;
                let k = self.owner_of(path).unwrap_or(0);
                let (handle, size) = self
                    .backend(k)?
                    .transfers()
                    .open_get(&principal, path)
                    .map_err(|e| e.to_fault())?;
                Ok(SoapValue::Struct(vec![
                    ("handle".into(), SoapValue::str(format!("s{k}/{handle}"))),
                    ("size".into(), SoapValue::Int(size as i64)),
                ]))
            }
            "get_chunk" => {
                let handle = arg_str(args, 0, "handle")?;
                let off = arg_usize(args, 1, "offset")?;
                let len = arg_usize(args, 2, "length")?;
                let (k, inner) = self.parse_handle(handle)?;
                let bytes = self
                    .backend(k)?
                    .transfers()
                    .get_chunk(&principal, inner, off, len)
                    .map_err(|e| e.to_fault())?;
                Ok(SoapValue::Base64(bytes))
            }
            "open_put" => {
                let path = arg_str(args, 0, "path")?;
                let k = self.owner_of(path).unwrap_or(0);
                let handle = self
                    .backend(k)?
                    .transfers()
                    .open_put(&principal, path)
                    .map_err(|e| e.to_fault())?;
                Ok(SoapValue::String(format!("s{k}/{handle}")))
            }
            "put_chunk" => {
                let handle = arg_str(args, 0, "handle")?;
                let off = arg_usize(args, 1, "offset")?;
                let data = args
                    .get(2)
                    .and_then(|(_, v)| v.as_bytes())
                    .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "missing data"))?;
                let (k, inner) = self.parse_handle(handle)?;
                let acked = self
                    .backend(k)?
                    .transfers()
                    .put_chunk(&principal, inner, off, data)
                    .map_err(|e| e.to_fault())?;
                Ok(SoapValue::Int(acked as i64))
            }
            "commit" => {
                let handle = arg_str(args, 0, "handle")?;
                let (k, inner) = self.parse_handle(handle)?;
                let total = self
                    .backend(k)?
                    .transfers()
                    .commit(&principal, inner)
                    .map_err(|e| e.to_fault())?;
                Ok(SoapValue::Int(total as i64))
            }
            "abort" => {
                let handle = arg_str(args, 0, "handle")?;
                let (k, inner) = self.parse_handle(handle)?;
                self.backend(k)?
                    .transfers()
                    .abort(&principal, inner)
                    .map_err(|e| e.to_fault())?;
                Ok(SoapValue::Null)
            }
            "xml_call" => {
                let request = args.first().and_then(|(_, v)| v.as_xml()).ok_or_else(|| {
                    Fault::portal(PortalErrorKind::BadArguments, "missing request document")
                })?;
                if request.local_name() != "request" {
                    return Err(Fault::portal(
                        PortalErrorKind::BadArguments,
                        "xml_call expects a <request> document",
                    ));
                }
                let mut response = Element::new("response");
                for cmd in request.children() {
                    response.push_child(self.run_routed_command(&principal, cmd));
                }
                Ok(SoapValue::Xml(response))
            }
            other => Err(Fault::client(format!(
                "DataManagement has no method {other:?}"
            ))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        vec![
            MethodDesc::new(
                "ls",
                vec![("collection", SoapType::String)],
                SoapType::Array,
                "Directory listing of an SRB collection (root merges all shards)",
            ),
            MethodDesc::new(
                "cat",
                vec![("path", SoapType::String)],
                SoapType::String,
                "Contents of a file in an SRB collection",
            ),
            MethodDesc::new(
                "get",
                vec![("path", SoapType::String)],
                SoapType::String,
                "Transfer a file to the client as a string",
            ),
            MethodDesc::new(
                "put",
                vec![("path", SoapType::String), ("content", SoapType::String)],
                SoapType::Int,
                "Transfer a file from the client as a string",
            ),
            MethodDesc::new(
                "getB64",
                vec![("path", SoapType::String)],
                SoapType::Base64,
                "Binary-safe transfer to the client (ablation)",
            ),
            MethodDesc::new(
                "putB64",
                vec![("path", SoapType::String), ("data", SoapType::Base64)],
                SoapType::Int,
                "Binary-safe transfer from the client (ablation)",
            ),
            MethodDesc::new(
                "rm",
                vec![("path", SoapType::String)],
                SoapType::Void,
                "Delete an object",
            ),
            MethodDesc::new(
                "mkdir",
                vec![("path", SoapType::String)],
                SoapType::Void,
                "Create a collection",
            ),
            MethodDesc::new(
                "rename",
                vec![("from", SoapType::String), ("to", SoapType::String)],
                SoapType::Void,
                "Move an object; cross-shard moves run the journaled copy-then-delete protocol",
            ),
            MethodDesc::new(
                "cp",
                vec![("from", SoapType::String), ("to", SoapType::String)],
                SoapType::Void,
                "Copy an object, leaving the source in place",
            ),
            MethodDesc::new(
                "open_get",
                vec![("path", SoapType::String)],
                SoapType::Struct,
                "Open a chunked read handle; returns {handle, size}",
            ),
            MethodDesc::new(
                "get_chunk",
                vec![
                    ("handle", SoapType::String),
                    ("offset", SoapType::Int),
                    ("length", SoapType::Int),
                ],
                SoapType::Base64,
                "Ranged read through a transfer handle; empty at EOF",
            ),
            MethodDesc::new(
                "open_put",
                vec![("path", SoapType::String)],
                SoapType::String,
                "Open a chunked write handle staging beside the destination",
            ),
            MethodDesc::new(
                "put_chunk",
                vec![
                    ("handle", SoapType::String),
                    ("offset", SoapType::Int),
                    ("data", SoapType::Base64),
                ],
                SoapType::Int,
                "Append one chunk; returns the acknowledged frontier",
            ),
            MethodDesc::new(
                "commit",
                vec![("handle", SoapType::String)],
                SoapType::Int,
                "Atomically promote a staged put to its destination",
            ),
            MethodDesc::new(
                "abort",
                vec![("handle", SoapType::String)],
                SoapType::Void,
                "Abandon a transfer and reclaim its handle and staging",
            ),
            MethodDesc::new(
                "xml_call",
                vec![("request", SoapType::Xml)],
                SoapType::Xml,
                "Execute multiple SRB commands from one XML request over one connection",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_soap::{SoapClient, SoapServer};
    use portalws_wire::{Handler, InMemoryTransport};
    use std::sync::atomic::AtomicUsize;

    fn client(shards: usize) -> (Arc<ShardedDataService>, SoapClient) {
        let svc = Arc::new(ShardedDataService::new(shards));
        let server = SoapServer::new();
        server.mount(Arc::clone(&svc) as Arc<dyn SoapService>);
        let handler: Arc<dyn Handler> = Arc::new(server);
        (
            svc,
            SoapClient::new(Arc::new(InMemoryTransport::new(handler)), "DataManagement"),
        )
    }

    /// Two top-level collections owned by different shards, by probing
    /// names until ownership differs.
    fn two_cross_shard_tops(svc: &ShardedDataService) -> (String, String) {
        let map = svc.map();
        let first = "proj-0".to_owned();
        let owner = map.owner_of_top(&first);
        for i in 1..1000 {
            let cand = format!("proj-{i}");
            if map.owner_of_top(&cand) != owner {
                return (first, cand);
            }
        }
        unreachable!("fnv spreads 1000 names over ≥2 shards");
    }

    #[test]
    fn ring_balances_64_collections_within_gate() {
        let map = ShardMap::new(4, DEFAULT_VNODES);
        let mut counts = vec![0usize; 4];
        for i in 0..64 {
            counts[map.owner_of_top(&format!("coll-{i:02}"))] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = 64.0 / 4.0;
        assert!(
            max / mean <= 1.25,
            "balance max/mean {:.3} over gate; counts {counts:?}",
            max / mean
        );
    }

    #[test]
    fn topology_change_moves_a_bounded_key_fraction() {
        let before = ShardMap::new(4, DEFAULT_VNODES);
        let after = ShardMap::new(5, DEFAULT_VNODES);
        let moved = (0..256)
            .filter(|i| {
                let top = format!("coll-{i}");
                before.owner_of_top(&top) != after.owner_of_top(&top)
            })
            .count();
        // Consistent hashing: going 4 → 5 shards should move ~1/5 of
        // keys, nowhere near the ~4/5 a mod-N rehash would.
        assert!(
            moved * 2 < 256,
            "adding one shard moved {moved}/256 keys — not consistent"
        );
        assert!(moved > 0, "a new shard must own something");
    }

    #[test]
    fn ops_route_to_the_owning_shard_and_root_ls_merges() {
        let (svc, c) = client(4);
        let (a, b) = two_cross_shard_tops(&svc);
        for top in [&a, &b] {
            c.call("mkdir", &[SoapValue::str(format!("/{top}"))])
                .unwrap();
            c.call(
                "put",
                &[
                    SoapValue::str(format!("/{top}/f.txt")),
                    SoapValue::str(top.clone()),
                ],
            )
            .unwrap();
        }
        // Each top exists only on its owning backend.
        let (ka, kb) = (
            svc.owner_of(&format!("/{a}")).unwrap(),
            svc.owner_of(&format!("/{b}")).unwrap(),
        );
        assert_ne!(ka, kb);
        assert!(svc.backends()[ka]
            .srb()
            .stat("anonymous", &format!("/{a}/f.txt"))
            .is_ok());
        assert!(svc.backends()[kb]
            .srb()
            .stat("anonymous", &format!("/{a}/f.txt"))
            .is_err());
        // Reads route back.
        let got = c
            .call("cat", &[SoapValue::str(format!("/{a}/f.txt"))])
            .unwrap();
        assert_eq!(got.as_str(), Some(a.as_str()));
        // Root ls is the merged union.
        let root = c.call("ls", &[SoapValue::str("/")]).unwrap();
        let names: Vec<&str> = root
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|e| e.field("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&a.as_str()) && names.contains(&b.as_str()));
    }

    #[test]
    fn wrapped_handles_keep_chunked_transfers_on_their_backend() {
        let (svc, c) = client(4);
        let (a, _) = two_cross_shard_tops(&svc);
        c.call("mkdir", &[SoapValue::str(format!("/{a}"))]).unwrap();
        let payload: Vec<u8> = (0..40_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let handle = c
            .call("open_put", &[SoapValue::str(format!("/{a}/big.bin"))])
            .unwrap();
        let handle = handle.as_str().unwrap().to_owned();
        assert!(
            handle.starts_with('s') && handle.contains("/t-"),
            "{handle}"
        );
        let mut off = 0;
        while off < payload.len() {
            let end = (off + 9_000).min(payload.len());
            c.call(
                "put_chunk",
                &[
                    SoapValue::str(handle.clone()),
                    SoapValue::Int(off as i64),
                    SoapValue::Base64(payload[off..end].to_vec()),
                ],
            )
            .unwrap();
            off = end;
        }
        let total = c.call("commit", &[SoapValue::str(handle)]).unwrap();
        assert_eq!(total.as_i64(), Some(payload.len() as i64));
        assert_eq!(
            svc.get_bytes("anonymous", &format!("/{a}/big.bin"))
                .unwrap(),
            payload
        );
        // Unknown / malformed handles surface NOT_FOUND, not a panic.
        for bad in ["t-1", "s9/t-1", "sX/t-1"] {
            let err = c
                .call(
                    "get_chunk",
                    &[SoapValue::str(bad), SoapValue::Int(0), SoapValue::Int(16)],
                )
                .unwrap_err();
            assert_eq!(
                err.as_fault().and_then(|f| f.kind()),
                Some(PortalErrorKind::NotFound),
                "{bad}"
            );
        }
    }

    #[test]
    fn cross_shard_rename_moves_exactly_one_visible_copy() {
        let (svc, c) = client(4);
        let (a, b) = two_cross_shard_tops(&svc);
        svc.mkdir(&format!("/{a}")).unwrap();
        svc.mkdir(&format!("/{b}")).unwrap();
        let body: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        svc.put_bytes("anonymous", &format!("/{a}/data.bin"), &body)
            .unwrap();
        c.call(
            "rename",
            &[
                SoapValue::str(format!("/{a}/data.bin")),
                SoapValue::str(format!("/{b}/data.bin")),
            ],
        )
        .unwrap();
        assert!(svc
            .get_bytes("anonymous", &format!("/{a}/data.bin"))
            .is_err());
        assert_eq!(
            svc.get_bytes("anonymous", &format!("/{b}/data.bin"))
                .unwrap(),
            body
        );
        assert_eq!(svc.pending_moves(), 0);
        // No tombstone or staging residue on either shard.
        for top in [&a, &b] {
            let names = svc
                .ls_routed("anonymous", &format!("/{top}"))
                .unwrap()
                .into_iter()
                .map(|e| e.name)
                .collect::<Vec<_>>();
            assert!(
                names
                    .iter()
                    .all(|n| !n.starts_with(".mv-") && !n.starts_with(".part-")),
                "residue in /{top}: {names:?}"
            );
        }
    }

    #[test]
    fn cross_shard_cp_leaves_source_in_place() {
        let (svc, c) = client(4);
        let (a, b) = two_cross_shard_tops(&svc);
        svc.mkdir(&format!("/{a}")).unwrap();
        svc.mkdir(&format!("/{b}")).unwrap();
        svc.put_bytes("anonymous", &format!("/{a}/f"), b"payload")
            .unwrap();
        c.call(
            "cp",
            &[
                SoapValue::str(format!("/{a}/f")),
                SoapValue::str(format!("/{b}/f")),
            ],
        )
        .unwrap();
        assert_eq!(
            svc.get_bytes("anonymous", &format!("/{a}/f")).unwrap(),
            b"payload"
        );
        assert_eq!(
            svc.get_bytes("anonymous", &format!("/{b}/f")).unwrap(),
            b"payload"
        );
        assert_eq!(svc.pending_moves(), 0);
    }

    #[test]
    fn faulted_moves_recover_to_exactly_one_visible_copy() {
        for point in ["copy-chunk", "pre-commit", "delete-leg"] {
            let (svc, c) = client(4);
            let (a, b) = two_cross_shard_tops(&svc);
            svc.mkdir(&format!("/{a}")).unwrap();
            svc.mkdir(&format!("/{b}")).unwrap();
            let body: Vec<u8> = (0..150_000u32).map(|i| (i % 241) as u8).collect();
            svc.put_bytes("anonymous", &format!("/{a}/data.bin"), &body)
                .unwrap();
            let fired = Arc::new(AtomicUsize::new(0));
            let fired2 = Arc::clone(&fired);
            let target = point.to_owned();
            svc.set_fault_hook(Some(Arc::new(move |p: &str| {
                p == target && fired2.fetch_add(1, Ordering::Relaxed) == 0
            })));
            let err = c
                .call(
                    "rename",
                    &[
                        SoapValue::str(format!("/{a}/data.bin")),
                        SoapValue::str(format!("/{b}/data.bin")),
                    ],
                )
                .unwrap_err();
            assert!(err.to_string().contains("injected"), "{point}: {err}");
            assert_eq!(svc.pending_moves(), 1, "{point}");
            svc.set_fault_hook(None);
            let report = svc.recover();
            assert_eq!(report.rolled_forward + report.rolled_back, 1, "{point}");
            // Exactly one complete copy under the user-facing names.
            let src = svc.get_bytes("anonymous", &format!("/{a}/data.bin"));
            let dst = svc.get_bytes("anonymous", &format!("/{b}/data.bin"));
            match (src, dst) {
                (Ok(bytes), Err(_)) | (Err(_), Ok(bytes)) => {
                    assert_eq!(bytes, body, "{point}: surviving copy must be complete")
                }
                (Ok(_), Ok(_)) => panic!("{point}: both names visible after recovery"),
                (Err(_), Err(_)) => panic!("{point}: payload lost after recovery"),
            }
            // Delete-leg faults roll forward (dst); earlier ones roll back.
            if point == "delete-leg" {
                assert_eq!(report.rolled_forward, 1, "{point}");
            } else {
                assert_eq!(report.rolled_back, 1, "{point}");
            }
            // No tombstones or staging residue anywhere.
            for (k, backend) in svc.backends().iter().enumerate() {
                for top in [&a, &b] {
                    if let Ok(entries) = backend.srb().ls("anonymous", &format!("/{top}")) {
                        for e in entries {
                            assert!(
                                !e.name.starts_with(".mv-") && !e.name.starts_with(".part-"),
                                "{point}: residue {:?} on shard {k}",
                                e.name
                            );
                        }
                    }
                }
            }
            assert_eq!(svc.pending_moves(), 0, "{point}");
        }
    }

    #[test]
    fn generation_bumps_on_mutations_and_topology_changes() {
        let (svc, c) = client(2);
        let g0 = svc.current_generation();
        c.call("ls", &[SoapValue::str("/")]).unwrap();
        assert_eq!(svc.current_generation(), g0, "reads must not bump");
        c.call("mkdir", &[SoapValue::str("/gen-test")]).unwrap();
        let g1 = svc.current_generation();
        assert!(g1 > g0, "mkdir must bump");
        svc.install_map(ShardMap::new(2, DEFAULT_VNODES));
        assert!(svc.current_generation() > g1, "topology change must bump");
        assert_eq!(svc.generation(), Some(svc.current_generation()));
    }

    #[test]
    fn xml_call_routes_commands_and_merges_root_ls() {
        let (svc, c) = client(4);
        let (a, b) = two_cross_shard_tops(&svc);
        let request = Element::new("request")
            .with_child(Element::new("mkdir").with_attr("path", format!("/{a}")))
            .with_child(Element::new("mkdir").with_attr("path", format!("/{b}")))
            .with_child(
                Element::new("put")
                    .with_attr("path", format!("/{a}/x"))
                    .with_text("alpha"),
            )
            .with_child(Element::new("cat").with_attr("path", format!("/{a}/x")))
            .with_child(Element::new("ls").with_attr("collection", "/"));
        let out = c.call("xml_call", &[SoapValue::Xml(request)]).unwrap();
        let response = out.as_xml().unwrap();
        let results: Vec<&Element> = response.children().collect();
        assert_eq!(results.len(), 5);
        assert_eq!(results[3].text(), "alpha");
        let listed: Vec<_> = results[4]
            .children()
            .filter_map(|e| e.attr("name"))
            .collect();
        assert!(listed.contains(&a.as_str()) && listed.contains(&b.as_str()));
    }

    #[test]
    fn testbed_provisions_each_top_only_on_its_owner() {
        let svc = ShardedDataService::testbed(&["alice@GCE.ORG", "bob@GCE.ORG"], 3);
        for top in ["home-alice@GCE.ORG", "home-bob@GCE.ORG", "public"] {
            let owner = svc.map().owner_of_top(top);
            for (k, backend) in svc.backends().iter().enumerate() {
                let present = backend.srb().ls_root().iter().any(|e| e.name == top);
                if k == owner {
                    assert!(present, "{top} missing on owner {k}");
                } else {
                    assert!(!present, "{top} duplicated on {k}");
                }
            }
        }
        // ACLs hold through the router.
        assert!(svc
            .get_bytes("bob@GCE.ORG", "/home-alice@GCE.ORG/x")
            .is_err());
        assert_eq!(
            svc.get_bytes("anonymous", "/public/README").unwrap(),
            b"GCE testbed public collection\n"
        );
    }
}
