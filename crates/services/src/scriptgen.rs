//! Batch script generation (§3.4) — the interoperability exercise.
//!
//! "We agreed to a common service interface, implemented it separately
//! with support for different queuing systems, entered information into a
//! UDDI repository and developed clients that could list services
//! supported by each group… Both groups implemented services in Java and
//! tested interoperating Java and Python clients successfully."
//!
//! This module reproduces all four corners of that matrix:
//!
//! * **One agreed interface** — [`SCRIPTGEN_INTERFACE`] (checked by
//!   `wsdl::compat` in the integration tests).
//! * **Two independent service implementations** — [`IuScriptGen`]
//!   (Gateway; PBS and GRD; template-string internals, optional coupling
//!   to the context manager) and [`SdscScriptGen`] (HotPage; LSF and NQS;
//!   directive-list internals, no context manager).
//! * **Two independently written clients** — [`GatewayClient`] (binds a
//!   `DynamicClient` from the published WSDL) and [`HotPageClient`]
//!   (hand-rolled `SoapClient` with named arguments).
//!
//! The context-coupling modes reproduce §3's overhead observation: "The
//! Gateway batch script generator … was initially tightly integrated with
//! the context manager… Making this into an independent service
//! introduced unnecessary overhead because we needed to create artificial
//! contexts (sessions) for HotPage users."

use std::sync::Arc;

use portalws_gridsim::sched::SchedulerKind;
use portalws_soap::{
    CallContext, Fault, MethodDesc, PortalErrorKind, SoapClient, SoapResult, SoapService, SoapType,
    SoapValue,
};
use portalws_wsdl::{DynamicClient, WsdlDefinition};

use crate::caller_principal;
use crate::context::ContextStore;

/// The agreed common interface: every implementation must expose exactly
/// these operations with these signatures.
pub fn scriptgen_interface() -> Vec<MethodDesc> {
    vec![
        MethodDesc::new(
            "generateScript",
            vec![
                ("scheduler", SoapType::String),
                ("queue", SoapType::String),
                ("jobName", SoapType::String),
                ("command", SoapType::String),
                ("cpus", SoapType::Int),
                ("wallMinutes", SoapType::Int),
            ],
            SoapType::String,
            "Generate a batch script for the named queuing system",
        ),
        MethodDesc::new(
            "supportedSchedulers",
            vec![],
            SoapType::Array,
            "Queuing systems this implementation supports",
        ),
    ]
}

/// Name of the common interface, for registry/tModel entries.
pub const SCRIPTGEN_INTERFACE: &str = "BatchScriptGen";

/// The decoded arguments of a `generateScript` call.
struct GenArgs {
    scheduler: SchedulerKind,
    queue: String,
    job_name: String,
    command: String,
    cpus: u32,
    wall_minutes: u32,
}

fn decode_gen_args(args: &[(String, SoapValue)]) -> SoapResult<GenArgs> {
    let get_str = |i: usize, name: &str| -> SoapResult<&str> {
        args.get(i)
            .and_then(|(_, v)| v.as_str())
            .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, format!("missing {name}")))
    };
    let get_int = |i: usize, name: &str| -> SoapResult<i64> {
        args.get(i)
            .and_then(|(_, v)| v.as_i64())
            .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, format!("missing {name}")))
    };
    let scheduler = SchedulerKind::from_name(get_str(0, "scheduler")?)
        .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "unknown scheduler name"))?;
    let cpus = get_int(4, "cpus")?;
    let wall = get_int(5, "wallMinutes")?;
    if cpus <= 0 || wall <= 0 {
        return Err(Fault::portal(
            PortalErrorKind::BadArguments,
            "cpus and wallMinutes must be positive",
        ));
    }
    Ok(GenArgs {
        scheduler,
        queue: get_str(1, "queue")?.to_owned(),
        job_name: get_str(2, "jobName")?.to_owned(),
        command: get_str(3, "command")?.to_owned(),
        cpus: cpus as u32,
        wall_minutes: wall as u32,
    })
}

fn unsupported(kind: SchedulerKind, supported: &[SchedulerKind]) -> Fault {
    Fault::portal(
        PortalErrorKind::BadArguments,
        format!(
            "scheduler {} not supported; this service supports {}",
            kind.name(),
            supported
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    )
}

// ---------------------------------------------------------------------------
// IU (Gateway) implementation
// ---------------------------------------------------------------------------

/// How the IU generator interacts with the context manager (the three
/// arms of experiment E8).
pub enum ContextCoupling {
    /// Fully decoupled: no context operations (the refactored design the
    /// paper says the experience "inspired").
    Decoupled,
    /// Original integrated Gateway behavior: each caller gets one durable
    /// session context (created lazily on first call); every generated
    /// script is recorded into it.
    Integrated(Arc<ContextStore>),
    /// The naive independent-service conversion: an *artificial*
    /// placeholder context is minted for every call (the overhead the
    /// paper complains about).
    Placeholder(Arc<ContextStore>),
}

/// The Gateway script generator: PBS and GRD, template-string internals.
pub struct IuScriptGen {
    coupling: ContextCoupling,
}

impl IuScriptGen {
    /// Supported schedulers.
    pub const SUPPORTED: [SchedulerKind; 2] = [SchedulerKind::Pbs, SchedulerKind::Grd];

    /// Build with the given context coupling.
    pub fn new(coupling: ContextCoupling) -> IuScriptGen {
        IuScriptGen { coupling }
    }

    /// Convenience: the decoupled variant.
    pub fn decoupled() -> IuScriptGen {
        IuScriptGen::new(ContextCoupling::Decoupled)
    }

    /// The Gateway codebase built scripts from whole-file templates.
    ///
    /// Faults (rather than panics) on a scheduler outside [`Self::SUPPORTED`]
    /// so a bad request can never take the server down.
    fn render(&self, a: &GenArgs) -> SoapResult<String> {
        Ok(match a.scheduler {
            SchedulerKind::Pbs => format!(
                "#!/bin/sh\n#PBS -N {name}\n#PBS -q {queue}\n#PBS -l ncpus={cpus}\n#PBS -l walltime={hh:02}:{mm:02}:00\n{cmd}\n",
                name = a.job_name,
                queue = a.queue,
                cpus = a.cpus,
                hh = a.wall_minutes / 60,
                mm = a.wall_minutes % 60,
                cmd = a.command,
            ),
            SchedulerKind::Grd => format!(
                "#!/bin/sh\n#$ -N {name}\n#$ -q {queue}\n#$ -pe mpi {cpus}\n#$ -l h_rt={secs}\n{cmd}\n",
                name = a.job_name,
                queue = a.queue,
                cpus = a.cpus,
                secs = a.wall_minutes * 60,
                cmd = a.command,
            ),
            _ => return Err(unsupported(a.scheduler, &Self::SUPPORTED)),
        })
    }

    fn record_in_context(&self, principal: &str, script: &str) -> SoapResult<()> {
        let fault = |e: crate::context::ContextError| {
            Fault::portal(PortalErrorKind::Internal, e.to_string())
        };
        match &self.coupling {
            ContextCoupling::Decoupled => Ok(()),
            ContextCoupling::Integrated(store) => {
                // One durable session per caller, created lazily.
                if !store.exists(&[principal]) {
                    store.add(&[principal]).map_err(fault)?;
                }
                if !store.exists(&[principal, "scriptgen"]) {
                    store.add(&[principal, "scriptgen"]).map_err(fault)?;
                }
                if !store.exists(&[principal, "scriptgen", "session"]) {
                    store
                        .add(&[principal, "scriptgen", "session"])
                        .map_err(fault)?;
                }
                store
                    .set_property(&[principal, "scriptgen", "session"], "lastScript", script)
                    .map_err(fault)
            }
            ContextCoupling::Placeholder(store) => {
                // The §3 overhead: an artificial problem+session per call.
                let (problem, session) = store.create_placeholder(principal).map_err(fault)?;
                store
                    .set_property(&[principal, &problem, &session], "script", script)
                    .map_err(fault)
            }
        }
    }
}

impl SoapService for IuScriptGen {
    fn name(&self) -> &str {
        SCRIPTGEN_INTERFACE
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        match method {
            "generateScript" => {
                let a = decode_gen_args(args)?;
                if !Self::SUPPORTED.contains(&a.scheduler) {
                    return Err(unsupported(a.scheduler, &Self::SUPPORTED));
                }
                let script = self.render(&a)?;
                self.record_in_context(&caller_principal(ctx), &script)?;
                Ok(SoapValue::String(script))
            }
            "supportedSchedulers" => Ok(SoapValue::Array(
                Self::SUPPORTED
                    .iter()
                    .map(|k| SoapValue::str(k.name()))
                    .collect(),
            )),
            other => Err(Fault::client(format!(
                "BatchScriptGen has no method {other:?}"
            ))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        scriptgen_interface()
    }
}

// ---------------------------------------------------------------------------
// SDSC (HotPage) implementation
// ---------------------------------------------------------------------------

/// The HotPage script generator: LSF and NQS, directive-list internals,
/// no context manager (HotPage never had one — which is exactly why the
/// Gateway service's context requirement was "artificial" for its users).
pub struct SdscScriptGen;

impl SdscScriptGen {
    /// Supported schedulers.
    pub const SUPPORTED: [SchedulerKind; 2] = [SchedulerKind::Lsf, SchedulerKind::Nqs];

    /// The GridPort codebase assembled directives as (flag, value) pairs.
    ///
    /// Faults (rather than panics) on a scheduler outside [`Self::SUPPORTED`]
    /// so a bad request can never take the server down.
    fn render(a: &GenArgs) -> SoapResult<String> {
        let prefix = a.scheduler.directive_prefix();
        let directives: Vec<(String, String)> = match a.scheduler {
            SchedulerKind::Lsf => vec![
                ("-J".into(), a.job_name.clone()),
                ("-q".into(), a.queue.clone()),
                ("-n".into(), a.cpus.to_string()),
                (
                    "-W".into(),
                    format!("{:02}:{:02}", a.wall_minutes / 60, a.wall_minutes % 60),
                ),
            ],
            SchedulerKind::Nqs => vec![
                ("-r".into(), a.job_name.clone()),
                ("-q".into(), a.queue.clone()),
                ("-l".into(), format!("mpp_p={}", a.cpus)),
                ("-lT".into(), (a.wall_minutes * 60).to_string()),
            ],
            _ => return Err(unsupported(a.scheduler, &Self::SUPPORTED)),
        };
        let mut lines = vec!["#!/bin/sh".to_owned()];
        lines.extend(
            directives
                .into_iter()
                .map(|(flag, value)| format!("{prefix} {flag} {value}")),
        );
        lines.push(a.command.clone());
        Ok(lines.join("\n") + "\n")
    }
}

impl SoapService for SdscScriptGen {
    fn name(&self) -> &str {
        SCRIPTGEN_INTERFACE
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        _ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        match method {
            "generateScript" => {
                let a = decode_gen_args(args)?;
                if !Self::SUPPORTED.contains(&a.scheduler) {
                    return Err(unsupported(a.scheduler, &Self::SUPPORTED));
                }
                Ok(SoapValue::String(Self::render(&a)?))
            }
            "supportedSchedulers" => Ok(SoapValue::Array(
                Self::SUPPORTED
                    .iter()
                    .map(|k| SoapValue::str(k.name()))
                    .collect(),
            )),
            other => Err(Fault::client(format!(
                "BatchScriptGen has no method {other:?}"
            ))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        scriptgen_interface()
    }
}

// ---------------------------------------------------------------------------
// Two independently written clients
// ---------------------------------------------------------------------------

/// A request both clients understand.
#[derive(Debug, Clone)]
pub struct ScriptRequest {
    /// Target queuing system.
    pub scheduler: SchedulerKind,
    /// Queue name.
    pub queue: String,
    /// Job name.
    pub job_name: String,
    /// Command line.
    pub command: String,
    /// CPU count.
    pub cpus: u32,
    /// Walltime minutes.
    pub wall_minutes: u32,
}

/// Client errors shared by both client styles.
pub type ClientError = Box<dyn std::error::Error + Send + Sync>;

/// The IU-style client: binds a dynamic stub from the published WSDL and
/// calls positionally (types checked against the interface before the
/// wire).
pub struct GatewayClient {
    stub: DynamicClient,
}

impl GatewayClient {
    /// Bind from a WSDL definition.
    pub fn bind(wsdl: WsdlDefinition, transport: Arc<dyn portalws_wire::Transport>) -> Self {
        GatewayClient {
            stub: DynamicClient::bind(wsdl, transport),
        }
    }

    /// Generate a script.
    pub fn generate(&self, req: &ScriptRequest) -> Result<String, ClientError> {
        let out = self.stub.call(
            "generateScript",
            &[
                SoapValue::str(req.scheduler.name()),
                SoapValue::str(req.queue.clone()),
                SoapValue::str(req.job_name.clone()),
                SoapValue::str(req.command.clone()),
                SoapValue::Int(req.cpus as i64),
                SoapValue::Int(req.wall_minutes as i64),
            ],
        )?;
        out.as_str()
            .map(str::to_owned)
            .ok_or_else(|| "non-string script".into())
    }

    /// List supported schedulers.
    pub fn supported(&self) -> Result<Vec<String>, ClientError> {
        let out = self.stub.call("supportedSchedulers", &[])?;
        Ok(out
            .as_array()
            .unwrap_or_default()
            .iter()
            .filter_map(|v| v.as_str().map(str::to_owned))
            .collect())
    }
}

/// The SDSC-style client: a hand-rolled SOAP proxy using named arguments
/// and no WSDL machinery (the Python style of 2002).
pub struct HotPageClient {
    proxy: SoapClient,
}

impl HotPageClient {
    /// Connect over a transport.
    pub fn connect(transport: Arc<dyn portalws_wire::Transport>) -> Self {
        HotPageClient {
            proxy: SoapClient::new(transport, SCRIPTGEN_INTERFACE),
        }
    }

    /// Generate a script.
    pub fn generate(&self, req: &ScriptRequest) -> Result<String, ClientError> {
        let out = self.proxy.call_named(
            "generateScript",
            &[
                ("scheduler", SoapValue::str(req.scheduler.name())),
                ("queue", SoapValue::str(req.queue.clone())),
                ("jobName", SoapValue::str(req.job_name.clone())),
                ("command", SoapValue::str(req.command.clone())),
                ("cpus", SoapValue::Int(req.cpus as i64)),
                ("wallMinutes", SoapValue::Int(req.wall_minutes as i64)),
            ],
        )?;
        out.as_str()
            .map(str::to_owned)
            .ok_or_else(|| "non-string script".into())
    }

    /// List supported schedulers.
    pub fn supported(&self) -> Result<Vec<String>, ClientError> {
        let out = self.proxy.call("supportedSchedulers", &[])?;
        Ok(out
            .as_array()
            .unwrap_or_default()
            .iter()
            .filter_map(|v| v.as_str().map(str::to_owned))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_gridsim::sched::parse_script;
    use portalws_soap::SoapServer;
    use portalws_wire::{Handler, InMemoryTransport, Transport};

    fn serve(service: Arc<dyn SoapService>) -> Arc<dyn Transport> {
        let server = SoapServer::new();
        server.mount(service);
        let handler: Arc<dyn Handler> = Arc::new(server);
        Arc::new(InMemoryTransport::new(handler))
    }

    fn request(kind: SchedulerKind) -> ScriptRequest {
        ScriptRequest {
            scheduler: kind,
            queue: "batch".into(),
            job_name: "g98run".into(),
            command: "/usr/local/bin/g98 < in.com".into(),
            cpus: 8,
            wall_minutes: 120,
        }
    }

    #[test]
    fn interoperability_matrix_all_accepted_by_target_scheduler() {
        // 2 services × 2 clients × their supported schedulers: every
        // generated script must parse in the target dialect (E10).
        let services: Vec<(Arc<dyn SoapService>, Vec<SchedulerKind>)> = vec![
            (
                Arc::new(IuScriptGen::decoupled()),
                IuScriptGen::SUPPORTED.to_vec(),
            ),
            (Arc::new(SdscScriptGen), SdscScriptGen::SUPPORTED.to_vec()),
        ];
        for (service, supported) in services {
            let wsdl = WsdlDefinition::from_service(&*service);
            let transport = serve(service);
            let gateway = GatewayClient::bind(wsdl, Arc::clone(&transport));
            let hotpage = HotPageClient::connect(transport);
            for kind in supported {
                let req = request(kind);
                for (who, script) in [
                    ("gateway", gateway.generate(&req).unwrap()),
                    ("hotpage", hotpage.generate(&req).unwrap()),
                ] {
                    let parsed = parse_script(kind, &script).unwrap_or_else(|e| {
                        panic!("{kind} rejected {who} client's script: {e}\n{script}")
                    });
                    assert_eq!(parsed.cpus, 8);
                    assert_eq!(parsed.wall_minutes, 120);
                    assert_eq!(parsed.queue, "batch");
                }
            }
        }
    }

    #[test]
    fn both_implementations_publish_identical_interfaces() {
        let iu = WsdlDefinition::from_service(&IuScriptGen::decoupled());
        let sdsc = WsdlDefinition::from_service(&SdscScriptGen);
        assert!(portalws_wsdl::is_compatible(&iu, &sdsc));
        assert!(portalws_wsdl::is_compatible(&sdsc, &iu));
    }

    #[test]
    fn supported_schedulers_differ_by_site() {
        let transport = serve(Arc::new(IuScriptGen::decoupled()));
        let c = HotPageClient::connect(transport);
        assert_eq!(c.supported().unwrap(), vec!["PBS", "GRD"]);
        let transport = serve(Arc::new(SdscScriptGen));
        let c = HotPageClient::connect(transport);
        assert_eq!(c.supported().unwrap(), vec!["LSF", "NQS"]);
    }

    #[test]
    fn unsupported_scheduler_is_typed_fault() {
        let transport = serve(Arc::new(IuScriptGen::decoupled()));
        let c = HotPageClient::connect(transport);
        let err = c.generate(&request(SchedulerKind::Lsf)).unwrap_err();
        assert!(err.to_string().contains("not supported"), "{err}");
    }

    #[test]
    fn render_faults_rather_than_panics_on_foreign_scheduler() {
        // The render internals themselves must fault on a scheduler the
        // site doesn't speak, independent of the invoke-level guard — a
        // malformed request must never take the server down.
        let mut a = GenArgs {
            scheduler: SchedulerKind::Nqs,
            queue: "batch".into(),
            job_name: "j".into(),
            command: "date".into(),
            cpus: 1,
            wall_minutes: 10,
        };
        let iu = IuScriptGen::decoupled();
        assert!(iu.render(&a).is_err());
        a.scheduler = SchedulerKind::Pbs;
        let err = SdscScriptGen::render(&a).unwrap_err();
        assert!(err.to_string().contains("not supported"), "{err}");
    }

    #[test]
    fn bad_arguments_rejected() {
        let transport = serve(Arc::new(SdscScriptGen));
        let c = HotPageClient::connect(Arc::clone(&transport));
        let mut req = request(SchedulerKind::Lsf);
        req.cpus = 0;
        assert!(c.generate(&req).is_err());
    }

    #[test]
    fn placeholder_coupling_mints_contexts_per_call() {
        let store = ContextStore::new();
        let svc = Arc::new(IuScriptGen::new(ContextCoupling::Placeholder(Arc::clone(
            &store,
        ))));
        let transport = serve(svc);
        let c = HotPageClient::connect(transport);
        for _ in 0..3 {
            c.generate(&request(SchedulerKind::Pbs)).unwrap();
        }
        assert_eq!(store.placeholder_count(), 3);
        // 1 user + 3 problems + 3 sessions + root users map… count contexts:
        assert_eq!(store.total_count(), 7);
    }

    #[test]
    fn integrated_coupling_reuses_one_session() {
        let store = ContextStore::new();
        let svc = Arc::new(IuScriptGen::new(ContextCoupling::Integrated(Arc::clone(
            &store,
        ))));
        let transport = serve(svc);
        let c = HotPageClient::connect(transport);
        for _ in 0..3 {
            c.generate(&request(SchedulerKind::Grd)).unwrap();
        }
        assert_eq!(store.placeholder_count(), 0);
        // user + problem + session only.
        assert_eq!(store.total_count(), 3);
        let script = store
            .get_property(&["anonymous", "scriptgen", "session"], "lastScript")
            .unwrap();
        assert!(script.contains("#$ -pe mpi 8"));
    }

    #[test]
    fn decoupled_touches_no_contexts() {
        let store = ContextStore::new();
        let svc = Arc::new(IuScriptGen::decoupled());
        let transport = serve(svc);
        let c = HotPageClient::connect(transport);
        c.generate(&request(SchedulerKind::Pbs)).unwrap();
        assert_eq!(store.total_count(), 0);
    }

    #[test]
    fn gateway_client_rejects_type_errors_before_the_wire() {
        let svc: Arc<dyn SoapService> = Arc::new(SdscScriptGen);
        let wsdl = WsdlDefinition::from_service(&*svc);
        let transport = serve(svc);
        let gateway = GatewayClient::bind(wsdl, transport);
        // Call with a string where cpus (Int) is expected, bypassing
        // ScriptRequest.
        let err = gateway
            .stub
            .call(
                "generateScript",
                &[
                    SoapValue::str("LSF"),
                    SoapValue::str("batch"),
                    SoapValue::str("j"),
                    SoapValue::str("date"),
                    SoapValue::str("eight"),
                    SoapValue::Int(10),
                ],
            )
            .unwrap_err();
        assert!(err.to_string().contains("cpus"), "{err}");
    }
}
