//! The batch-job service: a Web service composed from another Web service.
//!
//! §3.1: "SDSC developed a secure, authenticated Python Web Service to
//! submit batch jobs… This simple Web Service has a method that takes
//! string arguments that define the host and batch scheduler commands to
//! be run… Then these string arguments are parsed, and the batch job
//! submission Web Service uses the Globusrun job submission service
//! previously described to submit the job. The interaction … demonstrates
//! a Web Service using another Web Service to perform a task."
//!
//! [`BatchJobService`] holds a [`SoapClient`] to a `JobSubmission`
//! endpoint and forwards through it — every `runBatch` call therefore
//! costs *two* SOAP hops, which experiment E1 reports as the composition
//! overhead.

use std::sync::Arc;

use portalws_gridsim::sched::{render_script, JobRequirements, SchedulerKind};
use portalws_soap::{
    CallContext, Fault, MethodDesc, PortalErrorKind, SoapClient, SoapError, SoapResult,
    SoapService, SoapType, SoapValue,
};

/// The composed batch-submission service.
pub struct BatchJobService {
    jobsub: Arc<SoapClient>,
}

/// The parsed form of the service's string command:
/// `"<host> <scheduler> <queue> <cpus> <wallMinutes> -- <command...>"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchCommand {
    /// Target host.
    pub host: String,
    /// Target scheduler.
    pub scheduler: SchedulerKind,
    /// Queue name.
    pub queue: String,
    /// CPU count.
    pub cpus: u32,
    /// Walltime minutes.
    pub wall_minutes: u32,
    /// Command line after `--`.
    pub command: String,
}

impl BatchCommand {
    /// Parse the string form.
    pub fn parse(s: &str) -> Result<BatchCommand, String> {
        let (head, command) = s
            .split_once("--")
            .ok_or_else(|| "expected '--' before the command".to_string())?;
        let command = command.trim();
        if command.is_empty() {
            return Err("empty command after '--'".into());
        }
        let parts: Vec<&str> = head.split_whitespace().collect();
        let [host, scheduler, queue, cpus, wall] = parts.as_slice() else {
            return Err(format!(
                "expected '<host> <scheduler> <queue> <cpus> <wallMinutes> -- <command>', got {} fields",
                parts.len()
            ));
        };
        Ok(BatchCommand {
            host: (*host).to_owned(),
            scheduler: SchedulerKind::from_name(scheduler)
                .ok_or_else(|| format!("unknown scheduler {scheduler:?}"))?,
            queue: (*queue).to_owned(),
            cpus: cpus.parse().map_err(|_| format!("bad cpus {cpus:?}"))?,
            wall_minutes: wall
                .parse()
                .map_err(|_| format!("bad wallMinutes {wall:?}"))?,
            command: command.to_owned(),
        })
    }

    /// Render the batch script for the parsed command.
    pub fn to_script(&self) -> String {
        render_script(
            self.scheduler,
            &JobRequirements {
                name: "batchws".into(),
                queue: self.queue.clone(),
                cpus: self.cpus,
                wall_minutes: self.wall_minutes,
                command: self.command.clone(),
            },
        )
    }
}

impl BatchJobService {
    /// Compose over a client bound to a `JobSubmission` endpoint.
    pub fn new(jobsub: Arc<SoapClient>) -> BatchJobService {
        BatchJobService { jobsub }
    }
}

fn forward_error(e: SoapError) -> Fault {
    match e {
        // Relay the downstream fault unchanged: the common error codes
        // survive service composition.
        SoapError::Fault(f) => f,
        // Transport failures go through the canonical wire→fault table.
        SoapError::Transport(w) => Fault::from_wire(&w),
        other => Fault::portal(
            PortalErrorKind::Internal,
            format!("job submission service unreachable: {other}"),
        ),
    }
}

impl SoapService for BatchJobService {
    fn name(&self) -> &str {
        "BatchJob"
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        match method {
            "runBatch" => {
                let spec = args.first().and_then(|(_, v)| v.as_str()).ok_or_else(|| {
                    Fault::portal(PortalErrorKind::BadArguments, "missing command string")
                })?;
                let cmd = BatchCommand::parse(spec)
                    .map_err(|e| Fault::portal(PortalErrorKind::BadArguments, e))?;
                // The composition step: one Web service calling another.
                // The caller's SOAP headers (its SAML assertion) are
                // forwarded so the downstream SSP can re-verify — the
                // delegation story of §4.
                let mut env = portalws_soap::Envelope::request(
                    self.jobsub.service(),
                    "run",
                    &[
                        SoapValue::str(cmd.host.clone()),
                        SoapValue::str(cmd.scheduler.name()),
                        SoapValue::str(cmd.to_script()),
                    ],
                );
                env.headers.extend(ctx.headers.iter().cloned());
                let out = self.jobsub.call_envelope(env).map_err(forward_error)?;
                Ok(out)
            }
            other => Err(Fault::client(format!("BatchJob has no method {other:?}"))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        vec![MethodDesc::new(
            "runBatch",
            vec![("commandLine", SoapType::String)],
            SoapType::String,
            "Parse '<host> <sched> <queue> <cpus> <wall> -- <cmd>' and run it via the JobSubmission service",
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSubmissionService;
    use portalws_gridsim::grid::Grid;
    use portalws_soap::SoapServer;
    use portalws_wire::{Handler, InMemoryTransport};

    /// Two-server composition: BatchJob on one SSP forwarding to
    /// JobSubmission on another.
    fn composed() -> SoapClient {
        let grid = Grid::testbed();
        let jobsub_server = SoapServer::new();
        jobsub_server.mount(Arc::new(JobSubmissionService::new(grid)));
        let jobsub_handler: Arc<dyn Handler> = Arc::new(jobsub_server);
        let jobsub_client = Arc::new(SoapClient::new(
            Arc::new(InMemoryTransport::new(jobsub_handler)),
            "JobSubmission",
        ));

        let batch_server = SoapServer::new();
        batch_server.mount(Arc::new(BatchJobService::new(jobsub_client)));
        let batch_handler: Arc<dyn Handler> = Arc::new(batch_server);
        SoapClient::new(Arc::new(InMemoryTransport::new(batch_handler)), "BatchJob")
    }

    #[test]
    fn parse_command_string() {
        let cmd = BatchCommand::parse("tg-login PBS batch 4 30 -- /bin/hostname -f").unwrap();
        assert_eq!(cmd.host, "tg-login");
        assert_eq!(cmd.scheduler, SchedulerKind::Pbs);
        assert_eq!(cmd.cpus, 4);
        assert_eq!(cmd.command, "/bin/hostname -f");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(BatchCommand::parse("tg-login PBS batch 4 30 /bin/date").is_err());
        assert!(BatchCommand::parse("tg-login SLURM batch 4 30 -- date").is_err());
        assert!(BatchCommand::parse("tg-login PBS batch four 30 -- date").is_err());
        assert!(BatchCommand::parse("tg-login PBS batch 4 30 -- ").is_err());
        assert!(BatchCommand::parse("too few -- date").is_err());
    }

    #[test]
    fn composed_service_runs_jobs() {
        let c = composed();
        let out = c
            .call(
                "runBatch",
                &[SoapValue::str("tg-login PBS batch 2 10 -- hostname")],
            )
            .unwrap();
        assert_eq!(out.as_str().unwrap(), "tg-login\n");
    }

    #[test]
    fn downstream_faults_relay_their_codes() {
        let c = composed();
        let err = c
            .call(
                "runBatch",
                &[SoapValue::str("ghost PBS batch 2 10 -- hostname")],
            )
            .unwrap_err();
        // HOST_UNAVAILABLE came from JobSubmission, through BatchJob,
        // back to the client — the error taxonomy survives composition.
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::HostUnavailable)
        );
    }

    #[test]
    fn bad_command_string_is_caller_fault() {
        let c = composed();
        let err = c
            .call("runBatch", &[SoapValue::str("nonsense")])
            .unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::BadArguments)
        );
    }

    #[test]
    fn script_round_trips_through_target_dialect() {
        let cmd = BatchCommand::parse("modi4 GRD normal 8 45 -- ./solver in.dat").unwrap();
        let script = cmd.to_script();
        let parsed = portalws_gridsim::sched::parse_script(SchedulerKind::Grd, &script).unwrap();
        assert_eq!(parsed.cpus, 8);
        assert_eq!(parsed.wall_minutes, 45);
        assert_eq!(parsed.command, "./solver in.dat");
    }
}
