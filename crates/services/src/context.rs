//! Context management (§3.3).
//!
//! "Gateway implements a service for capturing and organizing the user's
//! session (or context) for archival purposes… We create separate
//! contexts for each user, and subdivide the user contexts into problem
//! contexts, which are further divided into session contexts."
//!
//! Two SOAP shapes are provided, because the paper critiques its own
//! design:
//!
//! * [`ContextManagerMonolith`] — "this service contained over 60
//!   methods. The Gateway team may be fond of the Context Manager, but
//!   HotPage and other teams will have no use for such a complicated
//!   service." The monolith here genuinely exposes 60+ working methods
//!   over the same store (verb × level products plus archival extras), so
//!   interface-size comparisons in E8 are real, not simulated.
//! * [`DecomposedContextServices`] — "the service will have to be broken
//!   up into more reasonable parts": three small services (tree,
//!   properties, archive) with a path-based addressing model.
//!
//! The store also mints *placeholder contexts* — "we were forced to
//!   create placeholder contexts in our SOAP wrappers" for stateless
//!   HotPage users — and counts them, which is E8's overhead metric.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use portalws_soap::{
    CallContext, Fault, MethodDesc, PortalErrorKind, SoapResult, SoapService, SoapType, SoapValue,
};
use portalws_xml::Element;

/// Context-store errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextError {
    /// Path component does not exist.
    NotFound(String),
    /// Creating something that already exists.
    Duplicate(String),
    /// Structural misuse (wrong depth, bad name).
    Invalid(String),
}

impl fmt::Display for ContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextError::NotFound(p) => write!(f, "context not found: {p}"),
            ContextError::Duplicate(p) => write!(f, "context already exists: {p}"),
            ContextError::Invalid(msg) => write!(f, "invalid context operation: {msg}"),
        }
    }
}

impl std::error::Error for ContextError {}

type CtxResult<T> = std::result::Result<T, ContextError>;

/// One context node: properties plus child contexts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Node {
    created_seq: u64,
    properties: BTreeMap<String, String>,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn to_xml(&self, name: &str, kind: &str) -> Element {
        let mut el = Element::new(kind)
            .with_attr("name", name)
            .with_attr("created", self.created_seq.to_string());
        for (k, v) in &self.properties {
            el.push_child(
                Element::new("property")
                    .with_attr("name", k.clone())
                    .with_text(v.clone()),
            );
        }
        let child_kind = match kind {
            "userContext" => "problemContext",
            "problemContext" => "sessionContext",
            _ => "context",
        };
        for (cname, child) in &self.children {
            el.push_child(child.to_xml(cname, child_kind));
        }
        el
    }

    fn from_xml(el: &Element) -> CtxResult<(String, Node)> {
        let name = el
            .attr("name")
            .ok_or_else(|| ContextError::Invalid("archived context missing name".into()))?
            .to_owned();
        let mut node = Node {
            created_seq: el.attr("created").and_then(|v| v.parse().ok()).unwrap_or(0),
            ..Default::default()
        };
        for child in el.children() {
            if child.local_name() == "property" {
                node.properties.insert(
                    child.attr("name").unwrap_or("").to_owned(),
                    child.text().trim().to_owned(),
                );
            } else {
                let (cname, cnode) = Node::from_xml(child)?;
                node.children.insert(cname, cnode);
            }
        }
        Ok((name, node))
    }

    fn subtree_count(&self) -> usize {
        1 + self
            .children
            .values()
            .map(Node::subtree_count)
            .sum::<usize>()
    }
}

/// The shared context tree: user → problem → session.
#[derive(Default)]
pub struct ContextStore {
    users: RwLock<BTreeMap<String, Node>>,
    seq: AtomicU64,
    placeholders: AtomicU64,
}

/// A context path: up to three levels deep.
fn check_name(name: &str) -> CtxResult<()> {
    if name.is_empty() || name.contains('/') {
        return Err(ContextError::Invalid(format!("bad context name {name:?}")));
    }
    Ok(())
}

impl ContextStore {
    /// New empty store.
    pub fn new() -> Arc<ContextStore> {
        Arc::new(ContextStore::default())
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Placeholder contexts minted so far (the E8 overhead counter).
    pub fn placeholder_count(&self) -> u64 {
        self.placeholders.load(Ordering::Relaxed)
    }

    // ---- navigation helpers ---------------------------------------------

    fn with_node<T>(&self, path: &[&str], f: impl FnOnce(&Node) -> CtxResult<T>) -> CtxResult<T> {
        let (first, rest) = path
            .split_first()
            .ok_or_else(|| ContextError::Invalid("empty context path".into()))?;
        let users = self.users.read();
        let mut cur = users
            .get(*first)
            .ok_or_else(|| ContextError::NotFound((*first).to_owned()))?;
        for seg in rest {
            cur = cur
                .children
                .get(*seg)
                .ok_or_else(|| ContextError::NotFound((*seg).to_owned()))?;
        }
        f(cur)
    }

    fn with_node_mut<T>(
        &self,
        path: &[&str],
        f: impl FnOnce(&mut Node) -> CtxResult<T>,
    ) -> CtxResult<T> {
        let (first, rest) = path
            .split_first()
            .ok_or_else(|| ContextError::Invalid("empty context path".into()))?;
        let mut users = self.users.write();
        let mut cur = users
            .get_mut(*first)
            .ok_or_else(|| ContextError::NotFound((*first).to_owned()))?;
        for seg in rest {
            cur = cur
                .children
                .get_mut(*seg)
                .ok_or_else(|| ContextError::NotFound((*seg).to_owned()))?;
        }
        f(cur)
    }

    // ---- context CRUD ----------------------------------------------------

    /// Create a context at `path` (depth 1 = user, 2 = problem,
    /// 3 = session).
    pub fn add(&self, path: &[&str]) -> CtxResult<()> {
        if path.is_empty() || path.len() > 3 {
            return Err(ContextError::Invalid(format!(
                "context depth must be 1–3, got {}",
                path.len()
            )));
        }
        for seg in path {
            check_name(seg)?;
        }
        let seq = self.next_seq();
        let (leaf, parent) = path
            .split_last()
            .ok_or_else(|| ContextError::Invalid("empty context path".into()))?;
        if parent.is_empty() {
            let mut users = self.users.write();
            if users.contains_key(*leaf) {
                return Err(ContextError::Duplicate((*leaf).to_owned()));
            }
            users.insert(
                (*leaf).to_owned(),
                Node {
                    created_seq: seq,
                    ..Default::default()
                },
            );
            return Ok(());
        }
        self.with_node_mut(parent, |node| {
            if node.children.contains_key(*leaf) {
                return Err(ContextError::Duplicate((*leaf).to_owned()));
            }
            node.children.insert(
                (*leaf).to_owned(),
                Node {
                    created_seq: seq,
                    ..Default::default()
                },
            );
            Ok(())
        })
    }

    /// Remove the context at `path` and its whole subtree.
    pub fn remove(&self, path: &[&str]) -> CtxResult<()> {
        let (leaf, parent) = path
            .split_last()
            .ok_or_else(|| ContextError::Invalid("empty path".into()))?;
        if parent.is_empty() {
            let mut users = self.users.write();
            users
                .remove(*leaf)
                .map(|_| ())
                .ok_or_else(|| ContextError::NotFound((*leaf).to_owned()))
        } else {
            self.with_node_mut(parent, |node| {
                node.children
                    .remove(*leaf)
                    .map(|_| ())
                    .ok_or_else(|| ContextError::NotFound((*leaf).to_owned()))
            })
        }
    }

    /// Does a context exist?
    pub fn exists(&self, path: &[&str]) -> bool {
        if path.is_empty() {
            return false;
        }
        self.with_node(path, |_| Ok(())).is_ok()
    }

    /// Child names under `path` (or all users for an empty path).
    pub fn list(&self, path: &[&str]) -> CtxResult<Vec<String>> {
        if path.is_empty() {
            return Ok(self.users.read().keys().cloned().collect());
        }
        self.with_node(path, |node| Ok(node.children.keys().cloned().collect()))
    }

    /// Rename a context in place.
    pub fn rename(&self, path: &[&str], new_name: &str) -> CtxResult<()> {
        check_name(new_name)?;
        let (leaf, parent) = path
            .split_last()
            .ok_or_else(|| ContextError::Invalid("empty path".into()))?;
        if parent.is_empty() {
            let mut users = self.users.write();
            if users.contains_key(new_name) {
                return Err(ContextError::Duplicate(new_name.to_owned()));
            }
            let node = users
                .remove(*leaf)
                .ok_or_else(|| ContextError::NotFound((*leaf).to_owned()))?;
            users.insert(new_name.to_owned(), node);
            return Ok(());
        }
        self.with_node_mut(parent, |node| {
            if node.children.contains_key(new_name) {
                return Err(ContextError::Duplicate(new_name.to_owned()));
            }
            let child = node
                .children
                .remove(*leaf)
                .ok_or_else(|| ContextError::NotFound((*leaf).to_owned()))?;
            node.children.insert(new_name.to_owned(), child);
            Ok(())
        })
    }

    /// Remove all children and properties of a context.
    pub fn clear(&self, path: &[&str]) -> CtxResult<()> {
        self.with_node_mut(path, |node| {
            node.children.clear();
            node.properties.clear();
            Ok(())
        })
    }

    /// Creation sequence number of a context.
    pub fn created_seq(&self, path: &[&str]) -> CtxResult<u64> {
        self.with_node(path, |node| Ok(node.created_seq))
    }

    // ---- properties -------------------------------------------------------

    /// Set a property on the context at `path`.
    pub fn set_property(&self, path: &[&str], key: &str, value: &str) -> CtxResult<()> {
        self.with_node_mut(path, |node| {
            node.properties.insert(key.to_owned(), value.to_owned());
            Ok(())
        })
    }

    /// Get a property.
    pub fn get_property(&self, path: &[&str], key: &str) -> CtxResult<String> {
        self.with_node(path, |node| {
            node.properties
                .get(key)
                .cloned()
                .ok_or_else(|| ContextError::NotFound(format!("property {key:?}")))
        })
    }

    /// Remove a property.
    pub fn remove_property(&self, path: &[&str], key: &str) -> CtxResult<()> {
        self.with_node_mut(path, |node| {
            node.properties
                .remove(key)
                .map(|_| ())
                .ok_or_else(|| ContextError::NotFound(format!("property {key:?}")))
        })
    }

    /// All properties of a context.
    pub fn list_properties(&self, path: &[&str]) -> CtxResult<Vec<(String, String)>> {
        self.with_node(path, |node| {
            Ok(node
                .properties
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect())
        })
    }

    // ---- archival ----------------------------------------------------------

    /// Serialize the subtree at `path` (the session-archive step).
    pub fn archive(&self, path: &[&str]) -> CtxResult<Element> {
        let kind = match path.len() {
            1 => "userContext",
            2 => "problemContext",
            3 => "sessionContext",
            _ => return Err(ContextError::Invalid("archive depth must be 1–3".into())),
        };
        let leaf = path
            .last()
            .ok_or_else(|| ContextError::Invalid("empty context path".into()))?;
        self.with_node(path, |node| Ok(node.to_xml(leaf, kind)))
    }

    /// Restore an archived subtree under `parent_path` (empty = restore a
    /// user context). Fails on name collision.
    pub fn restore(&self, parent_path: &[&str], archived: &Element) -> CtxResult<String> {
        let (name, node) = Node::from_xml(archived)?;
        if parent_path.is_empty() {
            let mut users = self.users.write();
            if users.contains_key(&name) {
                return Err(ContextError::Duplicate(name));
            }
            users.insert(name.clone(), node);
            return Ok(name);
        }
        self.with_node_mut(parent_path, |parent| {
            if parent.children.contains_key(&name) {
                return Err(ContextError::Duplicate(name.clone()));
            }
            parent.children.insert(name.clone(), node);
            Ok(name.clone())
        })
    }

    /// Copy the context at `path` to a sibling named `new_name`.
    pub fn copy(&self, path: &[&str], new_name: &str) -> CtxResult<()> {
        check_name(new_name)?;
        let archived = self.archive(path)?;
        let mut renamed = archived.clone();
        renamed.set_attr("name", new_name);
        let (_, parent) = path
            .split_last()
            .ok_or_else(|| ContextError::Invalid("empty context path".into()))?;
        self.restore(parent, &renamed).map(|_| ())
    }

    /// Find sessions (paths) carrying a property `key=value` anywhere in
    /// the store.
    pub fn find_by_property(&self, key: &str, value: &str) -> Vec<String> {
        let users = self.users.read();
        let mut hits = Vec::new();
        for (uname, unode) in users.iter() {
            if unode.properties.get(key).map(String::as_str) == Some(value) {
                hits.push(format!("/{uname}"));
            }
            for (pname, pnode) in &unode.children {
                if pnode.properties.get(key).map(String::as_str) == Some(value) {
                    hits.push(format!("/{uname}/{pname}"));
                }
                for (sname, snode) in &pnode.children {
                    if snode.properties.get(key).map(String::as_str) == Some(value) {
                        hits.push(format!("/{uname}/{pname}/{sname}"));
                    }
                }
            }
        }
        hits
    }

    /// Total context count across the store.
    pub fn total_count(&self) -> usize {
        self.users.read().values().map(Node::subtree_count).sum()
    }

    /// Remove every placeholder problem subtree; returns how many were
    /// dropped. (Housekeeping for the §3 artificial-context workaround.)
    pub fn purge_placeholders(&self) -> usize {
        let mut users = self.users.write();
        let mut dropped = 0;
        for node in users.values_mut() {
            let before = node.children.len();
            node.children
                .retain(|name, _| !name.starts_with("placeholder-problem-"));
            dropped += before - node.children.len();
        }
        dropped
    }

    /// Mint a placeholder problem+session for a stateless caller (the
    /// §3 "artificial contexts" the standalone script generator needed).
    /// Returns `(problem, session)` names.
    pub fn create_placeholder(&self, user: &str) -> CtxResult<(String, String)> {
        if !self.exists(&[user]) {
            self.add(&[user])?;
        }
        let n = self.placeholders.fetch_add(1, Ordering::Relaxed) + 1;
        let problem = format!("placeholder-problem-{n:06}");
        let session = format!("placeholder-session-{n:06}");
        self.add(&[user, &problem])?;
        self.add(&[user, &problem, &session])?;
        self.set_property(&[user, &problem, &session], "placeholder", "true")?;
        Ok((problem, session))
    }
}

// ---------------------------------------------------------------------------
// SOAP facades
// ---------------------------------------------------------------------------

fn ctx_fault(e: ContextError) -> Fault {
    let kind = match &e {
        ContextError::NotFound(_) => PortalErrorKind::NotFound,
        ContextError::Duplicate(_) | ContextError::Invalid(_) => PortalErrorKind::BadArguments,
    };
    Fault::portal(kind, e.to_string())
}

fn strs(args: &[(String, SoapValue)], n: usize) -> SoapResult<Vec<&str>> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(args.get(i).and_then(|(_, v)| v.as_str()).ok_or_else(|| {
            Fault::portal(
                PortalErrorKind::BadArguments,
                format!("missing string argument {i}"),
            )
        })?);
    }
    Ok(out)
}

/// Exactly `N` string arguments, destructurable: `let [user] = strs_n(args)?`.
fn strs_n<const N: usize>(args: &[(String, SoapValue)]) -> SoapResult<[&str; N]> {
    strs(args, N)?
        .try_into()
        .map_err(|_| Fault::portal(PortalErrorKind::BadArguments, "argument arity mismatch"))
}

/// The first `depth` string arguments as a context path plus exactly `N`
/// trailing string arguments: `let (path, [key, value]) = path_args(args, depth)?`.
fn path_args<const N: usize>(
    args: &[(String, SoapValue)],
    depth: usize,
) -> SoapResult<(Vec<&str>, [&str; N])> {
    let mut path = strs(args, depth + N)?;
    let extras = path.split_off(depth);
    let extras = extras
        .try_into()
        .map_err(|_| Fault::portal(PortalErrorKind::BadArguments, "argument arity mismatch"))?;
    Ok((path, extras))
}

fn names_value(names: Vec<String>) -> SoapValue {
    SoapValue::Array(names.into_iter().map(SoapValue::String).collect())
}

fn props_value(props: Vec<(String, String)>) -> SoapValue {
    SoapValue::Array(
        props
            .into_iter()
            .map(|(k, v)| {
                SoapValue::Struct(vec![
                    ("name".into(), SoapValue::String(k)),
                    ("value".into(), SoapValue::String(v)),
                ])
            })
            .collect(),
    )
}

/// The 60+-method monolith. Method names follow the Gateway convention:
/// `addUserContext`, `setSessionProperty`, `archiveProblemContext`, ….
pub struct ContextManagerMonolith {
    store: Arc<ContextStore>,
}

const LEVELS: [(&str, usize); 3] = [("User", 1), ("Problem", 2), ("Session", 3)];

impl ContextManagerMonolith {
    /// Wrap a store.
    pub fn new(store: Arc<ContextStore>) -> ContextManagerMonolith {
        ContextManagerMonolith { store }
    }

    /// The wrapped store.
    pub fn store(&self) -> &Arc<ContextStore> {
        &self.store
    }

    /// Determine the level a method name addresses. Both the capitalized
    /// infix form (`addUserContext`) and the lowercase prefix form
    /// (`userContextExists`) occur in the Gateway naming convention.
    fn level_of(method: &str) -> Option<(usize, &'static str)> {
        for (lname, depth) in LEVELS {
            if method.contains(lname) || method.starts_with(&lname.to_lowercase()) {
                return Some((depth, lname));
            }
        }
        None
    }
}

impl SoapService for ContextManagerMonolith {
    fn name(&self) -> &str {
        "ContextManager"
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        _ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        let store = &self.store;
        // Store-wide specials first.
        match method {
            "totalContextCount" => return Ok(SoapValue::Int(store.total_count() as i64)),
            "placeholderCount" => return Ok(SoapValue::Int(store.placeholder_count() as i64)),
            "createPlaceholderContext" => {
                let [user] = strs_n(args)?;
                let (problem, session) = store.create_placeholder(user).map_err(ctx_fault)?;
                return Ok(SoapValue::Struct(vec![
                    ("problem".into(), SoapValue::String(problem)),
                    ("session".into(), SoapValue::String(session)),
                ]));
            }
            "findContextsByProperty" => {
                let [key, value] = strs_n(args)?;
                return Ok(names_value(store.find_by_property(key, value)));
            }
            "listUsers" => {
                return Ok(names_value(store.list(&[]).map_err(ctx_fault)?));
            }
            "purgePlaceholders" => {
                return Ok(SoapValue::Int(store.purge_placeholders() as i64));
            }
            "storeStatistics" => {
                return Ok(SoapValue::Struct(vec![
                    (
                        "contexts".into(),
                        SoapValue::Int(store.total_count() as i64),
                    ),
                    (
                        "users".into(),
                        SoapValue::Int(store.list(&[]).map_err(ctx_fault)?.len() as i64),
                    ),
                    (
                        "placeholders".into(),
                        SoapValue::Int(store.placeholder_count() as i64),
                    ),
                ]))
            }
            _ => {}
        }

        let (depth, lname) = Self::level_of(method)
            .ok_or_else(|| Fault::client(format!("ContextManager has no method {method:?}")))?;
        let verb = method
            .replace(lname, "")
            .replace(&lname.to_lowercase(), "")
            .to_ascii_lowercase();
        // Context ops take `depth` path args; property ops likewise plus
        // key/value.
        match verb.as_str() {
            "addcontext" => {
                let a = strs(args, depth)?;
                store.add(&a).map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            "removecontext" => {
                let a = strs(args, depth)?;
                store.remove(&a).map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            "contextexists" => {
                let a = strs(args, depth)?;
                Ok(SoapValue::Bool(store.exists(&a)))
            }
            "listcontexts" => {
                let a = strs(args, depth - 1)?;
                Ok(names_value(store.list(&a).map_err(ctx_fault)?))
            }
            "countcontexts" => {
                let a = strs(args, depth - 1)?;
                Ok(SoapValue::Int(
                    store.list(&a).map_err(ctx_fault)?.len() as i64
                ))
            }
            "renamecontext" => {
                let (path, [new_name]) = path_args(args, depth)?;
                store.rename(&path, new_name).map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            "clearcontext" => {
                let a = strs(args, depth)?;
                store.clear(&a).map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            "describecontext" | "archivecontext" => {
                let a = strs(args, depth)?;
                Ok(SoapValue::Xml(store.archive(&a).map_err(ctx_fault)?))
            }
            "restorecontext" => {
                let a = strs(args, depth - 1)?;
                let el = args
                    .get(depth - 1)
                    .and_then(|(_, v)| v.as_xml())
                    .ok_or_else(|| {
                        Fault::portal(PortalErrorKind::BadArguments, "missing archive document")
                    })?;
                let name = store.restore(&a, el).map_err(ctx_fault)?;
                Ok(SoapValue::String(name))
            }
            "copycontext" => {
                let (path, [new_name]) = path_args(args, depth)?;
                store.copy(&path, new_name).map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            "contextcreated" => {
                let a = strs(args, depth)?;
                Ok(SoapValue::Int(
                    store.created_seq(&a).map_err(ctx_fault)? as i64
                ))
            }
            "setproperty" => {
                let (path, [key, value]) = path_args(args, depth)?;
                store.set_property(&path, key, value).map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            "getproperty" => {
                let (path, [key]) = path_args(args, depth)?;
                Ok(SoapValue::String(
                    store.get_property(&path, key).map_err(ctx_fault)?,
                ))
            }
            "removeproperty" => {
                let (path, [key]) = path_args(args, depth)?;
                store.remove_property(&path, key).map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            "listproperties" => {
                let a = strs(args, depth)?;
                Ok(props_value(store.list_properties(&a).map_err(ctx_fault)?))
            }
            "countproperties" => {
                let a = strs(args, depth)?;
                Ok(SoapValue::Int(
                    store.list_properties(&a).map_err(ctx_fault)?.len() as i64,
                ))
            }
            "clearproperties" => {
                let a = strs(args, depth)?;
                let keys: Vec<String> = store
                    .list_properties(&a)
                    .map_err(ctx_fault)?
                    .into_iter()
                    .map(|(k, _)| k)
                    .collect();
                for k in keys {
                    store.remove_property(&a, &k).map_err(ctx_fault)?;
                }
                Ok(SoapValue::Null)
            }
            other => Err(Fault::client(format!(
                "ContextManager has no method {method:?} (verb {other:?})"
            ))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        let mut out = Vec::new();
        let path_params = |depth: usize| -> Vec<(&'static str, SoapType)> {
            ["user", "problem", "session"]
                .iter()
                .take(depth)
                .map(|n| (*n, SoapType::String))
                .collect()
        };
        for (lname, depth) in LEVELS {
            type VerbRow<'v> = (&'v str, Vec<(&'v str, SoapType)>, SoapType);
            let verbs: [VerbRow<'_>; 17] = [
                ("add{L}Context", path_params(depth), SoapType::Void),
                ("remove{L}Context", path_params(depth), SoapType::Void),
                ("{l}ContextExists", path_params(depth), SoapType::Boolean),
                ("list{L}Contexts", path_params(depth - 1), SoapType::Array),
                ("count{L}Contexts", path_params(depth - 1), SoapType::Int),
                (
                    "rename{L}Context",
                    {
                        let mut p = path_params(depth);
                        p.push(("newName", SoapType::String));
                        p
                    },
                    SoapType::Void,
                ),
                ("clear{L}Context", path_params(depth), SoapType::Void),
                ("describe{L}Context", path_params(depth), SoapType::Xml),
                ("archive{L}Context", path_params(depth), SoapType::Xml),
                (
                    "restore{L}Context",
                    {
                        let mut p = path_params(depth - 1);
                        p.push(("archive", SoapType::Xml));
                        p
                    },
                    SoapType::String,
                ),
                (
                    "copy{L}Context",
                    {
                        let mut p = path_params(depth);
                        p.push(("newName", SoapType::String));
                        p
                    },
                    SoapType::Void,
                ),
                ("{l}ContextCreated", path_params(depth), SoapType::Int),
                (
                    "set{L}Property",
                    {
                        let mut p = path_params(depth);
                        p.push(("key", SoapType::String));
                        p.push(("value", SoapType::String));
                        p
                    },
                    SoapType::Void,
                ),
                (
                    "get{L}Property",
                    {
                        let mut p = path_params(depth);
                        p.push(("key", SoapType::String));
                        p
                    },
                    SoapType::String,
                ),
                (
                    "remove{L}Property",
                    {
                        let mut p = path_params(depth);
                        p.push(("key", SoapType::String));
                        p
                    },
                    SoapType::Void,
                ),
                ("list{L}Properties", path_params(depth), SoapType::Array),
                ("count{L}Properties", path_params(depth), SoapType::Int),
            ];
            for (template, params, ret) in verbs {
                let name = template
                    .replace("{L}", lname)
                    .replace("{l}", &lname.to_lowercase());
                out.push(MethodDesc::new(
                    name.clone(),
                    params,
                    ret,
                    format!("{lname}-level context operation {name}"),
                ));
            }
            // clearProperties rounds the per-level set to 18.
            out.push(MethodDesc::new(
                format!("clear{lname}Properties"),
                path_params(depth),
                SoapType::Void,
                format!("Remove all properties of a {lname} context"),
            ));
        }
        for (name, params, ret, doc) in [
            (
                "totalContextCount",
                vec![],
                SoapType::Int,
                "Contexts in the whole store",
            ),
            (
                "placeholderCount",
                vec![],
                SoapType::Int,
                "Placeholder contexts minted for stateless callers",
            ),
            (
                "createPlaceholderContext",
                vec![("user", SoapType::String)],
                SoapType::Struct,
                "Mint an artificial problem+session for a stateless caller",
            ),
            (
                "findContextsByProperty",
                vec![("key", SoapType::String), ("value", SoapType::String)],
                SoapType::Array,
                "Paths of contexts carrying a property",
            ),
            (
                "storeStatistics",
                vec![],
                SoapType::Struct,
                "Store-wide counters",
            ),
            ("listUsers", vec![], SoapType::Array, "All user contexts"),
            (
                "purgePlaceholders",
                vec![],
                SoapType::Int,
                "Drop all placeholder problem subtrees",
            ),
        ] {
            out.push(MethodDesc::new(name, params, ret, doc));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Decomposed services
// ---------------------------------------------------------------------------

fn parse_path(p: &str) -> SoapResult<Vec<&str>> {
    let segs: Vec<&str> = p.split('/').filter(|s| !s.is_empty()).collect();
    if segs.is_empty() || segs.len() > 3 {
        return Err(Fault::portal(
            PortalErrorKind::BadArguments,
            format!("context path must have 1–3 segments: {p:?}"),
        ));
    }
    Ok(segs)
}

/// Tree CRUD with path addressing (`/user/problem/session`).
pub struct ContextTreeService {
    store: Arc<ContextStore>,
}

impl SoapService for ContextTreeService {
    fn name(&self) -> &str {
        "ContextTree"
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        _ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        let path_arg = |i: usize| -> SoapResult<&str> {
            args.get(i).and_then(|(_, v)| v.as_str()).ok_or_else(|| {
                Fault::portal(PortalErrorKind::BadArguments, "missing path argument")
            })
        };
        match method {
            "create" => {
                let p = parse_path(path_arg(0)?)?;
                self.store.add(&p).map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            "delete" => {
                let p = parse_path(path_arg(0)?)?;
                self.store.remove(&p).map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            "exists" => {
                let p = parse_path(path_arg(0)?)?;
                Ok(SoapValue::Bool(self.store.exists(&p)))
            }
            "list" => {
                let raw = path_arg(0)?;
                let p: Vec<&str> = raw.split('/').filter(|s| !s.is_empty()).collect();
                Ok(names_value(self.store.list(&p).map_err(ctx_fault)?))
            }
            "rename" => {
                let p = parse_path(path_arg(0)?)?;
                let new_name = path_arg(1)?;
                self.store.rename(&p, new_name).map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            other => Err(Fault::client(format!(
                "ContextTree has no method {other:?}"
            ))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        vec![
            MethodDesc::new(
                "create",
                vec![("path", SoapType::String)],
                SoapType::Void,
                "Create a context",
            ),
            MethodDesc::new(
                "delete",
                vec![("path", SoapType::String)],
                SoapType::Void,
                "Delete a context subtree",
            ),
            MethodDesc::new(
                "exists",
                vec![("path", SoapType::String)],
                SoapType::Boolean,
                "Existence check",
            ),
            MethodDesc::new(
                "list",
                vec![("path", SoapType::String)],
                SoapType::Array,
                "Child context names",
            ),
            MethodDesc::new(
                "rename",
                vec![("path", SoapType::String), ("newName", SoapType::String)],
                SoapType::Void,
                "Rename a context",
            ),
        ]
    }
}

/// Property access on a context path.
pub struct ContextPropertyService {
    store: Arc<ContextStore>,
}

impl SoapService for ContextPropertyService {
    fn name(&self) -> &str {
        "ContextProperty"
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        _ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        let sarg = |i: usize| -> SoapResult<&str> {
            args.get(i)
                .and_then(|(_, v)| v.as_str())
                .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "missing argument"))
        };
        match method {
            "set" => {
                let p = parse_path(sarg(0)?)?;
                self.store
                    .set_property(&p, sarg(1)?, sarg(2)?)
                    .map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            "get" => {
                let p = parse_path(sarg(0)?)?;
                Ok(SoapValue::String(
                    self.store.get_property(&p, sarg(1)?).map_err(ctx_fault)?,
                ))
            }
            "remove" => {
                let p = parse_path(sarg(0)?)?;
                self.store
                    .remove_property(&p, sarg(1)?)
                    .map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            "listAll" => {
                let p = parse_path(sarg(0)?)?;
                Ok(props_value(
                    self.store.list_properties(&p).map_err(ctx_fault)?,
                ))
            }
            other => Err(Fault::client(format!(
                "ContextProperty has no method {other:?}"
            ))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        vec![
            MethodDesc::new(
                "set",
                vec![
                    ("path", SoapType::String),
                    ("key", SoapType::String),
                    ("value", SoapType::String),
                ],
                SoapType::Void,
                "Set a property",
            ),
            MethodDesc::new(
                "get",
                vec![("path", SoapType::String), ("key", SoapType::String)],
                SoapType::String,
                "Get a property",
            ),
            MethodDesc::new(
                "remove",
                vec![("path", SoapType::String), ("key", SoapType::String)],
                SoapType::Void,
                "Remove a property",
            ),
            MethodDesc::new(
                "listAll",
                vec![("path", SoapType::String)],
                SoapType::Array,
                "All properties of a context",
            ),
        ]
    }
}

/// Archival: serialize, restore, copy.
pub struct ContextArchiveService {
    store: Arc<ContextStore>,
}

impl SoapService for ContextArchiveService {
    fn name(&self) -> &str {
        "ContextArchive"
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        _ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        let sarg = |i: usize| -> SoapResult<&str> {
            args.get(i)
                .and_then(|(_, v)| v.as_str())
                .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "missing argument"))
        };
        match method {
            "archive" => {
                let p = parse_path(sarg(0)?)?;
                Ok(SoapValue::Xml(self.store.archive(&p).map_err(ctx_fault)?))
            }
            "restore" => {
                let raw = sarg(0)?;
                let parent: Vec<&str> = raw.split('/').filter(|s| !s.is_empty()).collect();
                let el = args.get(1).and_then(|(_, v)| v.as_xml()).ok_or_else(|| {
                    Fault::portal(PortalErrorKind::BadArguments, "missing archive document")
                })?;
                Ok(SoapValue::String(
                    self.store.restore(&parent, el).map_err(ctx_fault)?,
                ))
            }
            "copy" => {
                let p = parse_path(sarg(0)?)?;
                self.store.copy(&p, sarg(1)?).map_err(ctx_fault)?;
                Ok(SoapValue::Null)
            }
            other => Err(Fault::client(format!(
                "ContextArchive has no method {other:?}"
            ))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        vec![
            MethodDesc::new(
                "archive",
                vec![("path", SoapType::String)],
                SoapType::Xml,
                "Serialize a context subtree",
            ),
            MethodDesc::new(
                "restore",
                vec![("parentPath", SoapType::String), ("archive", SoapType::Xml)],
                SoapType::String,
                "Restore an archived subtree",
            ),
            MethodDesc::new(
                "copy",
                vec![("path", SoapType::String), ("newName", SoapType::String)],
                SoapType::Void,
                "Copy a context to a sibling",
            ),
        ]
    }
}

/// The decomposed bundle over one shared store.
pub struct DecomposedContextServices {
    /// Tree CRUD.
    pub tree: Arc<ContextTreeService>,
    /// Property access.
    pub properties: Arc<ContextPropertyService>,
    /// Archival.
    pub archive: Arc<ContextArchiveService>,
}

impl DecomposedContextServices {
    /// Build the three services over one store.
    pub fn new(store: Arc<ContextStore>) -> DecomposedContextServices {
        DecomposedContextServices {
            tree: Arc::new(ContextTreeService {
                store: Arc::clone(&store),
            }),
            properties: Arc::new(ContextPropertyService {
                store: Arc::clone(&store),
            }),
            archive: Arc::new(ContextArchiveService { store }),
        }
    }

    /// Mount all three on a SOAP server.
    pub fn mount_all(&self, server: &portalws_soap::SoapServer) {
        server.mount(Arc::clone(&self.tree) as Arc<dyn SoapService>);
        server.mount(Arc::clone(&self.properties) as Arc<dyn SoapService>);
        server.mount(Arc::clone(&self.archive) as Arc<dyn SoapService>);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CallContext {
        CallContext {
            headers: vec![],
            service: "ContextManager".into(),
            method: "x".into(),
        }
    }

    #[test]
    fn store_crud_cycle() {
        let store = ContextStore::new();
        store.add(&["alice"]).unwrap();
        store.add(&["alice", "cms"]).unwrap();
        store.add(&["alice", "cms", "run-1"]).unwrap();
        assert!(store.exists(&["alice", "cms", "run-1"]));
        assert_eq!(store.list(&["alice"]).unwrap(), vec!["cms"]);
        store
            .rename(&["alice", "cms", "run-1"], "run-final")
            .unwrap();
        assert!(!store.exists(&["alice", "cms", "run-1"]));
        store.remove(&["alice", "cms"]).unwrap();
        assert_eq!(store.list(&["alice"]).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn duplicates_and_missing_rejected() {
        let store = ContextStore::new();
        store.add(&["u"]).unwrap();
        assert!(matches!(store.add(&["u"]), Err(ContextError::Duplicate(_))));
        assert!(matches!(
            store.add(&["ghost", "p"]),
            Err(ContextError::NotFound(_))
        ));
        assert!(matches!(
            store.remove(&["ghost"]),
            Err(ContextError::NotFound(_))
        ));
        assert!(store.add(&["a", "b", "c", "d"]).is_err());
        assert!(store.add(&["bad/name"]).is_err());
    }

    #[test]
    fn properties_cycle() {
        let store = ContextStore::new();
        store.add(&["u"]).unwrap();
        store.set_property(&["u"], "email", "u@iu.edu").unwrap();
        assert_eq!(store.get_property(&["u"], "email").unwrap(), "u@iu.edu");
        store.set_property(&["u"], "email", "u2@iu.edu").unwrap();
        assert_eq!(store.list_properties(&["u"]).unwrap().len(), 1);
        store.remove_property(&["u"], "email").unwrap();
        assert!(store.get_property(&["u"], "email").is_err());
    }

    #[test]
    fn archive_restore_round_trip() {
        let store = ContextStore::new();
        store.add(&["u"]).unwrap();
        store.add(&["u", "p"]).unwrap();
        store.add(&["u", "p", "s"]).unwrap();
        store
            .set_property(&["u", "p", "s"], "input", "/data/in.txt")
            .unwrap();
        let archived = store.archive(&["u", "p"]).unwrap();
        store.remove(&["u", "p"]).unwrap();
        let name = store.restore(&["u"], &archived).unwrap();
        assert_eq!(name, "p");
        assert_eq!(
            store.get_property(&["u", "p", "s"], "input").unwrap(),
            "/data/in.txt"
        );
    }

    #[test]
    fn copy_duplicates_subtree() {
        let store = ContextStore::new();
        store.add(&["u"]).unwrap();
        store.add(&["u", "p"]).unwrap();
        store.add(&["u", "p", "s"]).unwrap();
        store.set_property(&["u", "p", "s"], "k", "v").unwrap();
        store.copy(&["u", "p", "s"], "s2").unwrap();
        assert_eq!(store.get_property(&["u", "p", "s2"], "k").unwrap(), "v");
        // Original untouched.
        assert_eq!(store.get_property(&["u", "p", "s"], "k").unwrap(), "v");
    }

    #[test]
    fn find_by_property_scans_all_levels() {
        let store = ContextStore::new();
        store.add(&["u"]).unwrap();
        store.add(&["u", "p"]).unwrap();
        store.add(&["u", "p", "s"]).unwrap();
        store.set_property(&["u", "p", "s"], "app", "g98").unwrap();
        store.set_property(&["u"], "app", "g98").unwrap();
        let hits = store.find_by_property("app", "g98");
        assert_eq!(hits, vec!["/u", "/u/p/s"]);
    }

    #[test]
    fn placeholder_minting_counts() {
        let store = ContextStore::new();
        let (p1, s1) = store.create_placeholder("hotpage-user").unwrap();
        let (p2, _) = store.create_placeholder("hotpage-user").unwrap();
        assert_ne!(p1, p2);
        assert_eq!(store.placeholder_count(), 2);
        assert_eq!(
            store
                .get_property(&["hotpage-user", &p1, &s1], "placeholder")
                .unwrap(),
            "true"
        );
    }

    #[test]
    fn monolith_has_over_60_methods() {
        let m = ContextManagerMonolith::new(ContextStore::new());
        let methods = m.methods();
        assert!(
            methods.len() > 60,
            "paper says 'over 60 methods'; got {}",
            methods.len()
        );
        // Every advertised method must actually dispatch (no stubs):
        // spot-check one per family at each level.
        let store_names: Vec<String> = methods.iter().map(|m| m.name.clone()).collect();
        for required in [
            "addUserContext",
            "addProblemContext",
            "addSessionContext",
            "setSessionProperty",
            "archiveProblemContext",
            "createPlaceholderContext",
            "storeStatistics",
        ] {
            assert!(store_names.iter().any(|n| n == required), "{required}");
        }
    }

    #[test]
    fn monolith_dispatches_context_ops() {
        let m = ContextManagerMonolith::new(ContextStore::new());
        let c = ctx();
        m.invoke(
            "addUserContext",
            &[("u".into(), SoapValue::str("alice"))],
            &c,
        )
        .unwrap();
        m.invoke(
            "addProblemContext",
            &[
                ("u".into(), SoapValue::str("alice")),
                ("p".into(), SoapValue::str("cms")),
            ],
            &c,
        )
        .unwrap();
        m.invoke(
            "addSessionContext",
            &[
                ("u".into(), SoapValue::str("alice")),
                ("p".into(), SoapValue::str("cms")),
                ("s".into(), SoapValue::str("run1")),
            ],
            &c,
        )
        .unwrap();
        let exists = m
            .invoke(
                "sessionContextExists",
                &[
                    ("u".into(), SoapValue::str("alice")),
                    ("p".into(), SoapValue::str("cms")),
                    ("s".into(), SoapValue::str("run1")),
                ],
                &c,
            )
            .unwrap();
        assert_eq!(exists, SoapValue::Bool(true));
        let count = m
            .invoke(
                "countSessionContexts",
                &[
                    ("u".into(), SoapValue::str("alice")),
                    ("p".into(), SoapValue::str("cms")),
                ],
                &c,
            )
            .unwrap();
        assert_eq!(count, SoapValue::Int(1));
    }

    #[test]
    fn monolith_property_ops_per_level() {
        let m = ContextManagerMonolith::new(ContextStore::new());
        let c = ctx();
        m.invoke(
            "addUserContext",
            &[("u".into(), SoapValue::str("alice"))],
            &c,
        )
        .unwrap();
        m.invoke(
            "setUserProperty",
            &[
                ("u".into(), SoapValue::str("alice")),
                ("k".into(), SoapValue::str("email")),
                ("v".into(), SoapValue::str("a@iu.edu")),
            ],
            &c,
        )
        .unwrap();
        let v = m
            .invoke(
                "getUserProperty",
                &[
                    ("u".into(), SoapValue::str("alice")),
                    ("k".into(), SoapValue::str("email")),
                ],
                &c,
            )
            .unwrap();
        assert_eq!(v, SoapValue::str("a@iu.edu"));
    }

    #[test]
    fn monolith_archive_restore_over_soap_values() {
        let m = ContextManagerMonolith::new(ContextStore::new());
        let c = ctx();
        for (method, args) in [
            ("addUserContext", vec!["alice"]),
            ("addProblemContext", vec!["alice", "cms"]),
            ("addSessionContext", vec!["alice", "cms", "run1"]),
        ] {
            let args: Vec<(String, SoapValue)> = args
                .into_iter()
                .map(|a| ("x".to_string(), SoapValue::str(a)))
                .collect();
            m.invoke(method, &args, &c).unwrap();
        }
        let archived = m
            .invoke(
                "archiveSessionContext",
                &[
                    ("u".into(), SoapValue::str("alice")),
                    ("p".into(), SoapValue::str("cms")),
                    ("s".into(), SoapValue::str("run1")),
                ],
                &c,
            )
            .unwrap();
        let el = archived.as_xml().unwrap().clone();
        // Restore under a new problem.
        m.invoke(
            "addProblemContext",
            &[
                ("u".into(), SoapValue::str("alice")),
                ("p".into(), SoapValue::str("cms2")),
            ],
            &c,
        )
        .unwrap();
        let name = m
            .invoke(
                "restoreSessionContext",
                &[
                    ("u".into(), SoapValue::str("alice")),
                    ("p".into(), SoapValue::str("cms2")),
                    ("a".into(), SoapValue::Xml(el)),
                ],
                &c,
            )
            .unwrap();
        assert_eq!(name, SoapValue::str("run1"));
    }

    #[test]
    fn monolith_unknown_method_fault() {
        let m = ContextManagerMonolith::new(ContextStore::new());
        assert!(m.invoke("frobnicate", &[], &ctx()).is_err());
        assert!(m.invoke("explodeUserContext", &[], &ctx()).is_err());
    }

    #[test]
    fn decomposed_services_cover_same_store() {
        let store = ContextStore::new();
        let d = DecomposedContextServices::new(Arc::clone(&store));
        let c = ctx();
        d.tree
            .invoke("create", &[("p".into(), SoapValue::str("/alice"))], &c)
            .unwrap();
        d.tree
            .invoke("create", &[("p".into(), SoapValue::str("/alice/cms"))], &c)
            .unwrap();
        d.properties
            .invoke(
                "set",
                &[
                    ("p".into(), SoapValue::str("/alice/cms")),
                    ("k".into(), SoapValue::str("app")),
                    ("v".into(), SoapValue::str("g98")),
                ],
                &c,
            )
            .unwrap();
        // Monolith sees the same data.
        let m = ContextManagerMonolith::new(store);
        let v = m
            .invoke(
                "getProblemProperty",
                &[
                    ("u".into(), SoapValue::str("alice")),
                    ("p".into(), SoapValue::str("cms")),
                    ("k".into(), SoapValue::str("app")),
                ],
                &c,
            )
            .unwrap();
        assert_eq!(v, SoapValue::str("g98"));
    }

    #[test]
    fn decomposed_interfaces_are_small() {
        let d = DecomposedContextServices::new(ContextStore::new());
        let total =
            d.tree.methods().len() + d.properties.methods().len() + d.archive.methods().len();
        assert!(total <= 15, "decomposed total {total}");
    }

    #[test]
    fn decomposed_archive_restore() {
        let store = ContextStore::new();
        let d = DecomposedContextServices::new(Arc::clone(&store));
        let c = ctx();
        store.add(&["u"]).unwrap();
        store.add(&["u", "p"]).unwrap();
        store.set_property(&["u", "p"], "k", "v").unwrap();
        let archived = d
            .archive
            .invoke("archive", &[("p".into(), SoapValue::str("/u/p"))], &c)
            .unwrap();
        store.remove(&["u", "p"]).unwrap();
        d.archive
            .invoke(
                "restore",
                &[("p".into(), SoapValue::str("/u")), ("a".into(), archived)],
                &c,
            )
            .unwrap();
        assert_eq!(store.get_property(&["u", "p"], "k").unwrap(), "v");
    }
}
