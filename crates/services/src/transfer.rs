//! Server side of the chunked streaming transfer protocol (E13).
//!
//! The paper's string-streamed `get`/`put` "does not scale well, and was
//! only used as a proof of concept" (§3.2): the whole payload is
//! materialized in one envelope at every hop. This module is the modern
//! fix — SOAP stays the control channel, but the payload moves as a
//! sequence of bounded chunks against a server-side *transfer handle*:
//!
//! * `open_get` / `get_chunk*` / (`abort`) — ranged reads straight out of
//!   the broker; a read never clones more than one chunk.
//! * `open_put` / `put_chunk*` / `commit` / `abort` — chunks append to a
//!   hidden staging object (`.part-<handle>` beside the destination);
//!   `commit` atomically promotes staging → final, so the destination is
//!   only ever absent, old, or complete — never torn.
//!
//! Retries are first-class because the chunk calls ride the pooled
//! transport's idempotent-retry machinery: `get_chunk` is a pure ranged
//! read; a duplicate `put_chunk` (response lost, client resent) is
//! detected by offset and acknowledged without re-appending; a retried
//! `commit`/`abort` of an already-settled handle succeeds out of a small
//! completed-handle memory. Out-of-order `put_chunk`s (pipelined windows
//! race across pooled connections) park in a per-handle reorder buffer
//! that is charged against a service-wide buffered-byte budget, so server
//! memory per transfer is O(window × chunk), not O(file).
//!
//! The handle table is lock-striped (PR 10): a handle's numeric id picks
//! its stripe, so concurrent transfers on different handles never contend
//! on one table mutex. The service-wide invariants — open-handle cap,
//! buffered-byte budget, buffered high-water — live in atomics above the
//! stripes and stay strict (reserve-then-insert, never check-then-race).
//!
//! Every limit is a declared constant; hitting one is a typed
//! [`PortalErrorKind::Busy`]-style fault, not an allocation.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use portalws_gridsim::srb::{Srb, SrbError};
use portalws_soap::{Fault, PortalErrorKind};

use crate::data::srb_fault;

/// Largest chunk a single `get_chunk`/`put_chunk` call may carry. Keeps
/// one chunk comfortably inside the wire's body cap even after base64
/// expansion and XML framing.
pub const MAX_CHUNK_BYTES: usize = 4 * 1024 * 1024;

/// Default cap on concurrently open handles (gets + puts) per service.
pub const DEFAULT_MAX_HANDLES: usize = 64;

/// Default service-wide budget for bytes parked in reorder buffers.
pub const DEFAULT_MAX_BUFFERED_BYTES: usize = 32 * 1024 * 1024;

/// Default idle TTL: a handle untouched this long is expired and its
/// staging object reclaimed.
pub const DEFAULT_IDLE_TTL: Duration = Duration::from_secs(120);

/// How many settled (committed or aborted) put handles are remembered per
/// stripe so that a *retried* `commit`/`abort` — the first response was
/// lost on the wire — succeeds instead of faulting `NoSuchHandle`.
pub const COMPLETED_MEMORY: usize = 64;

/// Lock stripes over the handle table. A handle's numeric id picks its
/// stripe, so retries of the same handle always land on the same lock.
const TRANSFER_STRIPES: usize = 8;

/// Transfer-protocol errors, mapped onto the portal's common fault
/// vocabulary by [`TransferError::to_fault`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferError {
    /// Unknown, expired, or already-settled handle.
    NoSuchHandle(String),
    /// The handle was opened by a different principal.
    NotYourHandle(String),
    /// `put_chunk` offset is not contiguous, duplicate, or bufferable.
    BadOffset {
        /// Handle id.
        handle: String,
        /// Next byte the server can durably accept.
        expected: usize,
        /// Offset the chunk arrived with.
        got: usize,
    },
    /// Chunk exceeds [`MAX_CHUNK_BYTES`].
    ChunkTooLarge(usize),
    /// Handle table is at its concurrency cap.
    HandleLimit(usize),
    /// Reorder buffers are at the service-wide byte budget.
    BufferLimit(usize),
    /// `commit` called while chunks are still missing.
    Incomplete {
        /// Handle id.
        handle: String,
        /// First missing byte.
        missing_at: usize,
    },
    /// Underlying broker error.
    Srb(SrbError),
}

impl TransferError {
    /// Map onto the portal fault taxonomy (the §3 consistent-error
    /// vocabulary): capacity limits are `BUSY` (retry later), protocol
    /// misuse is `BAD_ARGUMENTS`, lost handles are `NOT_FOUND`, and
    /// broker errors keep their canonical mapping.
    pub fn to_fault(&self) -> Fault {
        match self {
            TransferError::NoSuchHandle(h) => Fault::portal(
                PortalErrorKind::NotFound,
                format!("no such transfer handle {h:?} (expired or settled)"),
            ),
            TransferError::NotYourHandle(h) => Fault::portal(
                PortalErrorKind::PermissionDenied,
                format!("transfer handle {h:?} belongs to another principal"),
            ),
            TransferError::BadOffset {
                handle,
                expected,
                got,
            } => Fault::portal(
                PortalErrorKind::BadArguments,
                format!("put_chunk on {handle:?}: offset {got} not acceptable (next expected {expected})"),
            ),
            TransferError::ChunkTooLarge(n) => Fault::portal(
                PortalErrorKind::BadArguments,
                format!("chunk of {n} bytes exceeds MAX_CHUNK_BYTES ({MAX_CHUNK_BYTES})"),
            ),
            TransferError::HandleLimit(cap) => Fault::portal(
                PortalErrorKind::Busy,
                format!("transfer handle table full ({cap} handles); retry later"),
            ),
            TransferError::BufferLimit(cap) => Fault::portal(
                PortalErrorKind::Busy,
                format!("transfer reorder buffers at byte budget ({cap}); retry later"),
            ),
            TransferError::Incomplete { handle, missing_at } => Fault::portal(
                PortalErrorKind::BadArguments,
                format!("commit on {handle:?} with missing bytes from offset {missing_at}"),
            ),
            TransferError::Srb(e) => srb_fault(e.clone()),
        }
    }
}

impl From<SrbError> for TransferError {
    fn from(e: SrbError) -> TransferError {
        TransferError::Srb(e)
    }
}

/// Result alias for transfer operations.
pub type TransferResult<T> = Result<T, TransferError>;

struct GetHandle {
    principal: String,
    path: String,
    last_used: Instant,
}

struct PutHandle {
    principal: String,
    /// Destination path; only written at commit.
    path: String,
    /// Hidden staging sibling the chunks append into.
    staging: String,
    /// Bytes durably appended to staging (the acknowledged frontier).
    next_off: usize,
    /// Out-of-order chunks parked until the frontier reaches them.
    pending: BTreeMap<usize, Vec<u8>>,
    /// Total bytes across `pending` (charged against the table budget).
    pending_bytes: usize,
    last_used: Instant,
}

/// One lock stripe of the handle table.
struct StripeInner {
    gets: HashMap<String, GetHandle>,
    puts: HashMap<String, PutHandle>,
    /// Recently settled put handles: `(id, total bytes, committed?)`.
    completed: VecDeque<(String, usize, bool)>,
}

impl StripeInner {
    fn empty() -> StripeInner {
        StripeInner {
            gets: HashMap::new(),
            puts: HashMap::new(),
            completed: VecDeque::new(),
        }
    }
}

/// The server-side transfer handle table. One per
/// [`crate::DataManagementService`]; every method is safe to retry.
///
/// Striping: handle `t-<id>` lives on stripe `id % TRANSFER_STRIPES`, so
/// every call on one handle serializes on one stripe lock while distinct
/// handles proceed in parallel. The open-handle cap and the buffered-byte
/// budget are enforced by atomic reserve-before-mutate, so they remain
/// strict service-wide bounds even with all stripes active at once.
pub struct TransferTable {
    srb: Arc<Srb>,
    stripes: Box<[Mutex<StripeInner>]>,
    next_id: AtomicU64,
    /// Open handles across all stripes (gets + puts).
    open_count: AtomicUsize,
    /// Service-wide bytes parked in reorder buffers.
    buffered_bytes: AtomicUsize,
    /// High-water of `buffered_bytes` since construction.
    buffered_high_water: AtomicUsize,
    max_handles: usize,
    max_buffered: usize,
    idle_ttl: Mutex<Duration>,
}

impl TransferTable {
    /// A table over `srb` with the default caps.
    pub fn new(srb: Arc<Srb>) -> TransferTable {
        TransferTable::with_caps(srb, DEFAULT_MAX_HANDLES, DEFAULT_MAX_BUFFERED_BYTES)
    }

    /// A table with explicit concurrency and buffering caps (tests and
    /// benches pin these to small values).
    pub fn with_caps(srb: Arc<Srb>, max_handles: usize, max_buffered: usize) -> TransferTable {
        let stripes: Vec<Mutex<StripeInner>> = (0..TRANSFER_STRIPES)
            .map(|i| Mutex::new_named(StripeInner::empty(), &format!("transfer-stripe-{i}")))
            .collect();
        TransferTable {
            srb,
            stripes: stripes.into_boxed_slice(),
            next_id: AtomicU64::new(1),
            open_count: AtomicUsize::new(0),
            buffered_bytes: AtomicUsize::new(0),
            buffered_high_water: AtomicUsize::new(0),
            max_handles,
            max_buffered,
            idle_ttl: Mutex::new_named(DEFAULT_IDLE_TTL, "transfer-ttl"),
        }
    }

    /// Override the idle TTL (tests set this to zero to force expiry).
    pub fn set_idle_ttl(&self, ttl: Duration) {
        *self.idle_ttl.lock() = ttl;
    }

    /// Number of lock stripes over the handle table.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Open handles right now (gets + puts). Sweeps every stripe first so
    /// the answer reflects the TTL.
    pub fn open_handles(&self) -> usize {
        let now = Instant::now();
        let mut total = 0;
        for stripe in self.stripes.iter() {
            let mut inner = stripe.lock();
            self.expire_idle(&mut inner, now);
            total += inner.gets.len() + inner.puts.len();
        }
        total
    }

    /// Bytes currently parked in reorder buffers.
    pub fn buffered_bytes(&self) -> usize {
        self.buffered_bytes.load(Ordering::Acquire)
    }

    /// High-water of parked reorder-buffer bytes since construction — the
    /// asserted server-memory bound in E13.
    pub fn buffered_high_water(&self) -> usize {
        self.buffered_high_water.load(Ordering::Acquire)
    }

    /// Stripe owning a handle id.
    fn stripe_of_id(&self, id: u64) -> Option<&Mutex<StripeInner>> {
        let idx = (id % self.stripes.len().max(1) as u64) as usize;
        self.stripes.get(idx)
    }

    /// Stripe owning a `t-<id>` handle string; `None` for a handle that
    /// was never minted by this table (malformed id).
    fn stripe_of_handle(&self, handle: &str) -> Option<&Mutex<StripeInner>> {
        let id = handle.strip_prefix("t-")?.parse::<u64>().ok()?;
        self.stripe_of_id(id)
    }

    /// Drop handles idle past the TTL within one stripe; a dropped put
    /// handle's staging object is reclaimed and its parked bytes and
    /// handle slots are returned to the global accounting. Runs at the
    /// head of every operation on that stripe.
    fn expire_idle(&self, inner: &mut StripeInner, now: Instant) {
        let ttl = *self.idle_ttl.lock();
        let mut dropped = 0usize;
        inner.gets.retain(|_, h| {
            let live = now.saturating_duration_since(h.last_used) < ttl;
            if !live {
                dropped += 1;
            }
            live
        });
        let mut reclaimed: Vec<(String, String)> = Vec::new();
        let mut freed = 0usize;
        inner.puts.retain(|_, h| {
            let live = now.saturating_duration_since(h.last_used) < ttl;
            if !live {
                dropped += 1;
                freed = freed.saturating_add(h.pending_bytes);
                reclaimed.push((h.principal.clone(), h.staging.clone()));
            }
            live
        });
        if dropped > 0 {
            self.open_count.fetch_sub(dropped, Ordering::AcqRel);
        }
        if freed > 0 {
            self.buffered_bytes.fetch_sub(freed, Ordering::AcqRel);
        }
        for (principal, staging) in &reclaimed {
            // Best effort: the staging object may already be gone.
            let _ = self.srb.rm(principal, staging);
        }
    }

    /// Reserve one slot against the open-handle cap. If the cap is hit,
    /// sweep every stripe once — idle handles must not hold slots hostage
    /// — and retry before faulting `HandleLimit`.
    fn reserve_slot(&self, now: Instant) -> TransferResult<()> {
        if self.try_reserve_slot() {
            return Ok(());
        }
        for stripe in self.stripes.iter() {
            let mut inner = stripe.lock();
            self.expire_idle(&mut inner, now);
        }
        if self.try_reserve_slot() {
            return Ok(());
        }
        Err(TransferError::HandleLimit(self.max_handles))
    }

    fn try_reserve_slot(&self) -> bool {
        self.open_count
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                if n >= self.max_handles {
                    None
                } else {
                    Some(n + 1)
                }
            })
            .is_ok()
    }

    fn release_slot(&self) {
        self.open_count.fetch_sub(1, Ordering::AcqRel);
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Staging path for a destination: a `.part-<handle>` sibling, so the
    /// ACL and quota keys (both keyed on the top-level collection) match
    /// the destination's exactly.
    fn staging_path(path: &str, id: &str) -> String {
        match path.rsplit_once('/') {
            Some((parent, name)) if !parent.is_empty() => {
                format!("{parent}/.part-{id}-{name}")
            }
            _ => format!("{path}.part-{id}"),
        }
    }

    /// Open a read handle: validates access now, returns `(handle, size)`
    /// so the client can plan its chunk schedule.
    pub fn open_get(&self, principal: &str, path: &str) -> TransferResult<(String, usize)> {
        let size = self.srb.stat(principal, path)?;
        let now = Instant::now();
        self.reserve_slot(now)?;
        let id = self.fresh_id();
        let handle = format!("t-{id}");
        let Some(stripe) = self.stripe_of_id(id) else {
            self.release_slot();
            return Err(TransferError::NoSuchHandle(handle));
        };
        let mut inner = stripe.lock();
        self.expire_idle(&mut inner, now);
        inner.gets.insert(
            handle.clone(),
            GetHandle {
                principal: principal.to_owned(),
                path: path.to_owned(),
                last_used: now,
            },
        );
        Ok((handle, size))
    }

    /// Ranged read through a get handle. A read landing exactly on EOF
    /// returns an empty chunk (the client's end-of-stream signal); pure
    /// and therefore safe to retry at any offset.
    pub fn get_chunk(
        &self,
        principal: &str,
        handle: &str,
        off: usize,
        len: usize,
    ) -> TransferResult<Vec<u8>> {
        if len > MAX_CHUNK_BYTES {
            return Err(TransferError::ChunkTooLarge(len));
        }
        let now = Instant::now();
        let Some(stripe) = self.stripe_of_handle(handle) else {
            return Err(TransferError::NoSuchHandle(handle.to_owned()));
        };
        let (owner, path) = {
            let mut inner = stripe.lock();
            self.expire_idle(&mut inner, now);
            let h = inner
                .gets
                .get_mut(handle)
                .ok_or_else(|| TransferError::NoSuchHandle(handle.to_owned()))?;
            h.last_used = now;
            (h.principal.clone(), h.path.clone())
        };
        if owner != principal {
            return Err(TransferError::NotYourHandle(handle.to_owned()));
        }
        // The ranged read happens outside the stripe lock: the broker does
        // its own locking and a slow read must not stall other handles.
        Ok(self.srb.read_at(principal, &path, off, len)?)
    }

    /// Open a write handle: creates the (empty) staging object so quota
    /// and ACL surface immediately, not at the first chunk. Safe to retry:
    /// a duplicate open just allocates a second handle, which idles out.
    pub fn open_put(&self, principal: &str, path: &str) -> TransferResult<String> {
        let now = Instant::now();
        self.reserve_slot(now)?;
        let id = self.fresh_id();
        let handle = format!("t-{id}");
        let staging = Self::staging_path(path, &handle);
        // Creating the empty staging object validates path, ACL, and (for
        // the zero-byte case) materializes the object a zero-chunk commit
        // will promote.
        if let Err(e) = self.srb.append_at(principal, &staging, 0, b"") {
            self.release_slot();
            return Err(TransferError::Srb(e));
        }
        let Some(stripe) = self.stripe_of_id(id) else {
            self.release_slot();
            let _ = self.srb.rm(principal, &staging);
            return Err(TransferError::NoSuchHandle(handle));
        };
        let mut inner = stripe.lock();
        self.expire_idle(&mut inner, now);
        inner.puts.insert(
            handle.clone(),
            PutHandle {
                principal: principal.to_owned(),
                path: path.to_owned(),
                staging,
                next_off: 0,
                pending: BTreeMap::new(),
                pending_bytes: 0,
                last_used: now,
            },
        );
        Ok(handle)
    }

    /// Accept one chunk at `off`. Contiguous chunks append to staging and
    /// drain any now-contiguous parked chunks; a chunk entirely below the
    /// acknowledged frontier is a retry duplicate and is acknowledged
    /// without re-appending; a chunk ahead of the frontier parks in the
    /// reorder buffer (within budget). Returns the acknowledged frontier.
    pub fn put_chunk(
        &self,
        principal: &str,
        handle: &str,
        off: usize,
        data: &[u8],
    ) -> TransferResult<usize> {
        if data.len() > MAX_CHUNK_BYTES {
            return Err(TransferError::ChunkTooLarge(data.len()));
        }
        let now = Instant::now();
        let Some(stripe) = self.stripe_of_handle(handle) else {
            return Err(TransferError::NoSuchHandle(handle.to_owned()));
        };
        let mut inner = stripe.lock();
        self.expire_idle(&mut inner, now);
        let budget = self.max_buffered;
        let h = inner
            .puts
            .get_mut(handle)
            .ok_or_else(|| TransferError::NoSuchHandle(handle.to_owned()))?;
        if h.principal != principal {
            return Err(TransferError::NotYourHandle(handle.to_owned()));
        }
        h.last_used = now;
        let end = off.saturating_add(data.len());
        if end <= h.next_off {
            // Duplicate of an already-applied chunk (lost response,
            // client resent): acknowledge idempotently.
            return Ok(h.next_off);
        }
        if off < h.next_off {
            // Partial overlap means the client and server disagree about
            // chunk boundaries — that is a protocol bug, not a retry.
            return Err(TransferError::BadOffset {
                handle: handle.to_owned(),
                expected: h.next_off,
                got: off,
            });
        }
        if off > h.next_off {
            // Ahead of the frontier: park it, within budget. A duplicate
            // of an already-parked chunk re-acknowledges for free. The
            // budget reservation is a strict atomic add-within-cap, so
            // concurrent stripes can never overshoot it together.
            if h.pending.contains_key(&off) {
                return Ok(h.next_off);
            }
            let want = data.len();
            let reserved =
                self.buffered_bytes
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| {
                        let total = b.saturating_add(want);
                        if total > budget {
                            None
                        } else {
                            Some(total)
                        }
                    });
            let Ok(before) = reserved else {
                return Err(TransferError::BufferLimit(budget));
            };
            self.buffered_high_water
                .fetch_max(before.saturating_add(want), Ordering::AcqRel);
            h.pending_bytes = h.pending_bytes.saturating_add(want);
            h.pending.insert(off, data.to_vec());
            return Ok(h.next_off);
        }
        // Contiguous: append, then drain any parked chunks that became
        // contiguous. Appends happen under the stripe lock so the staging
        // length and `next_off` can never diverge.
        let principal_owned = h.principal.clone();
        let staging = h.staging.clone();
        let pending_before = h.pending_bytes;
        let mut frontier = off.saturating_add(data.len());
        let mut to_append: Vec<Vec<u8>> = vec![data.to_vec()];
        let drain: TransferResult<()> = loop {
            let head = h
                .pending
                .first_key_value()
                .map(|(&poff, pdata)| (poff, pdata.len()));
            let Some((poff, plen)) = head else {
                break Ok(());
            };
            if poff.saturating_add(plen) <= frontier {
                // Entirely behind the new frontier: stale duplicate.
                if let Some(pdata) = h.pending.remove(&poff) {
                    h.pending_bytes = h.pending_bytes.saturating_sub(pdata.len());
                }
                continue;
            }
            if poff < frontier {
                // Misaligned overlap: protocol bug, not a retry.
                break Err(TransferError::BadOffset {
                    handle: handle.to_owned(),
                    expected: frontier,
                    got: poff,
                });
            }
            if poff > frontier {
                break Ok(());
            }
            if let Some(pdata) = h.pending.remove(&poff) {
                h.pending_bytes = h.pending_bytes.saturating_sub(pdata.len());
                frontier = frontier.saturating_add(pdata.len());
                to_append.push(pdata);
            }
        };
        let mut acked = h.next_off;
        let append: TransferResult<()> = match drain {
            Err(e) => Err(e),
            Ok(()) => {
                let mut out = Ok(());
                for chunk in &to_append {
                    match self
                        .srb
                        .append_at(&principal_owned, &staging, h.next_off, chunk)
                    {
                        Ok(_) => {
                            h.next_off = h.next_off.saturating_add(chunk.len());
                            acked = h.next_off;
                        }
                        Err(e) => {
                            out = Err(TransferError::Srb(e));
                            break;
                        }
                    }
                }
                out
            }
        };
        // Whatever happened above, return exactly the bytes this handle
        // released from its reorder buffer to the global budget.
        let freed = pending_before.saturating_sub(h.pending_bytes);
        if freed > 0 {
            self.buffered_bytes.fetch_sub(freed, Ordering::AcqRel);
        }
        append.map(|()| acked)
    }

    /// Promote staging to the destination atomically. Fails `Incomplete`
    /// if parked chunks show bytes are still missing. A retried commit of
    /// an already-committed handle succeeds out of the completed memory.
    pub fn commit(&self, principal: &str, handle: &str) -> TransferResult<usize> {
        let now = Instant::now();
        let Some(stripe) = self.stripe_of_handle(handle) else {
            return Err(TransferError::NoSuchHandle(handle.to_owned()));
        };
        let mut inner = stripe.lock();
        self.expire_idle(&mut inner, now);
        let Some(h) = inner.puts.get(handle) else {
            // Retried commit: the first response was lost after the rename
            // happened. The completed memory keeps that retry idempotent.
            if let Some((_, total, committed)) = inner
                .completed
                .iter()
                .find(|(id, _, _)| id == handle)
                .cloned()
            {
                if committed {
                    return Ok(total);
                }
                return Err(TransferError::NoSuchHandle(handle.to_owned()));
            }
            return Err(TransferError::NoSuchHandle(handle.to_owned()));
        };
        if h.principal != principal {
            return Err(TransferError::NotYourHandle(handle.to_owned()));
        }
        if !h.pending.is_empty() {
            return Err(TransferError::Incomplete {
                handle: handle.to_owned(),
                missing_at: h.next_off,
            });
        }
        // The rename is the atomic step: destination flips old → complete
        // in one broker write-lock critical section.
        self.srb.rename(&h.principal, &h.staging, &h.path)?;
        let total = h.next_off;
        inner.puts.remove(handle);
        self.release_slot();
        Self::remember_completed(&mut inner, handle, total, true);
        Ok(total)
    }

    /// Abandon a transfer: reclaims the staging object (puts) or just the
    /// handle (gets). Idempotent — aborting an unknown or already-settled
    /// handle succeeds, so a retried abort never faults.
    pub fn abort(&self, principal: &str, handle: &str) -> TransferResult<()> {
        let now = Instant::now();
        let Some(stripe) = self.stripe_of_handle(handle) else {
            return Ok(());
        };
        let mut inner = stripe.lock();
        self.expire_idle(&mut inner, now);
        if let Some(h) = inner.gets.get(handle) {
            if h.principal != principal {
                return Err(TransferError::NotYourHandle(handle.to_owned()));
            }
            inner.gets.remove(handle);
            self.release_slot();
            return Ok(());
        }
        let Some(h) = inner.puts.get(handle) else {
            return Ok(());
        };
        if h.principal != principal {
            return Err(TransferError::NotYourHandle(handle.to_owned()));
        }
        let staging = h.staging.clone();
        let owner = h.principal.clone();
        let freed = h.pending_bytes;
        inner.puts.remove(handle);
        self.release_slot();
        if freed > 0 {
            self.buffered_bytes.fetch_sub(freed, Ordering::AcqRel);
        }
        Self::remember_completed(&mut inner, handle, 0, false);
        // Best effort: staging may already be gone if expiry raced.
        let _ = self.srb.rm(&owner, &staging);
        Ok(())
    }

    fn remember_completed(inner: &mut StripeInner, handle: &str, total: usize, committed: bool) {
        if inner.completed.len() >= COMPLETED_MEMORY {
            inner.completed.pop_front();
        }
        inner
            .completed
            .push_back((handle.to_owned(), total, committed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (Arc<Srb>, TransferTable) {
        let srb = Arc::new(Srb::new());
        srb.mkdir("/data").unwrap();
        srb.put("u", "/data/src", b"0123456789abcdef").unwrap();
        let t = TransferTable::new(Arc::clone(&srb));
        (srb, t)
    }

    #[test]
    fn get_handle_ranged_reads_and_eof() {
        let (_, t) = table();
        let (h, size) = t.open_get("u", "/data/src").unwrap();
        assert_eq!(size, 16);
        assert_eq!(t.get_chunk("u", &h, 0, 8).unwrap(), b"01234567");
        assert_eq!(t.get_chunk("u", &h, 8, 8).unwrap(), b"89abcdef");
        // Exactly-at-EOF read is a clean empty chunk.
        assert_eq!(t.get_chunk("u", &h, 16, 8).unwrap(), b"");
        // Retry of an earlier chunk is a pure re-read.
        assert_eq!(t.get_chunk("u", &h, 0, 8).unwrap(), b"01234567");
    }

    #[test]
    fn put_in_order_commit_promotes_atomically() {
        let (srb, t) = table();
        let h = t.open_put("u", "/data/out").unwrap();
        assert_eq!(t.put_chunk("u", &h, 0, b"hello ").unwrap(), 6);
        assert_eq!(t.put_chunk("u", &h, 6, b"world").unwrap(), 11);
        // Destination does not exist until commit.
        assert!(srb.get("u", "/data/out").is_err());
        assert_eq!(t.commit("u", &h).unwrap(), 11);
        assert_eq!(srb.get("u", "/data/out").unwrap(), b"hello world");
        // Staging is gone.
        let names: Vec<String> = srb
            .ls("u", "/data")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert!(names.iter().all(|n| !n.starts_with(".part-")), "{names:?}");
    }

    #[test]
    fn put_zero_length_round_trips() {
        let (srb, t) = table();
        let h = t.open_put("u", "/data/empty").unwrap();
        assert_eq!(t.commit("u", &h).unwrap(), 0);
        assert_eq!(srb.get("u", "/data/empty").unwrap(), b"");
    }

    #[test]
    fn duplicate_put_chunk_is_acknowledged_not_reapplied() {
        let (srb, t) = table();
        let h = t.open_put("u", "/data/out").unwrap();
        assert_eq!(t.put_chunk("u", &h, 0, b"abc").unwrap(), 3);
        // Retry of the same chunk (lost response).
        assert_eq!(t.put_chunk("u", &h, 0, b"abc").unwrap(), 3);
        assert_eq!(t.put_chunk("u", &h, 3, b"def").unwrap(), 6);
        t.commit("u", &h).unwrap();
        assert_eq!(srb.get("u", "/data/out").unwrap(), b"abcdef");
    }

    #[test]
    fn out_of_order_chunks_park_then_drain() {
        let (srb, t) = table();
        let h = t.open_put("u", "/data/out").unwrap();
        // Window of 3 racing across connections: chunk 2 and 1 land first.
        assert_eq!(t.put_chunk("u", &h, 6, b"ghi").unwrap(), 0);
        assert_eq!(t.put_chunk("u", &h, 3, b"def").unwrap(), 0);
        assert_eq!(t.buffered_bytes(), 6);
        // Chunk 0 arrives, everything drains.
        assert_eq!(t.put_chunk("u", &h, 0, b"abc").unwrap(), 9);
        assert_eq!(t.buffered_bytes(), 0);
        assert!(t.buffered_high_water() >= 6);
        t.commit("u", &h).unwrap();
        assert_eq!(srb.get("u", "/data/out").unwrap(), b"abcdefghi");
    }

    #[test]
    fn commit_with_gap_is_incomplete() {
        let (_, t) = table();
        let h = t.open_put("u", "/data/out").unwrap();
        t.put_chunk("u", &h, 0, b"abc").unwrap();
        t.put_chunk("u", &h, 6, b"ghi").unwrap();
        assert!(matches!(
            t.commit("u", &h),
            Err(TransferError::Incomplete { missing_at: 3, .. })
        ));
    }

    #[test]
    fn retried_commit_and_abort_are_idempotent() {
        let (srb, t) = table();
        let h = t.open_put("u", "/data/out").unwrap();
        t.put_chunk("u", &h, 0, b"xyz").unwrap();
        assert_eq!(t.commit("u", &h).unwrap(), 3);
        // Retry (response was lost): same answer, no fault.
        assert_eq!(t.commit("u", &h).unwrap(), 3);
        assert_eq!(srb.get("u", "/data/out").unwrap(), b"xyz");
        // Abort of unknown/settled handles succeeds.
        t.abort("u", &h).unwrap();
        t.abort("u", "t-9999").unwrap();
    }

    #[test]
    fn abort_reclaims_staging() {
        let (srb, t) = table();
        let h = t.open_put("u", "/data/out").unwrap();
        t.put_chunk("u", &h, 0, b"partial").unwrap();
        t.abort("u", &h).unwrap();
        assert!(srb.get("u", "/data/out").is_err());
        let names: Vec<String> = srb
            .ls("u", "/data")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert!(names.iter().all(|n| !n.starts_with(".part-")), "{names:?}");
    }

    #[test]
    fn handle_cap_is_busy() {
        let (srb, _) = table();
        let t = TransferTable::with_caps(srb, 2, DEFAULT_MAX_BUFFERED_BYTES);
        t.open_get("u", "/data/src").unwrap();
        t.open_get("u", "/data/src").unwrap();
        let err = t.open_get("u", "/data/src").unwrap_err();
        assert!(matches!(err, TransferError::HandleLimit(2)));
        assert_eq!(
            err.to_fault().kind(),
            Some(portalws_soap::PortalErrorKind::Busy)
        );
    }

    #[test]
    fn handle_cap_reclaims_idle_slots_before_faulting() {
        let (srb, _) = table();
        let t = TransferTable::with_caps(srb, 2, DEFAULT_MAX_BUFFERED_BYTES);
        t.open_get("u", "/data/src").unwrap();
        t.open_get("u", "/data/src").unwrap();
        // Both slots are held by now-idle handles: hitting the cap sweeps
        // every stripe, so the open succeeds instead of faulting Busy.
        t.set_idle_ttl(Duration::ZERO);
        t.open_get("u", "/data/src").unwrap();
    }

    #[test]
    fn buffer_budget_is_busy() {
        let (srb, _) = table();
        let t = TransferTable::with_caps(srb, DEFAULT_MAX_HANDLES, 4);
        let h = t.open_put("u", "/data/out").unwrap();
        // Out-of-order chunk larger than the budget cannot park.
        let err = t.put_chunk("u", &h, 100, b"12345").unwrap_err();
        assert!(matches!(err, TransferError::BufferLimit(4)));
        assert_eq!(
            err.to_fault().kind(),
            Some(portalws_soap::PortalErrorKind::Busy)
        );
    }

    #[test]
    fn idle_handles_expire_and_reclaim_staging() {
        let (srb, t) = table();
        let h = t.open_put("u", "/data/out").unwrap();
        t.put_chunk("u", &h, 0, b"data").unwrap();
        t.set_idle_ttl(Duration::ZERO);
        // Any operation sweeps; the stale handle and its staging go away.
        let _ = t.open_handles();
        let err = {
            t.set_idle_ttl(Duration::ZERO);
            // Trigger a sweep via another op.
            t.put_chunk("u", &h, 4, b"more").unwrap_err()
        };
        assert!(matches!(err, TransferError::NoSuchHandle(_)));
        let names: Vec<String> = srb
            .ls("u", "/data")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert!(names.iter().all(|n| !n.starts_with(".part-")), "{names:?}");
    }

    #[test]
    fn handles_spread_across_stripes_with_strict_global_accounting() {
        let (srb, t) = table();
        srb.put("u", "/data/big", &[7u8; 64]).unwrap();
        // Mint more handles than stripes: ids are sequential so they land
        // round-robin on every stripe, yet the global count stays exact.
        let mut handles = Vec::new();
        for _ in 0..(TRANSFER_STRIPES * 2) {
            handles.push(t.open_get("u", "/data/big").unwrap().0);
        }
        assert_eq!(t.open_handles(), TRANSFER_STRIPES * 2);
        for h in &handles {
            assert_eq!(t.get_chunk("u", h, 0, 64).unwrap().len(), 64);
            t.abort("u", h).unwrap();
        }
        assert_eq!(t.open_handles(), 0);
        assert_eq!(t.buffered_bytes(), 0);
    }

    #[test]
    fn expiry_releases_parked_bytes_to_the_global_budget() {
        let (srb, _) = table();
        let t = TransferTable::with_caps(srb, DEFAULT_MAX_HANDLES, 8);
        let h = t.open_put("u", "/data/out").unwrap();
        // Park 6 of the 8-byte budget out of order.
        assert_eq!(t.put_chunk("u", &h, 10, b"xxxxxx").unwrap(), 0);
        assert_eq!(t.buffered_bytes(), 6);
        // Expire the handle: its parked bytes must come back to the budget
        // or every future transfer would inherit a phantom reservation.
        t.set_idle_ttl(Duration::ZERO);
        assert_eq!(t.open_handles(), 0);
        assert_eq!(t.buffered_bytes(), 0);
        t.set_idle_ttl(DEFAULT_IDLE_TTL);
        let h2 = t.open_put("u", "/data/out2").unwrap();
        assert_eq!(t.put_chunk("u", &h2, 10, b"yyyyyy").unwrap(), 0);
        assert_eq!(t.buffered_bytes(), 6);
    }

    #[test]
    fn foreign_principal_rejected() {
        let (_, t) = table();
        let (h, _) = t.open_get("u", "/data/src").unwrap();
        assert!(matches!(
            t.get_chunk("mallory", &h, 0, 4),
            Err(TransferError::NotYourHandle(_))
        ));
        let hp = t.open_put("u", "/data/out").unwrap();
        assert!(matches!(
            t.put_chunk("mallory", &hp, 0, b"x"),
            Err(TransferError::NotYourHandle(_))
        ));
        assert!(matches!(
            t.commit("mallory", &hp),
            Err(TransferError::NotYourHandle(_))
        ));
        assert!(matches!(
            t.abort("mallory", &hp),
            Err(TransferError::NotYourHandle(_))
        ));
    }

    #[test]
    fn oversized_chunk_rejected() {
        let (_, t) = table();
        let (h, _) = t.open_get("u", "/data/src").unwrap();
        assert!(matches!(
            t.get_chunk("u", &h, 0, MAX_CHUNK_BYTES + 1),
            Err(TransferError::ChunkTooLarge(_))
        ));
    }
}
