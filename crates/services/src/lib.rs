//! The core portal Web services of §3.
//!
//! "The first step in our investigation is to identify a common set of
//! services that are used by our existing portal projects. We chose to
//! investigate the following: job submission, data management services
//! with the Storage Resource Broker, user context management, and batch
//! script generation."
//!
//! * [`job`] — the Globusrun-style job-submission service: plain-string
//!   submission and the XML multi-job form ("the DTD … was designed to
//!   allow multiple jobs to be included in a single XML string"), executed
//!   sequentially as the paper describes, plus a parallel ablation.
//! * [`batch`] — the batch-job service that *calls the job-submission
//!   service over SOAP*: "a Web Service using another Web Service to
//!   perform a task".
//! * [`data`] — the SRB data-management service: `ls`, `cat`, `get`,
//!   `put` (string-streamed, the mechanism that "does not scale well"),
//!   the batched `xml_call`, and a base64 ablation.
//! * [`context`] — the Gateway context manager, in both shapes the paper
//!   discusses: the 60-plus-method monolith and the decomposed refactoring.
//! * [`factory`] — the §6 application factory: binds registered
//!   application descriptors to grid resources and drives their lifecycle.
//! * [`scriptgen`] — batch script generation behind one agreed WSDL
//!   interface with two independent implementations (IU supporting
//!   PBS/GRD, SDSC supporting LSF/NQS) and two independently written
//!   clients, reproducing the §3.4 interoperability exercise.

pub mod batch;
pub mod context;
pub mod data;
pub mod factory;
pub mod job;
pub mod scriptgen;
pub mod shard;
pub mod transfer;

pub use batch::BatchJobService;
pub use context::{ContextManagerMonolith, ContextStore, DecomposedContextServices};
pub use data::DataManagementService;
pub use factory::AppFactoryService;
pub use job::JobSubmissionService;
pub use scriptgen::{IuScriptGen, SdscScriptGen};
pub use shard::{ShardMap, ShardedDataService};
pub use transfer::{TransferError, TransferTable};

use portalws_auth::Assertion;
use portalws_soap::CallContext;

/// The principal a call is executing as: the subject of the (already
/// guard-verified) SAML assertion in the SOAP header, or `"anonymous"`.
///
/// Services trust the header because the SOAP server's guard performed
/// the Figure 2 atomic step before dispatch reached them.
pub fn caller_principal(ctx: &CallContext) -> String {
    ctx.header("Assertion")
        .and_then(|el| Assertion::from_element(el).ok())
        .map(|a| a.subject)
        .unwrap_or_else(|| "anonymous".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_xml::Element;

    #[test]
    fn principal_from_assertion_header() {
        let mut a = Assertion::new("a1", "ctx-1", "alice@GCE.ORG", "kerberos", "t", 1000);
        a.sign("k");
        let ctx = CallContext {
            headers: vec![a.to_element()],
            service: "X".into(),
            method: "m".into(),
        };
        assert_eq!(caller_principal(&ctx), "alice@GCE.ORG");
    }

    #[test]
    fn anonymous_without_header() {
        let ctx = CallContext {
            headers: vec![],
            service: "X".into(),
            method: "m".into(),
        };
        assert_eq!(caller_principal(&ctx), "anonymous");
        let ctx = CallContext {
            headers: vec![Element::new("Other")],
            service: "X".into(),
            method: "m".into(),
        };
        assert_eq!(caller_principal(&ctx), "anonymous");
    }
}
