//! The application factory (§6, after Gannon et al.'s "Grid Web Services
//! and Application Factories").
//!
//! "These services may be bound to specific resources through a factory
//! creation process, such as discussed in Ref. \[37\]." The factory closes
//! the Application-Web-Services loop as a service: application developers
//! register descriptors; users create *instances* bound to a concrete
//! host/queue; the factory drives each instance through the §5.1
//! lifecycle (prepared → running → archived) against the grid, recording
//! completed runs into the context manager — the session-archive backbone
//! — under `user/appName/instance-N`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use portalws_appws::descriptor::{descriptor_schema, ApplicationDescriptor};
use portalws_appws::instance::{ApplicationInstance, LifecycleState};
use portalws_gridsim::grid::Grid;
use portalws_gridsim::job::JobState;
use portalws_gridsim::sched::{render_script, JobRequirements, SchedulerKind};
use portalws_soap::{
    CallContext, Fault, MethodDesc, PortalErrorKind, SoapResult, SoapService, SoapType, SoapValue,
};

use crate::caller_principal;
use crate::context::ContextStore;

/// The factory service.
pub struct AppFactoryService {
    grid: Arc<Grid>,
    /// Completed runs are archived here when present.
    contexts: Option<Arc<ContextStore>>,
    descriptors: RwLock<HashMap<String, ApplicationDescriptor>>,
    instances: RwLock<HashMap<u64, ApplicationInstance>>,
    next_instance: AtomicU64,
}

impl AppFactoryService {
    /// A factory over `grid`, optionally archiving into `contexts`.
    pub fn new(grid: Arc<Grid>, contexts: Option<Arc<ContextStore>>) -> AppFactoryService {
        AppFactoryService {
            grid,
            contexts,
            descriptors: RwLock::new(HashMap::new()),
            instances: RwLock::new(HashMap::new()),
            next_instance: AtomicU64::new(0),
        }
    }

    /// Registered application count.
    pub fn application_count(&self) -> usize {
        self.descriptors.read().len()
    }

    /// Map a descriptor's host DNS name to the grid's short host name.
    fn grid_host_for(&self, dns: &str) -> Option<String> {
        self.grid
            .hosts()
            .into_iter()
            .find(|h| h.dns == dns || h.name == dns)
            .map(|h| h.name)
    }

    /// Bring an instance's state up to date with its grid job; archive on
    /// completion (both into the instance record and the context store).
    fn sync_instance(&self, id: u64) -> SoapResult<ApplicationInstance> {
        let mut instances = self.instances.write();
        let instance = instances
            .get_mut(&id)
            .ok_or_else(|| Fault::portal(PortalErrorKind::NotFound, format!("instance {id}")))?;
        if instance.state == LifecycleState::Running {
            if let Some(job_id) = instance.job_id {
                let job = self
                    .grid
                    .poll(job_id)
                    .map_err(|e| Fault::portal(PortalErrorKind::Internal, e.to_string()))?;
                if job.state.is_terminal() {
                    let rc = match job.state {
                        JobState::Cancelled => -1,
                        _ => job.exit_code.unwrap_or(-1),
                    };
                    instance
                        .archive(rc)
                        .map_err(|e| Fault::portal(PortalErrorKind::Internal, e.to_string()))?;
                    if let Some(store) = &self.contexts {
                        let user = instance.user.clone();
                        let app = instance.app_name.clone();
                        let session = format!("instance-{id}");
                        // Best-effort archival: existing contexts are fine.
                        let _ = store.add(&[&user]);
                        let _ = store.add(&[&user, &app]);
                        let _ = store.add(&[&user, &app, &session]);
                        let _ = store.set_property(
                            &[&user, &app, &session],
                            "instance",
                            &instance.to_element().to_xml(),
                        );
                    }
                }
            }
        }
        Ok(instance.clone())
    }
}

fn arg_str<'a>(args: &'a [(String, SoapValue)], i: usize, name: &str) -> SoapResult<&'a str> {
    args.get(i)
        .and_then(|(_, v)| v.as_str())
        .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, format!("missing {name}")))
}

fn arg_int(args: &[(String, SoapValue)], i: usize, name: &str) -> SoapResult<i64> {
    args.get(i)
        .and_then(|(_, v)| v.as_i64())
        .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, format!("missing {name}")))
}

impl SoapService for AppFactoryService {
    fn name(&self) -> &str {
        "AppFactory"
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        let principal = caller_principal(ctx);
        match method {
            "registerApplication" => {
                let doc = args.first().and_then(|(_, v)| v.as_xml()).ok_or_else(|| {
                    Fault::portal(PortalErrorKind::BadArguments, "missing descriptor")
                })?;
                // Schema validation first — the portal-independent contract.
                descriptor_schema()
                    .validate(doc)
                    .map_err(|e| Fault::portal(PortalErrorKind::BadArguments, e.to_string()))?;
                let descriptor = ApplicationDescriptor::from_element(doc)
                    .map_err(|e| Fault::portal(PortalErrorKind::BadArguments, e.to_string()))?;
                let name = descriptor.name.clone();
                self.descriptors.write().insert(name.clone(), descriptor);
                Ok(SoapValue::String(name))
            }
            "listApplications" => {
                let mut names: Vec<String> = self.descriptors.read().keys().cloned().collect();
                names.sort();
                Ok(SoapValue::Array(
                    names.into_iter().map(SoapValue::String).collect(),
                ))
            }
            "describeApplication" => {
                let name = arg_str(args, 0, "name")?;
                let descriptors = self.descriptors.read();
                let d = descriptors.get(name).ok_or_else(|| {
                    Fault::portal(PortalErrorKind::NotFound, format!("application {name:?}"))
                })?;
                Ok(SoapValue::Xml(d.to_element()))
            }
            "createInstance" => {
                let name = arg_str(args, 0, "application")?;
                let host = arg_str(args, 1, "hostDns")?;
                let queue = arg_str(args, 2, "queue")?;
                let cpus = arg_int(args, 3, "cpus")? as u32;
                let wall = arg_int(args, 4, "wallMinutes")? as u32;
                let descriptors = self.descriptors.read();
                let d = descriptors.get(name).ok_or_else(|| {
                    Fault::portal(PortalErrorKind::NotFound, format!("application {name:?}"))
                })?;
                let instance = ApplicationInstance::prepare(d, principal, host, queue, cpus, wall)
                    .map_err(|e| Fault::portal(PortalErrorKind::BadArguments, e.to_string()))?;
                drop(descriptors);
                let id = self.next_instance.fetch_add(1, Ordering::Relaxed) + 1;
                self.instances.write().insert(id, instance);
                Ok(SoapValue::Int(id as i64))
            }
            "submitInstance" => {
                let id = arg_int(args, 0, "instanceId")? as u64;
                let command = arg_str(args, 1, "command")?;
                let mut instances = self.instances.write();
                let instance = instances.get_mut(&id).ok_or_else(|| {
                    Fault::portal(PortalErrorKind::NotFound, format!("instance {id}"))
                })?;
                if instance.state != LifecycleState::Prepared {
                    return Err(Fault::portal(
                        PortalErrorKind::BadArguments,
                        format!("instance {id} is {}, not prepared", instance.state),
                    ));
                }
                let scheduler = SchedulerKind::from_name(&instance.scheduler).ok_or_else(|| {
                    Fault::portal(PortalErrorKind::Internal, "unknown scheduler binding")
                })?;
                let grid_host = self.grid_host_for(&instance.host).ok_or_else(|| {
                    Fault::portal(
                        PortalErrorKind::HostUnavailable,
                        format!("host {:?} not on the grid", instance.host),
                    )
                })?;
                let script = render_script(
                    scheduler,
                    &JobRequirements {
                        name: format!("{}-{id}", instance.app_name),
                        queue: instance.queue.clone(),
                        cpus: instance.cpus,
                        wall_minutes: instance.wall_minutes,
                        command: command.to_owned(),
                    },
                );
                let job_id = self
                    .grid
                    .submit(&instance.user, &grid_host, scheduler, &script)
                    .map_err(|e| Fault::portal(PortalErrorKind::JobRejected, e.to_string()))?;
                instance
                    .mark_running(job_id)
                    .map_err(|e| Fault::portal(PortalErrorKind::Internal, e.to_string()))?;
                Ok(SoapValue::Int(job_id as i64))
            }
            "instanceStatus" => {
                let id = arg_int(args, 0, "instanceId")? as u64;
                let instance = self.sync_instance(id)?;
                Ok(SoapValue::Xml(instance.to_element()))
            }
            "listInstances" => {
                let mut rows: Vec<(u64, ApplicationInstance)> = self
                    .instances
                    .read()
                    .iter()
                    .filter(|(_, inst)| inst.user == principal)
                    .map(|(id, inst)| (*id, inst.clone()))
                    .collect();
                rows.sort_by_key(|(id, _)| *id);
                Ok(SoapValue::Array(
                    rows.into_iter()
                        .map(|(id, inst)| {
                            SoapValue::Struct(vec![
                                ("instanceId".into(), SoapValue::Int(id as i64)),
                                ("application".into(), SoapValue::str(inst.app_name)),
                                ("state".into(), SoapValue::str(inst.state.as_str())),
                                ("host".into(), SoapValue::str(inst.host)),
                            ])
                        })
                        .collect(),
                ))
            }
            other => Err(Fault::client(format!("AppFactory has no method {other:?}"))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        vec![
            MethodDesc::new(
                "registerApplication",
                vec![("descriptor", SoapType::Xml)],
                SoapType::String,
                "Register a validated application descriptor; returns its name",
            ),
            MethodDesc::new(
                "listApplications",
                vec![],
                SoapType::Array,
                "Names of registered applications",
            ),
            MethodDesc::new(
                "describeApplication",
                vec![("name", SoapType::String)],
                SoapType::Xml,
                "The abstract descriptor for an application",
            ),
            MethodDesc::new(
                "createInstance",
                vec![
                    ("application", SoapType::String),
                    ("hostDns", SoapType::String),
                    ("queue", SoapType::String),
                    ("cpus", SoapType::Int),
                    ("wallMinutes", SoapType::Int),
                ],
                SoapType::Int,
                "Bind an application to a resource; returns the instance id",
            ),
            MethodDesc::new(
                "submitInstance",
                vec![("instanceId", SoapType::Int), ("command", SoapType::String)],
                SoapType::Int,
                "Run a prepared instance on the grid; returns the job id",
            ),
            MethodDesc::new(
                "instanceStatus",
                vec![("instanceId", SoapType::Int)],
                SoapType::Xml,
                "Current instance record (archives completed runs)",
            ),
            MethodDesc::new(
                "listInstances",
                vec![],
                SoapType::Array,
                "The caller's instances",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_appws::descriptor::gaussian_example;
    use portalws_soap::{SoapClient, SoapServer};
    use portalws_wire::{Handler, InMemoryTransport};

    fn setup() -> (Arc<Grid>, Arc<ContextStore>, SoapClient) {
        let grid = Grid::testbed();
        let contexts = ContextStore::new();
        let server = SoapServer::new();
        server.mount(Arc::new(AppFactoryService::new(
            Arc::clone(&grid),
            Some(Arc::clone(&contexts)),
        )));
        let handler: Arc<dyn Handler> = Arc::new(server);
        (
            grid,
            contexts,
            SoapClient::new(Arc::new(InMemoryTransport::new(handler)), "AppFactory"),
        )
    }

    #[test]
    fn register_list_describe() {
        let (_, _, c) = setup();
        let name = c
            .call(
                "registerApplication",
                &[SoapValue::Xml(gaussian_example().to_element())],
            )
            .unwrap();
        assert_eq!(name.as_str(), Some("Gaussian"));
        let apps = c.call("listApplications", &[]).unwrap();
        assert_eq!(apps.as_array().unwrap().len(), 1);
        let doc = c
            .call("describeApplication", &[SoapValue::str("Gaussian")])
            .unwrap();
        let d = ApplicationDescriptor::from_element(doc.as_xml().unwrap()).unwrap();
        assert_eq!(d.hosts.len(), 2);
    }

    #[test]
    fn invalid_descriptor_rejected_by_schema() {
        let (_, _, c) = setup();
        let mut broken = gaussian_example();
        broken.hosts.clear(); // host is minOccurs=1
        let err = c
            .call(
                "registerApplication",
                &[SoapValue::Xml(broken.to_element())],
            )
            .unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::BadArguments)
        );
    }

    #[test]
    fn full_lifecycle_through_the_factory() {
        let (grid, contexts, c) = setup();
        c.call(
            "registerApplication",
            &[SoapValue::Xml(gaussian_example().to_element())],
        )
        .unwrap();
        let id = c
            .call(
                "createInstance",
                &[
                    SoapValue::str("Gaussian"),
                    SoapValue::str("tg-login.sdsc.edu"),
                    SoapValue::str("batch"),
                    SoapValue::Int(4),
                    SoapValue::Int(30),
                ],
            )
            .unwrap();
        let job = c
            .call("submitInstance", &[id.clone(), SoapValue::str("hostname")])
            .unwrap();
        assert!(job.as_i64().unwrap() > 0);

        // Prepared → running.
        let status = c.call("instanceStatus", std::slice::from_ref(&id)).unwrap();
        let inst = ApplicationInstance::from_element(status.as_xml().unwrap()).unwrap();
        assert_eq!(inst.state, LifecycleState::Running);

        // Drive the grid; the next status sync archives.
        grid.tick(0);
        grid.tick(3000);
        let status = c.call("instanceStatus", std::slice::from_ref(&id)).unwrap();
        let inst = ApplicationInstance::from_element(status.as_xml().unwrap()).unwrap();
        assert_eq!(inst.state, LifecycleState::Archived);
        assert_eq!(inst.exit_code, Some(0));

        // The archive landed in the context store under user/app/instance.
        let stored = contexts
            .get_property(&["anonymous", "Gaussian", "instance-1"], "instance")
            .unwrap();
        assert!(stored.contains("archived"));

        // listInstances reflects the terminal state.
        let rows = c.call("listInstances", &[]).unwrap();
        let rows = rows.as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].field("state").unwrap().as_str(), Some("archived"));
    }

    #[test]
    fn binding_validation_enforced() {
        let (_, _, c) = setup();
        c.call(
            "registerApplication",
            &[SoapValue::Xml(gaussian_example().to_element())],
        )
        .unwrap();
        // Unknown host binding.
        assert!(c
            .call(
                "createInstance",
                &[
                    SoapValue::str("Gaussian"),
                    SoapValue::str("nowhere.example.org"),
                    SoapValue::str("batch"),
                    SoapValue::Int(1),
                    SoapValue::Int(10),
                ],
            )
            .is_err());
        // CPU request exceeding the queue binding (max 16 on tg-login).
        assert!(c
            .call(
                "createInstance",
                &[
                    SoapValue::str("Gaussian"),
                    SoapValue::str("tg-login.sdsc.edu"),
                    SoapValue::str("batch"),
                    SoapValue::Int(17),
                    SoapValue::Int(10),
                ],
            )
            .is_err());
        // Unknown application.
        assert!(c
            .call(
                "createInstance",
                &[
                    SoapValue::str("Ghost"),
                    SoapValue::str("tg-login.sdsc.edu"),
                    SoapValue::str("batch"),
                    SoapValue::Int(1),
                    SoapValue::Int(10),
                ],
            )
            .is_err());
    }

    #[test]
    fn double_submit_rejected() {
        let (_, _, c) = setup();
        c.call(
            "registerApplication",
            &[SoapValue::Xml(gaussian_example().to_element())],
        )
        .unwrap();
        let id = c
            .call(
                "createInstance",
                &[
                    SoapValue::str("Gaussian"),
                    SoapValue::str("tg-login.sdsc.edu"),
                    SoapValue::str("batch"),
                    SoapValue::Int(1),
                    SoapValue::Int(10),
                ],
            )
            .unwrap();
        c.call("submitInstance", &[id.clone(), SoapValue::str("date")])
            .unwrap();
        assert!(c
            .call("submitInstance", &[id, SoapValue::str("date")])
            .is_err());
    }

    #[test]
    fn cancelled_job_archives_with_failure() {
        let (grid, _, c) = setup();
        c.call(
            "registerApplication",
            &[SoapValue::Xml(gaussian_example().to_element())],
        )
        .unwrap();
        let id = c
            .call(
                "createInstance",
                &[
                    SoapValue::str("Gaussian"),
                    SoapValue::str("tg-login.sdsc.edu"),
                    SoapValue::str("batch"),
                    SoapValue::Int(1),
                    SoapValue::Int(10),
                ],
            )
            .unwrap();
        let job = c
            .call(
                "submitInstance",
                &[id.clone(), SoapValue::str("sleep 1000")],
            )
            .unwrap();
        grid.cancel(job.as_i64().unwrap() as u64).unwrap();
        let status = c.call("instanceStatus", &[id]).unwrap();
        let inst = ApplicationInstance::from_element(status.as_xml().unwrap()).unwrap();
        assert_eq!(inst.state, LifecycleState::Archived);
        assert_eq!(inst.exit_code, Some(-1));
    }

    #[test]
    fn instances_scoped_per_user() {
        use portalws_auth::Assertion;
        let (_, _, c) = setup();
        c.call(
            "registerApplication",
            &[SoapValue::Xml(gaussian_example().to_element())],
        )
        .unwrap();
        // Create one instance as alice (via a signed-looking header; no
        // guard here, the service just reads the subject).
        let mut a = Assertion::new("a1", "ctx", "alice@GCE.ORG", "kerberos", "t", u64::MAX);
        a.sign("k");
        c.set_header_supplier(Arc::new(move || vec![a.to_element()]));
        c.call(
            "createInstance",
            &[
                SoapValue::str("Gaussian"),
                SoapValue::str("tg-login.sdsc.edu"),
                SoapValue::str("batch"),
                SoapValue::Int(1),
                SoapValue::Int(10),
            ],
        )
        .unwrap();
        let mine = c.call("listInstances", &[]).unwrap();
        assert_eq!(mine.as_array().unwrap().len(), 1);
        // Bob sees nothing.
        let mut b = Assertion::new("b1", "ctx", "bob@GCE.ORG", "kerberos", "t", u64::MAX);
        b.sign("k");
        c.set_header_supplier(Arc::new(move || vec![b.to_element()]));
        let theirs = c.call("listInstances", &[]).unwrap();
        assert_eq!(theirs.as_array().unwrap().len(), 0);
    }
}
