//! Job-submission Web service (§3.1) — the Globusrun stand-in.
//!
//! "The Web Service exposes two different methods for job execution, one
//! that accepts the parameters of a job as a set of plain strings and
//! returns the results as a string, and one that accepts an XML
//! definition of a job, and returns the results as an XML string. The DTD
//! for the latter mechanism was designed to allow multiple jobs to be
//! included in a single XML string… The Web Service executes the jobs
//! sequentially."
//!
//! [`JobSubmissionService`] implements both forms against the simulated
//! grid, the asynchronous submit/status/output/cancel set the portal UI
//! needs, and — as the E9 ablation — a parallel variant of the multi-job
//! form that the 2002 implementation lacked.

use std::sync::Arc;

use portalws_gridsim::grid::Grid;
use portalws_gridsim::job::Job;
use portalws_gridsim::sched::SchedulerKind;
use portalws_gridsim::GridError;
use portalws_soap::{
    CallContext, Fault, MethodDesc, PortalErrorKind, SoapResult, SoapService, SoapType, SoapValue,
};
use portalws_xml::Element;

use crate::caller_principal;

/// SOAP facade over the grid's job submission.
pub struct JobSubmissionService {
    grid: Arc<Grid>,
    /// Upper bound on completion waiting, in one-second ticks.
    max_ticks: usize,
}

/// One job parsed from the XML multi-job request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlJobSpec {
    /// Target host.
    pub host: String,
    /// Target scheduler.
    pub scheduler: SchedulerKind,
    /// Queue name.
    pub queue: String,
    /// Job name.
    pub name: String,
    /// CPU count.
    pub cpus: u32,
    /// Walltime minutes.
    pub wall_minutes: u32,
    /// Command line.
    pub command: String,
}

impl XmlJobSpec {
    /// Parse one `<job>` element of the request DTD.
    pub fn from_element(el: &Element) -> Result<XmlJobSpec, String> {
        let text = |name: &str| -> Result<String, String> {
            el.find_text(name)
                .map(str::to_owned)
                .ok_or_else(|| format!("job missing <{name}>"))
        };
        let scheduler = SchedulerKind::from_name(&text("scheduler")?)
            .ok_or_else(|| "unknown scheduler".to_string())?;
        Ok(XmlJobSpec {
            host: text("host")?,
            scheduler,
            queue: text("queue")?,
            name: el.find_text("name").unwrap_or("job").to_owned(),
            cpus: el
                .find_text("cpus")
                .unwrap_or("1")
                .parse()
                .map_err(|_| "bad cpus".to_string())?,
            wall_minutes: el
                .find_text("wallMinutes")
                .unwrap_or("10")
                .parse()
                .map_err(|_| "bad wallMinutes".to_string())?,
            command: text("command")?,
        })
    }

    /// Render the batch script for this spec in its scheduler's dialect.
    pub fn to_script(&self) -> String {
        portalws_gridsim::sched::render_script(
            self.scheduler,
            &portalws_gridsim::sched::JobRequirements {
                name: self.name.clone(),
                queue: self.queue.clone(),
                cpus: self.cpus,
                wall_minutes: self.wall_minutes,
                command: self.command.clone(),
            },
        )
    }
}

/// Map grid errors onto the common portal error codes.
fn grid_fault(e: GridError) -> Fault {
    let kind = match &e {
        GridError::NoSuchHost(_) | GridError::NoSuchScheduler(_) => {
            PortalErrorKind::HostUnavailable
        }
        GridError::NoSuchQueue(_) => PortalErrorKind::QueueUnavailable,
        GridError::ScriptRejected(_) => PortalErrorKind::JobRejected,
        GridError::NoSuchJob(_) => PortalErrorKind::NotFound,
        GridError::NotAuthorized(_) => PortalErrorKind::AuthFailed,
    };
    Fault::portal(kind, e.to_string())
}

fn arg_str<'a>(args: &'a [(String, SoapValue)], i: usize, name: &str) -> SoapResult<&'a str> {
    args.get(i)
        .and_then(|(_, v)| v.as_str())
        .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, format!("missing {name}")))
}

fn job_to_struct(job: &Job) -> SoapValue {
    SoapValue::Struct(vec![
        ("jobId".into(), SoapValue::Int(job.id as i64)),
        ("state".into(), SoapValue::str(job.state.as_str())),
        ("host".into(), SoapValue::str(job.host.clone())),
        ("scheduler".into(), SoapValue::str(job.scheduler.clone())),
        (
            "queue".into(),
            SoapValue::str(job.requirements.queue.clone()),
        ),
        (
            "submittedAt".into(),
            SoapValue::Int(job.submitted_at as i64),
        ),
        (
            "startedAt".into(),
            job.started_at
                .map(|t| SoapValue::Int(t as i64))
                .unwrap_or(SoapValue::Null),
        ),
        (
            "endedAt".into(),
            job.ended_at
                .map(|t| SoapValue::Int(t as i64))
                .unwrap_or(SoapValue::Null),
        ),
        (
            "exitCode".into(),
            job.exit_code
                .map(|c| SoapValue::Int(c as i64))
                .unwrap_or(SoapValue::Null),
        ),
    ])
}

impl JobSubmissionService {
    /// Wrap a grid; completion waits are bounded at 24 simulated hours.
    pub fn new(grid: Arc<Grid>) -> JobSubmissionService {
        JobSubmissionService {
            grid,
            max_ticks: 24 * 3600,
        }
    }

    /// The wrapped grid.
    pub fn grid(&self) -> &Arc<Grid> {
        &self.grid
    }

    fn job_result_element(job: &Job) -> Element {
        Element::new("result")
            .with_attr("jobId", job.id.to_string())
            .with_attr("state", job.state.as_str())
            .with_attr("exitCode", job.exit_code.unwrap_or(-1).to_string())
            .with_child(Element::new("stdout").with_text(job.stdout.clone()))
    }

    fn parse_jobs_request(request: &Element) -> SoapResult<Vec<XmlJobSpec>> {
        if request.local_name() != "jobs" {
            return Err(Fault::portal(
                PortalErrorKind::BadArguments,
                "expected a <jobs> document",
            ));
        }
        request
            .find_all("job")
            .map(|j| {
                XmlJobSpec::from_element(j)
                    .map_err(|e| Fault::portal(PortalErrorKind::BadArguments, e))
            })
            .collect()
    }

    /// Run all jobs in the request *sequentially* (2002 behavior): each
    /// job is submitted only after the previous one has completed.
    fn run_xml_sequential(&self, principal: &str, specs: &[XmlJobSpec]) -> SoapResult<Element> {
        let mut results = Element::new("results").with_attr("mode", "sequential");
        for spec in specs {
            let id = self
                .grid
                .submit(principal, &spec.host, spec.scheduler, &spec.to_script())
                .map_err(grid_fault)?;
            let job = self
                .grid
                .run_job_to_completion(id, self.max_ticks)
                .map_err(grid_fault)?;
            results.push_child(Self::job_result_element(&job));
        }
        Ok(results)
    }

    /// Ablation: submit every job up front, then advance time until all
    /// complete — what the paper's sequential executor leaves on the
    /// table (E9 measures the simulated-makespan difference).
    fn run_xml_parallel(&self, principal: &str, specs: &[XmlJobSpec]) -> SoapResult<Element> {
        let ids: Vec<u64> = specs
            .iter()
            .map(|spec| {
                self.grid
                    .submit(principal, &spec.host, spec.scheduler, &spec.to_script())
                    .map_err(grid_fault)
            })
            .collect::<SoapResult<_>>()?;
        for _ in 0..self.max_ticks {
            let all_done = ids.iter().all(|&id| {
                self.grid
                    .poll(id)
                    .map(|j| j.state.is_terminal())
                    .unwrap_or(true)
            });
            if all_done {
                break;
            }
            self.grid.tick(1000);
        }
        let mut results = Element::new("results").with_attr("mode", "parallel");
        for id in ids {
            let job = self.grid.poll(id).map_err(grid_fault)?;
            results.push_child(Self::job_result_element(&job));
        }
        Ok(results)
    }
}

impl SoapService for JobSubmissionService {
    fn name(&self) -> &str {
        "JobSubmission"
    }

    fn invoke(
        &self,
        method: &str,
        args: &[(String, SoapValue)],
        ctx: &CallContext,
    ) -> SoapResult<SoapValue> {
        let principal = caller_principal(ctx);
        match method {
            // Plain-strings form: submit, wait, return output as a string.
            "run" => {
                let host = arg_str(args, 0, "host")?;
                let scheduler = SchedulerKind::from_name(arg_str(args, 1, "scheduler")?)
                    .ok_or_else(|| {
                        Fault::portal(PortalErrorKind::BadArguments, "unknown scheduler")
                    })?;
                let script = arg_str(args, 2, "script")?;
                let id = self
                    .grid
                    .submit(&principal, host, scheduler, script)
                    .map_err(grid_fault)?;
                let job = self
                    .grid
                    .run_job_to_completion(id, self.max_ticks)
                    .map_err(grid_fault)?;
                Ok(SoapValue::String(job.stdout))
            }
            // XML multi-job form, sequential per the paper.
            "runXml" => {
                let request = args.first().and_then(|(_, v)| v.as_xml()).ok_or_else(|| {
                    Fault::portal(PortalErrorKind::BadArguments, "missing jobs document")
                })?;
                let specs = Self::parse_jobs_request(request)?;
                let results = self.run_xml_sequential(&principal, &specs)?;
                Ok(SoapValue::Xml(results))
            }
            // E9 ablation.
            "runXmlParallel" => {
                let request = args.first().and_then(|(_, v)| v.as_xml()).ok_or_else(|| {
                    Fault::portal(PortalErrorKind::BadArguments, "missing jobs document")
                })?;
                let specs = Self::parse_jobs_request(request)?;
                let results = self.run_xml_parallel(&principal, &specs)?;
                Ok(SoapValue::Xml(results))
            }
            // Asynchronous set for the portal UI.
            "submit" => {
                let host = arg_str(args, 0, "host")?;
                let scheduler = SchedulerKind::from_name(arg_str(args, 1, "scheduler")?)
                    .ok_or_else(|| {
                        Fault::portal(PortalErrorKind::BadArguments, "unknown scheduler")
                    })?;
                let script = arg_str(args, 2, "script")?;
                let id = self
                    .grid
                    .submit(&principal, host, scheduler, script)
                    .map_err(grid_fault)?;
                Ok(SoapValue::Int(id as i64))
            }
            "status" => {
                let id = args
                    .first()
                    .and_then(|(_, v)| v.as_i64())
                    .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "missing jobId"))?;
                let job = self.grid.poll(id as u64).map_err(grid_fault)?;
                Ok(job_to_struct(&job))
            }
            "output" => {
                let id = args
                    .first()
                    .and_then(|(_, v)| v.as_i64())
                    .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "missing jobId"))?;
                let job = self.grid.poll(id as u64).map_err(grid_fault)?;
                Ok(SoapValue::String(job.stdout))
            }
            "cancel" => {
                let id = args
                    .first()
                    .and_then(|(_, v)| v.as_i64())
                    .ok_or_else(|| Fault::portal(PortalErrorKind::BadArguments, "missing jobId"))?;
                self.grid.cancel(id as u64).map_err(grid_fault)?;
                Ok(SoapValue::Null)
            }
            "listHosts" => {
                let hosts = self
                    .grid
                    .hosts()
                    .into_iter()
                    .map(|h| {
                        let schedulers = self
                            .grid
                            .schedulers_on(&h.name)
                            .unwrap_or_default()
                            .into_iter()
                            .map(|k| SoapValue::str(k.name()))
                            .collect();
                        SoapValue::Struct(vec![
                            ("name".into(), SoapValue::str(h.name)),
                            ("dns".into(), SoapValue::str(h.dns)),
                            ("cpus".into(), SoapValue::Int(h.cpus as i64)),
                            ("schedulers".into(), SoapValue::Array(schedulers)),
                        ])
                    })
                    .collect();
                Ok(SoapValue::Array(hosts))
            }
            other => Err(Fault::client(format!(
                "JobSubmission has no method {other:?}"
            ))),
        }
    }

    fn methods(&self) -> Vec<MethodDesc> {
        vec![
            MethodDesc::new(
                "run",
                vec![
                    ("host", SoapType::String),
                    ("scheduler", SoapType::String),
                    ("script", SoapType::String),
                ],
                SoapType::String,
                "Submit a script, wait for completion, return the output (plain-strings form)",
            ),
            MethodDesc::new(
                "runXml",
                vec![("jobs", SoapType::Xml)],
                SoapType::Xml,
                "Run the jobs in an XML request sequentially; results as XML",
            ),
            MethodDesc::new(
                "runXmlParallel",
                vec![("jobs", SoapType::Xml)],
                SoapType::Xml,
                "Run the jobs in an XML request concurrently (ablation)",
            ),
            MethodDesc::new(
                "submit",
                vec![
                    ("host", SoapType::String),
                    ("scheduler", SoapType::String),
                    ("script", SoapType::String),
                ],
                SoapType::Int,
                "Submit without waiting; returns the job id",
            ),
            MethodDesc::new(
                "status",
                vec![("jobId", SoapType::Int)],
                SoapType::Struct,
                "Job status snapshot",
            ),
            MethodDesc::new(
                "output",
                vec![("jobId", SoapType::Int)],
                SoapType::String,
                "Captured stdout of a finished job",
            ),
            MethodDesc::new(
                "cancel",
                vec![("jobId", SoapType::Int)],
                SoapType::Void,
                "Cancel a queued or running job",
            ),
            MethodDesc::new(
                "listHosts",
                vec![],
                SoapType::Array,
                "Hosts on the grid with their schedulers",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portalws_gridsim::sched::render_script;
    use portalws_gridsim::sched::JobRequirements;
    use portalws_soap::{SoapClient, SoapServer};
    use portalws_wire::{Handler, InMemoryTransport};

    fn client() -> (Arc<Grid>, SoapClient) {
        let grid = Grid::testbed();
        let server = SoapServer::new();
        server.mount(Arc::new(JobSubmissionService::new(Arc::clone(&grid))));
        let handler: Arc<dyn Handler> = Arc::new(server);
        (
            grid,
            SoapClient::new(Arc::new(InMemoryTransport::new(handler)), "JobSubmission"),
        )
    }

    fn pbs_script(command: &str) -> String {
        render_script(
            SchedulerKind::Pbs,
            &JobRequirements {
                name: "t".into(),
                queue: "batch".into(),
                cpus: 2,
                wall_minutes: 10,
                command: command.into(),
            },
        )
    }

    fn jobs_xml(commands: &[&str]) -> Element {
        let mut jobs = Element::new("jobs");
        for (i, cmd) in commands.iter().enumerate() {
            jobs.push_child(
                Element::new("job")
                    .with_text_child("host", "tg-login")
                    .with_text_child("scheduler", "PBS")
                    .with_text_child("queue", "batch")
                    .with_text_child("name", format!("j{i}"))
                    .with_text_child("cpus", "2")
                    .with_text_child("wallMinutes", "10")
                    .with_text_child("command", *cmd),
            );
        }
        jobs
    }

    #[test]
    fn run_returns_output_string() {
        let (_, c) = client();
        let out = c
            .call(
                "run",
                &[
                    SoapValue::str("tg-login"),
                    SoapValue::str("PBS"),
                    SoapValue::str(pbs_script("hostname")),
                ],
            )
            .unwrap();
        assert_eq!(out.as_str().unwrap(), "tg-login\n");
    }

    #[test]
    fn run_xml_executes_sequentially() {
        let (grid, c) = client();
        let out = c
            .call(
                "runXml",
                &[SoapValue::Xml(jobs_xml(&["sleep 2", "sleep 3"]))],
            )
            .unwrap();
        let results = out.as_xml().unwrap();
        assert_eq!(results.attr("mode"), Some("sequential"));
        let entries: Vec<&Element> = results.children().collect();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|r| r.attr("state") == Some("DONE")));
        // Sequential: total simulated time at least 2+3 seconds.
        assert!(grid.clock().now() >= 5000, "clock={}", grid.clock().now());
    }

    #[test]
    fn run_xml_parallel_overlaps_jobs() {
        let (grid, c) = client();
        let before = grid.clock().now();
        let out = c
            .call(
                "runXmlParallel",
                &[SoapValue::Xml(jobs_xml(&["sleep 3", "sleep 3", "sleep 3"]))],
            )
            .unwrap();
        let results = out.as_xml().unwrap();
        assert_eq!(results.children().count(), 3);
        let elapsed = grid.clock().now() - before;
        // Three 3-second jobs on a 32-cpu host overlap: makespan well under
        // the 9 seconds the sequential executor would need.
        assert!(elapsed <= 5000, "elapsed={elapsed}");
    }

    #[test]
    fn async_submit_status_output() {
        let (grid, c) = client();
        let id = c
            .call(
                "submit",
                &[
                    SoapValue::str("tg-login"),
                    SoapValue::str("PBS"),
                    SoapValue::str(pbs_script("hostname")),
                ],
            )
            .unwrap();
        let id = id.as_i64().unwrap();
        let st = c.call("status", &[SoapValue::Int(id)]).unwrap();
        assert_eq!(st.field("state").unwrap().as_str(), Some("QUEUED"));
        grid.tick(0);
        grid.tick(2000);
        let st = c.call("status", &[SoapValue::Int(id)]).unwrap();
        assert_eq!(st.field("state").unwrap().as_str(), Some("DONE"));
        let out = c.call("output", &[SoapValue::Int(id)]).unwrap();
        assert_eq!(out.as_str().unwrap(), "tg-login\n");
    }

    #[test]
    fn cancel_round_trip() {
        let (_, c) = client();
        let id = c
            .call(
                "submit",
                &[
                    SoapValue::str("tg-login"),
                    SoapValue::str("PBS"),
                    SoapValue::str(pbs_script("sleep 100")),
                ],
            )
            .unwrap();
        c.call("cancel", std::slice::from_ref(&id)).unwrap();
        let st = c.call("status", &[id]).unwrap();
        assert_eq!(st.field("state").unwrap().as_str(), Some("CANCELLED"));
    }

    #[test]
    fn errors_map_to_common_codes() {
        let (_, c) = client();
        let err = c
            .call(
                "run",
                &[
                    SoapValue::str("ghost-host"),
                    SoapValue::str("PBS"),
                    SoapValue::str(pbs_script("date")),
                ],
            )
            .unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::HostUnavailable)
        );
        let err = c
            .call(
                "run",
                &[
                    SoapValue::str("tg-login"),
                    SoapValue::str("PBS"),
                    SoapValue::str("garbage script"),
                ],
            )
            .unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::JobRejected)
        );
        let err = c.call("status", &[SoapValue::Int(4242)]).unwrap_err();
        assert_eq!(
            err.as_fault().and_then(|f| f.kind()),
            Some(PortalErrorKind::NotFound)
        );
    }

    #[test]
    fn list_hosts_describes_testbed() {
        let (_, c) = client();
        let hosts = c.call("listHosts", &[]).unwrap();
        let hosts = hosts.as_array().unwrap();
        assert_eq!(hosts.len(), 2);
        assert_eq!(hosts[0].field("name").unwrap().as_str(), Some("modi4"));
        let scheds = hosts[0].field("schedulers").unwrap().as_array().unwrap();
        assert_eq!(scheds.len(), 2);
    }

    #[test]
    fn failing_job_reported_in_xml_results() {
        let (_, c) = client();
        let out = c
            .call("runXml", &[SoapValue::Xml(jobs_xml(&["/bin/false"]))])
            .unwrap();
        let results = out.as_xml().unwrap();
        let r = results.children().next().unwrap();
        assert_eq!(r.attr("state"), Some("FAILED"));
        assert_eq!(r.attr("exitCode"), Some("1"));
    }

    #[test]
    fn bad_jobs_document_rejected() {
        let (_, c) = client();
        assert!(c
            .call("runXml", &[SoapValue::Xml(Element::new("notjobs"))])
            .is_err());
        let incomplete = Element::new("jobs")
            .with_child(Element::new("job").with_text_child("host", "tg-login"));
        assert!(c.call("runXml", &[SoapValue::Xml(incomplete)]).is_err());
    }
}
